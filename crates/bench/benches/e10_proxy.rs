//! Regenerates E10: fixed vs local proxies as the move rate grows (Section 5).
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_proxy::e10_proxy(quick));
}
