//! Strongly-typed identifiers for the entities of the two-tier system model.
//!
//! The paper's model has two kinds of hosts: *mobile support stations* (MSSs,
//! the fixed hosts of the wired network) and *mobile hosts* (MHs) that attach
//! to one cell — one MSS — at a time. Newtypes keep the two id spaces from
//! being confused at compile time ([C-NEWTYPE]).

use std::fmt;

/// Identifier of a mobile support station (fixed host).
///
/// MSSs are numbered densely from `0..M`; the numbering doubles as the ring
/// order used by the token-ring algorithms.
///
/// # Examples
///
/// ```
/// use mobidist_net::ids::MssId;
/// let m = MssId(3);
/// assert_eq!(m.index(), 3);
/// assert_eq!(m.to_string(), "mss3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MssId(pub u32);

impl MssId {
    /// The id as a dense `usize` index into per-MSS tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MssId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mss{}", self.0)
    }
}

impl From<u32> for MssId {
    fn from(v: u32) -> Self {
        MssId(v)
    }
}

/// Identifier of a mobile host.
///
/// MHs are numbered densely from `0..N`.
///
/// # Examples
///
/// ```
/// use mobidist_net::ids::MhId;
/// let h = MhId(17);
/// assert_eq!(h.index(), 17);
/// assert_eq!(h.to_string(), "mh17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MhId(pub u32);

impl MhId {
    /// The id as a dense `usize` index into per-MH tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MhId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mh{}", self.0)
    }
}

impl From<u32> for MhId {
    fn from(v: u32) -> Self {
        MhId(v)
    }
}

/// Identifier of a process group of mobile hosts (Section 4 of the paper).
///
/// # Examples
///
/// ```
/// use mobidist_net::ids::GroupId;
/// assert_eq!(GroupId(1).to_string(), "grp1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grp{}", self.0)
    }
}

/// Either kind of host — the source or destination of a message.
///
/// # Examples
///
/// ```
/// use mobidist_net::ids::{Endpoint, MhId, MssId};
/// let e = Endpoint::Mh(MhId(2));
/// assert!(e.as_mh().is_some());
/// assert!(Endpoint::Mss(MssId(0)).as_mss().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// A fixed host / mobile support station.
    Mss(MssId),
    /// A mobile host.
    Mh(MhId),
}

impl Endpoint {
    /// Returns the MSS id if this endpoint is a fixed host.
    pub fn as_mss(self) -> Option<MssId> {
        match self {
            Endpoint::Mss(m) => Some(m),
            Endpoint::Mh(_) => None,
        }
    }

    /// Returns the MH id if this endpoint is a mobile host.
    pub fn as_mh(self) -> Option<MhId> {
        match self {
            Endpoint::Mh(h) => Some(h),
            Endpoint::Mss(_) => None,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Mss(m) => m.fmt(f),
            Endpoint::Mh(h) => h.fmt(f),
        }
    }
}

impl From<MssId> for Endpoint {
    fn from(m: MssId) -> Self {
        Endpoint::Mss(m)
    }
}

impl From<MhId> for Endpoint {
    fn from(h: MhId) -> Self {
        Endpoint::Mh(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn display_forms() {
        assert_eq!(MssId(0).to_string(), "mss0");
        assert_eq!(MhId(41).to_string(), "mh41");
        assert_eq!(GroupId(7).to_string(), "grp7");
        assert_eq!(Endpoint::Mh(MhId(1)).to_string(), "mh1");
        assert_eq!(Endpoint::Mss(MssId(2)).to_string(), "mss2");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(MssId(9).index(), 9);
        assert_eq!(MhId(123).index(), 123);
        assert_eq!(MssId::from(4u32), MssId(4));
        assert_eq!(MhId::from(4u32), MhId(4));
    }

    #[test]
    fn endpoint_projections() {
        assert_eq!(Endpoint::Mss(MssId(1)).as_mss(), Some(MssId(1)));
        assert_eq!(Endpoint::Mss(MssId(1)).as_mh(), None);
        assert_eq!(Endpoint::Mh(MhId(2)).as_mh(), Some(MhId(2)));
        assert_eq!(Endpoint::Mh(MhId(2)).as_mss(), None);
        assert_eq!(Endpoint::from(MssId(3)), Endpoint::Mss(MssId(3)));
        assert_eq!(Endpoint::from(MhId(3)), Endpoint::Mh(MhId(3)));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let set: BTreeSet<MhId> = [MhId(3), MhId(1), MhId(2)].into_iter().collect();
        let v: Vec<_> = set.into_iter().collect();
        assert_eq!(v, vec![MhId(1), MhId(2), MhId(3)]);
    }
}
