//! # mobidist-cost — the paper's closed-form cost formulas
//!
//! Every cost expression derived in *"Structuring Distributed Algorithms
//! for Mobile Hosts"* (ICDCS 1994), implemented verbatim so experiments can
//! print **paper-predicted vs simulator-measured** side by side.
//!
//! All formulas are parameterised by the cost model `(C_fixed, C_wireless,
//! C_search)` of Section 2. Functions return abstract cost units; energy
//! functions return wireless-operation counts (the paper's proportional
//! battery measure).

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod group;
pub mod mutex;

pub use group::{
    always_inform_effective, location_view_effective, location_view_update_bound,
    pure_search_effective,
};
pub use mutex::{
    l1_energy_initiator, l1_energy_total, l1_execution_cost, l2_execution_cost, l2_wireless_msgs,
    l2c_batch_cost, l2c_wireless_per_entry, r1_energy_per_traversal, r1_traversal_cost, r2_cost,
    r2_max_requests_per_traversal, r2_wireless_ops_per_request,
};

/// The `(C_fixed, C_wireless, C_search)` parameter triple.
///
/// Mirrors `mobidist_net::cost::CostModel` without depending on the
/// simulator crate, so the analytic layer stands alone.
///
/// # Examples
///
/// ```
/// use mobidist_cost::Params;
/// let p = Params { c_fixed: 1, c_wireless: 10, c_search: 5 };
/// assert_eq!(p.mh_to_mh(), 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Params {
    /// Cost of one fixed-network message.
    pub c_fixed: u64,
    /// Cost of one wireless message.
    pub c_wireless: u64,
    /// Cost of one search (locate + forward).
    pub c_search: u64,
}

impl Params {
    /// Cost of one MH→MH message: `2·C_wireless + C_search` (Section 2).
    pub fn mh_to_mh(&self) -> u64 {
        2 * self.c_wireless + self.c_search
    }

    /// Cost of one MSS→non-local-MH message: `C_search + C_wireless`.
    pub fn mss_to_remote_mh(&self) -> u64 {
        self.c_search + self.c_wireless
    }
}

impl Default for Params {
    /// Matches `mobidist_net::cost::CostModel::default()`.
    fn default() -> Self {
        Params {
            c_fixed: 1,
            c_wireless: 10,
            c_search: 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_message_costs() {
        let p = Params {
            c_fixed: 2,
            c_wireless: 7,
            c_search: 3,
        };
        assert_eq!(p.mh_to_mh(), 17);
        assert_eq!(p.mss_to_remote_mh(), 10);
    }
}
