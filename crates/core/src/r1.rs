//! **Algorithm R1** — Le Lann's token ring executed directly on the mobile
//! hosts (the baseline of Section 3.1.2).
//!
//! The `N` MHs form a unidirectional logical ring; a single token circulates
//! continuously. Each MH waits for the token from its predecessor, enters
//! the critical section if it wants to, and forwards the token to its
//! successor. Every hop is an MH→MH message costing
//! `2·C_wireless + C_search`, so one traversal costs
//! `N(2·C_wireless + C_search)` *independent of how many requests were
//! served* — and every MH pays battery to relay the token even when it never
//! wanted it, and is interrupted even while dozing.
//!
//! Disconnection: R1 has no graceful answer. The implementation offers the
//! two options the paper contemplates: stall (retry until the successor
//! reconnects) or rebuild the ring by skipping the disconnected member,
//! each exposing its cost.

use crate::algorithm::{AlgoCtx, MutexAlgorithm};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::Src;
use std::collections::BTreeMap;

/// What R1 does when the next token holder is disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum R1DisconnectPolicy {
    /// Keep retrying the same successor until it reconnects (the ring
    /// stalls; progress stops for everyone).
    #[default]
    Stall,
    /// Re-establish the logical ring among the remaining MHs by skipping the
    /// disconnected member (extra searches, ring-maintenance cost).
    Skip,
}

/// R1 protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum R1Msg {
    /// The circulating token.
    Token,
}

/// R1 timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum R1Timer {
    /// Retry forwarding the token from `from` to `to` after a stall.
    RetryForward {
        /// Current token holder.
        from: MhId,
        /// Intended next holder.
        to: MhId,
    },
}

/// Le Lann's ring on mobile hosts. See the module docs.
#[derive(Debug)]
pub struct R1 {
    ring: Vec<MhId>,
    pos: BTreeMap<MhId, usize>,
    wants: BTreeMap<MhId, bool>,
    /// MH currently holding (relaying or using) the token.
    holder: Option<MhId>,
    /// Holder is inside the critical section.
    in_cs: bool,
    policy: R1DisconnectPolicy,
    retry_delay: u64,
    /// Completed traversals (token back at ring position 0).
    traversals: u64,
    /// Token-forward messages sent.
    hops: u64,
    /// Times the ring had to skip a disconnected member.
    skips: u64,
    /// Times forwarding stalled on a disconnected member.
    stalls: u64,
}

impl R1 {
    /// Creates a ring over the given MHs, token starting at the first.
    ///
    /// # Panics
    ///
    /// Panics if `ring` is empty.
    pub fn new(ring: Vec<MhId>, policy: R1DisconnectPolicy) -> Self {
        assert!(!ring.is_empty(), "R1 needs at least one MH in the ring");
        let pos = ring.iter().enumerate().map(|(i, mh)| (*mh, i)).collect();
        let wants = ring.iter().map(|mh| (*mh, false)).collect();
        R1 {
            ring,
            pos,
            wants,
            holder: None,
            in_cs: false,
            policy,
            retry_delay: 50,
            traversals: 0,
            hops: 0,
            skips: 0,
            stalls: 0,
        }
    }

    /// Completed ring traversals.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Token-forward hops sent.
    pub fn hops(&self) -> u64 {
        self.hops
    }

    /// Times a disconnected member was skipped (Skip policy).
    pub fn skips(&self) -> u64 {
        self.skips
    }

    /// Times forwarding stalled on a disconnected member (Stall policy).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// The current token holder (None only while the token is in flight).
    pub fn holder(&self) -> Option<MhId> {
        self.holder
    }

    fn successor(&self, of: MhId, step: usize) -> MhId {
        let i = self.pos[&of];
        self.ring[(i + step) % self.ring.len()]
    }

    fn forward(&mut self, ctx: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>, from: MhId) {
        let to = self.successor(from, 1);
        if to == from {
            // Single-member ring: the holder keeps the token; nothing to send.
            self.token_arrived(ctx, from);
            return;
        }
        self.hops += 1;
        self.holder = None;
        let _ = ctx.mh_send_to_mh(from, to, R1Msg::Token);
    }

    fn token_arrived(&mut self, ctx: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>, at: MhId) {
        self.holder = Some(at);
        if self.pos[&at] == 0 {
            self.traversals += 1;
        }
        if self.wants[&at] {
            self.wants.insert(at, false);
            self.in_cs = true;
            ctx.grant(at);
            // The token parks here until the harness calls release().
        } else {
            self.forward(ctx, at);
        }
    }
}

impl MutexAlgorithm for R1 {
    type Msg = R1Msg;
    type Timer = R1Timer;

    fn name(&self) -> &'static str {
        "R1"
    }

    fn on_start(&mut self, ctx: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>) {
        // Mint the token at ring position 0.
        let first = self.ring[0];
        self.token_arrived(ctx, first);
    }

    fn request(&mut self, ctx: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>, mh: MhId) {
        self.wants.insert(mh, true);
        // Only in a single-member ring can the token be parked at an idle
        // MH; enter immediately in that case.
        if self.holder == Some(mh) && !self.in_cs {
            self.wants.insert(mh, false);
            self.in_cs = true;
            ctx.grant(mh);
        }
    }

    fn release(&mut self, ctx: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>, mh: MhId) {
        debug_assert_eq!(self.holder, Some(mh), "release from the token holder");
        self.in_cs = false;
        self.forward(ctx, mh);
    }

    fn on_mss_msg(&mut self, _: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>, _: MssId, _: Src, _: R1Msg) {
        unreachable!("R1 exchanges messages only between mobile hosts");
    }

    fn on_mh_msg(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>,
        at: MhId,
        _: Src,
        msg: R1Msg,
    ) {
        match msg {
            R1Msg::Token => self.token_arrived(ctx, at),
        }
    }

    fn on_timer(&mut self, ctx: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>, timer: R1Timer) {
        match timer {
            R1Timer::RetryForward { from, to } => {
                self.hops += 1;
                let _ = ctx.mh_send_to_mh(from, to, R1Msg::Token);
            }
        }
    }

    fn on_search_failed(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, R1Msg, R1Timer>,
        _origin: MssId,
        target: MhId,
        msg: R1Msg,
    ) {
        let R1Msg::Token = msg;
        // The token bounced off a disconnected successor. Its logical sender
        // is the predecessor of `target`; recover per policy.
        let sender = {
            let i = self.pos[&target];
            let n = self.ring.len();
            self.ring[(i + n - 1) % n]
        };
        match self.policy {
            R1DisconnectPolicy::Stall => {
                self.stalls += 1;
                ctx.set_timer(
                    self.retry_delay,
                    R1Timer::RetryForward {
                        from: sender,
                        to: target,
                    },
                );
            }
            R1DisconnectPolicy::Skip => {
                self.skips += 1;
                let next = self.successor(target, 1);
                self.hops += 1;
                let _ = ctx.mh_send_to_mh(sender, next, R1Msg::Token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> R1 {
        R1::new(
            vec![MhId(0), MhId(1), MhId(2), MhId(3)],
            R1DisconnectPolicy::Stall,
        )
    }

    #[test]
    fn successor_wraps_around_the_ring() {
        let r = ring4();
        assert_eq!(r.successor(MhId(0), 1), MhId(1));
        assert_eq!(r.successor(MhId(3), 1), MhId(0));
        assert_eq!(r.successor(MhId(2), 2), MhId(0));
    }

    #[test]
    fn fresh_ring_has_no_holder_and_zero_stats() {
        let r = ring4();
        assert_eq!(r.holder(), None);
        assert_eq!(
            (r.traversals(), r.hops(), r.skips(), r.stalls()),
            (0, 0, 0, 0)
        );
        assert_eq!(r.name(), "R1");
    }

    #[test]
    #[should_panic(expected = "at least one MH")]
    fn empty_ring_rejected() {
        let _ = R1::new(vec![], R1DisconnectPolicy::Skip);
    }
}
