//! Error types for kernel operations.

use crate::ids::{MhId, MssId};
use std::error::Error;
use std::fmt;

/// Error returned by fallible kernel operations.
///
/// # Examples
///
/// ```
/// use mobidist_net::error::NetError;
/// use mobidist_net::ids::{MhId, MssId};
/// let e = NetError::NotLocal { mss: MssId(0), mh: MhId(3) };
/// assert!(e.to_string().contains("mh3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A wireless downlink send was attempted to an MH that is not local to
    /// the sending MSS.
    NotLocal {
        /// The MSS that attempted the send.
        mss: MssId,
        /// The intended recipient.
        mh: MhId,
    },
    /// An operation referenced an MH that is currently disconnected.
    Disconnected {
        /// The disconnected MH.
        mh: MhId,
    },
    /// An operation referenced an id outside the configured population.
    UnknownHost {
        /// Rendered id of the unknown host.
        id: String,
    },
    /// A wireless uplink send was attempted while the MH is between cells and
    /// outbox buffering is disabled.
    BetweenCells {
        /// The MH with no current cell.
        mh: MhId,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NotLocal { mss, mh } => {
                write!(f, "{mh} is not local to {mss}")
            }
            NetError::Disconnected { mh } => write!(f, "{mh} is disconnected"),
            NetError::UnknownHost { id } => write!(f, "unknown host {id}"),
            NetError::BetweenCells { mh } => {
                write!(f, "{mh} is between cells and cannot use a wireless channel")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::NotLocal {
            mss: MssId(1),
            mh: MhId(2),
        };
        assert_eq!(e.to_string(), "mh2 is not local to mss1");
        assert_eq!(
            NetError::Disconnected { mh: MhId(5) }.to_string(),
            "mh5 is disconnected"
        );
        assert_eq!(
            NetError::BetweenCells { mh: MhId(5) }.to_string(),
            "mh5 is between cells and cannot use a wireless channel"
        );
        assert!(NetError::UnknownHost { id: "x9".into() }
            .to_string()
            .contains("x9"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetError>();
    }
}
