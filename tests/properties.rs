//! Randomized-but-deterministic tests over the whole stack: for seeded
//! pseudo-random draws of network shape, cost parameters, seeds and
//! workloads, the core invariants of the paper's algorithms must hold.
//!
//! These replace an earlier proptest suite with an in-repo case generator
//! (the simulator's own [`SimRng`]), so the workspace builds with no
//! external crates and every CI run exercises the identical case set.

use mobidist::prelude::*;

/// Draws `cases` parameter tuples from a fixed stream and runs `f` on each.
fn for_cases(label: &str, cases: u64, mut f: impl FnMut(&mut SimRng)) {
    // Distinct label → distinct stream, so adding a test never perturbs
    // another test's cases.
    let mut seed = 0x5EED_BA5E_u64;
    for b in label.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
    }
    let mut rng = SimRng::seed_from(seed);
    for case in 0..cases {
        let mut case_rng = rng.fork(case);
        f(&mut case_rng);
    }
}

/// L2 never violates mutual exclusion or timestamp ordering, and serves
/// every request, whatever the network shape, seed and mobility.
#[test]
fn prop_l2_safe_live_ordered() {
    for_cases("l2_safe_live_ordered", 24, |r| {
        let m = r.between(2, 5) as usize;
        let n = r.between(2, 9) as usize;
        let seed = r.below(1000);
        let mut cfg = NetworkConfig::new(m, n).with_seed(seed);
        if r.chance(0.5) {
            cfg = cfg.with_mobility(MobilityConfig::moving(r.between(100, 1999)));
        }
        let wl = WorkloadConfig::all_mhs(n, 1);
        let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(m), wl));
        sim.run_until(SimTime::from_ticks(20_000_000));
        let rep = sim.protocol().report();
        assert_eq!(rep.safety_violations, 0);
        assert_eq!(rep.order_violations, 0);
        assert_eq!(rep.completed, n as u64, "{rep:?}");
    });
}

/// The R2 family preserves mutual exclusion and single-token semantics
/// under every guard and random mobility.
#[test]
fn prop_r2_safe_single_token() {
    for_cases("r2_safe_single_token", 24, |r| {
        let m = r.between(2, 5) as usize;
        let n = r.between(2, 7) as usize;
        let seed = r.below(1000);
        let guard = *r.pick(&[RingGuard::Plain, RingGuard::Counter, RingGuard::TokenList]);
        let cfg = NetworkConfig::new(m, n)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(500));
        let wl = WorkloadConfig::all_mhs(n, 1).with_think(30);
        let mut sim = Simulation::new(cfg, MutexHarness::new(R2::new(m, guard), wl));
        sim.run_until(SimTime::from_ticks(300_000));
        let rep = sim.protocol().report();
        assert_eq!(rep.safety_violations, 0);
        assert_eq!(rep.completed, n as u64, "{rep:?}");
        // Token conservation: at most one MSS believes it holds the token.
        assert!(sim.protocol().algorithm().stations_with_token() <= 1);
    });
}

/// L1's measured cost equals the paper's closed form exactly on static
/// networks, for any population and cost parameters.
#[test]
fn prop_l1_cost_formula_exact() {
    for_cases("l1_cost_formula_exact", 24, |r| {
        let m = r.between(2, 5) as usize;
        let n = r.between(2, 11) as usize;
        let seed = r.below(500);
        let cw = r.between(1, 19);
        let cs = r.between(1, 19);
        let cost = CostModel::new(1, cw, cs);
        let cfg = NetworkConfig::new(m, n).with_seed(seed).with_cost(cost);
        let wl = WorkloadConfig::only(vec![MhId(0)], 1);
        let algo = L1::new((0..n as u32).map(MhId).collect());
        let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
        sim.run_until(SimTime::from_ticks(20_000_000));
        assert_eq!(sim.protocol().report().completed, 1);
        let p = Params {
            c_fixed: 1,
            c_wireless: cw,
            c_search: cs,
        };
        assert_eq!(
            sim.ledger().total_cost(),
            mobidist::cost::l1_execution_cost(n as u64, p)
        );
    });
}

/// Group messages on a static network are delivered exactly once to
/// every member, by every strategy.
#[test]
fn prop_group_exactly_once_static() {
    for_cases("group_exactly_once_static", 24, |r| {
        let m = r.between(2, 7) as usize;
        let g = r.between(2, 7) as usize;
        let seed = r.below(500);
        let which = r.below(3);
        let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
        let cfg = NetworkConfig::new(m, g).with_seed(seed);
        let wl = GroupWorkload::new(members.clone(), 5, 50);
        let report = match which {
            0 => {
                let mut sim = Simulation::new(cfg, GroupHarness::new(PureSearch::new(members), wl));
                sim.run_until(SimTime::from_ticks(1_000_000));
                sim.protocol().report()
            }
            1 => {
                let mut sim =
                    Simulation::new(cfg, GroupHarness::new(AlwaysInform::new(members), wl));
                sim.run_until(SimTime::from_ticks(1_000_000));
                sim.protocol().report()
            }
            _ => {
                let mut sim = Simulation::new(
                    cfg,
                    GroupHarness::new(LocationView::new(members, MssId(0)), wl),
                );
                sim.run_until(SimTime::from_ticks(1_000_000));
                sim.protocol().report()
            }
        };
        assert_eq!(report.sent, 5);
        assert_eq!(report.missed, 0);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.delivered, report.expected);
    });
}

/// The location view converges to exactly the set of occupied cells
/// after any sequence of forced member moves.
#[test]
fn prop_location_view_converges() {
    for_cases("location_view_converges", 24, |r| {
        let m = r.between(3, 7) as usize;
        let g = r.between(2, 5) as usize;
        let seed = r.below(500);
        let n_moves = r.between(1, 11) as usize;
        let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
        let cfg = NetworkConfig::new(m, g).with_seed(seed);
        let wl = GroupWorkload::new(members.clone(), 0, 100);
        let mut sim = Simulation::new(
            cfg,
            GroupHarness::new(LocationView::new(members, MssId(0)), wl),
        );
        for _ in 0..n_moves {
            let mh = MhId(r.below(g as u64) as u32);
            let cell = MssId(r.below(m as u64) as u32);
            sim.with_ctx(|ctx, _| {
                if ctx.current_cell(mh) != Some(cell) {
                    ctx.initiate_move(mh, Some(cell));
                }
            });
            // Let each move fully settle before the next (sequential moves;
            // concurrency is exercised by the churn tests).
            sim.run_to_quiescence(5_000_000);
        }
        assert!(sim.protocol().strategy().is_consistent());
    });
}

/// Ledger arithmetic: total cost always decomposes into its parts, and
/// deltas of later snapshots never underflow.
#[test]
fn prop_ledger_decomposition() {
    for_cases("ledger_decomposition", 24, |r| {
        let m = r.between(2, 5) as usize;
        let n = r.between(2, 7) as usize;
        let seed = r.below(500);
        let cfg = NetworkConfig::new(m, n)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(200));
        let wl = WorkloadConfig::all_mhs(n, 1);
        let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(m), wl));
        sim.run_until(SimTime::from_ticks(5_000));
        let early = sim.ledger().clone();
        sim.run_until(SimTime::from_ticks(200_000));
        let late = sim.ledger().clone();
        let d = late.delta(&early);
        assert_eq!(
            d.total_cost(),
            d.fixed_cost + d.wireless_cost + d.search_cost
        );
        assert!(late.total_cost() >= early.total_cost());
        assert_eq!(late.wireless_msgs - early.wireless_msgs, d.wireless_msgs);
    });
}

/// Runs are bit-reproducible: identical seeds give identical ledgers.
#[test]
fn prop_determinism() {
    for_cases("determinism", 24, |r| {
        let seed = r.below(300);
        let go = || {
            let cfg = NetworkConfig::new(3, 6)
                .with_seed(seed)
                .with_mobility(MobilityConfig::moving(250));
            let wl = WorkloadConfig::all_mhs(6, 1);
            let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(3), wl));
            sim.run_until(SimTime::from_ticks(100_000));
            sim.ledger().clone()
        };
        assert_eq!(go(), go());
    });
}

/// The exactly-once extension holds its three guarantees — no miss, no
/// duplicate, one global total order — under arbitrary churn schedules.
#[test]
fn prop_exactly_once_invariants() {
    for_cases("exactly_once_invariants", 16, |r| {
        let m = r.between(3, 7) as usize;
        let g = r.between(2, 7) as usize;
        let seed = r.below(400);
        let dwell = r.between(80, 1499);
        let msgs = r.between(3, 14) as usize;
        let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
        let cfg = NetworkConfig::new(m, g)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(dwell));
        let wl = GroupWorkload::new(members.clone(), msgs, 50);
        let mut sim = Simulation::new(
            cfg,
            GroupHarness::new(ExactlyOnce::new(members, MssId(0)), wl),
        );
        // Run past the last send, then give stragglers time to land.
        sim.run_until(SimTime::from_ticks(60 * msgs as u64 + 50_000));
        let rep = sim.protocol().report();
        assert_eq!(rep.sent, msgs as u64);
        assert_eq!(rep.missed, 0, "{rep:?}");
        assert_eq!(rep.duplicates, 0, "{rep:?}");
        assert!(sim.protocol().total_order_consistent());
    });
}

/// The adaptive proxy policy serves every interaction for any radius.
#[test]
fn prop_adaptive_proxy_serves_all() {
    for_cases("adaptive_proxy_serves_all", 16, |r| {
        let m = r.between(3, 7) as usize;
        let n = r.between(2, 5) as usize;
        let seed = r.below(400);
        let radius = r.below(4) as u32;
        let clients: Vec<MhId> = (0..n as u32).map(MhId).collect();
        let cfg = NetworkConfig::new(m, n)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(400));
        let wl = ProxyWorkload {
            inputs_per_client: 2,
            mean_interval: 150,
        };
        let mut sim = Simulation::new(
            cfg,
            ProxyRuntime::new(
                EchoService::new(),
                clients,
                ProxyPolicy::Adaptive { radius },
                wl,
            ),
        );
        sim.run_until(SimTime::from_ticks(2_000_000));
        let rep = sim.protocol().report();
        assert_eq!(rep.inputs_sent, 2 * n as u64);
        assert_eq!(rep.outputs_delivered, rep.inputs_sent, "{rep:?}");
    });
}
