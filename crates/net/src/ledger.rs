//! Cost and energy accounting.
//!
//! Every kernel operation charges the [`CostLedger`]: message counts per
//! channel class, abstract cost units per the paper's
//! [`CostModel`] abstraction, per-MH battery energy, and the
//! event counters the paper's arguments turn on (searches, re-searches after
//! a move, doze interruptions, handoffs). Experiments measure an algorithm by
//! snapshotting the ledger before and after and taking [`CostLedger::delta`].

use crate::cost::CostModel;
use crate::ids::MhId;
use std::collections::BTreeMap;
use std::fmt;

/// Accumulated message, cost and energy counters.
///
/// # Examples
///
/// ```
/// use mobidist_net::ledger::CostLedger;
/// use mobidist_net::cost::CostModel;
/// use mobidist_net::ids::MhId;
///
/// let mut l = CostLedger::new(4);
/// let c = CostModel::default();
/// l.charge_fixed(&c);
/// l.charge_wireless_tx(&c, MhId(0), 1);
/// assert_eq!(l.fixed_msgs, 1);
/// assert_eq!(l.wireless_msgs, 1);
/// assert_eq!(l.total_cost(), c.c_fixed + c.c_wireless);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// Messages sent on the fixed (wired) network.
    pub fixed_msgs: u64,
    /// Messages sent on wireless channels (either direction).
    pub wireless_msgs: u64,
    /// Searches performed (initial locate-and-forward operations).
    pub searches: u64,
    /// Additional searches caused by the target moving while a message was in
    /// flight (the "eventual delivery regardless of moves" guarantee).
    pub re_searches: u64,
    /// Searches that terminated at a disconnected MH (the local MSS of the
    /// disconnection cell informed the searcher).
    pub search_failures: u64,
    /// Cost units accumulated on the fixed network (`n · C_fixed`).
    pub fixed_cost: u64,
    /// Cost units accumulated on wireless channels (`n · C_wireless`).
    pub wireless_cost: u64,
    /// Cost units accumulated by searches (`n · C_search` for the oracle
    /// policy; real control-message cost for flooding).
    pub search_cost: u64,
    /// Wireless transmissions per MH (battery-relevant).
    pub mh_tx: Vec<u64>,
    /// Wireless receptions per MH (battery-relevant).
    pub mh_rx: Vec<u64>,
    /// Energy units consumed per MH.
    pub mh_energy: Vec<u64>,
    /// Deliveries that interrupted an MH in doze mode.
    pub doze_interruptions: u64,
    /// Cell switches completed (join after leave).
    pub moves: u64,
    /// Handoff state transfers between MSSs.
    pub handoffs: u64,
    /// Voluntary disconnections.
    pub disconnects: u64,
    /// Reconnections.
    pub reconnects: u64,
    /// Messages lost on a wireless downlink because the MH left the cell
    /// (delivered sequence is a prefix of the sent sequence).
    pub wireless_losses: u64,
    /// Protocol-defined named counters (e.g. `"location_updates"`).
    pub custom: BTreeMap<String, u64>,
}

impl CostLedger {
    /// Creates a ledger for a population of `num_mh` mobile hosts.
    pub fn new(num_mh: usize) -> Self {
        CostLedger {
            mh_tx: vec![0; num_mh],
            mh_rx: vec![0; num_mh],
            mh_energy: vec![0; num_mh],
            ..CostLedger::default()
        }
    }

    /// Total abstract cost units across all channel classes.
    pub fn total_cost(&self) -> u64 {
        self.fixed_cost + self.wireless_cost + self.search_cost
    }

    /// Total energy consumed across all MHs.
    pub fn total_energy(&self) -> u64 {
        self.mh_energy.iter().sum()
    }

    /// Total wireless operations (tx + rx) at a given MH.
    pub fn mh_wireless_ops(&self, mh: MhId) -> u64 {
        self.mh_tx[mh.index()] + self.mh_rx[mh.index()]
    }

    /// Charges one fixed-network message.
    pub fn charge_fixed(&mut self, cost: &CostModel) {
        self.fixed_msgs += 1;
        self.fixed_cost += cost.c_fixed;
    }

    /// Charges `n` fixed-network messages at once (e.g. a flood).
    pub fn charge_fixed_n(&mut self, cost: &CostModel, n: u64) {
        self.fixed_msgs += n;
        self.fixed_cost += n * cost.c_fixed;
    }

    /// Charges a wireless uplink transmission at `mh` with `tx_energy` units.
    pub fn charge_wireless_tx(&mut self, cost: &CostModel, mh: MhId, tx_energy: u64) {
        self.wireless_msgs += 1;
        self.wireless_cost += cost.c_wireless;
        self.mh_tx[mh.index()] += 1;
        self.mh_energy[mh.index()] += tx_energy;
    }

    /// Charges a wireless downlink reception at `mh` with `rx_energy` units.
    pub fn charge_wireless_rx(&mut self, cost: &CostModel, mh: MhId, rx_energy: u64) {
        self.wireless_msgs += 1;
        self.wireless_cost += cost.c_wireless;
        self.mh_rx[mh.index()] += 1;
        self.mh_energy[mh.index()] += rx_energy;
    }

    /// Charges one abstract search (oracle policy).
    pub fn charge_search_abstract(&mut self, cost: &CostModel, re_search: bool) {
        self.searches += 1;
        if re_search {
            self.re_searches += 1;
        }
        self.search_cost += cost.c_search;
    }

    /// Charges a flooding search realised as `msgs` fixed-network control
    /// messages.
    pub fn charge_search_flood(&mut self, cost: &CostModel, msgs: u64, re_search: bool) {
        self.searches += 1;
        if re_search {
            self.re_searches += 1;
        }
        self.search_cost += msgs * cost.c_fixed;
    }

    /// Increments a protocol-defined named counter.
    pub fn bump(&mut self, name: &str) {
        self.bump_by(name, 1);
    }

    /// Adds `by` to a protocol-defined named counter.
    pub fn bump_by(&mut self, name: &str, by: u64) {
        // get_mut-then-insert rather than `entry(name.to_owned())`: the hit
        // path (every bump after the first) must not allocate a String.
        if let Some(v) = self.custom.get_mut(name) {
            *v += by;
        } else {
            self.custom.insert(name.to_owned(), by);
        }
    }

    /// Reads a protocol-defined named counter (0 when never bumped).
    pub fn custom(&self, name: &str) -> u64 {
        self.custom.get(name).copied().unwrap_or(0)
    }

    /// Zeroes every counter for a population of `num_mh` hosts, retaining
    /// the per-MH vector and custom-map allocations for reuse.
    ///
    /// Destructures `self` so adding a ledger field without updating this
    /// reset is a compile error.
    pub fn reset(&mut self, num_mh: usize) {
        let CostLedger {
            fixed_msgs,
            wireless_msgs,
            searches,
            re_searches,
            search_failures,
            fixed_cost,
            wireless_cost,
            search_cost,
            mh_tx,
            mh_rx,
            mh_energy,
            doze_interruptions,
            moves,
            handoffs,
            disconnects,
            reconnects,
            wireless_losses,
            custom,
        } = self;
        *fixed_msgs = 0;
        *wireless_msgs = 0;
        *searches = 0;
        *re_searches = 0;
        *search_failures = 0;
        *fixed_cost = 0;
        *wireless_cost = 0;
        *search_cost = 0;
        mh_tx.clear();
        mh_tx.resize(num_mh, 0);
        mh_rx.clear();
        mh_rx.resize(num_mh, 0);
        mh_energy.clear();
        mh_energy.resize(num_mh, 0);
        *doze_interruptions = 0;
        *moves = 0;
        *handoffs = 0;
        *disconnects = 0;
        *reconnects = 0;
        *wireless_losses = 0;
        custom.clear();
    }

    /// Adds every counter of `other` into `self` (per-shard ledgers of a
    /// space-sharded run merge into the global ledger this way; all counters
    /// are commutative sums, so the merge order never matters).
    ///
    /// Destructures `self` so adding a ledger field without updating the
    /// merge is a compile error.
    pub fn merge(&mut self, other: &CostLedger) {
        let CostLedger {
            fixed_msgs,
            wireless_msgs,
            searches,
            re_searches,
            search_failures,
            fixed_cost,
            wireless_cost,
            search_cost,
            mh_tx,
            mh_rx,
            mh_energy,
            doze_interruptions,
            moves,
            handoffs,
            disconnects,
            reconnects,
            wireless_losses,
            custom,
        } = self;
        *fixed_msgs += other.fixed_msgs;
        *wireless_msgs += other.wireless_msgs;
        *searches += other.searches;
        *re_searches += other.re_searches;
        *search_failures += other.search_failures;
        *fixed_cost += other.fixed_cost;
        *wireless_cost += other.wireless_cost;
        *search_cost += other.search_cost;
        let mv = |dst: &mut Vec<u64>, src: &[u64]| {
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        };
        mv(mh_tx, &other.mh_tx);
        mv(mh_rx, &other.mh_rx);
        mv(mh_energy, &other.mh_energy);
        *doze_interruptions += other.doze_interruptions;
        *moves += other.moves;
        *handoffs += other.handoffs;
        *disconnects += other.disconnects;
        *reconnects += other.reconnects;
        *wireless_losses += other.wireless_losses;
        for (k, v) in &other.custom {
            if let Some(c) = custom.get_mut(k) {
                *c += v;
            } else {
                custom.insert(k.clone(), *v);
            }
        }
    }

    /// Counter difference `self - earlier`, for measuring one phase of an
    /// experiment.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not an earlier snapshot of the
    /// same ledger (any counter would go negative).
    pub fn delta(&self, earlier: &CostLedger) -> CostLedger {
        fn d(a: u64, b: u64) -> u64 {
            debug_assert!(a >= b, "ledger delta would be negative ({a} < {b})");
            a - b
        }
        let dv = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter()
                .zip(b.iter().chain(std::iter::repeat(&0)))
                .map(|(x, y)| d(*x, *y))
                .collect()
        };
        let mut custom = BTreeMap::new();
        for (k, v) in &self.custom {
            let prev = earlier.custom.get(k).copied().unwrap_or(0);
            custom.insert(k.clone(), d(*v, prev));
        }
        CostLedger {
            fixed_msgs: d(self.fixed_msgs, earlier.fixed_msgs),
            wireless_msgs: d(self.wireless_msgs, earlier.wireless_msgs),
            searches: d(self.searches, earlier.searches),
            re_searches: d(self.re_searches, earlier.re_searches),
            search_failures: d(self.search_failures, earlier.search_failures),
            fixed_cost: d(self.fixed_cost, earlier.fixed_cost),
            wireless_cost: d(self.wireless_cost, earlier.wireless_cost),
            search_cost: d(self.search_cost, earlier.search_cost),
            mh_tx: dv(&self.mh_tx, &earlier.mh_tx),
            mh_rx: dv(&self.mh_rx, &earlier.mh_rx),
            mh_energy: dv(&self.mh_energy, &earlier.mh_energy),
            doze_interruptions: d(self.doze_interruptions, earlier.doze_interruptions),
            moves: d(self.moves, earlier.moves),
            handoffs: d(self.handoffs, earlier.handoffs),
            disconnects: d(self.disconnects, earlier.disconnects),
            reconnects: d(self.reconnects, earlier.reconnects),
            wireless_losses: d(self.wireless_losses, earlier.wireless_losses),
            custom,
        }
    }
}

impl fmt::Display for CostLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fixed={} wireless={} searches={} (re={}, failed={})",
            self.fixed_msgs,
            self.wireless_msgs,
            self.searches,
            self.re_searches,
            self.search_failures
        )?;
        writeln!(
            f,
            "cost: fixed={} wireless={} search={} total={}",
            self.fixed_cost,
            self.wireless_cost,
            self.search_cost,
            self.total_cost()
        )?;
        write!(
            f,
            "energy={} doze_intr={} moves={} handoffs={} disc={} reconn={} losses={}",
            self.total_energy(),
            self.doze_interruptions,
            self.moves,
            self.handoffs,
            self.disconnects,
            self.reconnects,
            self.wireless_losses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(1, 10, 5)
    }

    #[test]
    fn charges_accumulate() {
        let mut l = CostLedger::new(2);
        let c = model();
        l.charge_fixed(&c);
        l.charge_fixed_n(&c, 3);
        l.charge_wireless_tx(&c, MhId(0), 2);
        l.charge_wireless_rx(&c, MhId(1), 3);
        l.charge_search_abstract(&c, false);
        l.charge_search_abstract(&c, true);
        assert_eq!(l.fixed_msgs, 4);
        assert_eq!(l.fixed_cost, 4);
        assert_eq!(l.wireless_msgs, 2);
        assert_eq!(l.wireless_cost, 20);
        assert_eq!(l.searches, 2);
        assert_eq!(l.re_searches, 1);
        assert_eq!(l.search_cost, 10);
        assert_eq!(l.total_cost(), 34);
        assert_eq!(l.mh_tx[0], 1);
        assert_eq!(l.mh_rx[1], 1);
        assert_eq!(l.mh_energy, vec![2, 3]);
        assert_eq!(l.total_energy(), 5);
        assert_eq!(l.mh_wireless_ops(MhId(0)), 1);
    }

    #[test]
    fn flood_search_costs_fixed_messages() {
        let mut l = CostLedger::new(1);
        let c = model();
        l.charge_search_flood(&c, 9, false);
        assert_eq!(l.searches, 1);
        assert_eq!(l.search_cost, 9 * c.c_fixed);
    }

    #[test]
    fn delta_subtracts_counters() {
        let c = model();
        let mut l = CostLedger::new(2);
        l.charge_fixed(&c);
        let snap = l.clone();
        l.charge_fixed(&c);
        l.charge_wireless_tx(&c, MhId(1), 1);
        l.bump("updates");
        let d = l.delta(&snap);
        assert_eq!(d.fixed_msgs, 1);
        assert_eq!(d.wireless_msgs, 1);
        assert_eq!(d.mh_tx, vec![0, 1]);
        assert_eq!(d.custom("updates"), 1);
        assert_eq!(d.custom("never"), 0);
    }

    #[test]
    fn custom_counters() {
        let mut l = CostLedger::new(0);
        l.bump("x");
        l.bump_by("x", 4);
        assert_eq!(l.custom("x"), 5);
        assert_eq!(l.custom("y"), 0);
    }

    #[test]
    fn reset_matches_new() {
        let c = model();
        let mut l = CostLedger::new(2);
        l.charge_fixed(&c);
        l.charge_wireless_tx(&c, MhId(1), 7);
        l.bump("updates");
        l.reset(3);
        assert_eq!(l, CostLedger::new(3));
        l.reset(1);
        assert_eq!(l, CostLedger::new(1));
    }

    #[test]
    fn merge_sums_counters() {
        let c = model();
        let mut a = CostLedger::new(2);
        a.charge_fixed(&c);
        a.charge_wireless_tx(&c, MhId(0), 2);
        a.bump("x");
        let mut b = CostLedger::new(2);
        b.charge_fixed_n(&c, 2);
        b.charge_wireless_rx(&c, MhId(1), 3);
        b.bump_by("x", 4);
        b.bump("y");
        b.moves += 5;
        a.merge(&b);
        assert_eq!(a.fixed_msgs, 3);
        assert_eq!(a.wireless_msgs, 2);
        assert_eq!(a.mh_tx, vec![1, 0]);
        assert_eq!(a.mh_rx, vec![0, 1]);
        assert_eq!(a.mh_energy, vec![2, 3]);
        assert_eq!(a.custom("x"), 5);
        assert_eq!(a.custom("y"), 1);
        assert_eq!(a.moves, 5);
    }

    #[test]
    fn merge_grows_per_mh_vectors() {
        let c = model();
        let mut a = CostLedger::new(1);
        let mut b = CostLedger::new(3);
        b.charge_wireless_tx(&c, MhId(2), 7);
        a.merge(&b);
        assert_eq!(a.mh_tx, vec![0, 0, 1]);
        assert_eq!(a.mh_energy, vec![0, 0, 7]);
    }

    #[test]
    fn display_is_nonempty() {
        let l = CostLedger::new(1);
        assert!(!l.to_string().is_empty());
    }
}
