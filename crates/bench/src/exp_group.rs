//! Experiments E5–E6: group location management (Section 4).

use crate::parallel::{default_jobs, map_indexed_with};
use crate::table::{f2, pct, Table};
use mobidist_cost as formulas;
use mobidist_cost::Params;
use mobidist_group::prelude::*;
use mobidist_net::ledger::CostLedger;
use mobidist_net::prelude::*;

fn params(c: CostModel) -> Params {
    Params {
        c_fixed: c.c_fixed,
        c_wireless: c.c_wireless,
        c_search: c.c_search,
    }
}

/// Outcome of one group-strategy run.
#[derive(Debug)]
pub struct GroupRun {
    /// Delivery audit.
    pub report: GroupReport,
    /// Final ledger.
    pub ledger: CostLedger,
    /// Location-view statistics, when the strategy was LV.
    pub lv: Option<(usize, f64)>, // (max view size, significant fraction)
}

impl GroupRun {
    /// Measured effective cost per group message.
    pub fn cost_per_message(&self) -> f64 {
        if self.report.sent == 0 {
            return f64::NAN;
        }
        self.ledger.total_cost() as f64 / self.report.sent as f64
    }
}

/// Per-worker simulation pools, one per strategy type, recycled across the
/// points a sweep worker processes.
#[derive(Debug, Default)]
pub struct StrategyPools {
    /// Pure-search simulations.
    pub ps: SimPool<GroupHarness<PureSearch>>,
    /// Always-inform simulations.
    pub ai: SimPool<GroupHarness<AlwaysInform>>,
    /// Location-view simulations.
    pub lv: SimPool<GroupHarness<LocationView>>,
    /// Exactly-once simulations (E11).
    pub eo: SimPool<GroupHarness<ExactlyOnce>>,
}

impl StrategyPools {
    /// Creates empty pools.
    pub fn new() -> Self {
        Self::default()
    }
}

fn finish_group<S: LocationStrategy>(
    sim: &mut Simulation<GroupHarness<S>>,
    label: &str,
    horizon: u64,
    lv: impl FnOnce(&GroupHarness<S>) -> Option<(usize, f64)>,
) -> GroupRun {
    crate::obs::install(sim, label);
    sim.run_until(SimTime::from_ticks(horizon));
    crate::obs::finish_run(sim);
    GroupRun {
        report: sim.protocol().report(),
        ledger: sim.ledger().clone(),
        lv: lv(sim.protocol()),
    }
}

/// Runs one strategy under the given network/workload, recycling pooled
/// simulations.
pub fn run_strategy_in(
    pools: &mut StrategyPools,
    cfg: NetworkConfig,
    which: &str,
    members: Vec<MhId>,
    wl: GroupWorkload,
    horizon: u64,
) -> GroupRun {
    crate::cache::cached(
        which,
        &cfg,
        &(&members, &wl, horizon),
        |r: &GroupRun| &r.ledger,
        || match which {
            "pure-search" => pools.ps.run(
                cfg.clone(),
                GroupHarness::new(PureSearch::new(members.clone()), wl.clone()),
                |sim| finish_group(sim, "pure-search", horizon, |_| None),
            ),
            "always-inform" => pools.ai.run(
                cfg.clone(),
                GroupHarness::new(AlwaysInform::new(members.clone()), wl.clone()),
                |sim| finish_group(sim, "always-inform", horizon, |_| None),
            ),
            "location-view" => pools.lv.run(
                cfg.clone(),
                GroupHarness::new(LocationView::new(members.clone(), MssId(0)), wl.clone()),
                |sim| {
                    finish_group(sim, "location-view", horizon, |p| {
                        let s = p.strategy();
                        Some((s.max_view_size(), s.significant_fraction()))
                    })
                },
            ),
            "exactly-once" => pools.eo.run(
                cfg.clone(),
                GroupHarness::new(ExactlyOnce::new(members.clone(), MssId(0)), wl.clone()),
                |sim| finish_group(sim, "exactly-once", horizon, |_| None),
            ),
            other => panic!("unknown strategy {other}"),
        },
    )
}

/// Runs one strategy under the given network/workload.
pub fn run_strategy(
    cfg: NetworkConfig,
    which: &str,
    members: Vec<MhId>,
    wl: GroupWorkload,
    horizon: u64,
) -> GroupRun {
    run_strategy_in(&mut StrategyPools::new(), cfg, which, members, wl, horizon)
}

/// **E5** — effective cost per group message vs the mobility-to-message
/// ratio, for all three strategies, against the paper's formulas.
pub fn e5_group_strategies(quick: bool) -> Table {
    let m = 8;
    let g = 8;
    let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
    let msgs = if quick { 8 } else { 30 };
    let interval = 500u64;
    let mut t = Table::new(
        format!("E5 — effective cost per group message (M = {m}, |G| = {g})"),
        &[
            "MOB/MSG",
            "PS paper",
            "PS measured",
            "AI paper",
            "AI measured",
            "LV paper",
            "LV measured",
            "delivery (PS/AI/LV)",
        ],
    );
    // Dwell times chosen to sweep the ratio from ~0 to ≫1.
    let dwells: &[Option<u64>] = if quick {
        &[None, Some(400)]
    } else {
        &[None, Some(4_000), Some(1_200), Some(400), Some(150)]
    };
    // Fan every (dwell, strategy) run out as its own task; rows are
    // assembled by index so the table is byte-identical at any worker count.
    const STRATEGIES: [&str; 3] = ["pure-search", "always-inform", "location-view"];
    let tasks: Vec<(Option<u64>, &str)> = dwells
        .iter()
        .flat_map(|&d| STRATEGIES.map(|s| (d, s)))
        .collect();
    let runs = map_indexed_with(
        tasks,
        default_jobs(),
        StrategyPools::new,
        |pools, _, (dwell, which)| {
            let mut cfg = NetworkConfig::new(m, g)
                .with_seed(50)
                .with_placement(Placement::Clustered { cells: 3 });
            if let Some(d) = dwell {
                cfg = cfg.with_mobility(MobilityConfig {
                    enabled: true,
                    mean_dwell: d,
                    mean_gap: 10,
                    pattern: MovePattern::Locality {
                        p_local: 0.7,
                        home_span: 3,
                    },
                });
            }
            let horizon = (msgs as u64) * interval * 4;
            let wl = GroupWorkload::new(members.clone(), msgs, interval);
            run_strategy_in(pools, cfg, which, members.clone(), wl, horizon)
        },
    );
    for (i, _dwell) in dwells.iter().enumerate() {
        let p = params(CostModel::default());
        let (ps, ai, lv) = (&runs[3 * i], &runs[3 * i + 1], &runs[3 * i + 2]);

        let ratio = ai.report.mobility_ratio();
        let (lv_max, f) = lv.lv.expect("LV run records view stats");
        t.push(vec![
            f2(ratio),
            f2(formulas::pure_search_effective(g as u64, p)),
            f2(ps.cost_per_message()),
            f2(formulas::always_inform_effective(g as u64, ratio, p)),
            f2(ai.cost_per_message()),
            f2(formulas::location_view_effective(
                g as u64,
                lv_max as u64,
                f,
                lv.report.mobility_ratio(),
                p,
            )),
            f2(lv.cost_per_message()),
            format!(
                "{}/{}/{}",
                pct(ps.report.delivery_ratio()),
                pct(ai.report.delivery_ratio()),
                pct(lv.report.delivery_ratio())
            ),
        ]);
    }
    t
}

/// **E6** — locality: `|LV(G)| ≪ |G|` for concentrated groups, and the
/// significant fraction `f` falls as locality rises.
pub fn e6_locality(quick: bool) -> Table {
    let m = 16;
    let g = if quick { 8 } else { 16 };
    let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
    let mut t = Table::new(
        format!("E6 — location-view size vs locality (M = {m}, |G| = {g})"),
        &[
            "p_local",
            "|LV|max",
            "|G|",
            "f (significant fraction)",
            "LV cost/msg",
            "delivery",
        ],
    );
    let ps: &[f64] = if quick {
        &[0.0, 0.9]
    } else {
        &[0.0, 0.5, 0.8, 0.95]
    };
    let mut pools = StrategyPools::new();
    for &p_local in ps {
        let cfg = NetworkConfig::new(m, g)
            .with_seed(60)
            .with_placement(Placement::Clustered { cells: 3 })
            .with_mobility(MobilityConfig {
                enabled: true,
                mean_dwell: 400,
                mean_gap: 10,
                pattern: MovePattern::Locality {
                    p_local,
                    home_span: 3,
                },
            });
        let msgs = if quick { 8 } else { 25 };
        let wl = GroupWorkload::new(members.clone(), msgs, 300);
        let run = run_strategy_in(
            &mut pools,
            cfg,
            "location-view",
            members.clone(),
            wl,
            1_000_000,
        );
        let (lv_max, f) = run.lv.expect("LV stats");
        t.push(vec![
            f2(p_local),
            lv_max.to_string(),
            g.to_string(),
            f2(f),
            f2(run.cost_per_message()),
            pct(run.report.delivery_ratio()),
        ]);
    }
    t
}

/// **E11** — the exactly-once extension (reference \[1\]): delivery and cost
/// of all four strategies under increasing churn, averaged over seeds.
pub fn e11_exactly_once(quick: bool) -> Table {
    let m = 8;
    let g = 8;
    let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
    let msgs = if quick { 8 } else { 25 };
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let mut t = Table::new(
        format!(
            "E11 — exactly-once extension under churn (M = {m}, |G| = {g}, {} seeds)",
            seeds.len()
        ),
        &[
            "mean dwell",
            "strategy",
            "delivery (mean)",
            "misses (mean)",
            "cost/msg (mean ± std)",
        ],
    );
    let dwells: &[u64] = if quick {
        &[10_000, 150]
    } else {
        &[10_000, 600, 150]
    };
    const STRATEGIES: [&str; 4] = [
        "pure-search",
        "always-inform",
        "location-view",
        "exactly-once",
    ];
    // Fan every (dwell, strategy, seed) run out as its own task — the finest
    // independent unit, so even the quick matrix saturates a small machine.
    // Per-seed samples are re-grouped in seed order before summarising, so
    // the means and std-devs are bit-identical to the sequential loops.
    let mut tasks: Vec<(u64, &str, u64)> =
        Vec::with_capacity(dwells.len() * STRATEGIES.len() * seeds.len());
    for &d in dwells {
        for w in STRATEGIES {
            for &s in &seeds {
                tasks.push((d, w, s));
            }
        }
    }
    let samples = map_indexed_with(
        tasks,
        default_jobs(),
        StrategyPools::new,
        |pools, _, (dwell, which, seed)| {
            let cfg = NetworkConfig::new(m, g)
                .with_seed(seed)
                .with_mobility(MobilityConfig {
                    enabled: true,
                    mean_dwell: dwell,
                    mean_gap: 40,
                    ..MobilityConfig::default()
                });
            let wl = GroupWorkload::new(members.clone(), msgs, 60);
            let horizon = 60 * msgs as u64 + 20_000;
            let run = run_strategy_in(pools, cfg, which, members.clone(), wl, horizon);
            (
                run.report.delivery_ratio(),
                run.report.missed as f64,
                run.cost_per_message(),
            )
        },
    );
    let mut rows = samples.chunks_exact(seeds.len());
    for &dwell in dwells {
        for which in STRATEGIES {
            let chunk = rows.next().expect("one chunk per (dwell, strategy)");
            let deliveries: Vec<f64> = chunk.iter().map(|s| s.0).collect();
            let misses: Vec<f64> = chunk.iter().map(|s| s.1).collect();
            let costs: Vec<f64> = chunk.iter().map(|s| s.2).collect();
            let d = crate::stats::Summary::of(&deliveries);
            let mi = crate::stats::Summary::of(&misses);
            let c = crate::stats::Summary::of(&costs);
            t.push(vec![
                dwell.to_string(),
                which.into(),
                pct(d.mean),
                f2(mi.mean),
                c.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_quick_exactly_once_never_misses() {
        let t = e11_exactly_once(true);
        for row in &t.rows {
            if row[1] == "exactly-once" {
                assert_eq!(row[3], "0.00", "{row:?}");
                assert_eq!(row[2], "100.0%", "{row:?}");
            }
        }
        // Under high churn at least one baseline missed something.
        let baseline_misses: f64 = t
            .rows
            .iter()
            .filter(|r| r[0] == "150" && r[1] != "exactly-once")
            .map(|r| r[3].parse::<f64>().unwrap())
            .sum();
        assert!(baseline_misses > 0.0, "churn row should show losses\n{t}");
    }

    #[test]
    fn e5_quick_static_row_matches_formulas() {
        let t = e5_group_strategies(true);
        let row = &t.rows[0]; // static: MOB/MSG = 0
        assert_eq!(row[0], "0.00");
        // Pure search static: measured == paper exactly.
        assert_eq!(row[1], row[2]);
        // All strategies deliver everything when static.
        assert!(row[7].starts_with("100.0%/100.0%/100.0%"), "{}", row[7]);
    }

    #[test]
    fn e5_quick_mobile_row_orders_strategies() {
        let t = e5_group_strategies(true);
        let row = &t.rows[1];
        let ratio: f64 = row[0].parse().unwrap();
        assert!(ratio > 0.5, "mobility should be significant: {ratio}");
        let ai: f64 = row[4].parse().unwrap();
        let lv: f64 = row[6].parse().unwrap();
        assert!(lv < ai, "LV must beat AI at high MOB/MSG: {lv} vs {ai}");
    }

    #[test]
    fn e6_quick_locality_shrinks_view() {
        let t = e6_locality(true);
        let loose: u64 = t.rows[0][1].parse().unwrap();
        let tight: u64 = t.rows[1][1].parse().unwrap();
        assert!(
            tight <= loose,
            "locality cannot grow the view: {tight} vs {loose}"
        );
        // The view never needs the whole network.
        assert!(tight < 16, "|LV| stays below M");
        let f_loose: f64 = t.rows[0][3].parse().unwrap();
        let f_tight: f64 = t.rows[1][3].parse().unwrap();
        assert!(
            f_tight <= f_loose + 0.05,
            "locality lowers the significant fraction: {f_tight} vs {f_loose}"
        );
    }
}
