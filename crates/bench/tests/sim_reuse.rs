//! `Simulation::reset` / `SimPool` reuse is invisible to results.
//!
//! The sweep engine recycles simulations across `(config, seed)` points to
//! keep allocations warm. That is only sound if a recycled simulation —
//! whatever it ran before, at whatever topology — replays *byte-identical*
//! traces and cost tables to a freshly built one. These tests pin that.

use mobidist_bench::exp_group::{run_strategy, run_strategy_in, StrategyPools};
use mobidist_core::prelude::*;
use mobidist_group::prelude::*;
use mobidist_net::prelude::*;
use mobidist_net::time::SimTime;

/// A mobility-heavy mutex workload: trace entries + final ledger.
fn mutex_outcome(sim: &mut Simulation<MutexHarness<L2>>) -> (Vec<(SimTime, String)>, CostLedger) {
    sim.kernel_mut().trace_mut().enable();
    sim.run_until(SimTime::from_ticks(200_000));
    let entries = sim.kernel().trace().entries().cloned().collect();
    (entries, sim.ledger().clone())
}

fn mutex_cfg(seed: u64) -> NetworkConfig {
    NetworkConfig::new(4, 12)
        .with_seed(seed)
        .with_mobility(MobilityConfig::moving(300))
}

fn mutex_proto() -> MutexHarness<L2> {
    MutexHarness::new(L2::new(4), WorkloadConfig::all_mhs(12, 2))
}

#[test]
fn recycled_simulation_replays_byte_identically() {
    // Fresh reference run.
    let mut fresh = Simulation::new(mutex_cfg(21), mutex_proto());
    let (trace_fresh, ledger_fresh) = mutex_outcome(&mut fresh);
    assert!(!trace_fresh.is_empty(), "workload must exercise the trace");

    // Pool that has already run a *different* shape — larger topology,
    // different seed, tracing on — so the recycled simulation arrives dirty
    // in every dimension reset must clean.
    let mut pool: SimPool<MutexHarness<L2>> = SimPool::new();
    pool.run(
        NetworkConfig::new(8, 40)
            .with_seed(7)
            .with_mobility(MobilityConfig::moving(150)),
        MutexHarness::new(L2::new(8), WorkloadConfig::all_mhs(40, 1)),
        |sim| {
            sim.kernel_mut().trace_mut().enable();
            sim.run_until(SimTime::from_ticks(100_000));
        },
    );
    assert_eq!(pool.idle(), 1);

    let (trace_reused, ledger_reused) = pool.run(mutex_cfg(21), mutex_proto(), mutex_outcome);
    assert_eq!(pool.idle(), 1, "the same simulation served both points");

    assert_eq!(trace_fresh.len(), trace_reused.len());
    for (i, (a, b)) in trace_fresh.iter().zip(&trace_reused).enumerate() {
        assert_eq!(a, b, "trace diverged at entry {i}");
    }
    assert_eq!(ledger_fresh, ledger_reused, "ledgers must match exactly");
}

#[test]
fn reset_clears_trace_enable_state() {
    // Tracing was on before recycling; a reset simulation must come back
    // with tracing off and no stale entries.
    let mut sim = Simulation::new(mutex_cfg(3), mutex_proto());
    sim.kernel_mut().trace_mut().enable();
    sim.run_until(SimTime::from_ticks(50_000));
    assert!(sim.kernel().trace().entries().next().is_some());

    sim.reset(mutex_cfg(3), mutex_proto());
    assert!(!sim.kernel().trace().is_enabled());
    assert!(sim.kernel().trace().entries().next().is_none());
    assert_eq!(sim.now(), SimTime::ZERO);
}

#[test]
fn pooled_group_strategies_match_fresh_runs() {
    // The experiment-facing surface: `run_strategy_in` with a pool that is
    // reused across strategies and dwell times must render the same cost
    // tables as throwaway simulations.
    let g = 6;
    let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
    let mk_cfg = || {
        NetworkConfig::new(4, g)
            .with_seed(50)
            .with_mobility(MobilityConfig::moving(400))
    };
    let mut pools = StrategyPools::new();
    for which in [
        "pure-search",
        "always-inform",
        "location-view",
        "exactly-once",
    ] {
        let wl = || GroupWorkload::new(members.clone(), 6, 300);
        // Two pooled passes: the second recycles the first's simulation.
        let first = run_strategy_in(&mut pools, mk_cfg(), which, members.clone(), wl(), 40_000);
        let second = run_strategy_in(&mut pools, mk_cfg(), which, members.clone(), wl(), 40_000);
        let fresh = run_strategy(mk_cfg(), which, members.clone(), wl(), 40_000);
        assert_eq!(
            first.ledger, second.ledger,
            "{which}: recycled pass diverged from its own first pass"
        );
        assert_eq!(
            first.ledger, fresh.ledger,
            "{which}: pooled != fresh ledger"
        );
        assert_eq!(
            first.report.delivered, fresh.report.delivered,
            "{which}: delivery count diverged"
        );
        assert_eq!(first.lv, fresh.lv, "{which}: LV stats diverged");
    }
}
