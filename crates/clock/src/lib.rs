//! # mobidist-clock — Lamport logical clocks
//!
//! Lamport's logical clocks and the totally-ordered timestamps his mutual
//! exclusion algorithm is built on (*Time, clocks and the ordering of events
//! in a distributed system*, CACM 1978 — reference 11 of the paper).
//!
//! In algorithm **L2**, only messages exchanged *between MSSs* follow the
//! timestamping rules; messages between an MH and an MSS are not
//! timestamped. The MSS-side proxy owns a [`LamportClock`] and stamps
//! requests on behalf of its mobile initiators.
//!
//! ## Example
//!
//! ```
//! use mobidist_clock::{LamportClock, Timestamp};
//!
//! let mut a = LamportClock::new(0);
//! let mut b = LamportClock::new(1);
//! let t1 = a.tick();              // a sends
//! let t2 = b.witness(t1);         // b receives
//! assert!(t2 > t1);               // total order respects causality
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

/// A totally-ordered Lamport timestamp: `(counter, process id)`.
///
/// Ordering compares the counter first and breaks ties with the process id,
/// giving the total order Lamport's algorithm requires.
///
/// # Examples
///
/// ```
/// use mobidist_clock::Timestamp;
/// assert!(Timestamp::new(1, 9) < Timestamp::new(2, 0));
/// assert!(Timestamp::new(2, 0) < Timestamp::new(2, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// The logical counter value.
    pub counter: u64,
    /// The stamping process (tie-breaker).
    pub process: u32,
}

impl Timestamp {
    /// Creates a timestamp.
    pub fn new(counter: u64, process: u32) -> Self {
        Timestamp { counter, process }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.counter, self.process)
    }
}

/// A Lamport logical clock owned by one process.
///
/// # Examples
///
/// ```
/// use mobidist_clock::LamportClock;
/// let mut c = LamportClock::new(3);
/// let t0 = c.tick();
/// let t1 = c.tick();
/// assert!(t1 > t0);
/// assert_eq!(t1.process, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LamportClock {
    counter: u64,
    process: u32,
}

impl LamportClock {
    /// Creates a clock for process `process`, starting at zero.
    pub fn new(process: u32) -> Self {
        LamportClock {
            counter: 0,
            process,
        }
    }

    /// The owning process id.
    pub fn process(&self) -> u32 {
        self.process
    }

    /// Current timestamp without advancing the clock.
    pub fn peek(&self) -> Timestamp {
        Timestamp::new(self.counter, self.process)
    }

    /// Advances the clock for a local event or message send and returns the
    /// new timestamp.
    pub fn tick(&mut self) -> Timestamp {
        self.counter += 1;
        self.peek()
    }

    /// Merges a received timestamp per Lamport's rule
    /// (`counter = max(local, received) + 1`) and returns the new local
    /// timestamp.
    pub fn witness(&mut self, received: Timestamp) -> Timestamp {
        self.counter = self.counter.max(received.counter) + 1;
        self.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_monotonic() {
        let mut c = LamportClock::new(0);
        let mut prev = c.peek();
        for _ in 0..100 {
            let t = c.tick();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn witness_respects_causality() {
        let mut a = LamportClock::new(0);
        let mut b = LamportClock::new(1);
        for _ in 0..10 {
            let sent = a.tick();
            let recv = b.witness(sent);
            assert!(recv > sent, "receive must be later than send");
        }
    }

    #[test]
    fn total_order_breaks_ties_by_process() {
        let x = Timestamp::new(5, 1);
        let y = Timestamp::new(5, 2);
        assert!(x < y);
        assert_eq!(x, Timestamp::new(5, 1));
    }

    #[test]
    fn witness_of_stale_timestamp_still_advances() {
        let mut a = LamportClock::new(0);
        for _ in 0..10 {
            a.tick();
        }
        let before = a.peek();
        let t = a.witness(Timestamp::new(1, 7));
        assert!(t > before);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Timestamp::new(4, 2).to_string(), "4.2");
    }

    /// Deterministic stand-in for the removed proptest harness: a seeded
    /// linear-congruential stream drives the same randomized coverage on
    /// every run.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn prop_witness_result_exceeds_both() {
        let mut s = 0xC10C_u64;
        for _ in 0..200 {
            let local = lcg(&mut s) % 1000;
            let recv = lcg(&mut s) % 1000;
            let mut c = LamportClock {
                counter: local,
                process: 0,
            };
            let t = c.witness(Timestamp::new(recv, 1));
            assert!(t.counter > local);
            assert!(t.counter > recv);
        }
    }

    #[test]
    fn prop_timestamp_order_is_total() {
        let mut s = 0x7074_u64;
        for _ in 0..400 {
            let x = Timestamp::new(lcg(&mut s) % 50, (lcg(&mut s) % 8) as u32);
            let y = Timestamp::new(lcg(&mut s) % 50, (lcg(&mut s) % 8) as u32);
            let consistent = (x < y) as u8 + (y < x) as u8 + (x == y) as u8;
            assert_eq!(consistent, 1);
        }
    }
}
