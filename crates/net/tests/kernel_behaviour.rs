//! Behavioural tests of the kernel against the paper's system model
//! (Section 2): cost assignments, FIFO and prefix-delivery semantics,
//! search with eventual delivery, disconnection flags, doze interruptions.

use mobidist_net::prelude::*;

/// A scriptable protocol that records everything it observes.
#[derive(Debug, Default)]
struct Recorder {
    mss_msgs: Vec<(MssId, Src, String)>,
    mh_msgs: Vec<(MhId, Src, String)>,
    joined: Vec<(MhId, MssId, Option<MssId>)>,
    left: Vec<(MhId, MssId)>,
    disconnected: Vec<(MhId, MssId)>,
    reconnected: Vec<(MhId, MssId, Option<MssId>)>,
    search_failed: Vec<(MssId, MhId, String)>,
    wireless_lost: Vec<(MssId, MhId, String)>,
    timers: Vec<u32>,
}

impl Protocol for Recorder {
    type Msg = String;
    type Timer = u32;

    fn on_mss_msg(&mut self, _: &mut Ctx<'_, String, u32>, at: MssId, src: Src, msg: String) {
        self.mss_msgs.push((at, src, msg));
    }
    fn on_mh_msg(&mut self, _: &mut Ctx<'_, String, u32>, at: MhId, src: Src, msg: String) {
        self.mh_msgs.push((at, src, msg));
    }
    fn on_timer(&mut self, _: &mut Ctx<'_, String, u32>, t: u32) {
        self.timers.push(t);
    }
    fn on_mh_joined(
        &mut self,
        _: &mut Ctx<'_, String, u32>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        self.joined.push((mh, mss, prev));
    }
    fn on_mh_left(&mut self, _: &mut Ctx<'_, String, u32>, mh: MhId, mss: MssId) {
        self.left.push((mh, mss));
    }
    fn on_mh_disconnected(&mut self, _: &mut Ctx<'_, String, u32>, mh: MhId, mss: MssId) {
        self.disconnected.push((mh, mss));
    }
    fn on_mh_reconnected(
        &mut self,
        _: &mut Ctx<'_, String, u32>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        self.reconnected.push((mh, mss, prev));
    }
    fn on_search_failed(
        &mut self,
        _: &mut Ctx<'_, String, u32>,
        origin: MssId,
        target: MhId,
        msg: String,
    ) {
        self.search_failed.push((origin, target, msg));
    }
    fn on_wireless_lost(
        &mut self,
        _: &mut Ctx<'_, String, u32>,
        mss: MssId,
        mh: MhId,
        msg: String,
    ) {
        self.wireless_lost.push((mss, mh, msg));
    }
}

fn sim(m: usize, n: usize) -> Simulation<Recorder> {
    Simulation::new(NetworkConfig::new(m, n).with_seed(42), Recorder::default())
}

#[test]
fn fixed_send_charges_c_fixed_and_delivers() {
    let mut s = sim(4, 4);
    s.with_ctx(|ctx, _| ctx.send_fixed(MssId(0), MssId(3), "hello".into()));
    s.run_to_quiescence(10_000);
    let r = s.protocol();
    assert_eq!(r.mss_msgs.len(), 1);
    assert_eq!(r.mss_msgs[0].0, MssId(3));
    assert_eq!(r.mss_msgs[0].1, Src::Mss(MssId(0)));
    let l = s.ledger();
    assert_eq!(l.fixed_msgs, 1);
    assert_eq!(l.fixed_cost, s.kernel().config().cost.c_fixed);
    assert_eq!(l.wireless_msgs, 0);
}

#[test]
fn fixed_self_send_is_free() {
    let mut s = sim(2, 2);
    s.with_ctx(|ctx, _| ctx.send_fixed(MssId(1), MssId(1), "self".into()));
    s.run_to_quiescence(10_000);
    assert_eq!(s.protocol().mss_msgs.len(), 1);
    assert_eq!(s.ledger().fixed_msgs, 0);
    assert_eq!(s.ledger().total_cost(), 0);
}

#[test]
fn wireless_round_trip_costs_and_energy() {
    let mut s = sim(2, 2);
    // mh0 starts at mss0 (round-robin placement).
    s.with_ctx(|ctx, _| ctx.send_wireless_up(MhId(0), "up".into()).unwrap());
    s.run_to_quiescence(10_000);
    assert_eq!(s.protocol().mss_msgs.len(), 1);
    assert_eq!(s.protocol().mss_msgs[0].1, Src::Mh(MhId(0)));
    s.with_ctx(|ctx, _| {
        ctx.send_wireless_down(MssId(0), MhId(0), "down".into())
            .unwrap()
    });
    s.run_to_quiescence(20_000);
    assert_eq!(s.protocol().mh_msgs.len(), 1);
    let l = s.ledger();
    assert_eq!(l.wireless_msgs, 2);
    assert_eq!(l.wireless_cost, 2 * s.kernel().config().cost.c_wireless);
    assert_eq!(l.mh_tx[0], 1);
    assert_eq!(l.mh_rx[0], 1);
    assert_eq!(l.mh_energy[0], 2);
    // No energy at any other MH.
    assert_eq!(l.mh_energy[1], 0);
}

#[test]
fn wireless_down_to_non_local_mh_is_rejected() {
    let mut s = sim(2, 2);
    let err = s.with_ctx(|ctx, _| ctx.send_wireless_down(MssId(0), MhId(1), "x".into()));
    assert_eq!(
        err.unwrap_err(),
        NetError::NotLocal {
            mss: MssId(0),
            mh: MhId(1)
        }
    );
}

#[test]
fn search_send_costs_c_search_plus_wireless() {
    let mut s = sim(4, 8);
    // mh5 lives at mss1 (5 % 4). Search from mss0.
    s.with_ctx(|ctx, _| ctx.search_send(MssId(0), MhId(5), "find".into()));
    s.run_to_quiescence(10_000);
    let r = s.protocol();
    assert_eq!(r.mh_msgs.len(), 1);
    assert_eq!(r.mh_msgs[0].0, MhId(5));
    assert_eq!(
        r.mh_msgs[0].1,
        Src::Mss(MssId(0)),
        "src is the search origin"
    );
    let l = s.ledger();
    let c = s.kernel().config().cost;
    assert_eq!(l.searches, 1);
    assert_eq!(l.search_cost, c.c_search);
    assert_eq!(l.wireless_cost, c.c_wireless);
    assert_eq!(l.total_cost(), c.mss_to_remote_mh());
}

#[test]
fn mh_to_mh_message_costs_paper_formula() {
    let mut s = sim(4, 8);
    s.with_ctx(|ctx, _| ctx.mh_send_to_mh(MhId(0), MhId(5), "hi".into()).unwrap());
    s.run_to_quiescence(10_000);
    let r = s.protocol();
    assert_eq!(r.mh_msgs.len(), 1);
    assert_eq!(r.mh_msgs[0].0, MhId(5));
    assert_eq!(r.mh_msgs[0].1, Src::Mh(MhId(0)));
    let c = s.kernel().config().cost;
    // 2 * C_wireless + C_search, exactly the paper's MH→MH cost.
    assert_eq!(s.ledger().total_cost(), c.mh_to_mh());
}

#[test]
fn flood_search_charges_control_messages() {
    let cfg = NetworkConfig::new(8, 8)
        .with_seed(1)
        .with_search(SearchPolicy::Flood);
    let mut s = Simulation::new(cfg, Recorder::default());
    s.with_ctx(|ctx, _| ctx.search_send(MssId(0), MhId(5), "find".into()));
    s.run_to_quiescence(10_000);
    let l = s.ledger();
    let c = s.kernel().config().cost;
    assert_eq!(l.searches, 1);
    // M - 1 queries + reply + forward at C_fixed each.
    assert_eq!(
        l.search_cost,
        SearchPolicy::flood_message_count(8) * c.c_fixed
    );
    assert!(l.search_cost > c.c_fixed, "flood must exceed one fixed hop");
}

#[test]
fn home_agent_search_costs_two_fixed_hops_plus_registrations() {
    let cfg = NetworkConfig::new(8, 8)
        .with_seed(1)
        .with_search(SearchPolicy::HomeAgent);
    let mut s = Simulation::new(cfg, Recorder::default());
    // Move mh5 away from its home cell; the new cell registers.
    s.with_ctx(|ctx, _| ctx.initiate_move(MhId(5), Some(MssId(0))));
    s.run_to_quiescence(50_000);
    assert_eq!(s.ledger().custom("ha_registrations"), 1);
    s.with_ctx(|ctx, _| ctx.search_send(MssId(2), MhId(5), "find".into()));
    s.run_to_quiescence(100_000);
    assert_eq!(s.protocol().mh_msgs.len(), 1);
    let l = s.ledger();
    let c = s.kernel().config().cost;
    assert_eq!(l.searches, 1);
    assert_eq!(
        l.search_cost,
        SearchPolicy::home_agent_message_count() * c.c_fixed,
        "two fixed hops per home-agent search"
    );
    assert!(
        l.search_cost < c.c_search,
        "home-agent routing undercuts the abstract C_search default"
    );
}

#[test]
fn home_agent_move_back_home_needs_no_registration() {
    let cfg = NetworkConfig::new(4, 4)
        .with_seed(2)
        .with_search(SearchPolicy::HomeAgent);
    let mut s = Simulation::new(cfg, Recorder::default());
    s.with_ctx(|ctx, _| ctx.initiate_move(MhId(1), Some(MssId(3))));
    s.run_to_quiescence(50_000);
    s.with_ctx(|ctx, _| ctx.initiate_move(MhId(1), Some(MssId(1))));
    s.run_to_quiescence(100_000);
    // Only the move *away* registered; returning home is free.
    assert_eq!(s.ledger().custom("ha_registrations"), 1);
}

#[test]
fn moved_mh_is_found_with_re_search() {
    let mut s = sim(4, 4);
    // Move mh1 from mss1 to mss3, then search while it is settled there.
    s.with_ctx(|ctx, _| ctx.initiate_move(MhId(1), Some(MssId(3))));
    s.run_to_quiescence(50_000);
    assert_eq!(s.kernel().current_cell(MhId(1)), Some(MssId(3)));
    s.with_ctx(|ctx, _| ctx.search_send(MssId(0), MhId(1), "where".into()));
    s.run_to_quiescence(50_000);
    assert_eq!(s.protocol().mh_msgs.len(), 1);
    // Oracle search found it directly: one search, no re-search.
    assert_eq!(s.ledger().searches, 1);
    assert_eq!(s.ledger().re_searches, 0);
}

#[test]
fn search_for_mid_move_mh_eventually_delivers() {
    let mut s = sim(4, 4);
    // Start the move and search while the MH is between cells.
    s.with_ctx(|ctx, _| {
        ctx.initiate_move(MhId(1), Some(MssId(2)));
        ctx.search_send(MssId(0), MhId(1), "catch-me".into());
    });
    s.run_to_quiescence(100_000);
    assert_eq!(
        s.protocol().mh_msgs.len(),
        1,
        "eventual delivery despite the move"
    );
    assert!(
        s.ledger().searches >= 1,
        "at least the initial search is charged"
    );
}

#[test]
fn join_supplies_previous_mss() {
    let mut s = sim(4, 4);
    s.with_ctx(|ctx, _| ctx.initiate_move(MhId(0), Some(MssId(2))));
    s.run_to_quiescence(50_000);
    let r = s.protocol();
    assert_eq!(r.left, vec![(MhId(0), MssId(0))]);
    assert_eq!(r.joined, vec![(MhId(0), MssId(2), Some(MssId(0)))]);
    assert_eq!(s.ledger().moves, 1);
    assert_eq!(s.ledger().handoffs, 1);
}

#[test]
fn join_without_prev_supply_when_disabled() {
    let mut cfg = NetworkConfig::new(4, 4).with_seed(9);
    cfg.supply_prev_on_join = false;
    let mut s = Simulation::new(cfg, Recorder::default());
    s.with_ctx(|ctx, _| ctx.initiate_move(MhId(0), Some(MssId(1))));
    s.run_to_quiescence(50_000);
    assert_eq!(s.protocol().joined, vec![(MhId(0), MssId(1), None)]);
}

#[test]
fn prefix_delivery_drops_in_flight_downlink_on_leave() {
    let mut s = sim(2, 2);
    // Send a local downlink and immediately have the MH leave the cell.
    s.with_ctx(|ctx, _| {
        ctx.send_wireless_down(MssId(0), MhId(0), "too-late".into())
            .unwrap();
        ctx.initiate_move(MhId(0), Some(MssId(1)));
    });
    s.run_to_quiescence(50_000);
    let r = s.protocol();
    assert!(r.mh_msgs.is_empty(), "message must be lost");
    assert_eq!(r.wireless_lost.len(), 1);
    assert_eq!(r.wireless_lost[0].2, "too-late");
    assert_eq!(s.ledger().wireless_losses, 1);
}

#[test]
fn searched_message_survives_leave_and_redelivers() {
    let mut s = sim(4, 4);
    s.with_ctx(|ctx, _| {
        ctx.search_send(MssId(2), MhId(0), "persistent".into());
    });
    // Let the search get under way, then yank the MH out of its cell.
    s.step();
    s.with_ctx(|ctx, _| ctx.initiate_move(MhId(0), Some(MssId(3))));
    s.run_to_quiescence(100_000);
    assert_eq!(
        s.protocol().mh_msgs.len(),
        1,
        "search-routed delivery is eventual"
    );
    assert_eq!(s.protocol().mh_msgs[0].2, "persistent");
}

#[test]
fn uplink_while_between_cells_is_buffered_until_join() {
    let mut s = sim(3, 3);
    // The leave takes effect synchronously; the join is a future event.
    s.with_ctx(|ctx, _| {
        ctx.initiate_move(MhId(0), Some(MssId(2)));
        assert_eq!(ctx.mh_status(MhId(0)), MhStatus::BetweenCells);
        ctx.send_wireless_up(MhId(0), "deferred".into()).unwrap();
    });
    s.run_to_quiescence(50_000);
    let r = s.protocol();
    assert_eq!(r.mss_msgs.len(), 1);
    assert_eq!(r.mss_msgs[0].0, MssId(2), "flushed to the NEW cell");
    assert_eq!(r.mss_msgs[0].2, "deferred");
}

#[test]
fn disconnect_sets_flag_and_search_fails_back_to_origin() {
    let mut s = sim(4, 4);
    s.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(1)));
    s.run_to_quiescence(10_000);
    assert_eq!(s.kernel().mh_status(MhId(1)), MhStatus::Disconnected);
    assert!(s.kernel().mh_disconnected_here(MssId(1), MhId(1)));
    s.with_ctx(|ctx, _| ctx.search_send(MssId(0), MhId(1), "lost-cause".into()));
    s.run_to_quiescence(50_000);
    let r = s.protocol();
    assert!(r.mh_msgs.is_empty());
    assert_eq!(r.search_failed.len(), 1);
    assert_eq!(r.search_failed[0].0, MssId(0), "origin is notified");
    assert_eq!(r.search_failed[0].2, "lost-cause");
    assert_eq!(s.ledger().search_failures, 1);
}

#[test]
fn disconnected_mh_cannot_transmit() {
    let mut s = sim(2, 2);
    s.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(0)));
    s.run_to_quiescence(10_000);
    let err = s.with_ctx(|ctx, _| ctx.send_wireless_up(MhId(0), "nope".into()));
    assert_eq!(err.unwrap_err(), NetError::Disconnected { mh: MhId(0) });
}

#[test]
fn reconnect_clears_flag_and_resumes_delivery() {
    let mut s = sim(4, 4);
    s.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(1)));
    s.run_to_quiescence(10_000);
    s.with_ctx(|ctx, _| ctx.initiate_reconnect(MhId(1), Some(MssId(2)), 5));
    s.run_to_quiescence(10_000);
    assert_eq!(s.kernel().mh_status(MhId(1)), MhStatus::Connected);
    assert_eq!(s.kernel().current_cell(MhId(1)), Some(MssId(2)));
    assert!(!s.kernel().mh_disconnected_here(MssId(1), MhId(1)));
    assert_eq!(s.protocol().reconnected.len(), 1);
    // Deliveries work again.
    s.with_ctx(|ctx, _| ctx.search_send(MssId(0), MhId(1), "back".into()));
    s.run_to_quiescence(50_000);
    assert_eq!(s.protocol().mh_msgs.len(), 1);
}

#[test]
fn doze_interruptions_are_counted() {
    let mut s = sim(2, 2);
    s.with_ctx(|ctx, _| {
        ctx.set_doze(MhId(0), true);
        ctx.send_wireless_down(MssId(0), MhId(0), "wake!".into())
            .unwrap();
    });
    s.run_to_quiescence(10_000);
    assert_eq!(s.ledger().doze_interruptions, 1);
    assert_eq!(s.protocol().mh_msgs.len(), 1, "delivery still happens");
    // Non-dozing delivery adds no interruption.
    s.with_ctx(|ctx, _| {
        ctx.set_doze(MhId(0), false);
        ctx.send_wireless_down(MssId(0), MhId(0), "again".into())
            .unwrap();
    });
    s.run_to_quiescence(20_000);
    assert_eq!(s.ledger().doze_interruptions, 1);
}

#[test]
fn timers_fire_in_order() {
    let mut s = sim(1, 1);
    s.with_ctx(|ctx, _| {
        ctx.set_timer(30, 3);
        ctx.set_timer(10, 1);
        ctx.set_timer(20, 2);
    });
    s.run_to_quiescence(10_000);
    assert_eq!(s.protocol().timers, vec![1, 2, 3]);
}

#[test]
fn fixed_channel_is_fifo_per_pair() {
    // With uniform random latencies, later sends could overtake earlier
    // ones; the FIFO chain must prevent it.
    let mut cfg = NetworkConfig::new(2, 1).with_seed(77);
    cfg.latency.fixed = LatencyModel::Uniform { lo: 1, hi: 50 };
    let mut s = Simulation::new(cfg, Recorder::default());
    s.with_ctx(|ctx, _| {
        for i in 0..50 {
            ctx.send_fixed(MssId(0), MssId(1), format!("m{i}"));
        }
    });
    s.run_to_quiescence(100_000);
    let got: Vec<&str> = s
        .protocol()
        .mss_msgs
        .iter()
        .map(|(_, _, m)| m.as_str())
        .collect();
    let want: Vec<String> = (0..50).map(|i| format!("m{i}")).collect();
    assert_eq!(got, want.iter().map(|s| s.as_str()).collect::<Vec<_>>());
}

#[test]
fn mh_to_mh_is_fifo_even_across_moves() {
    let mut cfg = NetworkConfig::new(4, 4).with_seed(5);
    cfg.latency.search = LatencyModel::Uniform { lo: 1, hi: 40 };
    cfg.latency.wireless = LatencyModel::Uniform { lo: 1, hi: 10 };
    let mut s = Simulation::new(cfg, Recorder::default());
    s.with_ctx(|ctx, _| {
        for i in 0..10 {
            ctx.mh_send_to_mh(MhId(0), MhId(3), format!("f{i}"))
                .unwrap();
        }
        // Receiver moves while messages are in flight.
        ctx.initiate_move(MhId(3), Some(MssId(0)));
    });
    s.run_to_quiescence(500_000);
    let got: Vec<&str> = s
        .protocol()
        .mh_msgs
        .iter()
        .map(|(_, _, m)| m.as_str())
        .collect();
    let want: Vec<String> = (0..10).map(|i| format!("f{i}")).collect();
    assert_eq!(got, want.iter().map(|s| s.as_str()).collect::<Vec<_>>());
}

#[test]
fn autonomous_mobility_generates_moves_deterministically() {
    let cfg = NetworkConfig::new(4, 16)
        .with_seed(3)
        .with_mobility(MobilityConfig::moving(100));
    let mut a = Simulation::new(cfg.clone(), Recorder::default());
    let mut b = Simulation::new(cfg, Recorder::default());
    a.run_until(SimTime::from_ticks(5_000));
    b.run_until(SimTime::from_ticks(5_000));
    assert!(
        a.ledger().moves > 10,
        "expected many moves, saw {}",
        a.ledger().moves
    );
    assert_eq!(a.ledger(), b.ledger(), "same seed ⇒ identical run");
    assert_eq!(a.protocol().joined, b.protocol().joined);
}

#[test]
fn autonomous_disconnects_reconnect_eventually() {
    let cfg = NetworkConfig::new(4, 8)
        .with_seed(8)
        .with_disconnect(DisconnectConfig {
            enabled: true,
            mean_uptime: 300,
            mean_downtime: 50,
            p_supply_prev: 1.0,
        });
    let mut s = Simulation::new(cfg, Recorder::default());
    s.run_until(SimTime::from_ticks(5_000));
    assert!(s.ledger().disconnects > 0);
    assert!(s.ledger().reconnects > 0);
    assert_eq!(
        s.protocol().disconnected.len() as u64,
        s.ledger().disconnects
    );
}

#[test]
fn control_messages_do_not_pollute_algorithm_counters() {
    let cfg = NetworkConfig::new(4, 8)
        .with_seed(4)
        .with_mobility(MobilityConfig::moving(50));
    let mut s = Simulation::new(cfg, Recorder::default());
    s.run_until(SimTime::from_ticks(2_000));
    let l = s.ledger();
    assert!(l.moves > 0);
    assert_eq!(
        l.fixed_msgs, 0,
        "no algorithm ran; counters must stay clean"
    );
    assert_eq!(l.wireless_msgs, 0);
    assert!(
        l.custom("control_wireless") > 0,
        "control plane is accounted separately"
    );
}

#[test]
fn local_mh_lists_track_membership() {
    let mut s = sim(3, 6);
    assert_eq!(
        s.kernel().local_mhs(MssId(0)).collect::<Vec<_>>(),
        vec![MhId(0), MhId(3)]
    );
    s.with_ctx(|ctx, _| ctx.initiate_move(MhId(0), Some(MssId(1))));
    s.run_to_quiescence(50_000);
    assert_eq!(
        s.kernel().local_mhs(MssId(0)).collect::<Vec<_>>(),
        vec![MhId(3)]
    );
    assert!(s.kernel().is_local(MssId(1), MhId(0)));
}

#[test]
fn cell_broadcast_charges_once_and_reaches_all_locals() {
    let mut s = sim(2, 6); // mh0,2,4 at mss0; mh1,3,5 at mss1
    let n = s.with_ctx(|ctx, _| ctx.broadcast_cell(MssId(0), "hi".into()));
    assert_eq!(n, 3);
    s.run_to_quiescence(10_000);
    let r = s.protocol();
    assert_eq!(r.mh_msgs.len(), 3);
    let mut who: Vec<MhId> = r.mh_msgs.iter().map(|(mh, _, _)| *mh).collect();
    who.sort();
    assert_eq!(who, vec![MhId(0), MhId(2), MhId(4)]);
    let l = s.ledger();
    // One channel use; three receptions' worth of energy.
    assert_eq!(l.wireless_msgs, 1);
    assert_eq!(l.wireless_cost, s.kernel().config().cost.c_wireless);
    assert_eq!(l.total_energy(), 3);
}

#[test]
fn cell_broadcast_to_empty_cell_is_free() {
    let mut s = sim(3, 2); // mss2 has no MHs
    let n = s.with_ctx(|ctx, _| ctx.broadcast_cell(MssId(2), "void".into()));
    assert_eq!(n, 0);
    s.run_to_quiescence(10_000);
    assert_eq!(s.ledger().wireless_msgs, 0);
    assert!(s.protocol().mh_msgs.is_empty());
}

#[test]
fn cell_broadcast_respects_prefix_delivery() {
    let mut s = sim(2, 4);
    s.with_ctx(|ctx, _| {
        ctx.broadcast_cell(MssId(0), "catch".into());
        // mh0 leaves before the broadcast lands; mh2 stays.
        ctx.initiate_move(MhId(0), Some(MssId(1)));
    });
    s.run_to_quiescence(50_000);
    let r = s.protocol();
    assert_eq!(r.mh_msgs.len(), 1, "only the staying MH hears it");
    assert_eq!(r.mh_msgs[0].0, MhId(2));
    assert_eq!(r.wireless_lost.len(), 1);
    assert_eq!(r.wireless_lost[0].1, MhId(0));
}
