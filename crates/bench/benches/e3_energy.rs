//! Regenerates E3: wireless operations (battery) per execution.
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_mutex::e3_energy(quick));
}
