//! Structured observability: typed trace events, sinks, and the JSONL
//! schema.
//!
//! The paper's arguments are *accounting* arguments — wireless vs. fixed
//! message counts, search cost, doze interruptions — so the simulator
//! records not just totals (the [`CostLedger`])
//! but a typed, replayable stream of [`TraceEvent`]s: one event per charged
//! operation plus the algorithm-level phases (critical-section request /
//! enter / exit, location-view updates, proxy forwards) that the per-phase
//! breakdowns in `tracereport` are built from.
//!
//! # Architecture
//!
//! The kernel owns at most one boxed [`TraceSink`]. When no sink is
//! installed (the default), every emission site reduces to one branch on an
//! `Option` discriminant and the event is never even constructed — tracing
//! is zero-cost when disabled, and enabling it never perturbs simulation
//! results because sinks only *observe* kernel state (no RNG draws, no
//! scheduling).
//!
//! Two sinks ship with the crate:
//!
//! * [`RingSink`] — a bounded in-memory ring, superseding the string-based
//!   [`Trace`](crate::trace::Trace) for tests and debugging;
//! * [`JsonlSink`] — a buffered line-oriented JSON writer with the stable,
//!   versioned schema documented in `OBSERVABILITY.md` and parsed back by
//!   [`parse_line`].
//!
//! # Example
//!
//! ```
//! use mobidist_net::obs::{RingSink, TraceEvent};
//! use mobidist_net::prelude::*;
//!
//! struct Ping;
//! impl Protocol for Ping {
//!     type Msg = ();
//!     type Timer = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, (), ()>) {
//!         ctx.send_wireless_up(MhId(0), ()).unwrap();
//!     }
//!     fn on_mss_msg(&mut self, _: &mut Ctx<'_, (), ()>, _: MssId, _: Src, _: ()) {}
//!     fn on_mh_msg(&mut self, _: &mut Ctx<'_, (), ()>, _: MhId, _: Src, _: ()) {}
//! }
//!
//! let mut sim = Simulation::new(NetworkConfig::new(2, 2), Ping);
//! sim.kernel_mut().set_trace_sink(Box::new(RingSink::new(64)));
//! sim.run_to_quiescence(10_000);
//! let ring = sim.kernel_mut().take_trace_sink().unwrap();
//! let ring = ring.as_any().downcast_ref::<RingSink>().unwrap();
//! assert!(ring.iter().any(|(_, _, e)| matches!(e, TraceEvent::UpSend { .. })));
//! ```

use crate::config::NetworkConfig;
use crate::ids::{MhId, MssId};
use crate::ledger::CostLedger;
use crate::search::SearchPolicy;
use crate::time::SimTime;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;

/// Version stamp written as `"v"` on every JSONL line.
///
/// The schema is append-only within a version: new event kinds or new
/// optional fields may appear, but the meaning and spelling of existing
/// fields never changes. Removing or renaming anything bumps this number.
/// See `OBSERVABILITY.md` for the policy and the full field reference.
pub const SCHEMA_VERSION: u32 = 1;

/// One typed observation of kernel or algorithm activity.
///
/// Kernel events are emitted exactly once per *charged* operation, so
/// counting events reproduces the [`CostLedger`]
/// exactly:
///
/// * `fixed_msgs` = [`FixedSend`](Self::FixedSend) + [`SearchFail`](Self::SearchFail)
///   (the disconnection notice back to the origin is a charged fixed
///   message);
/// * `wireless_msgs` = [`UpSend`](Self::UpSend) +
///   [`DownSend`](Self::DownSend) + [`CellBroadcast`](Self::CellBroadcast)
///   (one charge per broadcast regardless of listeners);
/// * `searches` = [`Search`](Self::Search), with `re = true` marking the
///   counted re-searches.
///
/// Receive events (`*Recv`) are free in the cost model but carry the
/// latency information span analyses need. Algorithm-level events
/// ([`CsRequest`](Self::CsRequest)…, [`LvUpdate`](Self::LvUpdate),
/// [`ProxyForward`](Self::ProxyForward)) are emitted by the harness /
/// strategy crates through [`Ctx::emit`](crate::proto::Ctx::emit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A charged point-to-point send on the fixed network.
    FixedSend {
        /// Sending MSS.
        from: MssId,
        /// Receiving MSS.
        to: MssId,
    },
    /// A fixed-network message arrived.
    FixedRecv {
        /// Receiving MSS.
        at: MssId,
        /// Sending MSS.
        from: MssId,
    },
    /// A charged wireless uplink transmission.
    UpSend {
        /// Transmitting MH.
        mh: MhId,
        /// Serving MSS the message is headed for.
        mss: MssId,
    },
    /// An uplink message arrived at the serving MSS.
    UpRecv {
        /// Receiving MSS.
        mss: MssId,
        /// Transmitting MH.
        mh: MhId,
    },
    /// A charged wireless downlink transmission to one MH.
    DownSend {
        /// Transmitting MSS.
        mss: MssId,
        /// Target MH.
        mh: MhId,
    },
    /// A downlink message was received by a still-local MH.
    DownRecv {
        /// Receiving MH.
        mh: MhId,
        /// Transmitting MSS.
        mss: MssId,
    },
    /// One charged cell-wide wireless broadcast (every listener still pays
    /// its own reception, reported as separate [`DownRecv`](Self::DownRecv)s).
    CellBroadcast {
        /// Broadcasting MSS.
        mss: MssId,
        /// MHs local to the cell at transmission time.
        listeners: u32,
    },
    /// A downlink message was lost because the MH left the cell first
    /// (prefix-delivery semantics).
    DownLost {
        /// Transmitting MSS.
        mss: MssId,
        /// The departed MH.
        mh: MhId,
    },
    /// A search was issued (initial or counted re-search after a move).
    Search {
        /// The MH being located.
        target: MhId,
        /// True when this is a re-search caused by an in-flight move.
        re: bool,
    },
    /// A search terminated at a disconnected MH; the disconnection cell's
    /// MSS sends one charged fixed message back to the origin.
    SearchFail {
        /// MSS that initiated the search.
        origin: MssId,
        /// The unreachable MH.
        target: MhId,
    },
    /// A delivery interrupted an MH in doze mode.
    DozeInterrupt {
        /// The dozing MH.
        mh: MhId,
    },
    /// An MH left its cell: the handoff begins (`leave(r)`).
    HandoffBegin {
        /// The moving MH.
        mh: MhId,
        /// The cell it left.
        from: MssId,
    },
    /// An MH joined a cell: the handoff ends (`join(mh, prev)`).
    HandoffEnd {
        /// The arriving MH.
        mh: MhId,
        /// The new cell.
        to: MssId,
        /// The previous MSS, when the configuration supplies it with the
        /// join. A ledger `handoff` is counted iff `prev` is present and
        /// differs from `to`.
        prev: Option<MssId>,
    },
    /// An MH voluntarily disconnected.
    Disconnect {
        /// The disconnecting MH.
        mh: MhId,
        /// The MSS holding its "disconnected" flag.
        mss: MssId,
    },
    /// An MH reconnected after a voluntary disconnection.
    Reconnect {
        /// The reconnecting MH.
        mh: MhId,
        /// The new cell.
        mss: MssId,
        /// Where it had disconnected, when supplied with the reconnect.
        prev: Option<MssId>,
    },
    /// An MH asked its algorithm for the critical section (workload-level).
    CsRequest {
        /// The requesting MH.
        mh: MhId,
    },
    /// An MH entered the critical section.
    CsEnter {
        /// The entering MH.
        mh: MhId,
    },
    /// An MH released the critical section.
    CsExit {
        /// The releasing MH.
        mh: MhId,
    },
    /// The location-view coordinator applied a significant view change
    /// (Section 4's `LV(G)` update).
    LvUpdate {
        /// The cell added to or removed from the view.
        cell: MssId,
        /// True for an addition, false for a deletion.
        added: bool,
    },
    /// A proxy forwarded an output to a moved client with a search
    /// (Section 5's proxy obligation).
    ProxyForward {
        /// The proxy MSS doing the forwarding.
        mss: MssId,
        /// The moved client MH.
        mh: MhId,
    },
    /// The run cache satisfied this run from a stored result instead of
    /// simulating it. Emitted (by the experiment drivers, not the kernel)
    /// as the only event of a synthetic run whose `run_end` carries the
    /// cached ledger; such runs are exempt from event-count identity
    /// checks because no kernel events were replayed.
    CacheHit {
        /// High 64 bits of the run descriptor fingerprint.
        fp_hi: u64,
        /// Low 64 bits of the run descriptor fingerprint.
        fp_lo: u64,
    },
    /// A conservative-sync barrier in a space-sharded run: the shard
    /// finished a lookahead window and exchanged cross-shard traffic. The
    /// emission time is the window-end time, so per-shard `(t, seq)` order
    /// is preserved. Only *processed* windows emit a sync; a stretch the
    /// kernel fast-forwarded over in one barrier round is folded into the
    /// next sync's `skipped` count, so `Σ (1 + skipped)` over a shard's
    /// syncs equals the run's total window count.
    ShardSync {
        /// The reporting shard.
        shard: u32,
        /// Zero-based window index.
        window: u64,
        /// Empty windows fast-forwarded over immediately before this one
        /// (serialized only when non-zero; schema-additive).
        skipped: u64,
    },
    /// A wired message was delivered out of a cross-shard mailbox. The
    /// sharded kernel charges wired messages at *delivery*, so each
    /// `shard_recv` represents exactly one ledger `fixed_msgs` charge —
    /// `tracereport --check` validates that identity per shard.
    ShardRecv {
        /// The delivering (destination) shard.
        shard: u32,
        /// Source cell of the wired message.
        from: MssId,
        /// Destination cell.
        to: MssId,
    },
    /// A combining proxy (the L2C mutex variant or a combining
    /// `ProxyRuntime` delivery) finished one batch: `size`
    /// client operations were served under a single logical-clock exchange /
    /// cell broadcast. Emitted by the algorithm layer, not the kernel, so it
    /// carries no message charge of its own — the charged operations it
    /// amortizes appear as their own events. For L2C runs the sum of `size`
    /// over all `combine_batch` events equals the run's `cs_enter` count
    /// (`tracereport --check` validates that identity).
    CombineBatch {
        /// The combining MSS.
        mss: MssId,
        /// Number of client operations served in this batch.
        size: u32,
    },
    /// The delivery engine coalesced `len` same-tick wired/uplink arrivals
    /// at one MSS into a single batched protocol callback
    /// (`DeliveryMode::Batched` only; `len >= 2`). Purely diagnostic: the
    /// coalesced messages were each charged and traced at their own
    /// send/receive events, so this carries no message charge of its own and
    /// is excluded from message-class accounting.
    DeliverBatch {
        /// The MSS whose arrivals were coalesced.
        at: MssId,
        /// Number of messages dispatched in the batch.
        len: u32,
    },
    /// The fault plane crashed an MSS (fail-stop with stable state; see
    /// SCENARIOS.md). One ledger `fault_crashes` custom counter bump per
    /// event — `tracereport --check` reconciles the counts.
    FaultCrash {
        /// The crashed station.
        mss: MssId,
    },
    /// A crashed MSS recovered with its state intact; wired messages
    /// deferred during the outage re-deliver in order right after this
    /// event. One ledger `fault_recovers` bump per event.
    FaultRecover {
        /// The recovered station.
        mss: MssId,
    },
    /// The wired plane partitioned (`healed = false`, ledger
    /// `fault_partitions`) or healed (`healed = true`, ledger
    /// `fault_heals`): cells `< cut` and cells `≥ cut` defer wired traffic
    /// across the split while it lasts.
    FaultPartition {
        /// The cut point separating the two halves.
        cut: u32,
        /// False when the partition starts, true when it heals.
        healed: bool,
    },
    /// A mass handoff storm fired: `moved` connected MHs were forced to
    /// leave their cells at once. One ledger `fault_storms` bump per event.
    FaultStorm {
        /// Number of MHs forced to move.
        moved: u32,
    },
}

impl TraceEvent {
    /// The stable snake_case kind name written to the `"ev"` JSONL field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::FixedSend { .. } => "fixed_send",
            TraceEvent::FixedRecv { .. } => "fixed_recv",
            TraceEvent::UpSend { .. } => "up_send",
            TraceEvent::UpRecv { .. } => "up_recv",
            TraceEvent::DownSend { .. } => "down_send",
            TraceEvent::DownRecv { .. } => "down_recv",
            TraceEvent::CellBroadcast { .. } => "cell_broadcast",
            TraceEvent::DownLost { .. } => "down_lost",
            TraceEvent::Search { .. } => "search",
            TraceEvent::SearchFail { .. } => "search_fail",
            TraceEvent::DozeInterrupt { .. } => "doze_interrupt",
            TraceEvent::HandoffBegin { .. } => "handoff_begin",
            TraceEvent::HandoffEnd { .. } => "handoff_end",
            TraceEvent::Disconnect { .. } => "disconnect",
            TraceEvent::Reconnect { .. } => "reconnect",
            TraceEvent::CsRequest { .. } => "cs_request",
            TraceEvent::CsEnter { .. } => "cs_enter",
            TraceEvent::CsExit { .. } => "cs_exit",
            TraceEvent::LvUpdate { .. } => "lv_update",
            TraceEvent::ProxyForward { .. } => "proxy_forward",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::ShardSync { .. } => "shard_sync",
            TraceEvent::ShardRecv { .. } => "shard_recv",
            TraceEvent::CombineBatch { .. } => "combine_batch",
            TraceEvent::DeliverBatch { .. } => "deliver_batch",
            TraceEvent::FaultCrash { .. } => "fault_crash",
            TraceEvent::FaultRecover { .. } => "fault_recover",
            TraceEvent::FaultPartition { .. } => "fault_partition",
            TraceEvent::FaultStorm { .. } => "fault_storm",
        }
    }

    /// Number of charged fixed-network messages this event represents.
    pub fn fixed_msgs(&self) -> u64 {
        match self {
            TraceEvent::FixedSend { .. }
            | TraceEvent::SearchFail { .. }
            | TraceEvent::ShardRecv { .. } => 1,
            _ => 0,
        }
    }

    /// Number of charged wireless-channel uses this event represents.
    pub fn wireless_msgs(&self) -> u64 {
        match self {
            TraceEvent::UpSend { .. }
            | TraceEvent::DownSend { .. }
            | TraceEvent::CellBroadcast { .. } => 1,
            _ => 0,
        }
    }

    /// Appends this event's `"ev"` and payload fields (no braces, no
    /// version/run/seq/time envelope) to `buf` as JSONL fragments.
    fn write_fields(&self, buf: &mut String) {
        let _ = write!(buf, "\"ev\":\"{}\"", self.name());
        let mut num = |k: &str, v: u64| {
            let _ = write!(buf, ",\"{k}\":{v}");
        };
        match *self {
            TraceEvent::FixedSend { from, to } => {
                num("from", from.0 as u64);
                num("to", to.0 as u64);
            }
            TraceEvent::FixedRecv { at, from } => {
                num("at", at.0 as u64);
                num("from", from.0 as u64);
            }
            TraceEvent::UpSend { mh, mss } | TraceEvent::UpRecv { mss, mh } => {
                num("mh", mh.0 as u64);
                num("mss", mss.0 as u64);
            }
            TraceEvent::DownSend { mss, mh }
            | TraceEvent::DownRecv { mh, mss }
            | TraceEvent::DownLost { mss, mh }
            | TraceEvent::Disconnect { mh, mss }
            | TraceEvent::ProxyForward { mss, mh } => {
                num("mh", mh.0 as u64);
                num("mss", mss.0 as u64);
            }
            TraceEvent::CellBroadcast { mss, listeners } => {
                num("mss", mss.0 as u64);
                num("listeners", listeners as u64);
            }
            TraceEvent::Search { target, re } => {
                num("target", target.0 as u64);
                num("re", re as u64);
            }
            TraceEvent::SearchFail { origin, target } => {
                num("origin", origin.0 as u64);
                num("target", target.0 as u64);
            }
            TraceEvent::DozeInterrupt { mh }
            | TraceEvent::CsRequest { mh }
            | TraceEvent::CsEnter { mh }
            | TraceEvent::CsExit { mh } => {
                num("mh", mh.0 as u64);
            }
            TraceEvent::HandoffBegin { mh, from } => {
                num("mh", mh.0 as u64);
                num("from", from.0 as u64);
            }
            TraceEvent::HandoffEnd { mh, to, prev } => {
                num("mh", mh.0 as u64);
                num("to", to.0 as u64);
                if let Some(p) = prev {
                    num("prev", p.0 as u64);
                }
            }
            TraceEvent::Reconnect { mh, mss, prev } => {
                num("mh", mh.0 as u64);
                num("mss", mss.0 as u64);
                if let Some(p) = prev {
                    num("prev", p.0 as u64);
                }
            }
            TraceEvent::LvUpdate { cell, added } => {
                num("cell", cell.0 as u64);
                num("added", added as u64);
            }
            TraceEvent::CacheHit { fp_hi, fp_lo } => {
                num("fp_hi", fp_hi);
                num("fp_lo", fp_lo);
            }
            TraceEvent::ShardSync {
                shard,
                window,
                skipped,
            } => {
                num("shard", shard as u64);
                num("window", window);
                if skipped > 0 {
                    num("skipped", skipped);
                }
            }
            TraceEvent::ShardRecv { shard, from, to } => {
                num("shard", shard as u64);
                num("from", from.0 as u64);
                num("to", to.0 as u64);
            }
            TraceEvent::CombineBatch { mss, size } => {
                num("mss", mss.0 as u64);
                num("size", size as u64);
            }
            TraceEvent::DeliverBatch { at, len } => {
                num("at", at.0 as u64);
                num("len", len as u64);
            }
            TraceEvent::FaultCrash { mss } | TraceEvent::FaultRecover { mss } => {
                num("mss", mss.0 as u64);
            }
            TraceEvent::FaultPartition { cut, healed } => {
                num("cut", cut as u64);
                num("healed", healed as u64);
            }
            TraceEvent::FaultStorm { moved } => {
                num("moved", moved as u64);
            }
        }
    }
}

/// Receiver of the kernel's typed event stream.
///
/// A sink is installed on a kernel with
/// [`Kernel::set_trace_sink`](crate::kernel::Kernel::set_trace_sink) and
/// from then on observes every emission in event order. Sinks must never
/// influence the simulation: they get read-only views and the kernel calls
/// them *after* all state changes and ledger charges for the operation.
pub trait TraceSink: Send + std::fmt::Debug {
    /// Observes one event. `seq` is the kernel's per-run emission counter
    /// (dense from 0); `at` is the simulated time of the emission. `(at,
    /// seq)` is strictly increasing lexicographically within a run.
    fn record(&mut self, at: SimTime, seq: u64, ev: &TraceEvent);

    /// Called when the owning kernel is rewound
    /// ([`Simulation::reset`](crate::sim::Simulation::reset) / pool reuse):
    /// drop any per-run state so the previous run cannot leak into the next.
    /// Append-only sinks should flush instead.
    fn rewind(&mut self) {}

    /// Called at the end of a measured run with the final ledger, before
    /// the sink is detached; the JSONL sink writes its `run_end` summary
    /// line here.
    fn finish(&mut self, ledger: &CostLedger) {
        let _ = ledger;
    }

    /// Upcast for read access to a concrete sink after
    /// [`take_trace_sink`](crate::kernel::Kernel::take_trace_sink).
    fn as_any(&self) -> &dyn Any;

    /// Upcast for mutable access to a concrete sink.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Bounded in-memory ring of typed events, oldest dropped first.
///
/// The typed successor of the string-based
/// [`Trace`](crate::trace::Trace): same bounded-memory contract, but
/// entries are [`TraceEvent`]s that can be matched on instead of substring
/// searched.
///
/// A capacity of `0` is an explicit no-op sink: it observes and drops every
/// event (useful to measure emission overhead without retention).
///
/// # Examples
///
/// ```
/// use mobidist_net::obs::{RingSink, TraceEvent, TraceSink};
/// use mobidist_net::ids::MhId;
/// use mobidist_net::time::SimTime;
///
/// let mut r = RingSink::new(2);
/// for i in 0..3 {
///     r.record(SimTime::from_ticks(i), i, &TraceEvent::CsRequest { mh: MhId(i as u32) });
/// }
/// assert_eq!(r.len(), 2); // bounded: oldest dropped
/// assert_eq!(r.iter().next().unwrap().1, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    cap: usize,
    entries: VecDeque<(SimTime, u64, TraceEvent)>,
}

impl RingSink {
    /// Creates a ring holding at most `cap` events (`0` = retain nothing).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap,
            entries: VecDeque::new(),
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retained `(time, seq, event)` triples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, u64, TraceEvent)> {
        self.entries.iter()
    }

    /// Count of retained events with the given kind name.
    pub fn count_kind(&self, name: &str) -> usize {
        self.entries
            .iter()
            .filter(|(_, _, e)| e.name() == name)
            .count()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, at: SimTime, seq: u64, ev: &TraceEvent) {
        if self.cap == 0 {
            return;
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back((at, seq, *ev));
    }

    fn rewind(&mut self) {
        self.entries.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Per-run metadata written as the `run_begin` JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Run id, unique within one trace file set.
    pub run: u64,
    /// Free-form lower-case label naming what ran (e.g. `"l2"`, `"r1"`).
    pub label: String,
    /// Number of MSSs, `M`.
    pub m: u64,
    /// Number of MHs, `N`.
    pub n: u64,
    /// Root seed of the run.
    pub seed: u64,
    /// `C_fixed` cost units.
    pub c_fixed: u64,
    /// `C_wireless` cost units.
    pub c_wireless: u64,
    /// `C_search` cost units (oracle policy).
    pub c_search: u64,
    /// Search policy name: `"oracle"`, `"flood"` or `"home_agent"`.
    pub policy: String,
}

impl RunMeta {
    /// Builds the metadata for `run`/`label` from a network configuration.
    ///
    /// # Panics
    ///
    /// Panics when `label` contains characters outside `[a-z0-9_-]` — the
    /// schema writes labels unescaped.
    pub fn new(run: u64, label: &str, cfg: &NetworkConfig) -> Self {
        assert!(
            label
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'),
            "trace label must be [a-z0-9_-]: {label:?}"
        );
        RunMeta {
            run,
            label: label.to_owned(),
            m: cfg.num_mss as u64,
            n: cfg.num_mh as u64,
            seed: cfg.seed,
            c_fixed: cfg.cost.c_fixed,
            c_wireless: cfg.cost.c_wireless,
            c_search: cfg.cost.c_search,
            policy: match cfg.search {
                SearchPolicy::Oracle => "oracle",
                SearchPolicy::Flood => "flood",
                SearchPolicy::HomeAgent => "home_agent",
            }
            .to_owned(),
        }
    }
}

/// Ledger snapshot written as the `run_end` JSONL line, used by
/// `tracereport --check` to diff trace-derived counts against the ledger's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Run id this summary closes.
    pub run: u64,
    /// Ledger `fixed_msgs`.
    pub fixed_msgs: u64,
    /// Ledger `wireless_msgs`.
    pub wireless_msgs: u64,
    /// Ledger `searches`.
    pub searches: u64,
    /// Ledger `re_searches`.
    pub re_searches: u64,
    /// Ledger `search_failures`.
    pub search_failures: u64,
    /// Ledger `moves`.
    pub moves: u64,
    /// Ledger `handoffs`.
    pub handoffs: u64,
    /// Ledger `disconnects`.
    pub disconnects: u64,
    /// Ledger `reconnects`.
    pub reconnects: u64,
    /// Ledger `doze_interruptions`.
    pub doze_interruptions: u64,
    /// Ledger `wireless_losses`.
    pub wireless_losses: u64,
    /// Ledger `total_cost()`.
    pub total_cost: u64,
    /// Ledger `total_energy()`.
    pub total_energy: u64,
    /// Ledger custom counter `fault_crashes` (optional in the JSONL schema:
    /// written only when nonzero, parsed as 0 when absent).
    pub fault_crashes: u64,
    /// Ledger custom counter `fault_recovers` (optional, see above).
    pub fault_recovers: u64,
    /// Ledger custom counter `fault_partitions` (optional, see above).
    pub fault_partitions: u64,
    /// Ledger custom counter `fault_heals` (optional, see above).
    pub fault_heals: u64,
    /// Ledger custom counter `fault_storms` (optional, see above).
    pub fault_storms: u64,
}

impl RunSummary {
    /// Snapshots the counters `tracereport` cross-checks from `ledger`.
    pub fn from_ledger(run: u64, ledger: &CostLedger) -> Self {
        RunSummary {
            run,
            fixed_msgs: ledger.fixed_msgs,
            wireless_msgs: ledger.wireless_msgs,
            searches: ledger.searches,
            re_searches: ledger.re_searches,
            search_failures: ledger.search_failures,
            moves: ledger.moves,
            handoffs: ledger.handoffs,
            disconnects: ledger.disconnects,
            reconnects: ledger.reconnects,
            doze_interruptions: ledger.doze_interruptions,
            wireless_losses: ledger.wireless_losses,
            total_cost: ledger.total_cost(),
            total_energy: ledger.total_energy(),
            fault_crashes: ledger.custom("fault_crashes"),
            fault_recovers: ledger.custom("fault_recovers"),
            fault_partitions: ledger.custom("fault_partitions"),
            fault_heals: ledger.custom("fault_heals"),
            fault_storms: ledger.custom("fault_storms"),
        }
    }
}

/// Buffered JSONL writer sink with the stable schema of `OBSERVABILITY.md`.
///
/// Writes one `run_begin` line at construction, one line per observed
/// event, and one `run_end` ledger summary from [`TraceSink::finish`]. The
/// writer is flushed on `finish`, `rewind` and drop, so a sink that is
/// simply dropped still leaves a complete file.
///
/// # Examples
///
/// ```
/// use mobidist_net::obs::{parse_line, JsonlSink, Line, RunMeta, TraceEvent, TraceSink};
/// use mobidist_net::ids::{MhId, MssId};
/// use mobidist_net::prelude::*;
///
/// let meta = RunMeta::new(0, "demo", &NetworkConfig::new(2, 2));
/// let mut sink = JsonlSink::new(Vec::new(), meta).unwrap();
/// sink.record(
///     SimTime::from_ticks(5),
///     0,
///     &TraceEvent::FixedSend { from: MssId(0), to: MssId(1) },
/// );
/// let out = String::from_utf8(sink.into_inner().unwrap()).unwrap();
/// let mut lines = out.lines();
/// assert!(matches!(parse_line(lines.next().unwrap()), Ok(Line::RunBegin(_))));
/// match parse_line(lines.next().unwrap()) {
///     Ok(Line::Event { seq: 0, ev: TraceEvent::FixedSend { .. }, .. }) => {}
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    // `Option` so `into_inner` can move the writer out despite `Drop`.
    out: Option<W>,
    run: u64,
    buf: String,
    events: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Creates the sink and writes the `run_begin` line for `meta`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut out: W, meta: RunMeta) -> std::io::Result<Self> {
        let mut buf = String::with_capacity(160);
        let _ = write!(
            buf,
            "{{\"v\":{SCHEMA_VERSION},\"run\":{},\"ev\":\"run_begin\",\"label\":\"{}\",\
             \"m\":{},\"n\":{},\"seed\":{},\"c_fixed\":{},\"c_wireless\":{},\"c_search\":{},\
             \"policy\":\"{}\"}}",
            meta.run,
            meta.label,
            meta.m,
            meta.n,
            meta.seed,
            meta.c_fixed,
            meta.c_wireless,
            meta.c_search,
            meta.policy,
        );
        buf.push('\n');
        out.write_all(buf.as_bytes())?;
        Ok(JsonlSink {
            out: Some(out),
            run: meta.run,
            buf,
            events: 0,
        })
    }

    /// Events written so far (excluding the envelope lines).
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        let mut out = self.out.take().expect("writer present until into_inner");
        out.flush()?;
        Ok(out)
    }
}

/// Opens `path` in append mode and wraps it in a buffered [`JsonlSink`].
///
/// Append mode lets many consecutive runs (e.g. all runs processed by one
/// sweep worker) share a single file; each contributes its own
/// `run_begin`/`run_end` envelope.
///
/// # Errors
///
/// Propagates file-open and header-write errors.
pub fn jsonl_file_sink(
    path: &std::path::Path,
    meta: RunMeta,
) -> std::io::Result<JsonlSink<std::io::BufWriter<std::fs::File>>> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    JsonlSink::new(std::io::BufWriter::new(file), meta)
}

impl<W: Write + Send + std::fmt::Debug + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, at: SimTime, seq: u64, ev: &TraceEvent) {
        self.buf.clear();
        let _ = write!(
            self.buf,
            "{{\"v\":{SCHEMA_VERSION},\"run\":{},\"seq\":{seq},\"t\":{},",
            self.run,
            at.ticks()
        );
        ev.write_fields(&mut self.buf);
        self.buf.push('}');
        self.buf.push('\n');
        if let Some(out) = self.out.as_mut() {
            // Trace I/O failures must not abort a simulation; drop the line.
            let _ = out.write_all(self.buf.as_bytes());
        }
        self.events += 1;
    }

    fn rewind(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }

    fn finish(&mut self, ledger: &CostLedger) {
        let s = RunSummary::from_ledger(self.run, ledger);
        self.buf.clear();
        let _ = write!(
            self.buf,
            "{{\"v\":{SCHEMA_VERSION},\"run\":{},\"ev\":\"run_end\",\"events\":{},\
             \"fixed_msgs\":{},\"wireless_msgs\":{},\"searches\":{},\"re_searches\":{},\
             \"search_failures\":{},\"moves\":{},\"handoffs\":{},\"disconnects\":{},\
             \"reconnects\":{},\"doze_interruptions\":{},\"wireless_losses\":{},\
             \"total_cost\":{},\"total_energy\":{}}}",
            self.run,
            self.events,
            s.fixed_msgs,
            s.wireless_msgs,
            s.searches,
            s.re_searches,
            s.search_failures,
            s.moves,
            s.handoffs,
            s.disconnects,
            s.reconnects,
            s.doze_interruptions,
            s.wireless_losses,
            s.total_cost,
            s.total_energy,
        );
        // Fault counters are optional fields (schema v1 is append-only):
        // written only when nonzero, so fault-free traces are byte-identical
        // to those produced before the fault plane existed.
        for (key, v) in [
            ("fault_crashes", s.fault_crashes),
            ("fault_recovers", s.fault_recovers),
            ("fault_partitions", s.fault_partitions),
            ("fault_heals", s.fault_heals),
            ("fault_storms", s.fault_storms),
        ] {
            if v != 0 {
                self.buf.pop(); // reopen the object: drop the closing '}'
                let _ = write!(self.buf, ",\"{key}\":{v}}}");
            }
        }
        self.buf.push('\n');
        if let Some(out) = self.out.as_mut() {
            let _ = out.write_all(self.buf.as_bytes());
            let _ = out.flush();
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

// ----- schema parsing -------------------------------------------------------

/// One parsed JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub enum Line {
    /// A `run_begin` envelope line.
    RunBegin(RunMeta),
    /// An event line.
    Event {
        /// Run id the event belongs to.
        run: u64,
        /// Kernel emission sequence number within the run.
        seq: u64,
        /// Simulated time of the emission.
        t: SimTime,
        /// The decoded event.
        ev: TraceEvent,
    },
    /// A `run_end` envelope line; `events` is the producer's event count.
    RunEnd {
        /// The ledger snapshot.
        summary: RunSummary,
        /// Events the producer claims to have written for this run.
        events: u64,
    },
}

/// A schema violation found while parsing a JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace schema error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parses one flat JSONL object of the trace schema: string and unsigned
/// integer values only, no nesting, no escapes.
fn parse_object(line: &str) -> Result<Vec<(String, String)>, ParseError> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| ParseError(format!("not an object: {line:?}")))?;
    let mut fields = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let Some(after_quote) = rest.strip_prefix('"') else {
            return err(format!("expected key quote at {rest:?}"));
        };
        let Some(kq) = after_quote.find('"') else {
            return err("unterminated key");
        };
        let key = &after_quote[..kq];
        let Some(after_colon) = after_quote[kq + 1..].strip_prefix(':') else {
            return err(format!("expected ':' after key {key:?}"));
        };
        let (value, tail) = if let Some(v) = after_colon.strip_prefix('"') {
            let Some(vq) = v.find('"') else {
                return err(format!("unterminated string value for {key:?}"));
            };
            (v[..vq].to_owned(), &v[vq + 1..])
        } else {
            let end = after_colon.find(',').unwrap_or(after_colon.len());
            let v = &after_colon[..end];
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return err(format!(
                    "value of {key:?} is not an unsigned integer: {v:?}"
                ));
            }
            (v.to_owned(), &after_colon[end..])
        };
        fields.push((key.to_owned(), value));
        rest = match tail.strip_prefix(',') {
            Some(t) => t,
            None if tail.is_empty() => tail,
            None => return err(format!("expected ',' at {tail:?}")),
        };
    }
    Ok(fields)
}

struct Fields(Vec<(String, String)>);

impl Fields {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num(&self, key: &str) -> Result<u64, ParseError> {
        let v = self
            .get(key)
            .ok_or_else(|| ParseError(format!("missing field {key:?}")))?;
        v.parse()
            .map_err(|_| ParseError(format!("field {key:?} is not a number: {v:?}")))
    }

    fn opt_num(&self, key: &str) -> Result<Option<u64>, ParseError> {
        match self.get(key) {
            None => Ok(None),
            Some(_) => self.num(key).map(Some),
        }
    }

    fn string(&self, key: &str) -> Result<String, ParseError> {
        self.get(key)
            .map(str::to_owned)
            .ok_or_else(|| ParseError(format!("missing field {key:?}")))
    }
}

fn mss(f: &Fields, key: &str) -> Result<MssId, ParseError> {
    Ok(MssId(f.num(key)? as u32))
}

fn mh(f: &Fields, key: &str) -> Result<MhId, ParseError> {
    Ok(MhId(f.num(key)? as u32))
}

/// Parses one line of the versioned JSONL schema back into a [`Line`].
///
/// Inverse of what [`JsonlSink`] writes; `tracereport` and the tracecheck
/// gate are built on it.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the violated schema rule (unknown event
/// kind, missing field, bad version, malformed JSON).
pub fn parse_line(line: &str) -> Result<Line, ParseError> {
    let f = Fields(parse_object(line)?);
    let v = f.num("v")?;
    if v != SCHEMA_VERSION as u64 {
        return err(format!("unsupported schema version {v}"));
    }
    let run = f.num("run")?;
    let ev = f.string("ev")?;
    match ev.as_str() {
        "run_begin" => Ok(Line::RunBegin(RunMeta {
            run,
            label: f.string("label")?,
            m: f.num("m")?,
            n: f.num("n")?,
            seed: f.num("seed")?,
            c_fixed: f.num("c_fixed")?,
            c_wireless: f.num("c_wireless")?,
            c_search: f.num("c_search")?,
            policy: f.string("policy")?,
        })),
        "run_end" => Ok(Line::RunEnd {
            events: f.num("events")?,
            summary: RunSummary {
                run,
                fixed_msgs: f.num("fixed_msgs")?,
                wireless_msgs: f.num("wireless_msgs")?,
                searches: f.num("searches")?,
                re_searches: f.num("re_searches")?,
                search_failures: f.num("search_failures")?,
                moves: f.num("moves")?,
                handoffs: f.num("handoffs")?,
                disconnects: f.num("disconnects")?,
                reconnects: f.num("reconnects")?,
                doze_interruptions: f.num("doze_interruptions")?,
                wireless_losses: f.num("wireless_losses")?,
                total_cost: f.num("total_cost")?,
                total_energy: f.num("total_energy")?,
                fault_crashes: f.opt_num("fault_crashes")?.unwrap_or(0),
                fault_recovers: f.opt_num("fault_recovers")?.unwrap_or(0),
                fault_partitions: f.opt_num("fault_partitions")?.unwrap_or(0),
                fault_heals: f.opt_num("fault_heals")?.unwrap_or(0),
                fault_storms: f.opt_num("fault_storms")?.unwrap_or(0),
            },
        }),
        kind => {
            let event = match kind {
                "fixed_send" => TraceEvent::FixedSend {
                    from: mss(&f, "from")?,
                    to: mss(&f, "to")?,
                },
                "fixed_recv" => TraceEvent::FixedRecv {
                    at: mss(&f, "at")?,
                    from: mss(&f, "from")?,
                },
                "up_send" => TraceEvent::UpSend {
                    mh: mh(&f, "mh")?,
                    mss: mss(&f, "mss")?,
                },
                "up_recv" => TraceEvent::UpRecv {
                    mss: mss(&f, "mss")?,
                    mh: mh(&f, "mh")?,
                },
                "down_send" => TraceEvent::DownSend {
                    mss: mss(&f, "mss")?,
                    mh: mh(&f, "mh")?,
                },
                "down_recv" => TraceEvent::DownRecv {
                    mh: mh(&f, "mh")?,
                    mss: mss(&f, "mss")?,
                },
                "cell_broadcast" => TraceEvent::CellBroadcast {
                    mss: mss(&f, "mss")?,
                    listeners: f.num("listeners")? as u32,
                },
                "down_lost" => TraceEvent::DownLost {
                    mss: mss(&f, "mss")?,
                    mh: mh(&f, "mh")?,
                },
                "search" => TraceEvent::Search {
                    target: mh(&f, "target")?,
                    re: f.num("re")? != 0,
                },
                "search_fail" => TraceEvent::SearchFail {
                    origin: mss(&f, "origin")?,
                    target: mh(&f, "target")?,
                },
                "doze_interrupt" => TraceEvent::DozeInterrupt { mh: mh(&f, "mh")? },
                "handoff_begin" => TraceEvent::HandoffBegin {
                    mh: mh(&f, "mh")?,
                    from: mss(&f, "from")?,
                },
                "handoff_end" => TraceEvent::HandoffEnd {
                    mh: mh(&f, "mh")?,
                    to: mss(&f, "to")?,
                    prev: f.opt_num("prev")?.map(|p| MssId(p as u32)),
                },
                "disconnect" => TraceEvent::Disconnect {
                    mh: mh(&f, "mh")?,
                    mss: mss(&f, "mss")?,
                },
                "reconnect" => TraceEvent::Reconnect {
                    mh: mh(&f, "mh")?,
                    mss: mss(&f, "mss")?,
                    prev: f.opt_num("prev")?.map(|p| MssId(p as u32)),
                },
                "cs_request" => TraceEvent::CsRequest { mh: mh(&f, "mh")? },
                "cs_enter" => TraceEvent::CsEnter { mh: mh(&f, "mh")? },
                "cs_exit" => TraceEvent::CsExit { mh: mh(&f, "mh")? },
                "lv_update" => TraceEvent::LvUpdate {
                    cell: mss(&f, "cell")?,
                    added: f.num("added")? != 0,
                },
                "proxy_forward" => TraceEvent::ProxyForward {
                    mss: mss(&f, "mss")?,
                    mh: mh(&f, "mh")?,
                },
                "cache_hit" => TraceEvent::CacheHit {
                    fp_hi: f.num("fp_hi")?,
                    fp_lo: f.num("fp_lo")?,
                },
                "shard_sync" => TraceEvent::ShardSync {
                    shard: f.num("shard")? as u32,
                    window: f.num("window")?,
                    skipped: f.opt_num("skipped")?.unwrap_or(0),
                },
                "shard_recv" => TraceEvent::ShardRecv {
                    shard: f.num("shard")? as u32,
                    from: mss(&f, "from")?,
                    to: mss(&f, "to")?,
                },
                "combine_batch" => TraceEvent::CombineBatch {
                    mss: mss(&f, "mss")?,
                    size: f.num("size")? as u32,
                },
                "deliver_batch" => TraceEvent::DeliverBatch {
                    at: mss(&f, "at")?,
                    len: f.num("len")? as u32,
                },
                "fault_crash" => TraceEvent::FaultCrash {
                    mss: mss(&f, "mss")?,
                },
                "fault_recover" => TraceEvent::FaultRecover {
                    mss: mss(&f, "mss")?,
                },
                "fault_partition" => TraceEvent::FaultPartition {
                    cut: f.num("cut")? as u32,
                    healed: f.num("healed")? != 0,
                },
                "fault_storm" => TraceEvent::FaultStorm {
                    moved: f.num("moved")? as u32,
                },
                other => return err(format!("unknown event kind {other:?}")),
            };
            Ok(Line::Event {
                run,
                seq: f.num("seq")?,
                t: SimTime::from_ticks(f.num("t")?),
                ev: event,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::FixedSend {
                from: MssId(1),
                to: MssId(2),
            },
            TraceEvent::FixedRecv {
                at: MssId(2),
                from: MssId(1),
            },
            TraceEvent::UpSend {
                mh: MhId(3),
                mss: MssId(0),
            },
            TraceEvent::UpRecv {
                mss: MssId(0),
                mh: MhId(3),
            },
            TraceEvent::DownSend {
                mss: MssId(0),
                mh: MhId(3),
            },
            TraceEvent::DownRecv {
                mh: MhId(3),
                mss: MssId(0),
            },
            TraceEvent::CellBroadcast {
                mss: MssId(1),
                listeners: 4,
            },
            TraceEvent::DownLost {
                mss: MssId(1),
                mh: MhId(2),
            },
            TraceEvent::Search {
                target: MhId(5),
                re: true,
            },
            TraceEvent::SearchFail {
                origin: MssId(0),
                target: MhId(5),
            },
            TraceEvent::DozeInterrupt { mh: MhId(1) },
            TraceEvent::HandoffBegin {
                mh: MhId(1),
                from: MssId(0),
            },
            TraceEvent::HandoffEnd {
                mh: MhId(1),
                to: MssId(1),
                prev: Some(MssId(0)),
            },
            TraceEvent::HandoffEnd {
                mh: MhId(1),
                to: MssId(1),
                prev: None,
            },
            TraceEvent::Disconnect {
                mh: MhId(1),
                mss: MssId(1),
            },
            TraceEvent::Reconnect {
                mh: MhId(1),
                mss: MssId(0),
                prev: Some(MssId(1)),
            },
            TraceEvent::CsRequest { mh: MhId(0) },
            TraceEvent::CsEnter { mh: MhId(0) },
            TraceEvent::CsExit { mh: MhId(0) },
            TraceEvent::LvUpdate {
                cell: MssId(3),
                added: true,
            },
            TraceEvent::ProxyForward {
                mss: MssId(2),
                mh: MhId(4),
            },
            TraceEvent::CacheHit {
                fp_hi: u64::MAX,
                fp_lo: 12345,
            },
            TraceEvent::ShardSync {
                shard: 2,
                window: 17,
                skipped: 0,
            },
            TraceEvent::ShardSync {
                shard: 0,
                window: 40,
                skipped: 22,
            },
            TraceEvent::ShardRecv {
                shard: 1,
                from: MssId(9),
                to: MssId(4),
            },
            TraceEvent::CombineBatch {
                mss: MssId(3),
                size: 12,
            },
            TraceEvent::DeliverBatch {
                at: MssId(5),
                len: 3,
            },
            TraceEvent::FaultCrash { mss: MssId(2) },
            TraceEvent::FaultRecover { mss: MssId(2) },
            TraceEvent::FaultPartition {
                cut: 4,
                healed: false,
            },
            TraceEvent::FaultPartition {
                cut: 4,
                healed: true,
            },
            TraceEvent::FaultStorm { moved: 9 },
        ]
    }

    #[test]
    fn every_event_round_trips_through_jsonl() {
        let meta = RunMeta::new(7, "round-trip", &NetworkConfig::new(2, 2));
        let mut sink = JsonlSink::new(Vec::new(), meta.clone()).unwrap();
        let events = all_events();
        for (i, e) in events.iter().enumerate() {
            sink.record(SimTime::from_ticks(10 + i as u64), i as u64, e);
        }
        sink.finish(&CostLedger::new(2));
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        let lines: Vec<Line> = text.lines().map(|l| parse_line(l).unwrap()).collect();
        assert_eq!(lines.len(), events.len() + 2);
        assert_eq!(lines[0], Line::RunBegin(meta));
        for (i, e) in events.iter().enumerate() {
            let Line::Event { run, seq, t, ev } = &lines[1 + i] else {
                panic!("line {i} is not an event: {:?}", lines[1 + i]);
            };
            assert_eq!((*run, *seq), (7, i as u64));
            assert_eq!(*t, SimTime::from_ticks(10 + i as u64));
            assert_eq!(ev, e, "event {i} did not round-trip");
        }
        let Line::RunEnd { summary, events: n } = &lines[lines.len() - 1] else {
            panic!("missing run_end");
        };
        assert_eq!(*n, events.len() as u64);
        assert_eq!(summary.fixed_msgs, 0);
    }

    #[test]
    fn ring_sink_bounds_and_rewinds() {
        let mut r = RingSink::new(3);
        for i in 0..5u64 {
            r.record(
                SimTime::from_ticks(i),
                i,
                &TraceEvent::CsExit { mh: MhId(0) },
            );
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().next().unwrap().1, 2);
        assert_eq!(r.count_kind("cs_exit"), 3);
        r.rewind();
        assert!(r.is_empty());
    }

    #[test]
    fn zero_capacity_ring_is_a_no_op() {
        let mut r = RingSink::new(0);
        r.record(SimTime::ZERO, 0, &TraceEvent::CsExit { mh: MhId(0) });
        assert!(r.is_empty());
    }

    #[test]
    fn parse_rejects_schema_violations() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"v\":99,\"run\":0,\"ev\":\"run_begin\"}").is_err());
        assert!(
            parse_line("{\"v\":1,\"run\":0,\"ev\":\"no_such_kind\",\"seq\":0,\"t\":0}").is_err()
        );
        // Missing required field.
        assert!(parse_line(
            "{\"v\":1,\"run\":0,\"seq\":0,\"t\":0,\"ev\":\"fixed_send\",\"from\":1}"
        )
        .is_err());
        // Negative / non-integer values are rejected.
        assert!(
            parse_line("{\"v\":1,\"run\":-1,\"ev\":\"cs_exit\",\"seq\":0,\"t\":0,\"mh\":0}")
                .is_err()
        );
    }

    #[test]
    fn message_class_accounting_helpers() {
        let fixed: u64 = all_events().iter().map(TraceEvent::fixed_msgs).sum();
        let wireless: u64 = all_events().iter().map(TraceEvent::wireless_msgs).sum();
        assert_eq!(fixed, 3); // fixed_send + search_fail + shard_recv
        assert_eq!(wireless, 3); // up_send + down_send + cell_broadcast
    }

    #[test]
    #[should_panic(expected = "trace label")]
    fn labels_are_restricted_to_schema_safe_characters() {
        let _ = RunMeta::new(0, "bad label!", &NetworkConfig::new(1, 1));
    }
}
