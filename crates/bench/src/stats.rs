//! Multi-seed aggregation for experiment tables.
//!
//! Single seeded runs are deterministic but one-sided; the headline tables
//! average each measurement over several seeds and report mean ± standard
//! deviation so run-to-run spread is visible.

use std::fmt;

/// Mean, standard deviation and range of a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarises the samples.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            mean,
            std: var.sqrt(),
            min,
            max,
            n,
        }
    }

    /// Relative spread `std/mean` (0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean.abs()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std)
    }
}

/// Log₂-bucket histogram reducer for latency percentiles.
///
/// Serving benchmarks fold millions of request→grant waits into p50/p95/p99
/// columns; an exact percentile would need every sample retained. This
/// reducer keeps 65 counters instead: one bucket per power of two (bucket
/// `i ≥ 1` has inclusive upper bound `2^(i-1)`; bucket 0 holds zero), and
/// reports a percentile as the inclusive upper bound of the bucket the
/// nearest-rank sample falls in. Exact powers of two are therefore reported
/// exactly; everything else rounds up by less than 2×, which is the right
/// fidelity for a log-scale latency column.
///
/// # Examples
///
/// ```
/// use mobidist_bench::stats::LatencyHist;
/// let mut h = LatencyHist::new();
/// for v in [1, 2, 4, 8] {
///     h.record(v);
/// }
/// assert_eq!(h.percentile(0.5), 2);
/// assert_eq!(h.percentile(1.0), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHist {
    /// `counts[0]` holds zeros; `counts[i]` holds `(2^(i-1), 2^i]`.
    counts: [u64; 65],
    n: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            counts: [0; 65],
            n: 0,
        }
    }

    /// Folds one sample in. Bucket index for `v ≥ 1` is `ceil(log2(v)) + 1`;
    /// values above `2^63` saturate into the top bucket.
    pub fn record(&mut self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            (65 - (v - 1).leading_zeros() as usize).min(64)
        };
        self.counts[bucket] += 1;
        self.n += 1;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`), reported as the inclusive
    /// upper bound of the bucket holding the ranked sample. Returns 0 for an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        1u64 << 63
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`.
///
/// 1.0 means perfectly even allocation across the `n` participants; `1/n`
/// means one participant got everything. Conventionally applied to
/// per-client throughput; the serving benchmark applies it to per-MH mean
/// waits, where a value below 1 exposes latency starvation. Empty input and
/// all-zero input are defined as perfectly fair (1.0).
///
/// # Examples
///
/// ```
/// use mobidist_bench::stats::jain;
/// assert_eq!(jain(&[4.0, 4.0, 4.0]), 1.0);
/// assert!((jain(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn jain(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = samples.iter().sum();
    let sq: f64 = samples.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

/// Runs `f` for each seed and summarises the results.
///
/// Fans the seeds across worker threads ([`crate::parallel::default_jobs`]
/// of them); results are collected in seed order, so the summary is
/// bit-identical to a sequential loop.
pub fn over_seeds(seeds: impl IntoIterator<Item = u64>, f: impl Fn(u64) -> f64 + Sync) -> Summary {
    over_seeds_jobs(seeds, crate::parallel::default_jobs(), f)
}

/// [`over_seeds`] with an explicit worker count (1 = sequential).
pub fn over_seeds_jobs(
    seeds: impl IntoIterator<Item = u64>,
    jobs: usize,
    f: impl Fn(u64) -> f64 + Sync,
) -> Summary {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let samples = crate::parallel::map_indexed(seeds, jobs, |_, s| f(s));
    Summary::of(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!((s.min, s.max, s.n), (5.0, 5.0, 3));
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.to_string(), "5.00 ± 0.00");
    }

    #[test]
    fn summary_basic_statistics() {
        let s = Summary::of(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std - 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn over_seeds_feeds_each_seed() {
        let s = over_seeds(0..4, |seed| seed as f64);
        assert_eq!(s.mean, 1.5);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        let h = LatencyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 0, "p={p}");
        }
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = LatencyHist::new();
        h.record(100);
        assert_eq!(h.len(), 1);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 128, "one sample rounds up to 2^7");
        }
        let mut z = LatencyHist::new();
        z.record(0);
        assert_eq!(z.percentile(0.5), 0, "zero has its own exact bucket");
    }

    #[test]
    fn exact_boundary_buckets_round_trip_powers_of_two() {
        // Every power of two is its own bucket's upper bound, so a
        // histogram of one value reports that value exactly.
        for k in 0..63u32 {
            let v = 1u64 << k;
            let mut h = LatencyHist::new();
            h.record(v);
            assert_eq!(h.percentile(1.0), v, "2^{k} must report exactly");
        }
        // Off-boundary values round up to the next power of two, never down.
        let mut h = LatencyHist::new();
        h.record(5);
        assert_eq!(h.percentile(1.0), 8);
        // Saturation: values above 2^63 land in the top bucket.
        let mut top = LatencyHist::new();
        top.record(u64::MAX);
        assert_eq!(top.percentile(1.0), 1u64 << 63);
    }

    #[test]
    fn percentiles_use_nearest_rank_over_buckets() {
        let mut h = LatencyHist::new();
        for v in [1, 1, 2, 4, 8, 16, 32, 64, 128, 256] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1, "p0 clamps to the first sample");
        assert_eq!(h.percentile(0.5), 8, "rank 5 of 10 is the fifth sample");
        assert_eq!(h.percentile(0.95), 256);
        assert_eq!(h.percentile(1.0), 256);
    }

    #[test]
    fn jain_index_bounds_and_known_values() {
        assert_eq!(jain(&[]), 1.0, "vacuously fair");
        assert_eq!(jain(&[7.0]), 1.0, "a single participant is fair");
        assert_eq!(jain(&[0.0, 0.0]), 1.0, "all-zero defined as fair");
        assert_eq!(jain(&[3.0, 3.0, 3.0, 3.0]), 1.0);
        // One of two participants starved: J = 1/n = 0.5.
        assert!((jain(&[10.0, 0.0]) - 0.5).abs() < 1e-12);
        // Monotone: a more even split scores higher.
        assert!(jain(&[6.0, 4.0]) > jain(&[9.0, 1.0]));
    }
}
