//! The paper's cost model.
//!
//! Section 2 assigns a cost to each kind of message:
//!
//! * `C_fixed` — point-to-point message between any two fixed hosts,
//! * `C_wireless` — message between an MH and its local MSS (either
//!   direction),
//! * `C_search` — locating an MH and forwarding a message to its current
//!   local MSS (always `>= C_fixed`; worst case the source MSS contacts each
//!   of the other `M - 1` MSSs).
//!
//! Derived costs follow the paper: an MH→MH message costs
//! `2·C_wireless + C_search`; an MSS→non-local-MH message costs
//! `C_search + C_wireless`.
//!
//! Battery consumption at MHs is modelled separately by [`EnergyModel`]: the
//! paper argues energy use is proportional to the number of wireless
//! transmissions and receptions at the MH.

/// Per-message-class cost parameters (`C_fixed`, `C_wireless`, `C_search`).
///
/// The defaults reflect the paper's qualitative assumptions: wireless
/// bandwidth "an order of magnitude lower than wired links" (so a wireless
/// message is an order of magnitude more expensive) and `C_search > C_fixed`.
///
/// # Examples
///
/// ```
/// use mobidist_net::cost::CostModel;
/// let c = CostModel::default();
/// assert!(c.c_search >= c.c_fixed);
/// assert_eq!(c.mh_to_mh(), 2 * c.c_wireless + c.c_search);
/// assert_eq!(c.mss_to_remote_mh(), c.c_search + c.c_wireless);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Cost of a point-to-point message between two fixed hosts.
    pub c_fixed: u64,
    /// Cost of a message over a wireless channel (MH↔local MSS).
    pub c_wireless: u64,
    /// Cost of locating an MH and forwarding a message to its current local
    /// MSS (used by the [`Oracle`](crate::search::SearchPolicy::Oracle)
    /// search policy; the `Flood` policy derives its cost from real control
    /// messages instead).
    pub c_search: u64,
}

impl CostModel {
    /// Creates a cost model after validating the paper's constraint
    /// `c_search >= c_fixed`.
    ///
    /// # Panics
    ///
    /// Panics if `c_search < c_fixed`, which the paper's model rules out.
    pub fn new(c_fixed: u64, c_wireless: u64, c_search: u64) -> Self {
        assert!(
            c_search >= c_fixed,
            "the system model requires C_search >= C_fixed ({c_search} < {c_fixed})"
        );
        CostModel {
            c_fixed,
            c_wireless,
            c_search,
        }
    }

    /// Cost of one MH→MH message: `2·C_wireless + C_search`.
    pub fn mh_to_mh(&self) -> u64 {
        2 * self.c_wireless + self.c_search
    }

    /// Cost of one MSS→non-local-MH message: `C_search + C_wireless`.
    pub fn mss_to_remote_mh(&self) -> u64 {
        self.c_search + self.c_wireless
    }
}

impl Default for CostModel {
    /// `C_fixed = 1`, `C_wireless = 10`, `C_search = 5`.
    fn default() -> Self {
        CostModel {
            c_fixed: 1,
            c_wireless: 10,
            c_search: 5,
        }
    }
}

/// Battery-energy parameters for mobile hosts.
///
/// Energy is charged per wireless operation *at the MH only* — fixed hosts
/// are mains-powered in the paper's model. The paper treats transmit and
/// receive as equally expensive ("transmission and reception of messages on
/// the wireless link consumes power"); distinct weights are provided because
/// real radios differ.
///
/// # Examples
///
/// ```
/// use mobidist_net::cost::EnergyModel;
/// let e = EnergyModel::default();
/// assert!(e.tx > 0 && e.rx > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnergyModel {
    /// Energy units consumed by one wireless transmission at an MH.
    pub tx: u64,
    /// Energy units consumed by one wireless reception at an MH.
    pub rx: u64,
}

impl Default for EnergyModel {
    /// One unit per operation in either direction, matching the paper's
    /// proportional accounting.
    fn default() -> Self {
        EnergyModel { tx: 1, rx: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_respects_model_constraint() {
        let c = CostModel::default();
        assert!(c.c_search >= c.c_fixed);
        assert!(c.c_wireless > c.c_fixed, "wireless should dominate wired");
    }

    #[test]
    fn derived_costs_match_paper() {
        let c = CostModel::new(1, 7, 4);
        assert_eq!(c.mh_to_mh(), 18);
        assert_eq!(c.mss_to_remote_mh(), 11);
    }

    #[test]
    #[should_panic(expected = "C_search >= C_fixed")]
    fn rejects_cheap_search() {
        let _ = CostModel::new(10, 1, 5);
    }

    #[test]
    fn energy_default() {
        assert_eq!(EnergyModel::default(), EnergyModel { tx: 1, rx: 1 });
    }
}
