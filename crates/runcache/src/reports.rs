//! [`Codec`] impls for the workspace's run-outcome report types.
//!
//! These live here rather than next to the types because `Codec` is this
//! crate's trait (the orphan rule), and here rather than in the bench
//! crate because the reports are foreign there too. Every impl
//! destructures, so growing a report without extending its codec — which
//! would silently drop the new field from cached results — fails to
//! compile; shape changes must also bump
//! [`FORMAT_VERSION`](crate::store::FORMAT_VERSION).

use crate::codec::{Codec, Reader};
use mobidist_core::harness::MutexReport;
use mobidist_group::strategy::GroupReport;

impl Codec for MutexReport {
    fn encode(&self, out: &mut Vec<u8>) {
        let MutexReport {
            issued,
            completed,
            aborted,
            outstanding,
            safety_violations,
            order_violations,
            mean_wait,
            p95_wait,
        } = self;
        issued.encode(out);
        completed.encode(out);
        aborted.encode(out);
        outstanding.encode(out);
        safety_violations.encode(out);
        order_violations.encode(out);
        mean_wait.encode(out);
        p95_wait.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(MutexReport {
            issued: Codec::decode(r)?,
            completed: Codec::decode(r)?,
            aborted: Codec::decode(r)?,
            outstanding: Codec::decode(r)?,
            safety_violations: Codec::decode(r)?,
            order_violations: Codec::decode(r)?,
            mean_wait: Codec::decode(r)?,
            p95_wait: Codec::decode(r)?,
        })
    }
}

impl Codec for GroupReport {
    fn encode(&self, out: &mut Vec<u8>) {
        let GroupReport {
            sent,
            member_moves,
            expected,
            delivered,
            missed,
            duplicates,
            unexpected,
        } = self;
        sent.encode(out);
        member_moves.encode(out);
        expected.encode(out);
        delivered.encode(out);
        missed.encode(out);
        duplicates.encode(out);
        unexpected.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(GroupReport {
            sent: Codec::decode(r)?,
            member_moves: Codec::decode(r)?,
            expected: Codec::decode(r)?,
            delivered: Codec::decode(r)?,
            missed: Codec::decode(r)?,
            duplicates: Codec::decode(r)?,
            unexpected: Codec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_round_trip() {
        let m = MutexReport {
            issued: 10,
            completed: 9,
            aborted: 1,
            outstanding: 0,
            safety_violations: 0,
            order_violations: 0,
            mean_wait: 12.5,
            p95_wait: 40,
        };
        let mut bytes = Vec::new();
        m.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        assert_eq!(MutexReport::decode(&mut r), Some(m));
        assert!(r.is_empty());

        let g = GroupReport {
            sent: 8,
            member_moves: 3,
            expected: 56,
            delivered: 54,
            missed: 2,
            duplicates: 0,
            unexpected: 0,
        };
        let mut bytes = Vec::new();
        g.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        assert_eq!(GroupReport::decode(&mut r), Some(g));
        assert!(r.is_empty());
    }
}
