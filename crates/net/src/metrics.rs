//! Derived metrics over the typed event stream: monotonic counters,
//! log2-bucket histograms, and per-phase span timing.
//!
//! The building blocks here consume [`TraceEvent`]s — either live, by
//! installing a [`MetricsSink`] on a kernel, or offline, by feeding parsed
//! JSONL lines to [`Metrics::observe`] (which is what the `tracereport` CLI
//! does). The same aggregation code therefore produces the same numbers in
//! both modes.

use crate::obs::{TraceEvent, TraceSink};
use crate::time::SimTime;
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

/// A monotonic counter.
///
/// # Examples
///
/// ```
/// use mobidist_net::metrics::Counter;
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `by`.
    pub fn add(&mut self, by: u64) {
        self.0 += by;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Number of log2 buckets a [`Histogram`] holds (`u64` values need at most
/// 64 significant bits, plus one bucket for zero).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-size log2-bucket histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i)`. Recording is O(1) with no allocation, which is what a
/// trace-sink hot path needs; the trade-off is bucket-resolution quantiles
/// ([`Histogram::quantile`] returns an upper bound of the containing
/// bucket).
///
/// # Examples
///
/// ```
/// use mobidist_net::metrics::Histogram;
/// let mut h = Histogram::default();
/// for v in [0, 1, 2, 3, 4, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.sum(), 210);
/// assert_eq!(h.max(), 200);
/// assert!(h.quantile(0.5) <= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Index of the bucket holding `v`.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive-exclusive value range `[lo, hi)` of bucket `i` (bucket 0 is
    /// the single value `0`, reported as `[0, 1)`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (
                1u64 << (i - 1),
                1u64.checked_shl(i as u32).unwrap_or(u64::MAX),
            )
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0 ≤ q ≤ 1`); 0 when empty. Resolution is the log2 bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_range(i).1.saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, low to high.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, c)
            })
    }

    /// Forgets every sample.
    pub fn clear(&mut self) {
        *self = Histogram::default();
    }
}

impl fmt::Display for Histogram {
    /// Renders one `[lo, hi) count |bar|` line per non-empty bucket.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (lo, hi, c) in self.iter_buckets() {
            let bar = (c * 40).div_ceil(peak) as usize;
            writeln!(f, "  [{lo:>8}, {hi:>8})  {c:>8}  {}", "#".repeat(bar))?;
        }
        Ok(())
    }
}

/// Pairs begin/end events per key and yields the elapsed ticks of each
/// completed span.
///
/// Unmatched ends are ignored (a trace may begin mid-phase); a second begin
/// for an open key restarts that span.
///
/// # Examples
///
/// ```
/// use mobidist_net::metrics::SpanTracker;
/// use mobidist_net::time::SimTime;
/// let mut s = SpanTracker::default();
/// s.begin(3, SimTime::from_ticks(10));
/// assert_eq!(s.end(3, SimTime::from_ticks(25)), Some(15));
/// assert_eq!(s.end(3, SimTime::from_ticks(30)), None); // already closed
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    open: BTreeMap<u32, SimTime>,
}

impl SpanTracker {
    /// Opens (or restarts) the span for `key` at `at`.
    pub fn begin(&mut self, key: u32, at: SimTime) {
        self.open.insert(key, at);
    }

    /// Closes the span for `key`, returning its length in ticks, or `None`
    /// when no span was open.
    pub fn end(&mut self, key: u32, at: SimTime) -> Option<u64> {
        self.open.remove(&key).map(|b| at.saturating_since(b))
    }

    /// Number of spans currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Drops all open spans.
    pub fn clear(&mut self) {
        self.open.clear();
    }
}

/// Aggregated metrics over a stream of [`TraceEvent`]s.
///
/// Feed events in order with [`observe`](Self::observe); read counters and
/// histograms at any point. Phase timings come from paired events:
/// `cs_request → cs_enter` builds [`cs_wait`](Self::cs_wait), `cs_enter →
/// cs_exit` builds [`cs_hold`](Self::cs_hold), and `handoff_begin →
/// handoff_end` builds [`handoff_gap`](Self::handoff_gap), all keyed by MH.
///
/// # Examples
///
/// ```
/// use mobidist_net::metrics::Metrics;
/// use mobidist_net::obs::TraceEvent;
/// use mobidist_net::ids::MhId;
/// use mobidist_net::time::SimTime;
///
/// let mut m = Metrics::default();
/// m.observe(SimTime::from_ticks(10), &TraceEvent::CsRequest { mh: MhId(0) });
/// m.observe(SimTime::from_ticks(30), &TraceEvent::CsEnter { mh: MhId(0) });
/// m.observe(SimTime::from_ticks(45), &TraceEvent::CsExit { mh: MhId(0) });
/// assert_eq!(m.cs_wait.sum(), 20);
/// assert_eq!(m.cs_hold.sum(), 15);
/// assert_eq!(m.kind_count("cs_enter"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Total events observed.
    pub events: Counter,
    /// Events per kind name (see [`TraceEvent::name`]).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Charged fixed-network messages derived from the stream
    /// ([`TraceEvent::fixed_msgs`] summed).
    pub fixed_msgs: Counter,
    /// Charged wireless-channel uses derived from the stream
    /// ([`TraceEvent::wireless_msgs`] summed).
    pub wireless_msgs: Counter,
    /// Ticks from `cs_request` to the matching `cs_enter`, per MH.
    pub cs_wait: Histogram,
    /// Ticks from `cs_enter` to the matching `cs_exit`, per MH.
    pub cs_hold: Histogram,
    /// Ticks from `handoff_begin` to the matching `handoff_end`, per MH —
    /// the between-cells blackout the algorithm must ride out.
    pub handoff_gap: Histogram,
    /// Number of MHs already waiting for the CS, sampled at each
    /// `cs_request` (a queue-depth histogram).
    pub cs_queue_depth: Histogram,
    waiting: u32,
    wait_spans: SpanTracker,
    hold_spans: SpanTracker,
    handoff_spans: SpanTracker,
}

impl Metrics {
    /// Count of observed events with the given kind name.
    pub fn kind_count(&self, name: &str) -> u64 {
        self.by_kind.get(name).copied().unwrap_or(0)
    }

    /// Folds one event into the aggregates.
    pub fn observe(&mut self, at: SimTime, ev: &TraceEvent) {
        self.events.inc();
        *self.by_kind.entry(ev.name()).or_insert(0) += 1;
        self.fixed_msgs.add(ev.fixed_msgs());
        self.wireless_msgs.add(ev.wireless_msgs());
        match *ev {
            TraceEvent::CsRequest { mh } => {
                self.cs_queue_depth.record(self.waiting as u64);
                self.waiting += 1;
                self.wait_spans.begin(mh.0, at);
            }
            TraceEvent::CsEnter { mh } => {
                self.waiting = self.waiting.saturating_sub(1);
                if let Some(d) = self.wait_spans.end(mh.0, at) {
                    self.cs_wait.record(d);
                }
                self.hold_spans.begin(mh.0, at);
            }
            TraceEvent::CsExit { mh } => {
                if let Some(d) = self.hold_spans.end(mh.0, at) {
                    self.cs_hold.record(d);
                }
            }
            TraceEvent::HandoffBegin { mh, .. } => {
                self.handoff_spans.begin(mh.0, at);
            }
            TraceEvent::HandoffEnd { mh, .. } => {
                if let Some(d) = self.handoff_spans.end(mh.0, at) {
                    self.handoff_gap.record(d);
                }
            }
            _ => {}
        }
    }

    /// Forgets everything, including open spans.
    pub fn clear(&mut self) {
        *self = Metrics::default();
    }
}

/// A [`TraceSink`] that aggregates [`Metrics`] live, for in-process
/// monitoring without writing a trace file.
///
/// # Examples
///
/// ```
/// use mobidist_net::metrics::MetricsSink;
/// use mobidist_net::obs::TraceSink;
/// let sink = MetricsSink::default();
/// assert_eq!(sink.metrics().events.get(), 0);
/// ```
#[derive(Debug, Default)]
pub struct MetricsSink {
    metrics: Metrics,
}

impl MetricsSink {
    /// Read access to the aggregates so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the sink, returning the aggregates.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, at: SimTime, _seq: u64, ev: &TraceEvent) {
        self.metrics.observe(at, ev);
    }

    fn rewind(&mut self) {
        self.metrics.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MhId, MssId};

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_range(0), (0, 1));
        assert_eq!(Histogram::bucket_range(3), (4, 8));
        assert_eq!(Histogram::bucket_range(64).1, u64::MAX);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Median falls in bucket [64,128): upper bound clamped to max.
        assert!(h.quantile(0.5) >= 63);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.iter_buckets().map(|(_, _, c)| c).sum::<u64>(), 100);
        let rendered = h.to_string();
        assert!(rendered.contains('#'));
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn spans_pair_begin_and_end() {
        let mut m = Metrics::default();
        let t = SimTime::from_ticks;
        m.observe(
            t(5),
            &TraceEvent::HandoffBegin {
                mh: MhId(1),
                from: MssId(0),
            },
        );
        m.observe(
            t(9),
            &TraceEvent::HandoffEnd {
                mh: MhId(1),
                to: MssId(1),
                prev: Some(MssId(0)),
            },
        );
        // Unmatched end: ignored.
        m.observe(
            t(11),
            &TraceEvent::HandoffEnd {
                mh: MhId(2),
                to: MssId(1),
                prev: None,
            },
        );
        assert_eq!(m.handoff_gap.count(), 1);
        assert_eq!(m.handoff_gap.sum(), 4);
        assert_eq!(m.kind_count("handoff_end"), 2);
    }

    #[test]
    fn queue_depth_tracks_concurrent_waiters() {
        let mut m = Metrics::default();
        let t = SimTime::from_ticks;
        m.observe(t(1), &TraceEvent::CsRequest { mh: MhId(0) }); // depth 0
        m.observe(t(2), &TraceEvent::CsRequest { mh: MhId(1) }); // depth 1
        m.observe(t(3), &TraceEvent::CsEnter { mh: MhId(0) });
        m.observe(t(4), &TraceEvent::CsRequest { mh: MhId(2) }); // depth 1
        assert_eq!(m.cs_queue_depth.count(), 3);
        assert_eq!(m.cs_queue_depth.sum(), 2);
        assert_eq!(m.cs_wait.count(), 1);
    }

    #[test]
    fn derived_message_classes_accumulate() {
        let mut m = Metrics::default();
        let t = SimTime::from_ticks;
        m.observe(
            t(1),
            &TraceEvent::FixedSend {
                from: MssId(0),
                to: MssId(1),
            },
        );
        m.observe(
            t(2),
            &TraceEvent::UpSend {
                mh: MhId(0),
                mss: MssId(0),
            },
        );
        m.observe(
            t(3),
            &TraceEvent::CellBroadcast {
                mss: MssId(0),
                listeners: 5,
            },
        );
        m.observe(
            t(4),
            &TraceEvent::DownRecv {
                mh: MhId(0),
                mss: MssId(0),
            },
        );
        assert_eq!(m.fixed_msgs.get(), 1);
        assert_eq!(m.wireless_msgs.get(), 2);
        assert_eq!(m.events.get(), 4);
    }

    #[test]
    fn metrics_sink_rewinds_clean() {
        let mut s = MetricsSink::default();
        s.record(SimTime::ZERO, 0, &TraceEvent::CsRequest { mh: MhId(0) });
        assert_eq!(s.metrics().events.get(), 1);
        s.rewind();
        assert_eq!(s.metrics().events.get(), 0);
        assert_eq!(s.metrics().cs_queue_depth.count(), 0);
    }
}
