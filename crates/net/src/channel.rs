//! FIFO channel machinery.
//!
//! The system model requires: reliable FIFO delivery between any two MSSs
//! (with arbitrary latency), FIFO delivery on each wireless channel between
//! an MSS and a local MH, and — for algorithms like L1 that run directly on
//! MHs — a *logical* FIFO channel between any pair of MHs regardless of
//! location. The first two are enforced by [`FifoChains`]: a delivery may
//! never be scheduled before the previous delivery on the same directed
//! channel. The third is enforced end-to-end by [`ReorderBuffers`], which
//! releases MH→MH messages to the destination in send order even when
//! re-searches make them arrive out of order. The paper calls this an
//! "additional burden on the underlying network protocols" of L1; the buffer
//! occupancy counter quantifies it.

use crate::hash::FxHashMap;
use crate::ids::{MhId, MssId};
use crate::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// A directed channel on which FIFO order must hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainKey {
    /// Wired channel between two MSSs (directed).
    Fixed(MssId, MssId),
    /// Wireless downlink from an MSS to a local MH.
    Down(MssId, MhId),
    /// Wireless uplink from an MH to its local MSS.
    Up(MhId, MssId),
}

/// Tracks the last scheduled delivery per directed channel and clamps new
/// deliveries to preserve FIFO order.
///
/// # Examples
///
/// ```
/// use mobidist_net::channel::{ChainKey, FifoChains};
/// use mobidist_net::ids::MssId;
/// use mobidist_net::time::SimTime;
///
/// let mut f = FifoChains::default();
/// let k = ChainKey::Fixed(MssId(0), MssId(1));
/// let t1 = f.schedule(k, SimTime::from_ticks(10));
/// let t2 = f.schedule(k, SimTime::from_ticks(5)); // would overtake: clamped
/// assert!(t2 >= t1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoChains {
    // Keyed lookups only — never iterated, so the deterministic fast hasher
    // cannot influence event ordering.
    last: FxHashMap<ChainKey, SimTime>,
}

impl FifoChains {
    /// Returns the actual delivery time for a message that would naively
    /// arrive at `earliest`, clamping so it cannot overtake the previous
    /// message on the same channel, and records it.
    pub fn schedule(&mut self, key: ChainKey, earliest: SimTime) -> SimTime {
        let t = match self.last.get(&key) {
            Some(prev) if *prev > earliest => *prev,
            _ => earliest,
        };
        self.last.insert(key, t);
        t
    }

    /// Forgets a channel's history (used when an MH leaves a cell: the
    /// wireless channel to the old cell ceases to exist).
    pub fn reset(&mut self, key: ChainKey) {
        self.last.remove(&key);
    }

    /// Number of channels with recorded history.
    pub fn len(&self) -> usize {
        self.last.len()
    }

    /// True when no channel has history.
    pub fn is_empty(&self) -> bool {
        self.last.is_empty()
    }
}

/// Per-(source MH, destination MH) sequencing state.
#[derive(Debug, Clone)]
struct PairState<M> {
    next_expected: u64,
    held: BTreeMap<u64, M>,
    /// Sequence numbers the transport aborted (e.g. the destination was
    /// disconnected); skipped rather than waited for.
    cancelled: BTreeSet<u64>,
}

impl<M> Default for PairState<M> {
    fn default() -> Self {
        PairState {
            next_expected: 0,
            held: BTreeMap::new(),
            cancelled: BTreeSet::new(),
        }
    }
}

impl<M> PairState<M> {
    /// Releases every in-order message, skipping cancelled slots. Returns
    /// `(released, held_delta)` where `held_delta` is how many held entries
    /// were drained.
    fn drain(&mut self) -> (Vec<M>, usize) {
        let mut out = Vec::new();
        let mut drained = 0;
        loop {
            if let Some(m) = self.held.remove(&self.next_expected) {
                self.next_expected += 1;
                drained += 1;
                out.push(m);
            } else if self.cancelled.remove(&self.next_expected) {
                self.next_expected += 1;
            } else {
                break;
            }
        }
        (out, drained)
    }
}

/// End-to-end reorder buffers realising logical FIFO channels between MH
/// pairs.
///
/// The sender side assigns a per-pair sequence number with [`next_seq`]; the
/// receiver side passes arrivals to [`accept`], which returns the messages
/// now deliverable, in order.
///
/// [`next_seq`]: ReorderBuffers::next_seq
/// [`accept`]: ReorderBuffers::accept
///
/// # Examples
///
/// ```
/// use mobidist_net::channel::ReorderBuffers;
/// use mobidist_net::ids::MhId;
///
/// let mut b: ReorderBuffers<&'static str> = ReorderBuffers::default();
/// let (a, z) = (MhId(0), MhId(1));
/// let s0 = b.next_seq(a, z);
/// let s1 = b.next_seq(a, z);
/// assert_eq!(b.accept(a, z, s1, "second"), Vec::<&str>::new()); // held back
/// assert_eq!(b.accept(a, z, s0, "first"), vec!["first", "second"]);
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffers<M> {
    // Keyed lookups only — never iterated (see FifoChains::last).
    tx_seq: FxHashMap<(MhId, MhId), u64>,
    rx: FxHashMap<(MhId, MhId), PairState<M>>,
    /// Peak number of simultaneously-held (out-of-order) messages.
    peak_held: usize,
    currently_held: usize,
}

impl<M> Default for ReorderBuffers<M> {
    fn default() -> Self {
        ReorderBuffers {
            tx_seq: FxHashMap::default(),
            rx: FxHashMap::default(),
            peak_held: 0,
            currently_held: 0,
        }
    }
}

impl<M> ReorderBuffers<M> {
    /// Allocates the next sequence number for the `src → dst` pair.
    pub fn next_seq(&mut self, src: MhId, dst: MhId) -> u64 {
        let c = self.tx_seq.entry((src, dst)).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    /// Accepts an arrival and returns every message now deliverable in send
    /// order (empty if `seq` is ahead of the next expected message).
    ///
    /// Duplicate or already-delivered sequence numbers are ignored.
    pub fn accept(&mut self, src: MhId, dst: MhId, seq: u64, msg: M) -> Vec<M> {
        let st = self.rx.entry((src, dst)).or_default();
        if seq < st.next_expected || st.held.contains_key(&seq) {
            return Vec::new(); // duplicate
        }
        st.held.insert(seq, msg);
        self.currently_held += 1;
        self.peak_held = self.peak_held.max(self.currently_held);
        let (out, drained) = st.drain();
        self.currently_held -= drained;
        out
    }

    /// Marks `seq` as aborted by the transport (its message will never
    /// arrive) and returns any successors that become deliverable.
    pub fn cancel(&mut self, src: MhId, dst: MhId, seq: u64) -> Vec<M> {
        let st = self.rx.entry((src, dst)).or_default();
        if seq < st.next_expected {
            return Vec::new(); // already delivered or skipped
        }
        st.cancelled.insert(seq);
        let (out, drained) = st.drain();
        self.currently_held -= drained;
        out
    }

    /// Messages currently held back waiting for a predecessor.
    pub fn held(&self) -> usize {
        self.currently_held
    }

    /// Peak of [`held`](ReorderBuffers::held) over the run — the buffering
    /// burden L1 places on the network layer.
    pub fn peak_held(&self) -> usize {
        self.peak_held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_chain_clamps_overtaking() {
        let mut f = FifoChains::default();
        let k = ChainKey::Fixed(MssId(0), MssId(1));
        assert_eq!(f.schedule(k, SimTime::from_ticks(10)).ticks(), 10);
        assert_eq!(f.schedule(k, SimTime::from_ticks(4)).ticks(), 10);
        assert_eq!(f.schedule(k, SimTime::from_ticks(12)).ticks(), 12);
    }

    #[test]
    fn distinct_chains_do_not_interact() {
        let mut f = FifoChains::default();
        let ab = ChainKey::Fixed(MssId(0), MssId(1));
        let ba = ChainKey::Fixed(MssId(1), MssId(0));
        f.schedule(ab, SimTime::from_ticks(100));
        assert_eq!(f.schedule(ba, SimTime::from_ticks(3)).ticks(), 3);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn reset_forgets_history() {
        let mut f = FifoChains::default();
        let k = ChainKey::Down(MssId(0), MhId(1));
        f.schedule(k, SimTime::from_ticks(50));
        f.reset(k);
        assert_eq!(f.schedule(k, SimTime::from_ticks(2)).ticks(), 2);
    }

    #[test]
    fn reorder_in_order_passthrough() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(0), MhId(1));
        for i in 0..5u64 {
            let s = b.next_seq(a, z);
            assert_eq!(s, i);
            assert_eq!(b.accept(a, z, s, i as u32), vec![i as u32]);
        }
        assert_eq!(b.held(), 0);
        assert_eq!(b.peak_held(), 1);
    }

    #[test]
    fn reorder_releases_in_send_order() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(2), MhId(3));
        let s: Vec<u64> = (0..4).map(|_| b.next_seq(a, z)).collect();
        assert!(b.accept(a, z, s[2], 2).is_empty());
        assert!(b.accept(a, z, s[1], 1).is_empty());
        assert_eq!(b.held(), 2);
        assert_eq!(b.accept(a, z, s[0], 0), vec![0, 1, 2]);
        assert_eq!(b.accept(a, z, s[3], 3), vec![3]);
        assert_eq!(b.held(), 0);
        assert!(b.peak_held() >= 2);
    }

    #[test]
    fn reorder_ignores_duplicates() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(0), MhId(1));
        let s0 = b.next_seq(a, z);
        assert_eq!(b.accept(a, z, s0, 7), vec![7]);
        assert!(b.accept(a, z, s0, 7).is_empty());
    }

    #[test]
    fn pairs_are_independent_and_directed() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(0), MhId(1));
        let s_az = b.next_seq(a, z);
        let s_za = b.next_seq(z, a);
        assert_eq!(s_az, 0);
        assert_eq!(s_za, 0);
        assert_eq!(b.accept(z, a, s_za, 9), vec![9]);
        assert_eq!(b.accept(a, z, s_az, 8), vec![8]);
    }
}
