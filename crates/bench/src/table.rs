//! Plain-text table rendering for experiment output.
//!
//! Every experiment produces a [`Table`] printed as aligned
//! markdown-compatible text, so `cargo bench` output can be pasted straight
//! into EXPERIMENTS.md.

use std::fmt;

/// A titled table of strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n## {}\n", self.title)?;
        let w = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<width$} |", c, width = w[i]));
            }
            s
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let mut sep = String::from("|");
        for width in &w {
            sep.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        writeln!(f, "{sep}")?;
        for r in &self.rows {
            writeln!(f, "{}", fmt_row(r))?;
        }
        Ok(())
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as `NN.N%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("T", &["a", "longer"]);
        t.push(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## T"));
        assert!(s.contains("| a | longer |"));
        assert!(s.contains("| 1 | 2      |"));
        assert!(s.contains("|---|--------|"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("T", &["x", "y"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }
}
