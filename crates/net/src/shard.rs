//! Space-sharded simulation kernel for million-host scale runs.
//!
//! The generic [`kernel`](crate::kernel) executes one global event queue —
//! ideal for protocol work, but a single thread and a global total order are
//! the wrong shape for populations six orders of magnitude above the paper's
//! examples. This module shards the *space* of the simulation instead: the
//! `M` MSS cells are partitioned across `S` workers by initial host weight
//! (see [`plan_partition`]), each worker owns the hosts currently resident
//! in its cells, and the workers advance a shared logical clock with
//! **conservative time synchronisation**.
//!
//! # Lookahead and windows
//!
//! The wired plane gives the sync protocol its lookahead: no influence can
//! cross a cell boundary in less than
//! [`LatencyModel::lower_bound`](crate::latency::LatencyModel::lower_bound)
//! ticks (`W`). Simulated time is cut into windows `[kW, (k+1)W)`. Within a
//! window every worker runs its own event queue independently — any event it
//! pops was already enqueued locally, and nothing a *remote* worker does in
//! the same window can affect it, because every cross-cell transfer sent in
//! window `k` is timestamped `≥ (k+1)W` (all cross-cell delays are clamped
//! to `≥ W`).
//!
//! Workers exchange transfers over per-`(src, dst)` double-buffered SPSC
//! [`Lane`]s and meet at **one** sense-reversing [`EpochBarrier`] per
//! window (the seed implementation paid two `std::sync::Barrier` rendezvous
//! and a mutex per send). Each barrier round `r` runs, per worker:
//!
//! 1. **drain** — swap out the buffer every producer filled in round
//!    `r - 1` (the lane's epoch check proves nobody is still writing it),
//!    k-way-merge the buffers in `(arrival, src_cell, src_seq)` order, and
//!    push into the local queue;
//! 2. **process** — pop all events `< (k+1)W`, appending outgoing transfers
//!    to the round-`r` side of each lane (no lock: one producer per lane);
//! 3. **publish + barrier** — release the round on every outgoing lane,
//!    post the worker's next pending tick, and cross the barrier once.
//!
//! After the barrier every worker sees every worker's next pending tick and
//! deterministically **fast-forwards**: if the earliest pending event or
//! in-flight arrival anywhere lies in window `j > k + 1`, the next round
//! processes window `j` directly — one barrier round instead of `j - k`
//! — and the skipped stretch is recorded on the next
//! [`TraceEvent::ShardSync`]'s `skipped` count.
//!
//! # Determinism
//!
//! A sharded run is **bit-identical at every worker count**, which the
//! `shard_equivalence` suite pins. The induction:
//!
//! * per-host decisions draw from a *stateless* RNG keyed by
//!   `(seed, host, decision counter)` — no draw interleaving exists to
//!   depend on;
//! * hosts interact only with the cell they occupy, and a host's entire
//!   record travels inside its single pending event, so no two workers ever
//!   share mutable host state;
//! * **every** cross-cell transfer goes through a lane, *including*
//!   transfers whose destination cell lives on the sending worker — the
//!   queue/lane residency of any in-flight event is therefore identical
//!   at every `S`;
//! * lane drains merge in `(arrival, source cell, per-worker send seq)`
//!   order — a total order, because a worker's `src_cell`s are cells it
//!   owns — so the commit order at a destination never depends on thread
//!   timing *or* on which lane carried the transfer;
//! * the fast-forward jump is a pure function of the global minimum pending
//!   tick, which is partition-independent (the union of queue contents and
//!   in-flight transfers does not depend on who owns what), so every worker
//!   — and every shard count — skips exactly the same windows;
//! * cell ownership is planned once, before the workers start, from the
//!   spec alone; ledger counters are commutative sums
//!   ([`CostLedger::merge`]) and the final digest hashes per-host state in
//!   `MhId` order, so neither depends on how cells were partitioned.
//!
//! # Workload and charging
//!
//! The sharded kernel runs the paper's *mobility churn* workload: every MH
//! alternates an exponential dwell in a cell with an exponential gap
//! between cells, and each inter-cell `join(mh, prev)` makes the new MSS
//! send one wired handoff notification back to the previous MSS. Wired
//! messages are charged **at delivery** (the receiving worker owns the
//! charge), and each delivery emits one
//! [`TraceEvent::ShardRecv`] — so `tracereport --check`'s
//! `fixed_msgs` identity holds per shard with no special casing. Leaves and
//! joins emit the ordinary `HandoffBegin`/`HandoffEnd` events, keeping the
//! `moves`/`handoffs` identities intact, and every *processed* window
//! boundary emits a [`TraceEvent::ShardSync`] stamped at the window-end
//! time so per-shard `(t, seq)` stays strictly increasing; summing
//! `1 + skipped` over a shard's syncs recovers the full window count.
//!
//! # Memory
//!
//! There is no per-host array at all: a host's record (20 bytes) lives
//! inside its one pending event, so resident state is one queue entry per
//! host — tens of bytes — and the only allocations on the hot path are the
//! amortised growth of the queues and lane buffers. Lane buffers circulate
//! between each lane and its consumer's drain scratch (`mem::swap`, never a
//! fresh `Vec`), which a debug assertion pins: a drained buffer's capacity
//! never shrinks across rounds, as it would if one were reallocated.
//!
//! # Examples
//!
//! ```
//! use mobidist_net::shard::{run_scale, ScaleSpec};
//!
//! let spec = ScaleSpec::new(8, 200).with_seed(7);
//! let a = run_scale(&spec, 1);
//! let b = run_scale(&spec, 4);
//! assert_eq!(a.digest, b.digest);
//! assert_eq!(a.ledger, b.ledger);
//! ```

use crate::config::{delivery_default, DeliveryMode, Placement};
use crate::cost::CostModel;
use crate::event::EventQueue;
use crate::fingerprint::{CanonHash, CanonHasher, Fingerprint};
use crate::ids::{MhId, MssId};
use crate::lanes::{EpochBarrier, Lane};
use crate::latency::LatencyModel;
use crate::ledger::CostLedger;
use crate::mobility::MovePattern;
use crate::obs::{TraceEvent, TraceSink};
use crate::rng::SimRng;
use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// Canonical description of one scale-curve run (experiment E12).
///
/// The worker count is deliberately **not** part of the spec: results are
/// independent of it, so two runs of the same spec at different shard
/// counts share one fingerprint (and one run-cache identity, were the scale
/// experiment cached — it is not, precisely so the CI shard-soundness gate
/// re-executes both legs).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSpec {
    /// Number of MSS cells, `M`.
    pub num_mss: usize,
    /// Number of mobile hosts, `N`.
    pub num_mh: usize,
    /// Mean ticks an MH dwells in a cell before leaving.
    pub mean_dwell: u64,
    /// Mean ticks an MH spends between cells (clamped to the lookahead).
    pub mean_gap: u64,
    /// Fixed wired MSS↔MSS latency; its lower bound is the sync lookahead.
    pub wired_latency: u64,
    /// How a leaving MH picks its next cell.
    pub pattern: MovePattern,
    /// How hosts are placed into cells at t = 0. The partition planner
    /// weighs cells by this initial occupancy, so a skewed placement does
    /// not pile hot cells onto one worker.
    pub placement: Placement,
    /// Simulated horizon in ticks; events at or after it never execute.
    pub horizon: u64,
    /// Message-cost parameters for the ledger.
    pub cost: CostModel,
    /// Root seed; together with the other fields it fully determines the
    /// run at every shard count.
    pub seed: u64,
}

impl ScaleSpec {
    /// A mobility-churn spec over `m` cells and `n` hosts with the default
    /// dwell/gap/latency parameters used by the scale curve.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n == 0`.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0, "at least one MSS is required");
        assert!(n > 0, "at least one MH is required");
        ScaleSpec {
            num_mss: m,
            num_mh: n,
            mean_dwell: 500,
            mean_gap: 20,
            wired_latency: 5,
            pattern: MovePattern::UniformRandom,
            placement: Placement::RoundRobin,
            horizon: 2_000,
            cost: CostModel::default(),
            seed: 0,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the simulated horizon.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Replaces the mobility dwell/gap means.
    pub fn with_churn(mut self, mean_dwell: u64, mean_gap: u64) -> Self {
        self.mean_dwell = mean_dwell;
        self.mean_gap = mean_gap;
        self
    }

    /// Replaces the move pattern.
    pub fn with_pattern(mut self, pattern: MovePattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Replaces the initial placement.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The conservative lookahead `W`: the wired plane's minimum latency,
    /// below which no cross-cell influence can travel.
    pub fn lookahead(&self) -> u64 {
        LatencyModel::Fixed(self.wired_latency).lower_bound()
    }

    /// Closed-form expected move count: each host completes one move per
    /// `mean_dwell + mean_gap` ticks on average. E12 reports measured
    /// moves against this prediction as a model-fidelity check.
    pub fn predicted_moves(&self) -> u64 {
        self.num_mh as u64 * self.horizon / (self.mean_dwell + self.mean_gap).max(1)
    }

    /// Calls `f` with each host's initial cell, in host order. One
    /// deterministic definition shared by the seeding loop and the
    /// partition planner, so both always agree on where every host starts.
    fn place_hosts(&self, mut f: impl FnMut(u32)) {
        let m = self.num_mss;
        // Domain-separated stream for `Placement::Random`, mirroring the
        // classic kernel's forked placement stream.
        let mut place_rng = SimRng::seed_from(self.seed ^ 0x706C_6163_656D_656E); // "placemen"
        for h in 0..self.num_mh {
            let cell = match self.placement {
                Placement::RoundRobin => (h % m) as u32,
                Placement::Random => place_rng.below(m as u64) as u32,
                Placement::Clustered { cells } => (h % cells.clamp(1, m)) as u32,
            };
            f(cell);
        }
    }
}

impl CanonHash for ScaleSpec {
    fn canon_hash(&self, h: &mut CanonHasher) {
        // Destructured so a new spec field without a hash update is a
        // compile error (the shard count is intentionally absent — it is a
        // run parameter, not part of the spec).
        let ScaleSpec {
            num_mss,
            num_mh,
            mean_dwell,
            mean_gap,
            wired_latency,
            pattern,
            placement,
            horizon,
            cost,
            seed,
        } = self;
        h.write_u64(*num_mss as u64);
        h.write_u64(*num_mh as u64);
        h.write_u64(*mean_dwell);
        h.write_u64(*mean_gap);
        h.write_u64(*wired_latency);
        pattern.canon_hash(h);
        placement.canon_hash(h);
        h.write_u64(*horizon);
        cost.canon_hash(h);
        h.write_u64(*seed);
    }
}

/// Result of one sharded scale run. Every field except
/// [`shards`](Self::shards) is identical at every worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Merged cost ledger (per-shard ledgers folded with
    /// [`CostLedger::merge`]).
    pub ledger: CostLedger,
    /// Simulation events executed (leaves + joins + wired deliveries).
    pub events: u64,
    /// Conservative-sync windows the run advanced through (including
    /// fast-forwarded ones).
    pub windows: u64,
    /// Windows the fast-forward skipped in bulk instead of paying a
    /// barrier round for. The skip schedule is a pure function of
    /// simulation state, so this too is identical at every worker count.
    pub skipped_windows: u64,
    /// Canonical digest of the complete final state — every host record
    /// (in `MhId` order) plus every undelivered wired message.
    pub digest: Fingerprint,
    /// Nominal resident state footprint: one queue entry per host. The
    /// scale curve divides this by `N` for its bytes/host column.
    pub state_bytes: u64,
    /// Lookahead `W` the run synchronised on.
    pub lookahead: u64,
    /// Worker count actually used (requested count clamped to `[1, M]`).
    pub shards: usize,
}

/// The complete per-host state, resident inside the host's single pending
/// event: current (or, mid-move, target) cell, home base, the stateless-RNG
/// decision counter, and completed moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HostRec {
    id: u32,
    home: u32,
    cell: u32,
    ctr: u32,
    moves: u32,
}

/// A worker-local scheduled event.
#[derive(Debug, Clone, Copy)]
enum SEv {
    /// The host leaves `rec.cell`.
    Leave(HostRec),
    /// The host joins `rec.cell`, arriving from cell `.1`.
    Join(HostRec, u32),
    /// A wired handoff notification from cell `.0` arrives at cell `.1`.
    Wired(u32, u32),
}

/// A cross-cell message in flight between workers. `src_cell` and
/// `src_seq` (a per-sending-worker monotone counter) make the drain order
/// at the destination a pure function of simulation state.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    arrival: u64,
    src_cell: u32,
    src_seq: u64,
    ev: SEv,
}

/// The planner's fixed cell→worker assignment for one run.
///
/// Computed once by [`plan_partition`] before the workers start and never
/// revised — results are partition-independent (see the module docs), so
/// the plan is free to chase balance without risking determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// `owner[cell]` is the worker index that owns the cell.
    pub owner: Vec<u32>,
    /// Initial host count owned by each worker (the bin-packing loads).
    pub load: Vec<u64>,
}

/// Host-weighted partition of cells over workers: greedy bin-packing on
/// initial occupancy.
///
/// Cells are taken heaviest-first (ties by cell id) and each is assigned to
/// the currently lightest worker (ties by worker id), so a placement or
/// mobility pattern that packs hosts into a few hot cells spreads those
/// cells across workers instead of piling them onto whichever worker owns
/// the hot block. With uniform occupancy this degenerates to a round-robin
/// scatter, which is just as balanced as the old contiguous block partition
/// — and since **all** transfers travel through lanes, ownership locality
/// buys nothing a contiguous layout would miss.
///
/// `shards` is clamped to `[1, M]` exactly as [`run_scale`] clamps it.
pub fn plan_partition(spec: &ScaleSpec, shards: usize) -> PartitionPlan {
    let m = spec.num_mss;
    let shards = shards.clamp(1, m);
    let mut weight = vec![0u64; m];
    spec.place_hosts(|cell| weight[cell as usize] += 1);
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&c| (std::cmp::Reverse(weight[c as usize]), c));
    let mut owner = vec![0u32; m];
    let mut load = vec![0u64; shards];
    for c in order {
        let lightest = (0..shards).min_by_key(|&s| (load[s], s)).unwrap_or(0);
        owner[c as usize] = lightest as u32;
        load[lightest] += weight[c as usize];
    }
    PartitionPlan { owner, load }
}

/// The stateless per-decision RNG: host id in the high seed bits, decision
/// counter in the low bits, decorrelated by `seed_from`'s splitmix rounds.
#[inline]
fn decision_rng(seed: u64, id: u32, ctr: u32) -> SimRng {
    SimRng::seed_from(seed ^ ((id as u64) << 32) ^ ctr as u64)
}

/// One resident host flattened for digesting:
/// `(id, tag, due, cell, home, ctr, moves, prev)`.
type HostRow = (u32, u8, u64, u32, u32, u32, u32, u32);

/// Everything a worker hands back when its windows are done.
struct ShardOut {
    ledger: CostLedger,
    events: u64,
    skipped: u64,
    hosts: Vec<HostRow>,
    /// `(due, from, to)` for each undelivered wired notification.
    wires: Vec<(u64, u32, u32)>,
    sink: Option<Box<dyn TraceSink>>,
}

/// Runs `spec` across `shards` workers with tracing disabled, under the
/// process-default [`DeliveryMode`] (see `MOBIDIST_DELIVERY`).
///
/// See [`run_scale_traced`] for the full contract.
pub fn run_scale(spec: &ScaleSpec, shards: usize) -> ScaleReport {
    run_scale_with_mode(spec, shards, delivery_default())
}

/// Runs `spec` across `shards` workers under an explicit [`DeliveryMode`],
/// tracing disabled.
///
/// In `Batched` mode each worker coalesces consecutive same-tick wired
/// deliveries into one fused ledger charge; every delivery still emits its
/// own [`TraceEvent::ShardRecv`] in the same order and counts as one event,
/// so reports are bit-identical across modes — the `delivery_equivalence`
/// suite pins this at several shard counts.
pub fn run_scale_with_mode(spec: &ScaleSpec, shards: usize, mode: DeliveryMode) -> ScaleReport {
    run_scale_traced_with_mode(spec, shards, Vec::new(), mode).0
}

/// Runs `spec` across `shards` workers, feeding each worker's trace into
/// its own [`TraceSink`].
///
/// `sinks` must be empty (tracing disabled, zero per-event cost) or hold
/// exactly one sink per *effective* worker (`shards` clamped to `[1, M]`).
/// Each shard is recorded as an independent run — dense `seq` from 0,
/// strictly increasing `(t, seq)`, and a `finish` carrying that shard's own
/// ledger — so `tracereport --check` validates every shard separately. The
/// sinks are returned after their `finish` so callers can inspect or drop
/// (and thereby flush) them.
///
/// # Panics
///
/// Panics if `sinks` is non-empty with a length other than the effective
/// worker count, or if a worker thread panics.
pub fn run_scale_traced(
    spec: &ScaleSpec,
    shards: usize,
    sinks: Vec<Box<dyn TraceSink>>,
) -> (ScaleReport, Vec<Box<dyn TraceSink>>) {
    run_scale_traced_with_mode(spec, shards, sinks, delivery_default())
}

/// [`run_scale_traced`] with an explicit [`DeliveryMode`] (see
/// [`run_scale_with_mode`] for what the mode changes — and what it
/// provably does not).
pub fn run_scale_traced_with_mode(
    spec: &ScaleSpec,
    shards: usize,
    sinks: Vec<Box<dyn TraceSink>>,
    mode: DeliveryMode,
) -> (ScaleReport, Vec<Box<dyn TraceSink>>) {
    let m = spec.num_mss;
    let n = spec.num_mh;
    let shards = shards.clamp(1, m);
    assert!(
        sinks.is_empty() || sinks.len() == shards,
        "expected 0 or {shards} trace sinks, got {}",
        sinks.len()
    );
    let w = spec.lookahead();
    let windows = spec.horizon.div_ceil(w);
    let plan = plan_partition(spec, shards);

    // Seed every host sequentially (host order ⇒ identical per-queue
    // insertion order at every shard count): host h dwells in its placement
    // cell, then leaves. Decision 0 is the initial dwell draw.
    let mut queues: Vec<EventQueue<SEv>> = plan
        .load
        .iter()
        .map(|&hosts| EventQueue::with_capacity(hosts as usize + 16))
        .collect();
    let mut h: u32 = 0;
    spec.place_hosts(|cell| {
        let mut rng = decision_rng(spec.seed, h, 0);
        let dwell = rng.exp_delay(spec.mean_dwell);
        let rec = HostRec {
            id: h,
            home: cell,
            cell,
            ctr: 1,
            moves: 0,
        };
        queues[plan.owner[cell as usize] as usize]
            .push(SimTime::from_ticks(dwell), SEv::Leave(rec));
        h += 1;
    });

    // One SPSC lane per ordered worker pair, a single fused barrier, and a
    // per-worker slot pair for the fast-forward minimum. The slots are
    // double-buffered by round parity like the lane buffers: a worker one
    // round ahead writes the other parity, so slow workers still read an
    // intact snapshot of the round they just crossed the barrier for.
    let lanes: Vec<Lane<Transfer>> = (0..shards * shards).map(|_| Lane::new()).collect();
    let barrier = EpochBarrier::new(shards);
    let mins: Vec<AtomicU64> = (0..2 * shards).map(|_| AtomicU64::new(u64::MAX)).collect();
    let owner = &plan.owner;
    let lanes = &lanes;
    let barrier = &barrier;
    let mins = &mins;

    let mut slots: Vec<Option<Box<dyn TraceSink>>> = if sinks.is_empty() {
        (0..shards).map(|_| None).collect()
    } else {
        sinks.into_iter().map(Some).collect()
    };

    let mut outs: Vec<ShardOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .drain(..)
            .zip(slots.drain(..))
            .enumerate()
            .map(|(shard, (queue, sink))| {
                scope.spawn(move || {
                    run_shard(
                        spec, shard, shards, w, windows, queue, owner, lanes, barrier, mins, sink,
                        mode,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Merge: ledgers are commutative sums; the digest hashes hosts in MhId
    // order and wires in (due, from, to) order, so neither depends on the
    // partition.
    let mut ledger = CostLedger::new(0);
    let mut events = 0;
    let mut hosts = Vec::with_capacity(n);
    let mut wires = Vec::new();
    let mut done_sinks = Vec::new();
    let skipped_windows = outs.first().map_or(0, |o| o.skipped);
    for out in &mut outs {
        debug_assert_eq!(
            out.skipped, skipped_windows,
            "fast-forward schedule must be global"
        );
        ledger.merge(&out.ledger);
        events += out.events;
        hosts.append(&mut out.hosts);
        wires.append(&mut out.wires);
        if let Some(s) = out.sink.take() {
            done_sinks.push(s);
        }
    }
    hosts.sort_unstable();
    wires.sort_unstable();
    debug_assert_eq!(hosts.len(), n, "every host must appear exactly once");

    let mut hasher = CanonHasher::new();
    hasher.write_u64(hosts.len() as u64);
    for &(id, tag, due, cell, home, ctr, moves, prev) in &hosts {
        for v in [id as u64, tag as u64, due, cell as u64, home as u64] {
            hasher.write_u64(v);
        }
        hasher.write_u64(ctr as u64);
        hasher.write_u64(moves as u64);
        hasher.write_u64(prev as u64);
    }
    hasher.write_u64(wires.len() as u64);
    for &(due, from, to) in &wires {
        hasher.write_u64(due);
        hasher.write_u64(from as u64);
        hasher.write_u64(to as u64);
    }

    let entry = std::mem::size_of::<SEv>() + 2 * std::mem::size_of::<u64>();
    let report = ScaleReport {
        ledger,
        events,
        windows,
        skipped_windows,
        digest: hasher.finish(),
        state_bytes: n as u64 * entry as u64,
        lookahead: w,
        shards,
    };
    (report, done_sinks)
}

/// One worker: processes its cells' events window by window, exchanging
/// cross-cell transfers over the SPSC lanes at the fused barrier.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    spec: &ScaleSpec,
    shard: usize,
    shards: usize,
    w: u64,
    windows: u64,
    mut queue: EventQueue<SEv>,
    owner: &[u32],
    lanes: &[Lane<Transfer>],
    barrier: &EpochBarrier,
    mins: &[AtomicU64],
    mut sink: Option<Box<dyn TraceSink>>,
    mode: DeliveryMode,
) -> ShardOut {
    let m = spec.num_mss;
    let mut ledger = CostLedger::new(0);
    let mut events = 0u64;
    let mut trace_seq = 0u64;
    let mut send_seq = 0u64;
    let mut total_skipped = 0u64;
    // Pooled drain scratch, one per inbound lane: swapped with the lane
    // buffer each round so the steady state allocates nothing. The
    // capacity watermarks back the debug assertion that the pool really is
    // recycled (a fresh `Vec` would re-enter at capacity 0).
    let mut drain_bufs: Vec<Vec<Transfer>> = (0..shards).map(|_| Vec::new()).collect();
    let mut cursors: Vec<usize> = vec![0; shards];
    // Each lane's two buffers and its drain scratch rotate positions in a
    // 3-cycle (one swap per drain), so the same allocation comes back every
    // third drain — and a `Vec`'s capacity never shrinks. Watermarking
    // `drain count mod 3` per lane pins exactly that.
    #[cfg(debug_assertions)]
    let mut drain_caps: Vec<usize> = vec![0; 3 * shards];

    macro_rules! emit {
        ($at:expr, $ev:expr) => {
            if let Some(s) = sink.as_deref_mut() {
                s.record($at, trace_seq, &$ev);
                trace_seq += 1;
            }
        };
    }

    macro_rules! drain_round {
        ($round:expr) => {{
            let round: u64 = $round;
            for (src, buf) in drain_bufs.iter_mut().enumerate() {
                lanes[src * shards + shard].take(round, buf);
                #[cfg(debug_assertions)]
                {
                    let slot = 3 * src + (round % 3) as usize;
                    debug_assert!(
                        buf.capacity() >= drain_caps[slot],
                        "lane buffer was reallocated instead of recycled"
                    );
                    drain_caps[slot] = buf.capacity();
                }
                // Within one producer the full key is already unique;
                // sorting per lane feeds the cross-lane merge below.
                buf.sort_unstable_by_key(|tr| (tr.arrival, tr.src_cell, tr.src_seq));
            }
            // K-way merge in (arrival, src_cell, src_seq) order — the same
            // total order the seed implementation got from one global sort,
            // because distinct producers send from disjoint cell sets.
            cursors.iter_mut().for_each(|c| *c = 0);
            loop {
                let mut best: Option<(usize, (u64, u32, u64))> = None;
                for (i, buf) in drain_bufs.iter().enumerate() {
                    if let Some(tr) = buf.get(cursors[i]) {
                        let key = (tr.arrival, tr.src_cell, tr.src_seq);
                        if best.is_none_or(|(_, b)| key < b) {
                            best = Some((i, key));
                        }
                    }
                }
                let Some((i, _)) = best else { break };
                let tr = drain_bufs[i][cursors[i]];
                cursors[i] += 1;
                queue.push(SimTime::from_ticks(tr.arrival), tr.ev);
            }
            for buf in drain_bufs.iter_mut() {
                buf.clear();
            }
        }};
    }

    // `round` counts barrier rounds (= processed windows) and selects lane
    // buffer parity; `k` is the simulation window the round processes —
    // they diverge exactly when the fast-forward skips windows.
    let mut round = 0u64;
    let mut k = 0u64;
    let mut skipped = 0u64;
    while k < windows {
        // Drain everything the producers published last round. Transfers
        // sent in window k' arrive ≥ (k'+1)W, so draining at entry of the
        // next *processed* window is always timely.
        if round > 0 {
            drain_round!(round - 1);
        }
        let end = ((k + 1) * w).min(spec.horizon);
        let limit = SimTime::from_ticks(end - 1);
        // Earliest arrival among this round's sends, for the fast-forward.
        let mut sent_min = u64::MAX;

        macro_rules! send {
            ($dst_cell:expr, $arrival:expr, $src_cell:expr, $sev:expr) => {{
                let arrival: u64 = $arrival;
                let tr = Transfer {
                    arrival,
                    src_cell: $src_cell,
                    src_seq: send_seq,
                    ev: $sev,
                };
                send_seq += 1;
                sent_min = sent_min.min(arrival);
                lanes[shard * shards + owner[$dst_cell as usize] as usize].push(round, tr);
            }};
        }

        while let Some((t, ev)) = queue.pop_if_at_or_before(limit) {
            events += 1;
            match ev {
                SEv::Leave(rec) => {
                    emit!(
                        t,
                        TraceEvent::HandoffBegin {
                            mh: MhId(rec.id),
                            from: MssId(rec.cell),
                        }
                    );
                    let mut rng = decision_rng(spec.seed, rec.id, rec.ctr);
                    // The era is `rec.ctr` — bumped on every leave/join pair —
                    // so waypoint/heading derivations replay identically no
                    // matter which worker processes the decision.
                    let next = spec.pattern.next_cell(
                        &mut rng,
                        crate::mobility::MoveCtx {
                            mh: MhId(rec.id),
                            from: MssId(rec.cell),
                            m,
                            home: MssId(rec.home),
                            era: rec.ctr as u64,
                            seed: spec.seed,
                        },
                    );
                    // The gap clamp *is* the conservative-sync contract: a
                    // join sent in window k may not execute before window
                    // k+1, so no cross-cell delay may undercut W.
                    let gap = rng.exp_delay(spec.mean_gap).max(w);
                    let prev = rec.cell;
                    let moved = HostRec {
                        cell: next.0,
                        ctr: rec.ctr + 1,
                        ..rec
                    };
                    send!(next.0, t.ticks() + gap, prev, SEv::Join(moved, prev));
                }
                SEv::Join(mut rec, prev) => {
                    emit!(
                        t,
                        TraceEvent::HandoffEnd {
                            mh: MhId(rec.id),
                            to: MssId(rec.cell),
                            prev: Some(MssId(prev)),
                        }
                    );
                    ledger.moves += 1;
                    rec.moves += 1;
                    if prev != rec.cell {
                        // Handoff state transfer: the new MSS notifies the
                        // previous one over the wired plane; charged at
                        // delivery by the receiving worker.
                        ledger.handoffs += 1;
                        send!(prev, t.ticks() + w, rec.cell, SEv::Wired(rec.cell, prev));
                    }
                    let mut rng = decision_rng(spec.seed, rec.id, rec.ctr);
                    rec.ctr += 1;
                    let dwell = rng.exp_delay(spec.mean_dwell);
                    queue.push(t + dwell, SEv::Leave(rec));
                }
                SEv::Wired(from, to) => {
                    emit!(
                        t,
                        TraceEvent::ShardRecv {
                            shard: shard as u32,
                            from: MssId(from),
                            to: MssId(to),
                        }
                    );
                    let mut n = 1u64;
                    if mode == DeliveryMode::Batched {
                        // Coalesce the run of consecutive same-tick wired
                        // deliveries: pop each O(1) off the cursor slot,
                        // emit its ShardRecv in the exact order the outer
                        // loop would have, and fold its charge into one
                        // fused ledger update below. The run never crosses
                        // the window limit (the pops stay on this tick) and
                        // stops at the first non-wired same-tick event, so
                        // the global pop order is untouched.
                        while let Some((_, run_ev)) =
                            queue.pop_same_tick_if(|e| matches!(e, SEv::Wired(..)))
                        {
                            let SEv::Wired(f, d) = run_ev else {
                                unreachable!("predicate admits only Wired")
                            };
                            events += 1;
                            emit!(
                                t,
                                TraceEvent::ShardRecv {
                                    shard: shard as u32,
                                    from: MssId(f),
                                    to: MssId(d),
                                }
                            );
                            n += 1;
                        }
                    }
                    ledger.charge_fixed_n(&spec.cost, n);
                }
            }
        }
        emit!(
            SimTime::from_ticks(end),
            TraceEvent::ShardSync {
                shard: shard as u32,
                window: k,
                skipped,
            }
        );

        // Publish this round on every outgoing lane, post the worker's
        // earliest pending tick, and cross the one barrier.
        for dst in 0..shards {
            lanes[shard * shards + dst].publish(round);
        }
        let local_min = queue
            .peek_time()
            .map_or(u64::MAX, |t| t.ticks())
            .min(sent_min);
        let parity = (round % 2) as usize;
        mins[2 * shard + parity].store(local_min, Ordering::Release);
        barrier.wait();

        // Fast-forward: every worker computes the same global minimum from
        // the published slots, so every worker takes the same jump. The
        // final window is never skipped — it anchors the trace identity
        // Σ(1 + skipped) = windows.
        let global_min = (0..shards)
            .map(|s| mins[2 * s + parity].load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX);
        let target = if global_min == u64::MAX {
            windows - 1
        } else {
            (global_min / w).min(windows - 1)
        };
        let next_k = target.max(k + 1);
        skipped = next_k - k - 1;
        total_skipped += skipped;
        k = next_k;
        round += 1;
    }
    // The final round's sends are still parked in the lanes; drain them so
    // the queue holds the complete end state.
    if round > 0 {
        drain_round!(round - 1);
    }

    // Collect the final state for the digest: the queue now holds every
    // resident host and undelivered wire.
    let mut hosts = Vec::new();
    let mut wires = Vec::new();
    while let Some((t, ev)) = queue.pop() {
        match ev {
            SEv::Leave(r) => {
                hosts.push((r.id, 0, t.ticks(), r.cell, r.home, r.ctr, r.moves, u32::MAX))
            }
            SEv::Join(r, prev) => {
                hosts.push((r.id, 1, t.ticks(), r.cell, r.home, r.ctr, r.moves, prev))
            }
            SEv::Wired(from, to) => wires.push((t.ticks(), from, to)),
        }
    }
    if let Some(s) = sink.as_deref_mut() {
        s.finish(&ledger);
    }
    ShardOut {
        ledger,
        events,
        skipped: total_skipped,
        hosts,
        wires,
        sink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::RingSink;

    fn spec() -> ScaleSpec {
        ScaleSpec::new(16, 240)
            .with_seed(42)
            .with_horizon(1_500)
            .with_churn(120, 15)
    }

    /// Sparse enough that most windows are empty: 3 hosts over a 4,000-tick
    /// horizon with ~600-tick cycles leave long event-free stretches.
    fn sparse_spec() -> ScaleSpec {
        ScaleSpec::new(8, 3)
            .with_seed(11)
            .with_horizon(4_000)
            .with_churn(500, 40)
    }

    #[test]
    fn shard_counts_agree_bit_for_bit() {
        let spec = spec();
        let base = run_scale(&spec, 1);
        assert!(base.ledger.moves > 0, "churn workload must move hosts");
        assert!(base.ledger.fixed_msgs > 0, "handoffs must cross the wire");
        for s in [2, 3, 4, 8, 16] {
            let r = run_scale(&spec, s);
            assert_eq!(r.shards, s);
            assert_eq!(r.digest, base.digest, "digest diverged at {s} shards");
            assert_eq!(r.ledger, base.ledger, "ledger diverged at {s} shards");
            assert_eq!(r.events, base.events, "event count diverged at {s} shards");
            assert_eq!(
                r.skipped_windows, base.skipped_windows,
                "fast-forward schedule diverged at {s} shards"
            );
        }
    }

    #[test]
    fn delivery_modes_agree_bit_for_bit() {
        let spec = spec();
        let reference = run_scale_with_mode(&spec, 1, DeliveryMode::Unbatched);
        assert!(reference.ledger.fixed_msgs > 0, "need wired traffic");
        for s in [1, 4, 8] {
            let batched = run_scale_with_mode(&spec, s, DeliveryMode::Batched);
            assert_eq!(batched.digest, reference.digest, "digest diverged at {s}");
            assert_eq!(batched.ledger, reference.ledger, "ledger diverged at {s}");
            assert_eq!(batched.events, reference.events, "events diverged at {s}");
        }
    }

    #[test]
    fn reruns_are_identical() {
        let spec = spec();
        assert_eq!(run_scale(&spec, 4), run_scale(&spec, 4));
    }

    #[test]
    fn shard_request_is_clamped() {
        let spec = ScaleSpec::new(3, 30).with_seed(1);
        let r = run_scale(&spec, 64);
        assert_eq!(r.shards, 3);
        assert_eq!(r.digest, run_scale(&spec, 1).digest);
    }

    #[test]
    fn seed_and_spec_change_the_outcome() {
        let a = run_scale(&spec(), 2);
        let b = run_scale(&spec().with_seed(43), 2);
        let c = run_scale(&spec().with_churn(60, 15), 2);
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn ledger_charges_match_delivered_notifications() {
        // Every wired charge is a delivered handoff notification, so
        // fixed_msgs can never exceed handoffs, and with a horizon far past
        // the last gap most notifications are delivered.
        let r = run_scale(&spec(), 4);
        assert!(r.ledger.fixed_msgs <= r.ledger.handoffs);
        assert!(r.ledger.fixed_msgs + 64 >= r.ledger.handoffs);
        assert_eq!(r.ledger.wireless_msgs, 0);
    }

    #[test]
    fn traced_runs_expose_shard_events() {
        let spec = spec();
        let shards = 4;
        let sinks: Vec<Box<dyn TraceSink>> = (0..shards)
            .map(|_| Box::new(RingSink::new(1 << 20)) as Box<dyn TraceSink>)
            .collect();
        let (report, sinks) = run_scale_traced(&spec, shards, sinks);
        assert_eq!(sinks.len(), shards);
        let mut syncs = 0u64;
        let mut covered = 0u64;
        let mut recvs = 0;
        let mut ends = 0;
        for s in &sinks {
            let ring = s.as_any().downcast_ref::<RingSink>().expect("ring sink");
            syncs += ring.count_kind("shard_sync") as u64;
            recvs += ring.count_kind("shard_recv");
            ends += ring.count_kind("handoff_end");
            for (_, _, ev) in ring.iter() {
                if let TraceEvent::ShardSync { skipped, .. } = ev {
                    covered += 1 + skipped;
                }
            }
        }
        // One sync per *processed* window; fast-forwarded windows are folded
        // into the next sync's skipped count, so the coverage sums back to
        // the full window count on every shard.
        assert_eq!(covered, report.windows * shards as u64);
        assert_eq!(
            syncs,
            (report.windows - report.skipped_windows) * shards as u64
        );
        assert_eq!(recvs as u64, report.ledger.fixed_msgs);
        assert_eq!(ends as u64, report.ledger.moves);
        // Tracing must not perturb the simulation.
        assert_eq!(report.digest, run_scale(&spec, 1).digest);
    }

    #[test]
    fn fast_forward_skips_empty_windows_without_changing_results() {
        let spec = sparse_spec();
        let base = run_scale(&spec, 1);
        assert!(
            base.skipped_windows > 0,
            "sparse workload must trigger the fast-forward"
        );
        assert!(base.skipped_windows < base.windows);
        for s in [2, 4, 8] {
            let r = run_scale(&spec, s);
            assert_eq!(r.digest, base.digest, "digest diverged at {s} shards");
            assert_eq!(r.ledger, base.ledger, "ledger diverged at {s} shards");
            assert_eq!(r.skipped_windows, base.skipped_windows);
        }
    }

    #[test]
    fn weighted_partition_balances_clustered_placement() {
        // All hosts packed into 4 of 32 cells: a block partition would give
        // one worker everything; greedy bin-packing spreads the hot cells.
        let spec = ScaleSpec::new(32, 4_000)
            .with_seed(5)
            .with_placement(Placement::Clustered { cells: 4 });
        let plan = plan_partition(&spec, 4);
        assert_eq!(plan.owner.len(), 32);
        assert_eq!(plan.load.iter().sum::<u64>(), 4_000);
        let mean = 4_000 / 4;
        for (s, &l) in plan.load.iter().enumerate() {
            assert!(l <= 2 * mean, "worker {s} owns {l} hosts, mean {mean}");
        }
        // And the run itself stays bit-identical across shard counts.
        let base = run_scale(&spec, 1);
        for s in [2, 4] {
            assert_eq!(run_scale(&spec, s).digest, base.digest);
        }
    }

    #[test]
    fn random_placement_is_deterministic_and_shard_invariant() {
        let spec = ScaleSpec::new(16, 200)
            .with_seed(77)
            .with_placement(Placement::Random);
        let a = run_scale(&spec, 1);
        let b = run_scale(&spec, 4);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a, run_scale(&spec, 1));
        // Placement must actually differ from round-robin.
        let rr = run_scale(
            &ScaleSpec {
                placement: Placement::RoundRobin,
                ..spec
            },
            1,
        );
        assert_ne!(a.digest, rr.digest);
    }

    #[test]
    fn spec_fingerprint_ignores_nothing_it_should_hash() {
        let base = Fingerprint::of(&spec());
        assert_eq!(base, Fingerprint::of(&spec()));
        assert_ne!(base, Fingerprint::of(&spec().with_seed(43)));
        assert_ne!(base, Fingerprint::of(&spec().with_horizon(1_600)));
        assert_ne!(
            base,
            Fingerprint::of(&ScaleSpec {
                wired_latency: 6,
                ..spec()
            })
        );
        assert_ne!(
            base,
            Fingerprint::of(&spec().with_placement(Placement::Clustered { cells: 2 }))
        );
    }

    #[test]
    fn predicted_moves_track_measured_moves() {
        let spec = ScaleSpec::new(32, 2_000)
            .with_seed(9)
            .with_horizon(3_000)
            .with_churn(300, 20);
        let r = run_scale(&spec, 4);
        let predicted = spec.predicted_moves();
        let measured = r.ledger.moves;
        let lo = predicted * 7 / 10;
        let hi = predicted * 13 / 10;
        assert!(
            (lo..=hi).contains(&measured),
            "measured {measured} outside 30% of predicted {predicted}"
        );
    }
}
