//! End-to-end runs of the proxy framework: static algorithms served to
//! mobile clients under both proxy policies, with the paper's predicted
//! trade-off between location updates and handoffs.

use mobidist_net::prelude::*;
use mobidist_proxy::prelude::*;

fn clients(n: usize) -> Vec<MhId> {
    (0..n as u32).map(MhId).collect()
}

fn run<A: StaticAlgorithm>(
    cfg: NetworkConfig,
    algo: A,
    policy: ProxyPolicy,
    wl: ProxyWorkload,
    horizon: u64,
) -> (ProxyReport, Simulation<ProxyRuntime<A>>) {
    let n = cfg.num_mh;
    let mut sim = Simulation::new(cfg, ProxyRuntime::new(algo, clients(n), policy, wl));
    sim.run_until(SimTime::from_ticks(horizon));
    let r = sim.protocol().report();
    (r, sim)
}

#[test]
fn echo_static_serves_every_input_both_policies() {
    for policy in [ProxyPolicy::Fixed, ProxyPolicy::LocalMss] {
        let cfg = NetworkConfig::new(4, 6).with_seed(1);
        let wl = ProxyWorkload {
            inputs_per_client: 4,
            mean_interval: 50,
        };
        let (r, _) = run(cfg, EchoService::new(), policy, wl, 1_000_000);
        assert_eq!(r.inputs_sent, 24, "{policy:?}");
        assert_eq!(r.outputs_delivered, 24, "{policy:?}: {r:?}");
        assert_eq!(r.loc_updates, 0);
        assert_eq!(r.handoffs, 0);
    }
}

#[test]
fn echo_mobile_serves_every_input_both_policies() {
    for policy in [ProxyPolicy::Fixed, ProxyPolicy::LocalMss] {
        let cfg = NetworkConfig::new(4, 6)
            .with_seed(2)
            .with_mobility(MobilityConfig::moving(300));
        let wl = ProxyWorkload {
            inputs_per_client: 4,
            mean_interval: 80,
        };
        let (r, _) = run(cfg, EchoService::new(), policy, wl, 1_000_000);
        assert_eq!(r.inputs_sent, 24, "{policy:?}");
        assert_eq!(r.outputs_delivered, 24, "{policy:?}: {r:?}");
    }
}

#[test]
fn fixed_policy_pays_location_updates_proportional_to_moves() {
    let cfg = NetworkConfig::new(4, 4)
        .with_seed(3)
        .with_mobility(MobilityConfig::moving(200));
    let wl = ProxyWorkload {
        inputs_per_client: 2,
        mean_interval: 500,
    };
    let (r, sim) = run(cfg, EchoService::new(), ProxyPolicy::Fixed, wl, 200_000);
    let moves = sim.ledger().moves;
    assert!(moves > 0);
    assert_eq!(
        r.loc_updates, moves,
        "every move informs the fixed proxy: {r:?}"
    );
    assert_eq!(r.handoffs, 0);
}

#[test]
fn local_policy_pays_handoffs_not_updates() {
    let cfg = NetworkConfig::new(4, 4)
        .with_seed(3)
        .with_mobility(MobilityConfig::moving(200));
    let wl = ProxyWorkload {
        inputs_per_client: 2,
        mean_interval: 500,
    };
    let (r, sim) = run(cfg, EchoService::new(), ProxyPolicy::LocalMss, wl, 200_000);
    assert!(sim.ledger().moves > 0);
    assert_eq!(r.loc_updates, 0);
    assert!(r.handoffs > 0, "moves migrate the proxy: {r:?}");
}

#[test]
fn local_policy_keeps_proxy_colocated() {
    let cfg = NetworkConfig::new(4, 2).with_seed(4);
    let wl = ProxyWorkload {
        inputs_per_client: 0,
        mean_interval: 100,
    };
    let mut sim = Simulation::new(
        cfg,
        ProxyRuntime::new(EchoService::new(), clients(2), ProxyPolicy::LocalMss, wl),
    );
    sim.with_ctx(|ctx, _| ctx.initiate_move(MhId(0), Some(MssId(3))));
    sim.run_to_quiescence(1_000_000);
    assert_eq!(sim.protocol().proxy_of(ProcId(0)), MssId(3));
    assert_eq!(sim.protocol().proxy_of(ProcId(1)), MssId(1));
}

#[test]
fn central_counter_serializes_increments_from_mobile_clients() {
    let cfg = NetworkConfig::new(3, 5)
        .with_seed(5)
        .with_mobility(MobilityConfig::moving(400));
    let wl = ProxyWorkload {
        inputs_per_client: 3,
        mean_interval: 70,
    };
    let (r, sim) = run(
        cfg,
        CentralCounter::new(),
        ProxyPolicy::LocalMss,
        wl,
        1_000_000,
    );
    assert_eq!(r.inputs_sent, 15);
    assert_eq!(r.outputs_delivered, 15, "{r:?}");
    assert_eq!(sim.protocol().algorithm().value(), 15);
}

#[test]
fn barrier_completes_rounds_with_mobile_participants() {
    let cfg = NetworkConfig::new(3, 4)
        .with_seed(6)
        .with_mobility(MobilityConfig::moving(500));
    let wl = ProxyWorkload {
        inputs_per_client: 3,
        mean_interval: 100,
    };
    let (r, sim) = run(cfg, Barrier::new(), ProxyPolicy::LocalMss, wl, 2_000_000);
    assert_eq!(sim.protocol().algorithm().rounds(), 3, "{r:?}");
    // Every round notifies every client.
    assert_eq!(r.outputs_delivered, 3 * 4, "{r:?}");
}

#[test]
fn fixed_policy_update_traffic_grows_with_move_rate() {
    let measure = |dwell: u64| -> u64 {
        let cfg = NetworkConfig::new(6, 6)
            .with_seed(7)
            .with_mobility(MobilityConfig::moving(dwell));
        let wl = ProxyWorkload {
            inputs_per_client: 2,
            mean_interval: 1_000,
        };
        let (r, _) = run(cfg, EchoService::new(), ProxyPolicy::Fixed, wl, 100_000);
        r.loc_updates
    };
    let slow = measure(2_000);
    let fast = measure(200);
    assert!(
        fast > 3 * slow.max(1),
        "wide-area movers overwhelm a fixed proxy: {fast} vs {slow}"
    );
}

#[test]
fn adaptive_policy_serves_everything_and_mixes_currencies() {
    let cfg = NetworkConfig::new(8, 6)
        .with_seed(9)
        .with_mobility(MobilityConfig::moving(250));
    let wl = ProxyWorkload {
        inputs_per_client: 4,
        mean_interval: 150,
    };
    let (r, _) = run(
        cfg,
        CentralCounter::new(),
        ProxyPolicy::Adaptive { radius: 2 },
        wl,
        1_000_000,
    );
    assert_eq!(r.inputs_sent, 24);
    assert_eq!(r.outputs_delivered, 24, "{r:?}");
    assert!(r.loc_updates > 0, "nearby moves pay updates: {r:?}");
    assert!(r.handoffs > 0, "wide-area moves migrate the proxy: {r:?}");
}

#[test]
fn adaptive_radius_controls_the_trade() {
    // Larger radius ⇒ fewer migrations, more updates.
    let measure = |radius: u32| -> (u64, u64) {
        let cfg = NetworkConfig::new(8, 6)
            .with_seed(10)
            .with_mobility(MobilityConfig::moving(250));
        let wl = ProxyWorkload {
            inputs_per_client: 2,
            mean_interval: 400,
        };
        let (r, _) = run(
            cfg,
            EchoService::new(),
            ProxyPolicy::Adaptive { radius },
            wl,
            300_000,
        );
        (r.loc_updates, r.handoffs)
    };
    let (u1, h1) = measure(1);
    let (u3, h3) = measure(3);
    assert!(h3 < h1, "radius 3 migrates less: {h3} vs {h1}");
    assert!(u3 > u1, "…and updates more: {u3} vs {u1}");
}

#[test]
fn combining_delivers_identically_with_fewer_wireless_messages() {
    // Fan-out publishes to every client in one algorithm step — the ideal
    // combining case: per publication, one broadcast per occupied cell
    // instead of one downlink per subscriber.
    let go = |combine: bool| {
        let cfg = NetworkConfig::new(4, 8).with_seed(21);
        let wl = ProxyWorkload {
            inputs_per_client: 3,
            mean_interval: 100,
        };
        let mut rt = ProxyRuntime::new(Fanout::new(), clients(8), ProxyPolicy::LocalMss, wl);
        if combine {
            rt = rt.with_combining();
        }
        let mut sim = Simulation::new(cfg, rt);
        sim.run_until(SimTime::from_ticks(1_000_000));
        (
            sim.protocol().report(),
            sim.protocol().algorithm().published(),
            sim.ledger().clone(),
        )
    };
    let (plain, pubs_p, ledger_p) = go(false);
    let (comb, pubs_c, ledger_c) = go(true);
    assert_eq!(pubs_p, 3 * 8);
    assert_eq!(pubs_c, 3 * 8);
    assert_eq!(plain.outputs_delivered, 3 * 8 * 8);
    assert_eq!(
        comb.outputs_delivered, plain.outputs_delivered,
        "combining must not change what is delivered"
    );
    assert!(ledger_c.custom("combine_batches") > 0, "batches formed");
    assert!(
        ledger_c.wireless_msgs < ledger_p.wireless_msgs,
        "combining spends fewer wireless messages: {} vs {}",
        ledger_c.wireless_msgs,
        ledger_p.wireless_msgs
    );
}

#[test]
fn combining_under_mobility_recovers_missed_members() {
    // Moving clients fall off the batch broadcast's cell; the runtime must
    // recover them with searched forwards so nothing is lost.
    let cfg = NetworkConfig::new(4, 6)
        .with_seed(22)
        .with_mobility(MobilityConfig::moving(300));
    let wl = ProxyWorkload {
        inputs_per_client: 3,
        mean_interval: 100,
    };
    let rt =
        ProxyRuntime::new(Fanout::new(), clients(6), ProxyPolicy::LocalMss, wl).with_combining();
    let mut sim = Simulation::new(cfg, rt);
    sim.run_until(SimTime::from_ticks(2_000_000));
    let r = sim.protocol().report();
    assert_eq!(sim.protocol().algorithm().published(), 3 * 6);
    assert_eq!(r.outputs_delivered, 3 * 6 * 6, "{r:?}");
}

#[test]
fn service_rides_out_an_mss_crash() {
    // An MSS hosting proxies crashes mid-run. Fail-stop with stable state:
    // deferred traffic flushes at recovery, so every input is still served
    // and the runtime's recovery hooks observe the outage.
    for policy in [ProxyPolicy::Fixed, ProxyPolicy::LocalMss] {
        let cfg = NetworkConfig::new(4, 6)
            .with_seed(31)
            .with_mobility(MobilityConfig::moving(400))
            .with_fault(FaultConfig::none().with_event(
                500,
                FaultKind::MssCrash {
                    mss: 1,
                    down_for: 2_000,
                },
            ));
        let wl = ProxyWorkload {
            inputs_per_client: 4,
            mean_interval: 120,
        };
        let (r, sim) = run(cfg, EchoService::new(), policy, wl, 2_000_000);
        assert_eq!(r.inputs_sent, 24, "{policy:?}");
        assert_eq!(r.outputs_delivered, 24, "{policy:?}: {r:?}");
        assert!(r.proxy_outages > 0, "{policy:?}: crash hook fired: {r:?}");
        assert_eq!(sim.ledger().custom("fault_crashes"), 1);
        assert_eq!(sim.ledger().custom("fault_recovers"), 1);
    }
}

#[test]
fn deterministic_replay_proxy_runs() {
    let go = || {
        let cfg = NetworkConfig::new(4, 6)
            .with_seed(8)
            .with_mobility(MobilityConfig::moving(300));
        let wl = ProxyWorkload {
            inputs_per_client: 3,
            mean_interval: 90,
        };
        let (r, sim) = run(cfg, CentralCounter::new(), ProxyPolicy::Fixed, wl, 500_000);
        (r, sim.ledger().clone())
    };
    let (ra, la) = go();
    let (rb, lb) = go();
    assert_eq!(ra, rb);
    assert_eq!(la, lb);
}

#[test]
fn output_lost_to_a_departure_is_recovered_by_search() {
    // Regression (found by proptest: m=3, n=4, seed=82, radius=1): in a
    // 3-cell ring every move is within radius 1, so the adaptive policy
    // degenerates to Fixed — and an output on the air when its client
    // leaves the cell must be recovered, not dropped.
    let cfg = NetworkConfig::new(3, 4)
        .with_seed(82)
        .with_mobility(MobilityConfig::moving(400));
    let wl = ProxyWorkload {
        inputs_per_client: 2,
        mean_interval: 150,
    };
    let clients: Vec<MhId> = (0..4u32).map(MhId).collect();
    let mut sim = Simulation::new(
        cfg,
        ProxyRuntime::new(
            EchoService::new(),
            clients,
            ProxyPolicy::Adaptive { radius: 1 },
            wl,
        ),
    );
    sim.run_until(SimTime::from_ticks(2_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.inputs_sent, 8);
    assert_eq!(r.outputs_delivered, 8, "{r:?}");
}
