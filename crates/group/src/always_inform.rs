//! **Always inform** (Section 4.2): every member maintains a location
//! directory.
//!
//! Each member MH keeps `LD(G)`, a map from every other member to that
//! member's last announced MSS. Group messages go point-to-point to the
//! *recorded* location — one wireless uplink, one fixed hop, one wireless
//! downlink per member: `(|G|−1)(2·C_wireless + C_fixed)`. After every move
//! a member sends a *location update* to each member at its recorded
//! location — the same cost again, so the effective per-message cost is
//! `(1 + MOB/MSG)(|G|−1)(2·C_wireless + C_fixed)`: cheap sends, but cost
//! grows with the mobility-to-message ratio.
//!
//! When a recorded location is stale (the target moved after the last
//! update reached us), the paper's accounting footnote "disregards" the
//! in-transit case; this implementation exposes the choice: fall back to a
//! (counted) search, or drop the copy.

use crate::strategy::{GroupCtx, LocationStrategy};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::Src;
use std::collections::BTreeMap;

/// What to do when a directory entry turns out to be stale on delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StalePolicy {
    /// Fall back to a search from the stale MSS (counted in
    /// `ai_stale_fallbacks`).
    #[default]
    Search,
    /// Drop the copy (shows up as a missed delivery in the audit).
    Drop,
}

/// Always-inform protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AiMsg {
    /// Uplink: route `inner` to `dest`, believed to be at `dest_mss`.
    Route {
        /// Final recipient.
        dest: MhId,
        /// Recipient's recorded location.
        dest_mss: MssId,
        /// The payload to deliver.
        inner: AiPayload,
    },
    /// Fixed hop carrying the payload to the recorded MSS.
    Forward {
        /// Final recipient.
        dest: MhId,
        /// The payload to deliver.
        inner: AiPayload,
    },
    /// Downlink delivery to the member.
    Deliver {
        /// The payload.
        inner: AiPayload,
    },
}

/// The application-visible payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AiPayload {
    /// A group message.
    Group {
        /// The group message id.
        msg_id: u64,
    },
    /// A location update: `who` is now at `now_at`.
    LocationUpdate {
        /// The member that moved.
        who: MhId,
        /// Its new cell.
        now_at: MssId,
    },
}

/// The always-inform strategy. See the module docs.
#[derive(Debug)]
pub struct AlwaysInform {
    members: Vec<MhId>,
    /// Per-member location directory: `ld[h]` is h's copy of LD(G).
    ld: BTreeMap<MhId, BTreeMap<MhId, MssId>>,
    stale: StalePolicy,
}

impl AlwaysInform {
    /// Creates the strategy with the default (search) stale policy.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<MhId>) -> Self {
        Self::with_stale_policy(members, StalePolicy::default())
    }

    /// Creates the strategy with an explicit stale-entry policy.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn with_stale_policy(members: Vec<MhId>, stale: StalePolicy) -> Self {
        assert!(!members.is_empty(), "a group needs members");
        AlwaysInform {
            members,
            ld: BTreeMap::new(),
            stale,
        }
    }

    /// The location `owner` has recorded for `target` (test aid).
    pub fn recorded_location(&self, owner: MhId, target: MhId) -> Option<MssId> {
        self.ld.get(&owner).and_then(|d| d.get(&target)).copied()
    }

    /// Sends `inner` from `from` to every other member per the directory.
    fn fan_out(&mut self, ctx: &mut GroupCtx<'_, '_, AiMsg, ()>, from: MhId, inner: AiPayload) {
        let dir = self.ld.get(&from).cloned().unwrap_or_default();
        for m in self.members.clone() {
            if m == from {
                continue;
            }
            // The paper charges 2·C_w + C_f per member copy: a wireless
            // uplink per copy, one fixed hop, one wireless downlink.
            let dest_mss = dir.get(&m).copied().unwrap_or(MssId(0));
            let _ = ctx.send_wireless_up(
                from,
                AiMsg::Route {
                    dest: m,
                    dest_mss,
                    inner,
                },
            );
        }
    }
}

impl LocationStrategy for AlwaysInform {
    type Msg = AiMsg;
    type Timer = ();

    fn name(&self) -> &'static str {
        "always-inform"
    }

    fn on_start(
        &mut self,
        _ctx: &mut GroupCtx<'_, '_, AiMsg, ()>,
        placement: &BTreeMap<MhId, MssId>,
    ) {
        // Bootstrap: every member knows the initial location of every other.
        for owner in &self.members {
            self.ld.insert(*owner, placement.clone());
        }
    }

    fn send_group_message(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, AiMsg, ()>,
        from: MhId,
        msg_id: u64,
    ) {
        self.fan_out(ctx, from, AiPayload::Group { msg_id });
    }

    fn on_member_joined(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, AiMsg, ()>,
        mh: MhId,
        mss: MssId,
        _prev: Option<MssId>,
    ) {
        // Update own directory entry, then inform every member.
        self.ld.entry(mh).or_default().insert(mh, mss);
        ctx.bump("ai_location_updates");
        self.fan_out(
            ctx,
            mh,
            AiPayload::LocationUpdate {
                who: mh,
                now_at: mss,
            },
        );
    }

    fn on_member_reconnected(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, AiMsg, ()>,
        mh: MhId,
        mss: MssId,
        _prev: Option<MssId>,
    ) {
        self.ld.entry(mh).or_default().insert(mh, mss);
        ctx.bump("ai_location_updates");
        self.fan_out(
            ctx,
            mh,
            AiPayload::LocationUpdate {
                who: mh,
                now_at: mss,
            },
        );
    }

    fn on_mss_msg(&mut self, ctx: &mut GroupCtx<'_, '_, AiMsg, ()>, at: MssId, _: Src, msg: AiMsg) {
        match msg {
            AiMsg::Route {
                dest,
                dest_mss,
                inner,
            } => {
                if dest_mss == at {
                    // Recorded location is this very cell.
                    self.on_mss_msg(ctx, at, Src::Mss(at), AiMsg::Forward { dest, inner });
                } else {
                    ctx.send_fixed(at, dest_mss, AiMsg::Forward { dest, inner });
                }
            }
            AiMsg::Forward { dest, inner } => {
                if ctx.is_local(at, dest) {
                    let _ = ctx.send_wireless_down(at, dest, AiMsg::Deliver { inner });
                } else {
                    // Stale directory entry.
                    match self.stale {
                        StalePolicy::Search => {
                            ctx.bump("ai_stale_fallbacks");
                            ctx.search_send(at, dest, AiMsg::Deliver { inner });
                        }
                        StalePolicy::Drop => {
                            ctx.bump("ai_stale_drops");
                        }
                    }
                }
            }
            AiMsg::Deliver { .. } => unreachable!("deliveries terminate at MHs"),
        }
    }

    fn on_mh_msg(&mut self, ctx: &mut GroupCtx<'_, '_, AiMsg, ()>, at: MhId, _: Src, msg: AiMsg) {
        let AiMsg::Deliver { inner } = msg else {
            unreachable!("MHs only receive deliveries");
        };
        match inner {
            AiPayload::Group { msg_id } => ctx.deliver(at, msg_id),
            AiPayload::LocationUpdate { who, now_at } => {
                self.ld.entry(at).or_default().insert(who, now_at);
            }
        }
    }

    fn on_search_failed(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, AiMsg, ()>,
        _origin: MssId,
        _target: MhId,
        _msg: AiMsg,
    ) {
        ctx.bump("ai_undeliverable");
    }
}
