//! **E13** — heavy-traffic serving benchmark: closed-loop requesters
//! hammer one critical section and the five algorithms (L1, L2, L2C, R1,
//! R2) are compared on throughput, latency percentiles, fairness and
//! message cost.
//!
//! Unlike the horizon-bounded cost experiments (E1–E4), every E13 cell is
//! *fixed-work*: each requester issues a fixed number of requests and the
//! run executes until all of them completed, so throughput is
//! `completed / makespan` with makespan the tick of the last release. The
//! run still advances in fixed-size chunks bounded by a large horizon, so
//! idle background traffic (R1's token circulation) cannot spin forever.
//!
//! Every cell asserts the safety checker's verdict — zero mutual-exclusion
//! violations and zero ordering-key regressions — so the combining variant
//! L2C is proven safe on every configuration it is measured on.
//!
//! Latency percentiles come from the [`crate::stats::LatencyHist`] log₂
//! reducer; fairness is Jain's index over per-requester mean waits (in a
//! fixed-work run every requester completes the same count, so a
//! completion-count index would be trivially 1.0 — wait times are where
//! unfairness shows).

use crate::parallel::{default_jobs, map_indexed_with};
use crate::stats::{jain, LatencyHist};
use crate::table::{f2, Table};
use mobidist_core::prelude::*;
use mobidist_net::ledger::CostLedger;
use mobidist_net::prelude::*;
use std::collections::BTreeMap;

/// Ticks between completion checks of the chunked run loop. Chunk
/// boundaries are fixed, so when a run stops (first boundary at which all
/// work is done) is a deterministic function of the configuration alone.
const CHUNK: u64 = 100_000;

/// Hard ceiling on simulated time; a cell that cannot finish by here fails
/// its completion assertion instead of spinning.
const HORIZON: u64 = 500_000_000;

/// Recycling pool of L2C simulations.
pub type L2cPool = SimPool<MutexHarness<L2c>>;

/// One pool per algorithm, threaded through the sweep workers so each
/// worker recycles its simulations across the cells it processes.
#[derive(Debug, Default)]
pub struct ServePools {
    l1: crate::exp_mutex::L1Pool,
    l2: crate::exp_mutex::L2Pool,
    l2c: L2cPool,
    r1: crate::exp_mutex::R1Pool,
    r2: crate::exp_mutex::R2Pool,
}

impl ServePools {
    /// Creates empty pools.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The algorithms the serving benchmark compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeAlgo {
    /// Lamport directly on the MHs.
    L1,
    /// Lamport lifted to the MSS proxies.
    L2,
    /// L2 with per-MSS request combining.
    L2c,
    /// Token ring over the MHs.
    R1,
    /// Token ring over the MSSs.
    R2,
}

impl ServeAlgo {
    /// Every compared algorithm, in display order.
    pub const ALL: [ServeAlgo; 5] = [
        ServeAlgo::L1,
        ServeAlgo::L2,
        ServeAlgo::L2c,
        ServeAlgo::R1,
        ServeAlgo::R2,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServeAlgo::L1 => "L1",
            ServeAlgo::L2 => "L2",
            ServeAlgo::L2c => "L2C",
            ServeAlgo::R1 => "R1",
            ServeAlgo::R2 => "R2",
        }
    }

    /// Run-cache site label (labels name construction sites; see
    /// [`crate::cache`]).
    fn label(self) -> &'static str {
        match self {
            ServeAlgo::L1 => "e13_l1",
            ServeAlgo::L2 => "e13_l2",
            ServeAlgo::L2c => "e13_l2c",
            ServeAlgo::R1 => "e13_r1",
            ServeAlgo::R2 => "e13_r2",
        }
    }
}

/// Reduced outcome of one fixed-work serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRun {
    /// Critical-section executions completed (equals the offered work).
    pub completed: u64,
    /// Tick of the last critical-section release.
    pub makespan: u64,
    /// Median request→grant wait (log₂-bucket upper bound).
    pub p50: u64,
    /// 95th-percentile wait.
    pub p95: u64,
    /// 99th-percentile wait.
    pub p99: u64,
    /// Mean request→grant wait.
    pub mean_wait: f64,
    /// Jain fairness index over per-requester mean waits.
    pub jain: f64,
    /// Combining rounds (`combine_batches` ledger counter; 0 for
    /// non-combining algorithms).
    pub batches: u64,
    /// Full cost ledger at the end of the run.
    pub ledger: CostLedger,
}

impl ServeRun {
    /// Throughput in critical-section entries per 1000 simulated ticks.
    pub fn throughput_per_ktick(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.completed as f64 * 1000.0 / self.makespan as f64
    }

    /// Wireless messages per completed execution.
    pub fn wireless_per_entry(&self) -> f64 {
        self.ledger.wireless_msgs as f64 / self.completed.max(1) as f64
    }

    /// Fixed-network messages per completed execution.
    pub fn fixed_per_entry(&self) -> f64 {
        self.ledger.fixed_msgs as f64 / self.completed.max(1) as f64
    }

    /// Mean members per combining round (0 when the run never combined).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }
}

/// Advances `sim` in fixed [`CHUNK`]s until the workload completed
/// `target` executions (or [`HORIZON`] is hit), then reduces the run.
fn finish_serving<A: MutexAlgorithm>(
    sim: &mut Simulation<MutexHarness<A>>,
    target: u64,
) -> ServeRun {
    let mut t = CHUNK;
    loop {
        sim.run_until(SimTime::from_ticks(t.min(HORIZON)));
        if sim.protocol().report().completed >= target || t >= HORIZON {
            break;
        }
        t += CHUNK;
    }
    let report = sim.protocol().report();
    assert_eq!(report.safety_violations, 0, "mutual exclusion violated");
    assert_eq!(report.order_violations, 0, "grant order regressed");
    assert_eq!(
        report.completed, target,
        "serving run did not finish its fixed work within the horizon"
    );

    let episodes = sim.protocol().checker().episodes();
    let mut hist = LatencyHist::new();
    let mut makespan = 0u64;
    let mut per_mh: BTreeMap<MhId, (u64, u64)> = BTreeMap::new();
    for ep in episodes {
        hist.record(ep.wait());
        if let Some(rel) = ep.released_at {
            makespan = makespan.max(rel.ticks());
        }
        let e = per_mh.entry(ep.mh).or_insert((0, 0));
        e.0 += ep.wait();
        e.1 += 1;
    }
    let means: Vec<f64> = per_mh
        .values()
        .map(|(sum, n)| *sum as f64 / *n as f64)
        .collect();
    let ledger = sim.ledger().clone();
    ServeRun {
        completed: report.completed,
        makespan,
        p50: hist.percentile(0.50),
        p95: hist.percentile(0.95),
        p99: hist.percentile(0.99),
        mean_wait: report.mean_wait,
        jain: jain(&means),
        batches: ledger.custom("combine_batches"),
        ledger,
    }
}

/// Runs one serving cell for `algo`, memoized in the run cache.
pub fn run_serve_in(
    pools: &mut ServePools,
    algo: ServeAlgo,
    cfg: NetworkConfig,
    wl: WorkloadConfig,
) -> ServeRun {
    run_serve_labeled(pools, algo, algo.label(), cfg, wl)
}

/// [`run_serve_in`] under an explicit run-cache site label. Other
/// experiments reusing the serving machinery (E14's robustness grid) pass
/// their own site labels here so cache records stay per-construction-site
/// (see [`crate::cache`] on why labels name sites).
pub fn run_serve_labeled(
    pools: &mut ServePools,
    algo: ServeAlgo,
    label: &'static str,
    cfg: NetworkConfig,
    wl: WorkloadConfig,
) -> ServeRun {
    let target = (wl.requesters.len() * wl.requests_per_mh) as u64;
    let m = cfg.num_mss;
    let extra = (&wl, HORIZON, CHUNK);
    fn ledger_of(r: &ServeRun) -> &CostLedger {
        &r.ledger
    }
    match algo {
        ServeAlgo::L1 => crate::cache::cached(label, &cfg, &extra, ledger_of, || {
            let a = L1::new(wl.requesters.clone());
            pools
                .l1
                .run(cfg.clone(), MutexHarness::new(a, wl.clone()), |sim| {
                    crate::obs::install(sim, label);
                    let run = finish_serving(sim, target);
                    crate::obs::finish_run(sim);
                    run
                })
        }),
        ServeAlgo::L2 => crate::cache::cached(label, &cfg, &extra, ledger_of, || {
            pools.l2.run(
                cfg.clone(),
                MutexHarness::new(L2::new(m), wl.clone()),
                |sim| {
                    crate::obs::install(sim, label);
                    let run = finish_serving(sim, target);
                    crate::obs::finish_run(sim);
                    run
                },
            )
        }),
        ServeAlgo::L2c => crate::cache::cached(label, &cfg, &extra, ledger_of, || {
            pools.l2c.run(
                cfg.clone(),
                MutexHarness::new(L2c::new(m), wl.clone()),
                |sim| {
                    crate::obs::install(sim, label);
                    let run = finish_serving(sim, target);
                    crate::obs::finish_run(sim);
                    run
                },
            )
        }),
        ServeAlgo::R1 => crate::cache::cached(label, &cfg, &extra, ledger_of, || {
            let ring: Vec<MhId> = (0..cfg.num_mh as u32).map(MhId).collect();
            let a = R1::new(ring, R1DisconnectPolicy::Stall);
            pools
                .r1
                .run(cfg.clone(), MutexHarness::new(a, wl.clone()), |sim| {
                    crate::obs::install(sim, label);
                    let run = finish_serving(sim, target);
                    crate::obs::finish_run(sim);
                    run
                })
        }),
        ServeAlgo::R2 => crate::cache::cached(label, &cfg, &extra, ledger_of, || {
            let a = R2::new(m, RingGuard::Plain);
            pools
                .r2
                .run(cfg.clone(), MutexHarness::new(a, wl.clone()), |sim| {
                    crate::obs::install(sim, label);
                    let run = finish_serving(sim, target);
                    crate::obs::finish_run(sim);
                    run
                })
        }),
    }
}

/// One planned row of the E13 table: either a real run or a skipped cell.
enum RowPlan {
    Run {
        sweep: &'static str,
        cell: String,
        algo: ServeAlgo,
        /// `(network, workload)` boxed: the enum is stored per table row
        /// and the skip variant should not pay the full config footprint.
        spec: Box<(NetworkConfig, WorkloadConfig)>,
    },
    Skip {
        sweep: &'static str,
        cell: String,
        algo: ServeAlgo,
        why: &'static str,
    },
}

/// The heavy-traffic serving cells: a contention sweep (think time), a
/// fairness cell (mixed CS lengths) and a requester-count sweep.
fn plan(quick: bool) -> Vec<RowPlan> {
    let m = 8;
    let reqs = 2;
    let mut rows = Vec::new();

    // E13a — contention: shrinking think time pushes the system from
    // light load into saturation.
    let n_a = if quick { 16 } else { 256 };
    let thinks: &[u64] = if quick { &[200] } else { &[10_000, 1_000, 100] };
    for (i, &think) in thinks.iter().enumerate() {
        for algo in ServeAlgo::ALL {
            rows.push(RowPlan::Run {
                sweep: "contention",
                cell: format!("N={n_a} think={think}"),
                algo,
                spec: Box::new((
                    NetworkConfig::new(m, n_a).with_seed(1301 + i as u64),
                    WorkloadConfig::all_mhs(n_a, reqs)
                        .with_think(think)
                        .with_hold(10),
                )),
            });
        }
    }

    // E13b — fairness: alternating short/long critical sections; Jain over
    // per-requester mean waits exposes starvation of either class.
    let n_b = if quick { 16 } else { 256 };
    for algo in ServeAlgo::ALL {
        rows.push(RowPlan::Run {
            sweep: "fairness",
            cell: format!("N={n_b} hold=5/50"),
            algo,
            spec: Box::new((
                NetworkConfig::new(m, n_b).with_seed(1340),
                WorkloadConfig::all_mhs(n_b, reqs)
                    .with_think(500)
                    .with_hold_profile(vec![5, 50]),
            )),
        });
    }

    // E13c — requester count: scaling the closed-loop population at fixed
    // think time. L1's per-execution cost is 3(N-1) wireless rounds, so it
    // is skipped at the largest population.
    let ns: &[usize] = if quick { &[8, 32] } else { &[64, 256, 1024] };
    let think_c = if quick { 200 } else { 1_000 };
    for (i, &n) in ns.iter().enumerate() {
        for algo in ServeAlgo::ALL {
            if algo == ServeAlgo::L1 && n > 512 {
                rows.push(RowPlan::Skip {
                    sweep: "requesters",
                    cell: format!("N={n} think={think_c}"),
                    algo,
                    why: "skipped: 3(N-1) wireless per entry",
                });
                continue;
            }
            rows.push(RowPlan::Run {
                sweep: "requesters",
                cell: format!("N={n} think={think_c}"),
                algo,
                spec: Box::new((serve_cfg(m, n, i), serve_wl(n, reqs, think_c))),
            });
        }
    }
    rows
}

/// Network configuration of an E13c requester-count cell (shared with the
/// perfreport serving comparison so the run cache serves both).
fn serve_cfg(m: usize, n: usize, cell_index: usize) -> NetworkConfig {
    NetworkConfig::new(m, n).with_seed(1360 + cell_index as u64)
}

/// Workload of an E13c requester-count cell.
fn serve_wl(n: usize, reqs: usize, think: u64) -> WorkloadConfig {
    WorkloadConfig::all_mhs(n, reqs)
        .with_think(think)
        .with_hold(10)
}

/// **E13** — the serving benchmark table. One row per (cell, algorithm);
/// rows are fanned out as independent tasks and assembled by index, so the
/// table is byte-identical at any `--jobs` (and at any `MOBIDIST_SHARDS`:
/// E13 never consults the shard knob).
pub fn e13_serving(quick: bool) -> Table {
    let rows = plan(quick);
    let mut t = Table::new(
        format!(
            "E13 — heavy-traffic serving: closed-loop requesters (M = 8, {} req/MH)",
            2
        ),
        &[
            "sweep",
            "cell",
            "algo",
            "done",
            "thr/ktick",
            "p50",
            "p95",
            "p99",
            "jain",
            "wifi/entry",
            "wired/entry",
            "batch",
        ],
    );
    let tasks: Vec<(ServeAlgo, NetworkConfig, WorkloadConfig)> = rows
        .iter()
        .filter_map(|r| match r {
            RowPlan::Run { algo, spec, .. } => Some((*algo, spec.0.clone(), spec.1.clone())),
            RowPlan::Skip { .. } => None,
        })
        .collect();
    let runs = map_indexed_with(
        tasks,
        default_jobs(),
        ServePools::new,
        |pools, _, (algo, cfg, wl)| run_serve_in(pools, algo, cfg, wl),
    );
    let mut next = 0usize;
    for row in &rows {
        match row {
            RowPlan::Run {
                sweep, cell, algo, ..
            } => {
                let r = &runs[next];
                next += 1;
                let batch = if r.batches > 0 {
                    f2(r.mean_batch())
                } else {
                    "-".into()
                };
                t.push(vec![
                    (*sweep).into(),
                    cell.clone(),
                    algo.name().into(),
                    r.completed.to_string(),
                    f2(r.throughput_per_ktick()),
                    r.p50.to_string(),
                    r.p95.to_string(),
                    r.p99.to_string(),
                    f2(r.jain),
                    f2(r.wireless_per_entry()),
                    f2(r.fixed_per_entry()),
                    batch,
                ]);
            }
            RowPlan::Skip {
                sweep,
                cell,
                algo,
                why,
            } => {
                t.push(vec![
                    (*sweep).into(),
                    cell.clone(),
                    algo.name().into(),
                    (*why).into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    t
}

/// One algorithm's point in perfreport's `serving` section.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingPoint {
    /// Algorithm display name.
    pub algo: &'static str,
    /// Closed-loop requesters in the cell.
    pub requesters: u64,
    /// Entries per 1000 simulated ticks.
    pub throughput_per_ktick: f64,
    /// 95th-percentile request→grant wait.
    pub p95: u64,
    /// Wireless messages per completed execution.
    pub wireless_per_entry: f64,
    /// Mean members per combining round (0 without combining).
    pub mean_batch: f64,
}

/// The headline L2-vs-L2C serving comparison: the largest E13c cell
/// (1024 closed-loop requesters over 8 MSSs at saturation; 32 in quick
/// mode). Reuses the E13c cell's exact configuration, so a warm run cache
/// serves both this and the table.
pub fn serving_comparison(quick: bool) -> Vec<ServingPoint> {
    let m = 8;
    let reqs = 2;
    let (n, cell_index, think) = if quick {
        (32, 1, 200)
    } else {
        (1024, 2, 1_000)
    };
    let mut pools = ServePools::new();
    [ServeAlgo::L2, ServeAlgo::L2c]
        .into_iter()
        .map(|algo| {
            let r = run_serve_in(
                &mut pools,
                algo,
                serve_cfg(m, n, cell_index),
                serve_wl(n, reqs, think),
            );
            ServingPoint {
                algo: algo.name(),
                requesters: n as u64,
                throughput_per_ktick: r.throughput_per_ktick(),
                p95: r.p95,
                wireless_per_entry: r.wireless_per_entry(),
                mean_batch: r.mean_batch(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of<'a>(t: &'a Table, sweep: &str, algo: &str) -> Vec<&'a Vec<String>> {
        t.rows
            .iter()
            .filter(|r| r[0] == sweep && r[2] == algo)
            .collect()
    }

    #[test]
    fn e13_quick_all_cells_complete_and_l2c_combines() {
        let t = e13_serving(true);
        // Quick plan: 1 contention cell + 1 fairness cell + 2 requester
        // cells, 5 algorithms each.
        assert_eq!(t.rows.len(), 4 * 5);
        for r in &t.rows {
            assert_ne!(r[3], "0", "every cell completes its fixed work");
        }
        // L2C combines under contention and never spends more wireless
        // per entry than L2.
        for (l2c, l2) in
            rows_of(&t, "contention", "L2C")
                .iter()
                .zip(rows_of(&t, "contention", "L2"))
        {
            assert_ne!(l2c[11], "-", "L2C reports a mean batch size");
            let wc: f64 = l2c[9].parse().unwrap();
            let wl: f64 = l2[9].parse().unwrap();
            assert!(wc <= wl, "L2C wireless/entry {wc} must not exceed L2 {wl}");
        }
        // Non-combining algorithms have no batch column.
        for r in rows_of(&t, "contention", "L2") {
            assert_eq!(r[11], "-");
        }
    }

    #[test]
    fn e13_quick_is_deterministic_per_cell() {
        // Two independent evaluations produce identical tables (this is
        // what makes the run cache and --jobs fan-out sound).
        let a = e13_serving(true);
        let b = e13_serving(true);
        assert_eq!(a, b);
    }

    #[test]
    fn serving_comparison_quick_l2c_wins_wireless_without_losing_throughput() {
        let pts = serving_comparison(true);
        assert_eq!(pts.len(), 2);
        let l2 = &pts[0];
        let l2c = &pts[1];
        assert_eq!((l2.algo, l2c.algo), ("L2", "L2C"));
        assert!(
            l2c.wireless_per_entry < l2.wireless_per_entry,
            "combining must reduce wireless cost ({} vs {})",
            l2c.wireless_per_entry,
            l2.wireless_per_entry
        );
        assert!(
            l2c.throughput_per_ktick >= l2.throughput_per_ktick,
            "combining must not lose throughput ({} vs {})",
            l2c.throughput_per_ktick,
            l2.throughput_per_ktick
        );
        assert!(l2c.mean_batch >= 1.0);
        assert_eq!(l2.mean_batch, 0.0);
    }
}
