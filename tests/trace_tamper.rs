//! Negative coverage for `tracereport --check`: the ledger reconciliation
//! must actually *fail* on an incomplete trace, not just pass on complete
//! ones. The test produces a real E14 trace through the CLI, verifies it
//! checks green, then surgically drops one `fault_recover` event —
//! renumbering the sequence numbers and the `run_end` event count so the
//! tamper is invisible to the density checks — and asserts the fault
//! identity (`fault_recover` events == ledger `fault_recovers`) is the
//! check that catches it.

use std::path::Path;
use std::process::Command;

/// Extracts the u64 value of `"key":N` from a trace line.
fn field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Replaces `"key":OLD` with `"key":NEW` in a trace line.
fn set_field(line: &str, key: &str, old: u64, new: u64) -> String {
    line.replacen(&format!("\"{key}\":{old}"), &format!("\"{key}\":{new}"), 1)
}

fn check(trace: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tracereport"))
        .arg("--check")
        .arg(trace)
        .output()
        .expect("run tracereport")
}

#[test]
fn check_rejects_a_trace_missing_one_fault_event() {
    let dir = std::env::temp_dir().join(format!("mobidist-tamper-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("e14.jsonl");

    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["--quick", "--trace"])
        .arg(&trace)
        .arg("e14")
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run experiments");
    assert!(status.success(), "experiments --quick --trace e14 failed");

    let clean = check(&trace);
    assert!(
        clean.status.success(),
        "untampered trace must check green: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Drop the first fault_recover event; keep seq density and the
    // run_end event count consistent so only the fault identity can
    // catch the omission.
    let text = std::fs::read_to_string(&trace).expect("read trace");
    let victim = text
        .lines()
        .find(|l| l.contains("\"ev\":\"fault_recover\""))
        .expect("an E14 crash cell must emit fault_recover");
    let run = field(victim, "run").expect("victim run id");
    let victim_seq = field(victim, "seq").expect("victim seq");
    let mut tampered = String::with_capacity(text.len());
    let mut dropped = false;
    for line in text.lines() {
        if !dropped && line == victim {
            dropped = true;
            continue;
        }
        let mut line = line.to_owned();
        if field(&line, "run") == Some(run) {
            match field(&line, "seq") {
                Some(seq) if seq > victim_seq => {
                    line = set_field(&line, "seq", seq, seq - 1);
                }
                None if line.contains("\"ev\":\"run_end\"") => {
                    let events = field(&line, "events").expect("run_end events");
                    line = set_field(&line, "events", events, events - 1);
                }
                _ => {}
            }
        }
        tampered.push_str(&line);
        tampered.push('\n');
    }
    assert!(dropped, "victim line not found on rewrite");
    std::fs::write(&trace, tampered).expect("write tampered trace");

    let bad = check(&trace);
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        !bad.status.success(),
        "tampered trace must fail --check, got: {stderr}"
    );
    assert!(
        stderr.contains("fault_recovers"),
        "failure must name the fault identity, got: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
