//! Regenerates E12: the space-sharded scale curve (million-host churn).
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_scale::e12_scale_curve(quick));
}
