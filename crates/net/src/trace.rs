//! Lightweight execution tracing.
//!
//! Disabled by default; tests and debugging sessions enable it to get a
//! bounded, ordered log of kernel activity.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Bounded in-memory trace of kernel activity.
///
/// # Examples
///
/// ```
/// use mobidist_net::trace::Trace;
/// use mobidist_net::time::SimTime;
///
/// let mut t = Trace::new(2);
/// t.enable();
/// t.record(SimTime::ZERO, || "first".to_string());
/// t.record(SimTime::ZERO + 1, || "second".to_string());
/// t.record(SimTime::ZERO + 2, || "third".to_string());
/// assert_eq!(t.entries().count(), 2); // bounded: oldest dropped
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    entries: VecDeque<(SimTime, String)>,
}

impl Trace {
    /// Creates a disabled trace holding at most `cap` entries.
    ///
    /// A capacity of 0 is a documented no-op trace: enabling it and
    /// recording stores nothing (previously 0 was silently clamped to 1).
    pub fn new(cap: usize) -> Self {
        Trace {
            enabled: false,
            cap,
            entries: VecDeque::new(),
        }
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turns recording off (entries are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an entry; the message closure is only evaluated when enabled.
    pub fn record(&mut self, at: SimTime, msg: impl FnOnce() -> String) {
        if !self.enabled || self.cap == 0 {
            return;
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back((at, msg()));
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(SimTime, String)> {
        self.entries.iter()
    }

    /// True when any recorded entry contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.entries.iter().any(|(_, m)| m.contains(needle))
    }

    /// Drops all entries and disables recording (fresh-trace state),
    /// retaining the ring-buffer allocation.
    pub fn reset(&mut self) {
        self.enabled = false;
        self.entries.clear();
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::new(8);
        t.record(SimTime::ZERO, || "x".into());
        assert_eq!(t.entries().count(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_capacity_drops_oldest() {
        let mut t = Trace::new(3);
        t.enable();
        for i in 0..5 {
            t.record(SimTime::from_ticks(i), || format!("e{i}"));
        }
        let msgs: Vec<&str> = t.entries().map(|(_, m)| m.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let mut t = Trace::new(0);
        t.enable();
        t.record(SimTime::ZERO, || "x".into());
        assert_eq!(t.entries().count(), 0);
        assert!(!t.contains("x"));
    }

    #[test]
    fn contains_searches_messages() {
        let mut t = Trace::default();
        t.enable();
        t.record(SimTime::ZERO, || "token at mss3".into());
        assert!(t.contains("mss3"));
        assert!(!t.contains("mss4"));
        t.disable();
        t.record(SimTime::ZERO, || "mss4".into());
        assert!(!t.contains("mss4"));
    }
}
