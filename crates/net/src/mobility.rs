//! Mobility and disconnection processes.
//!
//! Host mobility in the model is *asynchronous*: an MH may leave its cell at
//! any time, spends an unbounded-but-finite interval between cells, and then
//! joins some cell. Disconnection is voluntary (announced with
//! `disconnect(r)`) and differs from a move in that reconnection is not
//! guaranteed by the model — our process reconnects after a configurable
//! down-time so experiments terminate, but the *algorithms never rely on it*.

use crate::ids::{MhId, MssId};
use crate::rng::SimRng;

/// How a moving MH chooses its next cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MovePattern {
    /// Uniformly random among the other `M − 1` cells.
    #[default]
    UniformRandom,
    /// Locality-biased: with probability `p_local` the MH moves within its
    /// `home_span` consecutive home cells (wrapping), otherwise uniformly
    /// anywhere. High `p_local` keeps group members concentrated in few
    /// cells, which is the regime where location views shine (E6).
    Locality {
        /// Probability of staying within the home span.
        p_local: f64,
        /// Number of consecutive cells forming the home neighbourhood.
        home_span: usize,
    },
}

impl MovePattern {
    /// Chooses the next cell for `mh`, currently in `from`, among `m` cells.
    ///
    /// Always returns a cell different from `from` when `m > 1`.
    pub fn next_cell(
        &self,
        rng: &mut SimRng,
        mh: MhId,
        from: MssId,
        m: usize,
        home_base: MssId,
    ) -> MssId {
        let _ = mh;
        if m <= 1 {
            return from;
        }
        match *self {
            MovePattern::UniformRandom => {
                let mut c = MssId(rng.below(m as u64) as u32);
                if c == from {
                    c = MssId((c.0 + 1) % m as u32);
                }
                c
            }
            MovePattern::Locality { p_local, home_span } => {
                let span = home_span.clamp(1, m);
                if rng.chance(p_local) && span > 1 {
                    // Pick within the wrapped home neighbourhood, avoiding `from`.
                    for _ in 0..8 {
                        let off = rng.below(span as u64) as u32;
                        let c = MssId((home_base.0 + off) % m as u32);
                        if c != from {
                            return c;
                        }
                    }
                    MssId((home_base.0 + 1) % m as u32)
                } else {
                    MovePattern::UniformRandom.next_cell(rng, mh, from, m, home_base)
                }
            }
        }
    }
}

/// Configuration of the autonomous mobility process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// Whether MHs move autonomously at all.
    pub enabled: bool,
    /// Mean dwell time in a cell before leaving, in ticks.
    pub mean_dwell: u64,
    /// Mean time between leaving one cell and joining the next, in ticks.
    pub mean_gap: u64,
    /// Destination-cell choice.
    pub pattern: MovePattern,
}

impl Default for MobilityConfig {
    /// Mobility disabled (experiments opt in with their own rates).
    fn default() -> Self {
        MobilityConfig {
            enabled: false,
            mean_dwell: 500,
            mean_gap: 20,
            pattern: MovePattern::default(),
        }
    }
}

impl MobilityConfig {
    /// An enabled process with the given mean dwell time and defaults
    /// elsewhere.
    pub fn moving(mean_dwell: u64) -> Self {
        MobilityConfig {
            enabled: true,
            mean_dwell,
            ..MobilityConfig::default()
        }
    }
}

/// Configuration of the voluntary disconnection process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisconnectConfig {
    /// Whether MHs disconnect autonomously.
    pub enabled: bool,
    /// Mean connected time before a disconnection, in ticks.
    pub mean_uptime: u64,
    /// Mean disconnected duration before reconnecting, in ticks.
    pub mean_downtime: u64,
    /// Probability that the MH supplies its previous MSS id on `reconnect()`
    /// (otherwise the new MSS must query every fixed host — the paper's
    /// fallback — which the kernel charges as a flood).
    pub p_supply_prev: f64,
}

impl Default for DisconnectConfig {
    /// Disconnection disabled.
    fn default() -> Self {
        DisconnectConfig {
            enabled: false,
            mean_uptime: 2_000,
            mean_downtime: 200,
            p_supply_prev: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_returns_current_cell() {
        let mut rng = SimRng::seed_from(5);
        let p = MovePattern::UniformRandom;
        for _ in 0..200 {
            let c = p.next_cell(&mut rng, MhId(0), MssId(3), 8, MssId(0));
            assert_ne!(c, MssId(3));
            assert!(c.0 < 8);
        }
    }

    #[test]
    fn single_cell_system_cannot_move() {
        let mut rng = SimRng::seed_from(5);
        let p = MovePattern::UniformRandom;
        assert_eq!(
            p.next_cell(&mut rng, MhId(0), MssId(0), 1, MssId(0)),
            MssId(0)
        );
    }

    #[test]
    fn locality_concentrates_moves() {
        let mut rng = SimRng::seed_from(6);
        let p = MovePattern::Locality {
            p_local: 0.95,
            home_span: 3,
        };
        let home = MssId(4);
        let m = 16;
        let mut in_home = 0;
        let total = 400;
        let mut cur = home;
        for _ in 0..total {
            let c = p.next_cell(&mut rng, MhId(1), cur, m, home);
            assert_ne!(c, cur);
            let off = (c.0 + m as u32 - home.0) % m as u32;
            if off < 3 {
                in_home += 1;
            }
            cur = c;
        }
        assert!(
            in_home as f64 / total as f64 > 0.7,
            "only {in_home}/{total} moves stayed in the home span"
        );
    }

    #[test]
    fn locality_with_zero_p_is_uniform_spread() {
        let mut rng = SimRng::seed_from(7);
        let p = MovePattern::Locality {
            p_local: 0.0,
            home_span: 2,
        };
        let mut cells = std::collections::BTreeSet::new();
        for _ in 0..300 {
            cells.insert(p.next_cell(&mut rng, MhId(0), MssId(0), 6, MssId(0)));
        }
        assert!(cells.len() >= 5, "expected wide spread, saw {cells:?}");
    }

    #[test]
    fn config_defaults_are_disabled() {
        assert!(!MobilityConfig::default().enabled);
        assert!(!DisconnectConfig::default().enabled);
        let m = MobilityConfig::moving(100);
        assert!(m.enabled);
        assert_eq!(m.mean_dwell, 100);
    }
}
