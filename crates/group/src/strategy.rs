//! The interface between group-location strategies and the shared workload
//! harness.
//!
//! A [`LocationStrategy`] implements one of Section 4's approaches to
//! delivering *group messages* to a set of mobile hosts: pure search, always
//! inform, or location view. The [`GroupHarness`] drives a message workload
//! while the kernel's mobility process generates moves, and audits delivery
//! (who got each message, misses, duplicates) and cost.

use mobidist_net::config::NetworkConfig;
use mobidist_net::error::NetError;
use mobidist_net::host::MhStatus;
use mobidist_net::ids::{GroupId, MhId, MssId};
use mobidist_net::proto::{Ctx, Protocol, Src};
use mobidist_net::rng::SimRng;
use mobidist_net::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// Timer payload of the group harness.
#[derive(Debug, Clone)]
pub enum GroupTimer<T> {
    /// The strategy's own timer.
    Algo(T),
    /// Workload: send the next group message.
    SendNext,
}

/// Delivery effects reported by strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The receiving member.
    pub to: MhId,
    /// The group message id.
    pub msg_id: u64,
}

/// Context for strategy callbacks: network operations plus the delivery
/// audit channel.
#[derive(Debug)]
pub struct GroupCtx<'a, 'k, M, T> {
    net: &'a mut Ctx<'k, M, GroupTimer<T>>,
    deliveries: &'a mut Vec<Delivery>,
}

impl<'a, 'k, M: Debug + Clone + 'static, T: Debug + 'static> GroupCtx<'a, 'k, M, T> {
    pub(crate) fn new(
        net: &'a mut Ctx<'k, M, GroupTimer<T>>,
        deliveries: &'a mut Vec<Delivery>,
    ) -> Self {
        GroupCtx { net, deliveries }
    }

    /// Reports that member `to` received group message `msg_id`.
    pub fn deliver(&mut self, to: MhId, msg_id: u64) {
        self.deliveries.push(Delivery { to, msg_id });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        self.net.config()
    }

    /// Number of MSSs.
    pub fn num_mss(&self) -> usize {
        self.net.num_mss()
    }

    /// All MSS ids.
    pub fn mss_ids(&self) -> impl Iterator<Item = MssId> {
        self.net.mss_ids()
    }

    /// Point-to-point fixed-network send (`C_fixed`).
    pub fn send_fixed(&mut self, from: MssId, to: MssId, msg: M) {
        self.net.send_fixed(from, to, msg);
    }

    /// Wireless downlink to a local MH (`C_wireless`).
    ///
    /// # Errors
    ///
    /// [`NetError::NotLocal`] when the MH is not local to `mss`.
    pub fn send_wireless_down(&mut self, mss: MssId, mh: MhId, msg: M) -> Result<(), NetError> {
        self.net.send_wireless_down(mss, mh, msg)
    }

    /// Wireless uplink to the current local MSS (`C_wireless`).
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the MH has disconnected.
    pub fn send_wireless_up(&mut self, mh: MhId, msg: M) -> Result<(), NetError> {
        self.net.send_wireless_up(mh, msg)
    }

    /// Cell-wide wireless broadcast (one `C_wireless` charge for all local
    /// MHs). Returns the recipient count.
    pub fn broadcast_cell(&mut self, mss: MssId, msg: M) -> usize {
        self.net.broadcast_cell(mss, msg)
    }

    /// Locate-and-forward (`C_search + C_wireless`).
    pub fn search_send(&mut self, origin: MssId, mh: MhId, msg: M) {
        self.net.search_send(origin, mh, msg);
    }

    /// MH→MH transport (`2·C_wireless + C_search`).
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the sender has disconnected.
    pub fn mh_send_to_mh(&mut self, src: MhId, dst: MhId, msg: M) -> Result<(), NetError> {
        self.net.mh_send_to_mh(src, dst, msg)
    }

    /// Schedules a strategy timer.
    pub fn set_timer(&mut self, delay: u64, t: T) {
        self.net.set_timer(delay, GroupTimer::Algo(t));
    }

    /// True when `mh` is local to `mss`.
    pub fn is_local(&self, mss: MssId, mh: MhId) -> bool {
        self.net.is_local(mss, mh)
    }

    /// Connectivity status of `mh`.
    pub fn mh_status(&self, mh: MhId) -> MhStatus {
        self.net.mh_status(mh)
    }

    /// Increments a named ledger counter.
    pub fn bump(&mut self, name: &str) {
        self.net.bump(name);
    }

    /// Adds to a named ledger counter.
    pub fn bump_by(&mut self, name: &str, by: u64) {
        self.net.bump_by(name, by);
    }

    /// Protocol random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.net.rng()
    }

    /// Emits a strategy-level event (e.g.
    /// [`TraceEvent::LvUpdate`](mobidist_net::obs::TraceEvent::LvUpdate))
    /// into the kernel's structured trace stream.
    pub fn emit(&mut self, ev: mobidist_net::obs::TraceEvent) {
        self.net.emit(ev);
    }
}

/// A strategy for delivering group messages to mobile members (Section 4).
pub trait LocationStrategy: Sized + 'static {
    /// Message payload. `Clone` lets the kernel's broadcast fan-outs share
    /// one payload per arrival tick.
    type Msg: Debug + Clone + 'static;
    /// Timer payload.
    type Timer: Debug + 'static;

    /// Short display name.
    fn name(&self) -> &'static str;

    /// One-time initialisation with the initial member placement
    /// (member → initial cell).
    fn on_start(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        placement: &BTreeMap<MhId, MssId>,
    ) {
        let _ = (ctx, placement);
    }

    /// Member `from` sends group message `msg_id` to the whole group.
    /// Only called while `from` is connected.
    fn send_group_message(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        from: MhId,
        msg_id: u64,
    );

    /// A message arrived at a fixed host.
    fn on_mss_msg(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        at: MssId,
        src: Src,
        msg: Self::Msg,
    );

    /// A message arrived at a mobile host.
    fn on_mh_msg(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        at: MhId,
        src: Src,
        msg: Self::Msg,
    );

    /// A strategy timer fired.
    fn on_timer(&mut self, ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>, timer: Self::Timer) {
        let _ = (ctx, timer);
    }

    /// A member joined a new cell (`prev` supplied with the join).
    fn on_member_joined(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        let _ = (ctx, mh, mss, prev);
    }

    /// A member left its cell.
    fn on_member_left(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
    ) {
        let _ = (ctx, mh, mss);
    }

    /// A member disconnected.
    fn on_member_disconnected(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
    ) {
        let _ = (ctx, mh, mss);
    }

    /// A member reconnected.
    fn on_member_reconnected(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        let _ = (ctx, mh, mss, prev);
    }

    /// A search bounced off a disconnected member.
    fn on_search_failed(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, Self::Msg, Self::Timer>,
        origin: MssId,
        target: MhId,
        msg: Self::Msg,
    ) {
        let _ = (ctx, origin, target, msg);
    }
}

/// Group-message workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupWorkload {
    /// The group being exercised.
    pub group: GroupId,
    /// Members of the group.
    pub members: Vec<MhId>,
    /// Total group messages to send (`MSG`).
    pub messages: usize,
    /// Mean interval between group messages.
    pub mean_interval: u64,
}

impl mobidist_net::fingerprint::CanonHash for GroupWorkload {
    fn canon_hash(&self, h: &mut mobidist_net::fingerprint::CanonHasher) {
        // Destructured so a new workload knob cannot silently escape the
        // run-cache fingerprint.
        let GroupWorkload {
            group,
            members,
            messages,
            mean_interval,
        } = self;
        group.canon_hash(h);
        members.canon_hash(h);
        messages.canon_hash(h);
        mean_interval.canon_hash(h);
    }
}

impl GroupWorkload {
    /// A workload over the given members.
    pub fn new(members: Vec<MhId>, messages: usize, mean_interval: u64) -> Self {
        GroupWorkload {
            group: GroupId(0),
            members,
            messages,
            mean_interval,
        }
    }
}

/// Delivery audit and cost summary of one group workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    /// Group messages sent (`MSG`).
    pub sent: u64,
    /// Member moves observed during the run (`MOB`).
    pub member_moves: u64,
    /// Deliveries expected (connected members at send time, minus sender).
    pub expected: u64,
    /// Deliveries that happened.
    pub delivered: u64,
    /// Expected deliveries that never happened.
    pub missed: u64,
    /// Deliveries of a message to a member more than once.
    pub duplicates: u64,
    /// Deliveries to members that were not expected (e.g. reconnected late).
    pub unexpected: u64,
}

impl GroupReport {
    /// Fraction of expected deliveries that arrived.
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected == 0 {
            return 1.0;
        }
        self.delivered.min(self.expected) as f64 / self.expected as f64
    }

    /// The workload's mobility-to-message ratio `MOB/MSG`.
    pub fn mobility_ratio(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.member_moves as f64 / self.sent as f64
    }
}

/// True when the per-member delivery sequences are mutually consistent
/// with one global total order: for every pair of messages delivered to
/// two members, both saw them in the same relative order.
///
/// This is the "message ordering" semantics of group communication the
/// paper names in Section 4. Sequencer-based delivery (the exactly-once
/// extension) guarantees it; the search- and directory-based strategies do
/// not.
///
/// # Examples
///
/// ```
/// use mobidist_group::strategy::sequences_consistent;
/// use mobidist_net::ids::MhId;
/// use std::collections::BTreeMap;
///
/// let mut seqs = BTreeMap::new();
/// seqs.insert(MhId(0), vec![1, 2, 3]);
/// seqs.insert(MhId(1), vec![2, 3]); // a subsequence: fine
/// assert!(sequences_consistent(&seqs));
/// seqs.insert(MhId(2), vec![3, 2]); // contradicts the others
/// assert!(!sequences_consistent(&seqs));
/// ```
pub fn sequences_consistent(seqs: &BTreeMap<MhId, Vec<u64>>) -> bool {
    // rank[m][msg] = position of msg in m's sequence.
    let ranks: Vec<BTreeMap<u64, usize>> = seqs
        .values()
        .map(|s| s.iter().enumerate().map(|(i, m)| (*m, i)).collect())
        .collect();
    for (i, a) in ranks.iter().enumerate() {
        for b in ranks.iter().skip(i + 1) {
            let common: Vec<u64> = a.keys().filter(|k| b.contains_key(k)).copied().collect();
            for (x, xs) in common.iter().enumerate() {
                for ys in common.iter().skip(x + 1) {
                    let in_a = a[xs] < a[ys];
                    let in_b = b[xs] < b[ys];
                    if in_a != in_b {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Workload + audit harness around a [`LocationStrategy`].
#[derive(Debug)]
pub struct GroupHarness<S: LocationStrategy> {
    strategy: S,
    wl: GroupWorkload,
    member_set: BTreeSet<MhId>,
    deliveries: Vec<Delivery>,
    /// msg_id → expected recipients at send time.
    expected: BTreeMap<u64, BTreeSet<MhId>>,
    /// msg_id → actual recipients (with duplicate count).
    received: BTreeMap<u64, BTreeMap<MhId, u64>>,
    /// Per-member delivery order (first deliveries only).
    sequences: BTreeMap<MhId, Vec<u64>>,
    next_msg: u64,
    member_moves: u64,
    sender_cursor: usize,
}

impl<S: LocationStrategy> GroupHarness<S> {
    /// Wraps `strategy` under workload `wl`.
    pub fn new(strategy: S, wl: GroupWorkload) -> Self {
        let member_set = wl.members.iter().copied().collect();
        GroupHarness {
            strategy,
            wl,
            member_set,
            deliveries: Vec::new(),
            expected: BTreeMap::new(),
            received: BTreeMap::new(),
            sequences: BTreeMap::new(),
            next_msg: 0,
            member_moves: 0,
            sender_cursor: 0,
        }
    }

    /// Per-member delivery sequences (first delivery of each message).
    pub fn delivery_sequences(&self) -> &BTreeMap<MhId, Vec<u64>> {
        &self.sequences
    }

    /// True when all members saw common messages in the same relative
    /// order (see [`sequences_consistent`]).
    pub fn total_order_consistent(&self) -> bool {
        sequences_consistent(&self.sequences)
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Mutable access to the wrapped strategy.
    pub fn strategy_mut(&mut self) -> &mut S {
        &mut self.strategy
    }

    /// Builds the delivery/cost report.
    pub fn report(&self) -> GroupReport {
        let mut delivered = 0;
        let mut missed = 0;
        let mut duplicates = 0;
        let mut unexpected = 0;
        let mut expected_total = 0;
        for (msg, exp) in &self.expected {
            let got = self.received.get(msg);
            expected_total += exp.len() as u64;
            for m in exp {
                match got.and_then(|g| g.get(m)) {
                    None => missed += 1,
                    Some(n) => {
                        delivered += 1;
                        duplicates += n - 1;
                    }
                }
            }
            if let Some(g) = got {
                for (m, n) in g {
                    if !exp.contains(m) {
                        unexpected += n;
                    }
                }
            }
        }
        GroupReport {
            sent: self.next_msg,
            member_moves: self.member_moves,
            expected: expected_total,
            delivered,
            missed,
            duplicates,
            unexpected,
        }
    }

    fn apply_deliveries(&mut self) {
        for d in self.deliveries.drain(..) {
            let count = self
                .received
                .entry(d.msg_id)
                .or_default()
                .entry(d.to)
                .or_insert(0);
            *count += 1;
            if *count == 1 {
                self.sequences.entry(d.to).or_default().push(d.msg_id);
            }
        }
    }

    fn with_strategy(
        &mut self,
        ctx: &mut Ctx<'_, S::Msg, GroupTimer<S::Timer>>,
        f: impl FnOnce(&mut S, &mut GroupCtx<'_, '_, S::Msg, S::Timer>),
    ) {
        {
            let mut gctx = GroupCtx::new(ctx, &mut self.deliveries);
            f(&mut self.strategy, &mut gctx);
        }
        self.apply_deliveries();
    }

    fn schedule_send(&self, ctx: &mut Ctx<'_, S::Msg, GroupTimer<S::Timer>>) {
        let d = ctx.rng().exp_delay(self.wl.mean_interval.max(1));
        ctx.set_timer(d, GroupTimer::SendNext);
    }
}

impl<S: LocationStrategy> Protocol for GroupHarness<S> {
    type Msg = S::Msg;
    type Timer = GroupTimer<S::Timer>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {
        let placement: BTreeMap<MhId, MssId> = self
            .wl
            .members
            .iter()
            .filter_map(|m| ctx.current_cell(*m).map(|c| (*m, c)))
            .collect();
        self.with_strategy(ctx, |s, gctx| s.on_start(gctx, &placement));
        if self.wl.messages > 0 {
            self.schedule_send(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, timer: Self::Timer) {
        match timer {
            GroupTimer::Algo(t) => self.with_strategy(ctx, |s, gctx| s.on_timer(gctx, t)),
            GroupTimer::SendNext => {
                if self.next_msg as usize >= self.wl.messages {
                    return;
                }
                // Round-robin through members to find a connected sender.
                let n = self.wl.members.len();
                let mut sender = None;
                for i in 0..n {
                    let cand = self.wl.members[(self.sender_cursor + i) % n];
                    if ctx.mh_status(cand) == MhStatus::Connected {
                        sender = Some(cand);
                        self.sender_cursor = (self.sender_cursor + i + 1) % n;
                        break;
                    }
                }
                let Some(sender) = sender else {
                    // Nobody can send right now; retry shortly.
                    self.schedule_send(ctx);
                    return;
                };
                let msg_id = self.next_msg;
                self.next_msg += 1;
                // Expected recipients: connected members at send time,
                // excluding the sender (the paper's accounting footnote
                // disregards in-transit moves; we *count* them as misses).
                let exp: BTreeSet<MhId> = self
                    .wl
                    .members
                    .iter()
                    .copied()
                    .filter(|m| *m != sender && ctx.mh_status(*m) == MhStatus::Connected)
                    .collect();
                self.expected.insert(msg_id, exp);
                self.with_strategy(ctx, |s, gctx| s.send_group_message(gctx, sender, msg_id));
                if (self.next_msg as usize) < self.wl.messages {
                    self.schedule_send(ctx);
                }
            }
        }
    }

    fn on_mss_msg(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MssId,
        src: Src,
        msg: Self::Msg,
    ) {
        self.with_strategy(ctx, |s, gctx| s.on_mss_msg(gctx, at, src, msg));
    }

    fn on_mh_msg(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MhId,
        src: Src,
        msg: Self::Msg,
    ) {
        self.with_strategy(ctx, |s, gctx| s.on_mh_msg(gctx, at, src, msg));
    }

    fn on_mh_joined(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        if self.member_set.contains(&mh) {
            self.member_moves += 1;
            self.with_strategy(ctx, |s, gctx| s.on_member_joined(gctx, mh, mss, prev));
        }
    }

    fn on_mh_left(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, mh: MhId, mss: MssId) {
        if self.member_set.contains(&mh) {
            self.with_strategy(ctx, |s, gctx| s.on_member_left(gctx, mh, mss));
        }
    }

    fn on_mh_disconnected(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
    ) {
        if self.member_set.contains(&mh) {
            self.with_strategy(ctx, |s, gctx| s.on_member_disconnected(gctx, mh, mss));
        }
    }

    fn on_mh_reconnected(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        if self.member_set.contains(&mh) {
            self.with_strategy(ctx, |s, gctx| s.on_member_reconnected(gctx, mh, mss, prev));
        }
    }

    fn on_search_failed(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        origin: MssId,
        target: MhId,
        msg: Self::Msg,
    ) {
        self.with_strategy(ctx, |s, gctx| s.on_search_failed(gctx, origin, target, msg));
    }
}
