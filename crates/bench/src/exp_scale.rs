//! **E12 — space-sharded scale curve** (million-host mobility churn).
//!
//! Runs the sharded kernel ([`mobidist_net::shard`]) over a geometric ladder
//! of populations and reports, per point: events executed, measured vs
//! closed-form-predicted moves (a model-fidelity check), delivered wired
//! handoff notifications, resident bytes per host, and the canonical
//! final-state digest.
//!
//! Two properties distinguish E12 from every other experiment:
//!
//! * **Every column is a pure function of the spec.** No wall-clock times
//!   appear (throughput lives in `BENCH_kernel.json`, measured by
//!   `perfreport`), so the table is byte-identical at every shard count —
//!   which is exactly what CI's shard-soundness gate `cmp`s.
//! * **The run cache is deliberately bypassed.** A cached replay would let
//!   the 1-shard and 4-shard gate legs serve the same stored bytes without
//!   re-executing either, making the equivalence check vacuous.
//!
//! The shard count comes from `MOBIDIST_SHARDS` (the `experiments` CLI sets
//! it from `--shards N`), defaulting to the machine's parallelism.

use crate::obs::install_shard_sinks;
use crate::parallel::default_jobs;
use crate::table::Table;
use mobidist_net::config::NetworkConfig;
use mobidist_net::mobility::MobilityConfig;
use mobidist_net::shard::{run_scale_traced, ScaleSpec};

/// Environment variable selecting the worker count for sharded runs;
/// unset means the machine's available parallelism.
pub const SHARDS_ENV: &str = "MOBIDIST_SHARDS";

/// Worker count for sharded runs: `MOBIDIST_SHARDS` when set (clamped to
/// ≥ 1), otherwise [`default_jobs`] (which itself honours `MOBIDIST_JOBS`).
pub fn default_shards() -> usize {
    if let Ok(v) = std::env::var(SHARDS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    default_jobs()
}

/// The scale ladder: `(hosts, cells)` per point. The full curve tops out at
/// one million hosts across 1024 cells; quick mode keeps the same shape two
/// orders of magnitude smaller so tests and the CI gate stay fast.
pub fn scale_points(quick: bool) -> Vec<(usize, usize)> {
    if quick {
        vec![(1_000, 64), (4_000, 128), (10_000, 256)]
    } else {
        vec![
            (1_000, 64),
            (10_000, 128),
            (100_000, 512),
            (1_000_000, 1_024),
        ]
    }
}

/// The canonical E12 spec for a ladder point: mobility churn with the
/// default dwell/gap over a 2000-tick horizon.
pub fn scale_spec(hosts: usize, cells: usize) -> ScaleSpec {
    ScaleSpec::new(cells, hosts).with_seed(1202)
}

/// A [`NetworkConfig`] mirror of `spec`, used only as trace-run metadata
/// (the sharded kernel does not execute it).
pub fn meta_config(spec: &ScaleSpec) -> NetworkConfig {
    NetworkConfig::new(spec.num_mss, spec.num_mh)
        .with_seed(spec.seed)
        .with_mobility(MobilityConfig::moving(spec.mean_dwell))
}

/// Runs the scale-curve experiment.
pub fn e12_scale_curve(quick: bool) -> Table {
    let shards = default_shards();
    let mut t = Table::new(
        "E12 — space-sharded scale curve (mobility churn; shard-count invariant)",
        &[
            "hosts",
            "cells",
            "windows",
            "events",
            "moves",
            "predicted",
            "fidelity",
            "wired",
            "B/host",
            "digest",
        ],
    );
    for (hosts, cells) in scale_points(quick) {
        let spec = scale_spec(hosts, cells);
        let sinks = install_shard_sinks("e12_scale", &meta_config(&spec), shards.min(cells));
        let (r, _sinks) = run_scale_traced(&spec, shards, sinks);
        let predicted = spec.predicted_moves();
        let fidelity = 100.0 * r.ledger.moves as f64 / predicted.max(1) as f64;
        t.push(vec![
            hosts.to_string(),
            cells.to_string(),
            r.windows.to_string(),
            r.events.to_string(),
            r.ledger.moves.to_string(),
            predicted.to_string(),
            format!("{fidelity:.1}%"),
            r.ledger.fixed_msgs.to_string(),
            (r.state_bytes / hosts as u64).to_string(),
            r.digest.to_hex()[..16].to_owned(),
        ]);
    }
    t
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), `None` off Linux or if the field is missing.
///
/// `make scalecheck` runs the million-host point and asserts this stays
/// under the 8 GiB ceiling.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidist_net::shard::run_scale;

    #[test]
    fn quick_table_is_shard_count_invariant() {
        // The table must be a pure function of the spec: recompute the
        // smallest point at several worker counts and diff the digests.
        let spec = scale_spec(1_000, 64);
        let base = run_scale(&spec, 1);
        for s in [2, 4, 7] {
            assert_eq!(run_scale(&spec, s).digest, base.digest);
        }
    }

    #[test]
    fn quick_table_shape_and_fidelity() {
        let t = e12_scale_curve(true);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let fidelity: f64 = row[6].trim_end_matches('%').parse().unwrap();
            assert!(
                (70.0..=130.0).contains(&fidelity),
                "fidelity {fidelity}% outside the model envelope for {} hosts",
                row[0]
            );
            let moves: u64 = row[4].parse().unwrap();
            let wired: u64 = row[7].parse().unwrap();
            assert!(moves > 0 && wired > 0);
        }
    }

    #[test]
    fn rss_probe_reports_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
    }
}
