//! Kernel performance report.
//!
//! Runs a fixed workload matrix through the simulator — sized well above the
//! paper-scale experiments so kernel overhead dominates — and records wall
//! time plus events/second for each, alongside sequential-vs-parallel wall
//! times for the quick E1/E2/E5 sweeps. Results are printed as a table and
//! written to `BENCH_kernel.json` (hand-rolled JSON; the workspace has no
//! serde).
//!
//! ```text
//! cargo run --release --bin perfreport
//! ```
//!
//! Every workload is a fixed `(config, seed)` pair, so the *work done* is
//! identical from run to run and across machines; only the wall times vary.

use mobidist_bench::{exp_group, exp_mutex};
use mobidist_core::prelude::*;
use mobidist_group::prelude::*;
use mobidist_net::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured kernel workload.
struct KernelRow {
    name: &'static str,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
}

/// Steps `sim` until `horizon` or quiescence, counting processed events.
fn drive<P: Protocol>(sim: &mut Simulation<P>, horizon: u64) -> u64 {
    let limit = SimTime::from_ticks(horizon);
    let mut events = 0u64;
    while sim.now() < limit && sim.step() {
        events += 1;
    }
    events
}

fn measure(name: &'static str, run: impl Fn() -> u64) -> KernelRow {
    // One warm-up, then the median of three timed runs.
    let events = run();
    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let e = run();
            assert_eq!(e, events, "workload must be deterministic");
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(f64::total_cmp);
    let wall_ms = walls[1];
    KernelRow {
        name,
        events,
        wall_ms,
        events_per_sec: events as f64 / (wall_ms / 1e3),
    }
}

fn kernel_matrix() -> Vec<KernelRow> {
    vec![
        measure("l2_mutex_n200_m8", || {
            let cfg = NetworkConfig::new(8, 200).with_seed(11);
            let wl = WorkloadConfig::all_mhs(200, 2);
            let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(8), wl));
            let events = drive(&mut sim, 50_000_000);
            let r = sim.protocol().report();
            assert_eq!(r.safety_violations, 0);
            assert!(r.completed >= 300, "most requests must finish: {r:?}");
            events
        }),
        measure("r2_ring_n120_m8", || {
            let cfg = NetworkConfig::new(8, 120).with_seed(12);
            let wl = WorkloadConfig::all_mhs(120, 2);
            let algo = R2::new(8, RingGuard::Counter);
            let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
            let events = drive(&mut sim, 2_000_000);
            assert_eq!(sim.protocol().report().safety_violations, 0);
            events
        }),
        measure("location_view_g60_mobile", || {
            let members: Vec<MhId> = (0..60u32).map(MhId).collect();
            let cfg = NetworkConfig::new(8, 60)
                .with_seed(13)
                .with_mobility(MobilityConfig::moving(400));
            let wl = GroupWorkload::new(members.clone(), 120, 50);
            let mut sim = Simulation::new(
                cfg,
                GroupHarness::new(LocationView::new(members, MssId(0)), wl),
            );
            let events = drive(&mut sim, 2_000_000);
            assert!(sim.protocol().report().delivered > 0);
            events
        }),
    ]
}

/// One sweep timed sequentially and with the default worker pool.
struct SweepRow {
    name: &'static str,
    seq_ms: f64,
    par_ms: f64,
    jobs: usize,
}

fn time_ms(f: impl Fn()) -> f64 {
    // One warm-up, then the median of three timed runs (same protocol as
    // `measure`, so sweep speedups aren't single-sample noise).
    f();
    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(f64::total_cmp);
    walls[1]
}

type SweepFn = fn(bool) -> mobidist_bench::Table;

fn sweep_matrix() -> Vec<SweepRow> {
    // The sequential leg pins MOBIDIST_JOBS=1; the parallel leg explicitly
    // pins the machine's parallelism, so an inherited MOBIDIST_JOBS=1 (e.g.
    // left over from a CI pin) can never make the "parallel" column rerun
    // the sequential path and report `jobs: 1` with a sub-1 speedup. The
    // recorded `jobs` is always the worker count actually used by `par_ms`.
    let caller_jobs = std::env::var("MOBIDIST_JOBS").ok();
    let machine = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let sweeps: [(&'static str, SweepFn); 3] = [
        ("e1_quick", exp_mutex::e1_lamport),
        ("e2_quick", exp_mutex::e2_ring),
        ("e5_quick", exp_group::e5_group_strategies),
    ];
    for (name, f) in sweeps {
        std::env::set_var("MOBIDIST_JOBS", "1");
        let seq_ms = time_ms(|| {
            f(true);
        });
        std::env::set_var("MOBIDIST_JOBS", machine.to_string());
        let jobs = mobidist_bench::parallel::default_jobs();
        let par_ms = time_ms(|| {
            f(true);
        });
        rows.push(SweepRow {
            name,
            seq_ms,
            par_ms,
            jobs,
        });
    }
    match &caller_jobs {
        Some(v) => std::env::set_var("MOBIDIST_JOBS", v),
        None => std::env::remove_var("MOBIDIST_JOBS"),
    }
    rows
}

/// Cold vs warm timings for the content-addressed run cache.
struct CacheRow {
    name: &'static str,
    cold_ms: f64,
    warm_disk_ms: f64,
    warm_mem_ms: f64,
}

fn cache_matrix() -> CacheRow {
    // Workload: the three quick sweeps back to back. Cold runs each get a
    // fresh cache directory (so every one simulates and stores); warm-disk
    // runs clear the in-process tier first (so every run decodes from
    // disk); warm-memory runs replay from the in-process map. Median of 3
    // for each leg, same protocol as `measure`.
    let workload = || {
        exp_mutex::e1_lamport(true);
        exp_mutex::e2_ring(true);
        exp_group::e5_group_strategies(true);
    };
    let base = std::env::temp_dir().join(format!("mobidist-perfreport-{}", std::process::id()));
    let cache = mobidist_runcache::store::global();
    let mut cold: Vec<f64> = (0..3)
        .map(|i| {
            let dir = base.join(format!("cold{i}"));
            std::fs::create_dir_all(&dir).expect("create cache dir");
            std::env::set_var(mobidist_runcache::CACHE_ENV, &dir);
            cache.clear_memory();
            let t0 = Instant::now();
            workload();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    cold.sort_by(f64::total_cmp);
    // The last cold directory is now fully populated; reuse it warm.
    let warm_disk_ms = time_ms(|| {
        cache.clear_memory();
        workload();
    });
    let warm_mem_ms = time_ms(workload);
    std::env::remove_var(mobidist_runcache::CACHE_ENV);
    let _ = std::fs::remove_dir_all(&base);
    CacheRow {
        name: "quick_sweeps_e1_e2_e5",
        cold_ms: cold[1],
        warm_disk_ms,
        warm_mem_ms,
    }
}

fn json_escape_free(s: &str) -> &str {
    // All names in this report are static identifiers; assert rather than
    // escape so a future rename cannot silently emit invalid JSON.
    assert!(
        s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "JSON field would need escaping: {s}"
    );
    s
}

fn to_json(kernel: &[KernelRow], sweeps: &[SweepRow], cache: &CacheRow) -> String {
    let mut j = String::from("{\n  \"kernel\": [\n");
    for (i, r) in kernel.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"events\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}}{}",
            json_escape_free(r.name),
            r.events,
            r.wall_ms,
            r.events_per_sec,
            if i + 1 < kernel.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n  \"sweeps\": [\n");
    for (i, r) in sweeps.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"seq_ms\": {:.3}, \"par_ms\": {:.3}, \"jobs\": {}, \"speedup\": {:.2}}}{}",
            json_escape_free(r.name),
            r.seq_ms,
            r.par_ms,
            r.jobs,
            r.seq_ms / r.par_ms,
            if i + 1 < sweeps.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"cache\": {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"warm_disk_ms\": {:.3}, \
         \"warm_mem_ms\": {:.3}, \"disk_speedup\": {:.2}, \"mem_speedup\": {:.2}}}",
        json_escape_free(cache.name),
        cache.cold_ms,
        cache.warm_disk_ms,
        cache.warm_mem_ms,
        cache.cold_ms / cache.warm_disk_ms,
        cache.cold_ms / cache.warm_mem_ms,
    );
    j.push_str("}\n");
    j
}

fn main() {
    // A caller-supplied cache would memoize the sweep legs and turn the
    // seq/par timings into replay timings; the cache section manages the
    // variable itself.
    std::env::remove_var(mobidist_runcache::CACHE_ENV);
    println!("kernel workload matrix (median of 3 runs):");
    let kernel = kernel_matrix();
    for r in &kernel {
        println!(
            "  {:<28} {:>10} events  {:>9.1} ms  {:>12.0} events/s",
            r.name, r.events, r.wall_ms, r.events_per_sec
        );
    }
    println!("\nsweep fan-out (sequential vs {} workers):", sweeps_jobs());
    let sweeps = sweep_matrix();
    for r in &sweeps {
        println!(
            "  {:<12} seq {:>8.1} ms   par {:>8.1} ms   speedup {:.2}x",
            r.name,
            r.seq_ms,
            r.par_ms,
            r.seq_ms / r.par_ms
        );
    }
    println!("\nrun cache (cold vs warm, median of 3):");
    let cache = cache_matrix();
    println!(
        "  {:<24} cold {:>8.1} ms   disk {:>8.1} ms ({:.1}x)   mem {:>8.1} ms ({:.1}x)",
        cache.name,
        cache.cold_ms,
        cache.warm_disk_ms,
        cache.cold_ms / cache.warm_disk_ms,
        cache.warm_mem_ms,
        cache.cold_ms / cache.warm_mem_ms,
    );
    let json = to_json(&kernel, &sweeps, &cache);
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");
}

fn sweeps_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
