//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties in simulated time
//! are broken by insertion order, so a run is a total order fully determined
//! by the configuration seed.
//!
//! The queue is a hand-rolled **four-ary min-heap** rather than
//! `std::collections::BinaryHeap`. A 4-ary layout halves tree height, and
//! since the hot loop is pop-heavy (every simulation event is pushed once and
//! popped once), the shallower sift-down path plus the cache locality of four
//! adjacent children is a measurable win at the 10⁴–10⁵ pending events the
//! big sweeps reach (see `benches/micro.rs`). Keys `(time, seq)` are unique,
//! so pop order is a total order independent of internal layout.

use crate::time::SimTime;

const ARITY: usize = 4;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    body: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Min-heap of timed events with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use mobidist_net::event::EventQueue;
/// use mobidist_net::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ticks(5), "later");
/// q.push(SimTime::from_ticks(2), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.ticks(), e), (2, "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events, so the
    /// steady-state working set never reallocates.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `body` at `time`.
    pub fn push(&mut self, time: SimTime, body: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, body });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let e = self.heap.pop().expect("checked non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((e.time, e.body))
    }

    /// Fused peek-and-pop: removes the earliest event only when it is due at
    /// or before `limit`. The kernel main loop uses this instead of a
    /// `peek_time`/`pop` pair, saving one root comparison per event.
    pub fn pop_if_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.heap.first()?.time > limit {
            return None;
        }
        self.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let end = (first + ARITY).min(len);
            for c in (first + 1)..end {
                if self.heap[c].key() < self.heap[min].key() {
                    min = c;
                }
            }
            if self.heap[min].key() < self.heap[i].key() {
                self.heap.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(30), 3);
        q.push(SimTime::from_ticks(10), 1);
        q.push(SimTime::from_ticks(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(7);
        for i in 0..50 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ticks(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(4)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5), 'b');
        q.push(SimTime::from_ticks(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_ticks(3), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn pop_if_at_or_before_respects_limit() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(10), 'x');
        q.push(SimTime::from_ticks(20), 'y');
        assert!(q.pop_if_at_or_before(SimTime::from_ticks(5)).is_none());
        assert_eq!(q.len(), 2);
        let (t, e) = q.pop_if_at_or_before(SimTime::from_ticks(10)).unwrap();
        assert_eq!((t.ticks(), e), (10, 'x'));
        assert!(q.pop_if_at_or_before(SimTime::from_ticks(15)).is_none());
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_ticks(20)).unwrap().1,
            'y'
        );
        assert!(q.pop_if_at_or_before(SimTime::from_ticks(99)).is_none());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(128);
        for i in (0..100).rev() {
            q.push(SimTime::from_ticks(i), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_interleaving_matches_reference_sort() {
        // Deterministic pseudo-random pushes; popped order must equal the
        // stable sort by (time, insertion order).
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut x = 0x2545F4914F6CDD1Du64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = x % 64;
            q.push(SimTime::from_ticks(t), i);
            expect.push((t, i));
        }
        expect.sort();
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.ticks(), e))).collect();
        assert_eq!(got, expect);
    }
}
