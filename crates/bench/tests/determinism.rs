//! Determinism guarantees the experiment engine relies on.
//!
//! The parallel sweep runner is only sound because every simulation run is a
//! pure function of its `(config, seed)` pair and results are reassembled in
//! input order. These tests pin both halves: identical seeds yield identical
//! execution traces, and worker count never changes a rendered table.

use mobidist_bench::{exp_fault, exp_group, exp_mutex, exp_serve};
use mobidist_core::prelude::*;
use mobidist_net::prelude::*;
use mobidist_net::time::SimTime;

/// Runs a mobility-heavy mutex workload with the kernel trace on and returns
/// every trace entry plus the final ledger.
fn traced_run(seed: u64) -> (Vec<(SimTime, String)>, CostLedger) {
    let cfg = NetworkConfig::new(4, 12)
        .with_seed(seed)
        .with_mobility(MobilityConfig::moving(300));
    let wl = WorkloadConfig::all_mhs(12, 2);
    let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(4), wl));
    sim.kernel_mut().trace_mut().enable();
    sim.run_until(SimTime::from_ticks(200_000));
    let entries = sim.kernel().trace().entries().cloned().collect();
    (entries, sim.ledger().clone())
}

#[test]
fn same_seed_runs_produce_identical_traces() {
    let (trace_a, ledger_a) = traced_run(21);
    let (trace_b, ledger_b) = traced_run(21);
    assert!(
        !trace_a.is_empty(),
        "the workload must actually exercise the trace"
    );
    assert_eq!(trace_a.len(), trace_b.len());
    for (i, (a, b)) in trace_a.iter().zip(&trace_b).enumerate() {
        assert_eq!(a, b, "trace diverged at entry {i}");
    }
    assert_eq!(ledger_a, ledger_b, "cost ledgers must match exactly");

    // Different seed must actually change the execution — otherwise the
    // equality above proves nothing.
    let (trace_c, _) = traced_run(22);
    assert_ne!(trace_a, trace_c, "distinct seeds should diverge");
}

#[test]
fn tables_are_byte_identical_at_any_worker_count() {
    // MOBIDIST_JOBS is process-global, so both sweeps are compared inside
    // this single test; no other test in this binary reads the variable.
    let render = |jobs: &str| {
        std::env::set_var("MOBIDIST_JOBS", jobs);
        let e1 = exp_mutex::e1_lamport(true);
        let e5 = exp_group::e5_group_strategies(true);
        let e13 = exp_serve::e13_serving(true);
        let e14 = exp_fault::e14_fault(true);
        std::env::remove_var("MOBIDIST_JOBS");
        (
            e1.to_string(),
            e1.to_csv(),
            e5.to_string(),
            e5.to_csv(),
            e13.to_string(),
            e13.to_csv(),
            e14.to_string(),
            e14.to_csv(),
        )
    };
    let seq = render("1");
    let par = render("4");
    assert_eq!(
        seq.0, par.0,
        "E1 table text differs between jobs=1 and jobs=4"
    );
    assert_eq!(seq.1, par.1, "E1 CSV differs between jobs=1 and jobs=4");
    assert_eq!(
        seq.2, par.2,
        "E5 table text differs between jobs=1 and jobs=4"
    );
    assert_eq!(seq.3, par.3, "E5 CSV differs between jobs=1 and jobs=4");
    assert_eq!(
        seq.4, par.4,
        "E13 table text differs between jobs=1 and jobs=4"
    );
    assert_eq!(seq.5, par.5, "E13 CSV differs between jobs=1 and jobs=4");
    assert_eq!(
        seq.6, par.6,
        "E14 table text differs between jobs=1 and jobs=4"
    );
    assert_eq!(seq.7, par.7, "E14 CSV differs between jobs=1 and jobs=4");
}
