//! A disaster-response field team coordinating over group messages.
//!
//! Twelve responders move through a sixteen-cell operations area, mostly
//! staying near their assigned sectors (locality-biased mobility). The team
//! lead periodically broadcasts situation updates to the whole group. We
//! run all three location-management strategies from Section 4 of the paper
//! over the *same* seeded scenario and print effective per-message costs,
//! showing where each wins.
//!
//! Run with:
//!
//! ```text
//! cargo run --example field_team
//! ```

use mobidist::prelude::*;

const CELLS: usize = 16;
const TEAM: usize = 12;
const UPDATES: usize = 25;

fn scenario() -> NetworkConfig {
    NetworkConfig::new(CELLS, TEAM)
        .with_seed(2024)
        .with_placement(Placement::Clustered { cells: 3 })
        .with_mobility(MobilityConfig {
            enabled: true,
            mean_dwell: 600,
            mean_gap: 15,
            pattern: MovePattern::Locality {
                p_local: 0.85,
                home_span: 3,
            },
        })
}

fn members() -> Vec<MhId> {
    (0..TEAM as u32).map(MhId).collect()
}

fn workload() -> GroupWorkload {
    GroupWorkload::new(members(), UPDATES, 400)
}

struct Outcome {
    name: &'static str,
    cost_per_msg: f64,
    delivery: f64,
    energy: u64,
    searches: u64,
}

/// Horizon sized to the messaging window (~25 × 400 ticks) so the
/// mobility-to-message ratio reflects concurrent operation rather than an
/// idle tail where only moves accumulate.
const HORIZON: u64 = 30_000;

fn outcome<S: LocationStrategy>(name: &'static str, strategy: S) -> Outcome {
    let mut sim = Simulation::new(scenario(), GroupHarness::new(strategy, workload()));
    sim.run_until(SimTime::from_ticks(HORIZON));
    let r = sim.protocol().report();
    Outcome {
        name,
        cost_per_msg: sim.ledger().total_cost() as f64 / r.sent.max(1) as f64,
        delivery: r.delivery_ratio(),
        energy: sim.ledger().total_energy(),
        searches: sim.ledger().searches,
    }
}

fn main() {
    let ps = outcome("pure search", PureSearch::new(members()));
    let ai = outcome("always inform", AlwaysInform::new(members()));

    // Location view needs its own run to also report view statistics.
    let mut sim = Simulation::new(
        scenario(),
        GroupHarness::new(LocationView::new(members(), MssId(0)), workload()),
    );
    sim.run_until(SimTime::from_ticks(HORIZON));
    let rep = sim.protocol().report();
    let lv_stats = {
        let s = sim.protocol().strategy();
        (s.max_view_size(), s.significant_fraction())
    };
    let lv = Outcome {
        name: "location view",
        cost_per_msg: sim.ledger().total_cost() as f64 / rep.sent.max(1) as f64,
        delivery: rep.delivery_ratio(),
        energy: sim.ledger().total_energy(),
        searches: sim.ledger().searches,
    };

    println!("field team — {TEAM} responders, {CELLS} cells, {UPDATES} situation updates");
    println!(
        "mobility-to-message ratio: {:.2} moves per update\n",
        rep.mobility_ratio()
    );
    println!("strategy        cost/msg   delivery   battery   searches");
    for o in [&ps, &ai, &lv] {
        println!(
            "{:<15} {:<10.1} {:<10.3} {:<9} {}",
            o.name, o.cost_per_msg, o.delivery, o.energy, o.searches
        );
    }
    println!();
    println!(
        "location view: |LV|max = {} of {} cells, significant fraction f = {:.2}",
        lv_stats.0, CELLS, lv_stats.1
    );
    println!("(the static network absorbs the update traffic: LV does zero searches)");

    assert_eq!(lv.searches, 0);
    assert!(lv_stats.0 < TEAM, "the view stays smaller than the team");
}
