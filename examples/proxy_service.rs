//! A ticket counter served to mobile clients through proxies.
//!
//! A classical client-server program — a central counter handing out
//! sequence numbers — is written for *static* hosts and knows nothing about
//! mobility. The proxy framework of Section 5 runs it unchanged at the
//! support stations while eight clients roam. We compare the two proxy
//! scopes the paper describes: a fixed lifetime proxy (every move must be
//! reported to it) and the local-MSS proxy (state is handed off on every
//! move).
//!
//! Run with:
//!
//! ```text
//! cargo run --example proxy_service
//! ```

use mobidist::prelude::*;

const STATIONS: usize = 6;
const CLIENTS: usize = 8;

fn scenario(dwell: u64) -> NetworkConfig {
    NetworkConfig::new(STATIONS, CLIENTS)
        .with_seed(99)
        .with_mobility(MobilityConfig::moving(dwell))
}

fn serve(policy: ProxyPolicy, dwell: u64) -> (ProxyReport, u64) {
    let clients: Vec<MhId> = (0..CLIENTS as u32).map(MhId).collect();
    let wl = ProxyWorkload {
        inputs_per_client: 5,
        mean_interval: 500,
    };
    let mut sim = Simulation::new(
        scenario(dwell),
        ProxyRuntime::new(CentralCounter::new(), clients, policy, wl),
    );
    sim.run_until(SimTime::from_ticks(400_000));
    (sim.protocol().report(), sim.ledger().total_cost())
}

fn main() {
    println!("ticket counter behind proxies — {CLIENTS} roaming clients, {STATIONS} stations\n");
    println!("dwell   policy     tickets   loc-updates   handoffs   stale   cost");
    for dwell in [4_000u64, 800, 250] {
        for policy in [ProxyPolicy::Fixed, ProxyPolicy::LocalMss] {
            let (r, cost) = serve(policy, dwell);
            println!(
                "{:<7} {:<10} {:<9} {:<13} {:<10} {:<7} {}",
                dwell,
                format!("{policy:?}"),
                format!("{}/{}", r.outputs_delivered, r.inputs_sent),
                r.loc_updates,
                r.handoffs,
                r.stale_outputs,
                cost
            );
        }
    }
    println!();
    println!("the static algorithm never changed — the proxy layer absorbed all mobility");
    println!("fixed proxies pay per MOVE (location updates); local proxies pay per move too");
    println!("(handoffs), but keep inputs and outputs on the local wireless hop.");
}
