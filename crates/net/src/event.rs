//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties in simulated time
//! are broken by insertion order, so a run is a total order fully determined
//! by the configuration seed.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — a **hierarchical timing wheel** (three levels of 256
//!   slots covering a 2²⁴-tick region, plus an overflow min-heap for
//!   far-future timers). Push and pop are O(1) amortized for the near-future
//!   events that dominate discrete-event workloads, versus O(log n) for a
//!   heap. This is what the kernel runs on.
//! * [`EventHeap`] — the original hand-rolled four-ary min-heap, kept as the
//!   reference implementation. `tests/wheel_equivalence.rs` drives both with
//!   randomized workloads and asserts identical pop sequences, and
//!   `benches/micro.rs` (in the bench crate) races them head to head.
//!
//! # Wheel layout
//!
//! The wheel tracks a monotone *cursor* (the tick of the last popped event).
//! A pending tick `t` lives at the level selected by `x = t ^ cursor`:
//! level 0 (`x < 2⁸`, one tick per slot), level 1 (`x < 2¹⁶`, 256 ticks per
//! slot), level 2 (`x < 2²⁴`, 2¹⁶ ticks per slot), or the overflow heap
//! (`x ≥ 2²⁴`). Slot indices are taken from *absolute* tick bits
//! (`(t >> 8·level) & 255`), not cursor-relative deltas, so a given tick maps
//! to the same slot for as long as it stays on a level — which is what keeps
//! same-tick entries in strict insertion order: they always append to the
//! same `VecDeque`, and cascades move whole deques without reordering.
//!
//! When level 0 has no slot at or after the cursor, the first occupied slot
//! of the lowest non-empty level is *cascaded*: the cursor jumps to that
//! slot's window start and the slot's entries are reinserted, each landing at
//! least one level lower (XOR with the new cursor clears the bits that chose
//! the old level). When the whole wheel is empty the cursor jumps straight to
//! the overflow minimum and every overflow entry now within the cursor's
//! 2²⁴-tick region is drained into the wheel in `(time, seq)` order.
//!
//! Pushing a time earlier than the cursor is allowed for generic users (the
//! kernel never does): the entry is *placed* at the cursor slot and pops with
//! its original timestamp, preserving `(time, seq)` order among late entries.

use crate::time::SimTime;
use std::collections::VecDeque;

/// log2 of slots per level.
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Bitmap words per level (256 slots / 64 bits).
const WORDS: usize = SLOTS / 64;
/// Wheel levels; ticks within `2^(SLOT_BITS * LEVELS)` of the cursor fit.
const LEVELS: usize = 3;
/// Low-bits mask selecting a slot index.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Ticks covered by the wheel region (beyond this from the cursor →
/// overflow).
const REGION: u64 = 1 << (SLOT_BITS * LEVELS as u32);

#[derive(Debug)]
struct Entry<E> {
    time: u64,
    seq: u64,
    body: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// One wheel level: 256 slots of FIFO deques plus an occupancy bitmap.
#[derive(Debug)]
struct Level<E> {
    slots: Box<[VecDeque<Entry<E>>]>,
    occupied: [u64; WORDS],
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
        }
    }

    #[inline]
    fn mark(&mut self, s: usize) {
        self.occupied[s / 64] |= 1u64 << (s % 64);
    }

    #[inline]
    fn unmark(&mut self, s: usize) {
        self.occupied[s / 64] &= !(1u64 << (s % 64));
    }

    /// Lowest occupied slot index `>= start`, scanning the bitmap.
    #[inline]
    fn first_occupied_from(&self, start: usize) -> Option<usize> {
        if start >= SLOTS {
            return None;
        }
        let mut w = start / 64;
        let mut word = self.occupied[w] & (!0u64 << (start % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == WORDS {
                return None;
            }
            word = self.occupied[w];
        }
    }

    fn clear(&mut self) {
        for (w, word) in self.occupied.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                self.slots[s].clear();
                bits &= bits - 1;
            }
            *word = 0;
        }
    }
}

/// Hierarchical timing-wheel event queue with deterministic tie-breaking.
///
/// Drop-in replacement for the previous heap-backed queue: same API, same
/// total pop order `(time, insertion seq)`. See the module docs for the
/// layout and ordering argument.
///
/// # Examples
///
/// ```
/// use mobidist_net::event::EventQueue;
/// use mobidist_net::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ticks(5), "later");
/// q.push(SimTime::from_ticks(2), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.ticks(), e), (2, "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    levels: [Level<E>; LEVELS],
    /// Far-future entries (`time ^ cursor >= REGION`), a 4-ary min-heap on
    /// `(time, seq)`.
    overflow: Vec<Entry<E>>,
    /// Tick of the last popped event; never decreases.
    cursor: u64,
    /// Next insertion sequence number.
    seq: u64,
    /// Total pending entries (wheel + overflow).
    len: usize,
    /// Pending entries in the wheel levels only.
    wheel_len: usize,
    /// Retired slot deques, recycled into cold slots on first push — one
    /// pool per level, because slot capacity scales with the level's window
    /// span (a level-1 slot covers 256 ticks of schedule, a level-0 slot
    /// one tick) and mixing them makes every reuse a fresh growth chain.
    ///
    /// Slots hand their deque back here the moment they empty and take one
    /// back when next occupied, so buffer capacity follows the *concurrent*
    /// occupancy profile rather than the wheel's rotation: without this, a
    /// steady-state run keeps allocating for a full 2^16-tick wrap as each
    /// upper-level slot is touched for the first time. With it, warmed-up
    /// windows are allocation-free (pinned by the `delivery_alloc` suite).
    deque_pool: [Vec<VecDeque<Entry<E>>>; LEVELS],
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            levels: [Level::new(), Level::new(), Level::new()],
            overflow: Vec::new(),
            cursor: 0,
            seq: 0,
            len: 0,
            wheel_len: 0,
            deque_pool: [Vec::new(), Vec::new(), Vec::new()],
        }
    }

    /// Creates an empty queue sized for roughly `cap` pending events.
    ///
    /// The wheel's slots grow on demand and are retained across
    /// [`clear`](Self::clear), so the hint only pre-sizes the overflow heap.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.overflow.reserve(cap.min(1024));
        q
    }

    /// Schedules `body` at `time`.
    pub fn push(&mut self, time: SimTime, body: E) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(Entry {
            time: time.ticks(),
            seq,
            body,
        });
        self.len += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (tick, slot) = self.settle()?;
        Some(self.pop_settled(tick, slot))
    }

    /// Fused peek-and-pop: removes the earliest event only when it is due at
    /// or before `limit`. The kernel main loop uses this instead of a
    /// `peek_time`/`pop` pair.
    ///
    /// When the earliest event is beyond `limit` the queue is left entirely
    /// untouched — in particular the cursor does not advance, so events the
    /// caller pushes afterwards (at times at or after the last *popped*
    /// tick) never count as late.
    pub fn pop_if_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        // Eligibility is judged by the *placement* tick (what `pop` would
        // settle to), read without mutating: cascading here and then
        // returning `None` would advance the cursor past events the caller
        // is still allowed to push.
        //
        // Fast path: a due event already sitting in a level-0 slot — it
        // precedes everything at upper levels and in the overflow, so it can
        // be popped directly without the settle rescan.
        if self.len == 0 {
            return None;
        }
        let lim = limit.ticks();
        if self.wheel_len > 0 {
            let c0 = (self.cursor & SLOT_MASK) as usize;
            if let Some(s) = self.levels[0].first_occupied_from(c0) {
                let tick = (self.cursor & !SLOT_MASK) | s as u64;
                if tick > lim {
                    return None;
                }
                return Some(self.pop_settled(tick, s));
            }
        }
        // Slow path (cascade or overflow drain pending): judge read-only,
        // then let `pop` do the mutation.
        if self.due_tick().expect("len > 0") > lim {
            return None;
        }
        self.pop()
    }

    /// Pops the next pending event only when it is scheduled at exactly the
    /// tick of the last popped event (the cursor) *and* `pred` accepts its
    /// body. Returns `None` — touching nothing — otherwise.
    ///
    /// This is O(1), no settle or cascade: once an event at tick `t` has been
    /// popped (`cursor == t`), every remaining entry with `time == t` already
    /// sits in level-0 slot `t & 255`. An entry lands in the wheel either
    /// directly (placement clamps to the cursor, and `t ^ cursor < 256`
    /// selects level 0 slot `t & 255`) or via a cascade — and a cascade of
    /// the slot *containing* `t` reinserts its entries against a cursor that
    /// shares `t`'s upper bits, landing them in that same level-0 slot. An
    /// overflow jump cannot intervene: it only happens when the wheel is
    /// empty, which it isn't while a same-tick entry remains. Within the
    /// slot, entries are FIFO in insertion order, which for equal times *is*
    /// `(time, seq)` order — so the front of the slot is exactly the event
    /// `pop` would return next.
    ///
    /// The cursor does not move (it already equals the popped tick), so
    /// where later pushes land is unaffected. The kernel's delivery batcher
    /// leans on this to coalesce same-tick runs without disturbing the total
    /// order.
    pub fn pop_same_tick_if(&mut self, pred: impl FnOnce(&E) -> bool) -> Option<(SimTime, E)> {
        if self.wheel_len == 0 {
            return None;
        }
        let s = (self.cursor & SLOT_MASK) as usize;
        let front = self.levels[0].slots[s].front()?;
        // `time != cursor` also rejects late-placed entries (time < cursor)
        // parked in the cursor slot — those must pop through the normal path
        // with their original timestamps.
        if front.time != self.cursor || !pred(&front.body) {
            return None;
        }
        Some(self.pop_settled(self.cursor, s))
    }

    /// Read-only twin of [`pop_same_tick_if`](Self::pop_same_tick_if): true
    /// exactly when that call would pop something. The kernel's delivery
    /// batcher probes this before committing to a coalescing run, so
    /// singleton deliveries — the common case in unicast-heavy workloads —
    /// skip the batch buffer entirely.
    #[inline]
    pub fn next_same_tick_matches(&self, pred: impl FnOnce(&E) -> bool) -> bool {
        if self.wheel_len == 0 {
            return false;
        }
        let s = (self.cursor & SLOT_MASK) as usize;
        match self.levels[0].slots[s].front() {
            Some(front) => front.time == self.cursor && pred(&front.body),
            None => false,
        }
    }

    /// Placement tick of the earliest pending event, computed read-only.
    /// Equals the tick `settle` would return, without cascading.
    fn due_tick(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // The jump in `settle` sets the cursor to the overflow minimum,
            // which then settles at its own tick.
            return Some(self.overflow[0].time);
        }
        let c0 = (self.cursor & SLOT_MASK) as usize;
        if let Some(s) = self.levels[0].first_occupied_from(c0) {
            return Some((self.cursor & !SLOT_MASK) | s as u64);
        }
        for l in 1..LEVELS {
            let ci = ((self.cursor >> (SLOT_BITS * l as u32)) & SLOT_MASK) as usize;
            if let Some(s) = self.levels[l].first_occupied_from(ci + 1) {
                // Upper-level entries are never cursor-clamped, so the
                // slot's minimum time is exactly where its earliest entry
                // will settle.
                let min = self.levels[l].slots[s]
                    .iter()
                    .map(|e| e.time)
                    .min()
                    .expect("occupied slot non-empty");
                return Some(min);
            }
        }
        unreachable!("wheel_len > 0 but no occupied slot");
    }

    /// Time of the earliest pending event. Read-only: unlike `pop`, this
    /// never advances the cursor or cascades slots.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            return Some(SimTime::from_ticks(self.overflow[0].time));
        }
        let c0 = (self.cursor & SLOT_MASK) as usize;
        if let Some(s) = self.levels[0].first_occupied_from(c0) {
            return self.slot_min_time(0, s);
        }
        for l in 1..LEVELS {
            let ci = ((self.cursor >> (SLOT_BITS * l as u32)) & SLOT_MASK) as usize;
            if let Some(s) = self.levels[l].first_occupied_from(ci + 1) {
                return self.slot_min_time(l, s);
            }
        }
        unreachable!("wheel_len > 0 but no occupied slot");
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the queue while retaining every allocation (slot deques,
    /// overflow heap, recycled-deque pool) and rewinds the cursor and
    /// sequence counter, so a reused queue reproduces the exact pop order of
    /// a fresh one.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            level.clear();
        }
        self.overflow.clear();
        self.cursor = 0;
        self.seq = 0;
        self.len = 0;
        self.wheel_len = 0;
    }

    /// Places an entry at the level/slot its time selects relative to the
    /// current cursor (or the overflow heap). Does not touch `len`.
    #[inline]
    fn insert(&mut self, e: Entry<E>) {
        // Times at or before the cursor are placed *at* the cursor tick;
        // the entry keeps its original `time` for the pop result and for
        // ordering among equally-late entries (all end up FIFO in the cursor
        // slot, i.e. seq order — and their `time`s are all <= cursor, so
        // (time, seq) order among *future* events is unaffected).
        let place = e.time.max(self.cursor);
        let x = place ^ self.cursor;
        if x < REGION {
            let level = if x < (1 << SLOT_BITS) {
                0
            } else if x < (1 << (2 * SLOT_BITS)) {
                1
            } else {
                2
            };
            let slot = ((place >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
            let lv = &mut self.levels[level];
            if lv.slots[slot].capacity() == 0 {
                if let Some(d) = self.deque_pool[level].pop() {
                    lv.slots[slot] = d;
                }
            }
            lv.slots[slot].push_back(e);
            lv.mark(slot);
            self.wheel_len += 1;
        } else {
            self.overflow_push(e);
        }
    }

    /// Advances wheel state (cascades, overflow drain) until the earliest
    /// pending event sits in a level-0 slot; returns `(tick, slot)`.
    /// Removes nothing and pushes nothing, so calling it twice is idempotent.
    fn settle(&mut self) -> Option<(u64, usize)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.wheel_len == 0 {
                // Whole wheel empty: jump to the overflow minimum and pull
                // in everything that now fits the 2^24 region. Overflow
                // times always exceed any wheel/cursor time (they differ in
                // bits >= 24), so no pending event is skipped.
                let t = self.overflow[0].time;
                debug_assert!(t >= self.cursor);
                self.cursor = t;
                self.drain_overflow();
                debug_assert!(self.wheel_len > 0);
            }
            let c0 = (self.cursor & SLOT_MASK) as usize;
            if let Some(s) = self.levels[0].first_occupied_from(c0) {
                return Some(((self.cursor & !SLOT_MASK) | s as u64, s));
            }
            let mut cascaded = false;
            for l in 1..LEVELS {
                let ci = ((self.cursor >> (SLOT_BITS * l as u32)) & SLOT_MASK) as usize;
                // Slots <= the cursor's own index hold windows that already
                // passed, so they are provably empty: scan from ci + 1.
                if let Some(s) = self.levels[l].first_occupied_from(ci + 1) {
                    self.cascade(l, s);
                    cascaded = true;
                    break;
                }
            }
            debug_assert!(cascaded, "wheel_len > 0 but no occupied slot");
        }
    }

    /// Pops the front of a settled level-0 slot.
    #[inline]
    fn pop_settled(&mut self, tick: u64, slot: usize) -> (SimTime, E) {
        let lv = &mut self.levels[0];
        let e = lv.slots[slot].pop_front().expect("settled slot non-empty");
        if lv.slots[slot].is_empty() {
            lv.unmark(slot);
            // Retire the emptied deque so the next cold slot reuses its
            // capacity instead of growing from scratch.
            let d = std::mem::take(&mut lv.slots[slot]);
            if d.capacity() > 0 {
                self.deque_pool[0].push(d);
            }
        }
        self.wheel_len -= 1;
        self.len -= 1;
        self.cursor = tick;
        (SimTime::from_ticks(e.time), e.body)
    }

    /// Moves every entry of `levels[l].slots[s]` down the hierarchy after
    /// advancing the cursor to the slot's window start. Entries re-land at a
    /// strictly lower level (their level-selecting XOR bits are now zero), so
    /// repeated cascades terminate.
    fn cascade(&mut self, l: usize, s: usize) {
        let span = SLOT_BITS * (l + 1) as u32;
        let window_start =
            (self.cursor & !((1u64 << span) - 1)) | ((s as u64) << (SLOT_BITS * l as u32));
        debug_assert!(window_start > self.cursor);
        self.cursor = window_start;
        let mut batch = std::mem::take(&mut self.levels[l].slots[s]);
        self.levels[l].unmark(s);
        self.wheel_len -= batch.len();
        for e in batch.drain(..) {
            debug_assert!(e.time ^ self.cursor < 1 << (SLOT_BITS * l as u32));
            self.insert(e);
        }
        if batch.capacity() > 0 {
            self.deque_pool[l].push(batch);
        }
    }

    /// Moves every overflow entry now within the cursor's region into the
    /// wheel, in `(time, seq)` heap order — which preserves FIFO seq order
    /// for same-tick runs.
    fn drain_overflow(&mut self) {
        while let Some(root) = self.overflow.first() {
            if root.time ^ self.cursor >= REGION {
                break;
            }
            let e = self.overflow_pop();
            self.insert(e);
        }
    }

    /// Minimum original `time` over one slot (entries placed late keep a
    /// `time` below their placement tick, so the front isn't necessarily the
    /// minimum). Slots are short; `peek_time` is not on the hot path.
    fn slot_min_time(&self, l: usize, s: usize) -> Option<SimTime> {
        self.levels[l].slots[s]
            .iter()
            .map(|e| e.time)
            .min()
            .map(SimTime::from_ticks)
    }

    // -- overflow: 4-ary min-heap on (time, seq) --------------------------

    fn overflow_push(&mut self, e: Entry<E>) {
        self.overflow.push(e);
        let mut i = self.overflow.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.overflow[i].key() < self.overflow[parent].key() {
                self.overflow.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn overflow_pop(&mut self) -> Entry<E> {
        let last = self.overflow.len() - 1;
        self.overflow.swap(0, last);
        let e = self.overflow.pop().expect("caller checked non-empty");
        let len = self.overflow.len();
        let mut i = 0;
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let end = (first + 4).min(len);
            for c in (first + 1)..end {
                if self.overflow[c].key() < self.overflow[min].key() {
                    min = c;
                }
            }
            if self.overflow[min].key() < self.overflow[i].key() {
                self.overflow.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
        e
    }
}

const ARITY: usize = 4;

/// Min-heap of timed events with deterministic tie-breaking.
///
/// The original hand-rolled **four-ary min-heap** event queue, kept as the
/// reference implementation for [`EventQueue`] (the timing wheel the kernel
/// now runs on): `tests/wheel_equivalence.rs` asserts both pop identical
/// `(time, seq, event)` sequences, and the bench crate's `micro.rs` compares
/// their throughput across event-time distributions.
///
/// # Examples
///
/// ```
/// use mobidist_net::event::EventHeap;
/// use mobidist_net::time::SimTime;
///
/// let mut q = EventHeap::new();
/// q.push(SimTime::from_ticks(5), "later");
/// q.push(SimTime::from_ticks(2), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.ticks(), e), (2, "sooner"));
/// ```
#[derive(Debug)]
pub struct EventHeap<E> {
    heap: Vec<HeapEntry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    body: E,
}

impl<E> HeapEntry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventHeap<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventHeap {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events, so the
    /// steady-state working set never reallocates.
    pub fn with_capacity(cap: usize) -> Self {
        EventHeap {
            heap: Vec::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `body` at `time`.
    pub fn push(&mut self, time: SimTime, body: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { time, seq, body });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let e = self.heap.pop().expect("checked non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((e.time, e.body))
    }

    /// Fused peek-and-pop: removes the earliest event only when it is due at
    /// or before `limit`.
    pub fn pop_if_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.heap.first()?.time > limit {
            return None;
        }
        self.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Empties the heap retaining its allocation and rewinding the sequence
    /// counter.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let end = (first + ARITY).min(len);
            for c in (first + 1)..end {
                if self.heap[c].key() < self.heap[min].key() {
                    min = c;
                }
            }
            if self.heap[min].key() < self.heap[i].key() {
                self.heap.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(30), 3);
        q.push(SimTime::from_ticks(10), 1);
        q.push(SimTime::from_ticks(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(7);
        for i in 0..50 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ticks(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(4)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5), 'b');
        q.push(SimTime::from_ticks(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_ticks(3), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn pop_if_at_or_before_respects_limit() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(10), 'x');
        q.push(SimTime::from_ticks(20), 'y');
        assert!(q.pop_if_at_or_before(SimTime::from_ticks(5)).is_none());
        assert_eq!(q.len(), 2);
        let (t, e) = q.pop_if_at_or_before(SimTime::from_ticks(10)).unwrap();
        assert_eq!((t.ticks(), e), (10, 'x'));
        assert!(q.pop_if_at_or_before(SimTime::from_ticks(15)).is_none());
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_ticks(20)).unwrap().1,
            'y'
        );
        assert!(q.pop_if_at_or_before(SimTime::from_ticks(99)).is_none());
    }

    #[test]
    fn pop_same_tick_if_drains_exactly_the_current_tick() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5), 'a');
        q.push(SimTime::from_ticks(5), 'b');
        q.push(SimTime::from_ticks(5), 'c');
        q.push(SimTime::from_ticks(6), 'd');
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(5), 'a'));
        assert_eq!(
            q.pop_same_tick_if(|_| true).unwrap(),
            (SimTime::from_ticks(5), 'b')
        );
        assert_eq!(
            q.pop_same_tick_if(|_| true).unwrap(),
            (SimTime::from_ticks(5), 'c')
        );
        // Tick 6 is pending but not at the cursor tick: untouched.
        assert!(q.pop_same_tick_if(|_| true).is_none());
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(6), 'd'));
    }

    #[test]
    fn pop_same_tick_if_respects_predicate() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(9), 1);
        q.push(SimTime::from_ticks(9), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.pop_same_tick_if(|&e| e == 99).is_none());
        // The rejected entry stays and pops through the normal path.
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(9), 2));
    }

    #[test]
    fn pop_same_tick_if_sees_entries_that_cascaded_in() {
        // Tick 300 starts on level 1; popping past 100 cascades it down.
        // The same-tick invariant must hold for cascaded entries too.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(300), 'x');
        q.push(SimTime::from_ticks(300), 'y');
        q.push(SimTime::from_ticks(100), 'w');
        assert_eq!(q.pop().unwrap().1, 'w');
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(300), 'x'));
        assert_eq!(
            q.pop_same_tick_if(|_| true).unwrap(),
            (SimTime::from_ticks(300), 'y')
        );
        assert!(q.pop_same_tick_if(|_| true).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pop_same_tick_if_skips_late_entries() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(1000), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        // A late push parks at the front of the cursor slot with its
        // original (earlier) time; it must not be claimed as a same-tick
        // continuation even though a genuine tick-1000 entry sits behind it.
        q.push(SimTime::from_ticks(5), 'l');
        q.push(SimTime::from_ticks(1000), 'b');
        assert!(q.pop_same_tick_if(|_| true).is_none());
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(5), 'l'));
        // With the late entry out of the way the run resumes.
        assert_eq!(q.pop_same_tick_if(|_| true).unwrap().1, 'b');
    }

    #[test]
    fn pop_same_tick_if_interleaves_with_pushes() {
        // The batcher pops a run while the kernel pushes follow-on events at
        // later ticks; those pushes must not perturb the same-tick run.
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.push(SimTime::from_ticks(50), i);
        }
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_ticks(55), 100);
        assert_eq!(q.pop_same_tick_if(|_| true).unwrap().1, 1);
        q.push(SimTime::from_ticks(52), 200);
        assert_eq!(q.pop_same_tick_if(|_| true).unwrap().1, 2);
        assert_eq!(q.pop_same_tick_if(|_| true).unwrap().1, 3);
        assert!(q.pop_same_tick_if(|_| true).is_none());
        assert_eq!(q.pop().unwrap().1, 200);
        assert_eq!(q.pop().unwrap().1, 100);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(128);
        for i in (0..100).rev() {
            q.push(SimTime::from_ticks(i), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_interleaving_matches_reference_sort() {
        // Deterministic pseudo-random pushes; popped order must equal the
        // stable sort by (time, insertion order).
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut x = 0x2545F4914F6CDD1Du64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = x % 64;
            q.push(SimTime::from_ticks(t), i);
            expect.push((t, i));
        }
        expect.sort();
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.ticks(), e))).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        // Beyond the 2^24-tick region from the cursor these land in the
        // overflow heap; popping must still interleave them correctly with
        // wheel-resident events pushed later.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(100_000_000), "far");
        q.push(SimTime::from_ticks(40_000_000), "mid");
        q.push(SimTime::from_ticks(3), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(3)));
        assert_eq!(q.pop().unwrap().1, "near");
        q.push(SimTime::from_ticks(40_000_001), "mid2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["mid", "mid2", "far"]);
    }

    #[test]
    fn same_tick_across_levels_keeps_insertion_order() {
        // Push a tick far enough ahead to sit on level 1, pop up to just
        // before it (moving the cursor), then push the same tick again — now
        // on level 0 after cascading. Insertion order must survive.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(300), 0u32);
        q.push(SimTime::from_ticks(100), 99);
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(100), 99));
        q.push(SimTime::from_ticks(300), 1);
        q.push(SimTime::from_ticks(300), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn push_at_or_before_cursor_pops_immediately() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(1000), 'z');
        assert_eq!(q.pop().unwrap().1, 'z'); // cursor now 1000
        q.push(SimTime::from_ticks(5), 'a'); // earlier than cursor: late
        q.push(SimTime::from_ticks(1000), 'b'); // exactly at cursor
        q.push(SimTime::from_ticks(2000), 'c');
        let got: Vec<(u64, char)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.ticks(), e))).collect();
        // Late entries pop first (at the cursor) with their original times.
        assert_eq!(got, vec![(5, 'a'), (1000, 'b'), (2000, 'c')]);
    }

    #[test]
    fn clear_retains_determinism() {
        let run = |q: &mut EventQueue<u64>| -> Vec<(u64, u64)> {
            let mut x = 0x9E3779B97F4A7C15u64;
            for i in 0..300u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.push(SimTime::from_ticks(x % 100_000_000), i);
            }
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.ticks(), e))).collect()
        };
        let mut fresh = EventQueue::new();
        let expect = run(&mut fresh);
        let mut reused = EventQueue::new();
        reused.push(SimTime::from_ticks(123_456_789), 0);
        let _ = reused.pop();
        reused.push(SimTime::from_ticks(1), 0);
        reused.clear();
        assert_eq!(run(&mut reused), expect);
    }

    #[test]
    fn heap_matches_wheel_on_basic_workload() {
        let mut w = EventQueue::new();
        let mut h = EventHeap::new();
        let mut x = 0xD1B54A32D192ED03u64;
        for i in 0..400u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = SimTime::from_ticks(x % 4096);
            w.push(t, i);
            h.push(t, i);
        }
        loop {
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
