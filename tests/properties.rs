//! Property-based tests over the whole stack: for randomly drawn network
//! shapes, cost parameters, seeds and workloads, the core invariants of the
//! paper's algorithms must hold.

use mobidist::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// L2 never violates mutual exclusion or timestamp ordering, and serves
    /// every request, whatever the network shape, seed and mobility.
    #[test]
    fn prop_l2_safe_live_ordered(
        m in 2usize..6,
        n in 2usize..10,
        seed in 0u64..1000,
        dwell in prop::option::of(100u64..2000),
    ) {
        let mut cfg = NetworkConfig::new(m, n).with_seed(seed);
        if let Some(d) = dwell {
            cfg = cfg.with_mobility(MobilityConfig::moving(d));
        }
        let wl = WorkloadConfig::all_mhs(n, 1);
        let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(m), wl));
        sim.run_until(SimTime::from_ticks(20_000_000));
        let r = sim.protocol().report();
        prop_assert_eq!(r.safety_violations, 0);
        prop_assert_eq!(r.order_violations, 0);
        prop_assert_eq!(r.completed, n as u64, "{:?}", r);
    }

    /// The R2 family preserves mutual exclusion and single-token semantics
    /// under every guard and random mobility.
    #[test]
    fn prop_r2_safe_single_token(
        m in 2usize..6,
        n in 2usize..8,
        seed in 0u64..1000,
        guard_idx in 0usize..3,
    ) {
        let guard = [RingGuard::Plain, RingGuard::Counter, RingGuard::TokenList][guard_idx];
        let cfg = NetworkConfig::new(m, n)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(500));
        let wl = WorkloadConfig::all_mhs(n, 1).with_think(30);
        let mut sim = Simulation::new(cfg, MutexHarness::new(R2::new(m, guard), wl));
        sim.run_until(SimTime::from_ticks(300_000));
        let r = sim.protocol().report();
        prop_assert_eq!(r.safety_violations, 0);
        prop_assert_eq!(r.completed, n as u64, "{:?}", r);
        // Token conservation: at most one MSS believes it holds the token.
        prop_assert!(sim.protocol().algorithm().stations_with_token() <= 1);
    }

    /// L1's measured cost equals the paper's closed form exactly on static
    /// networks, for any population and cost parameters.
    #[test]
    fn prop_l1_cost_formula_exact(
        m in 2usize..6,
        n in 2usize..12,
        seed in 0u64..500,
        cw in 1u64..20,
        cs in 1u64..20,
    ) {
        let cost = CostModel::new(1, cw, cs.max(1));
        let cfg = NetworkConfig::new(m, n).with_seed(seed).with_cost(cost);
        let wl = WorkloadConfig::only(vec![MhId(0)], 1);
        let algo = L1::new((0..n as u32).map(MhId).collect());
        let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
        sim.run_until(SimTime::from_ticks(20_000_000));
        prop_assert_eq!(sim.protocol().report().completed, 1);
        let p = Params { c_fixed: 1, c_wireless: cw, c_search: cs.max(1) };
        prop_assert_eq!(
            sim.ledger().total_cost(),
            mobidist::cost::l1_execution_cost(n as u64, p)
        );
    }

    /// Group messages on a static network are delivered exactly once to
    /// every member, by every strategy.
    #[test]
    fn prop_group_exactly_once_static(
        m in 2usize..8,
        g in 2usize..8,
        seed in 0u64..500,
        which in 0usize..3,
    ) {
        let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
        let cfg = NetworkConfig::new(m, g).with_seed(seed);
        let wl = GroupWorkload::new(members.clone(), 5, 50);
        let report = match which {
            0 => {
                let mut sim = Simulation::new(cfg, GroupHarness::new(PureSearch::new(members), wl));
                sim.run_until(SimTime::from_ticks(1_000_000));
                sim.protocol().report()
            }
            1 => {
                let mut sim = Simulation::new(cfg, GroupHarness::new(AlwaysInform::new(members), wl));
                sim.run_until(SimTime::from_ticks(1_000_000));
                sim.protocol().report()
            }
            _ => {
                let mut sim = Simulation::new(
                    cfg,
                    GroupHarness::new(LocationView::new(members, MssId(0)), wl),
                );
                sim.run_until(SimTime::from_ticks(1_000_000));
                sim.protocol().report()
            }
        };
        prop_assert_eq!(report.sent, 5);
        prop_assert_eq!(report.missed, 0);
        prop_assert_eq!(report.duplicates, 0);
        prop_assert_eq!(report.delivered, report.expected);
    }

    /// The location view converges to exactly the set of occupied cells
    /// after any sequence of forced member moves.
    #[test]
    fn prop_location_view_converges(
        m in 3usize..8,
        g in 2usize..6,
        seed in 0u64..500,
        moves in prop::collection::vec((0u32..6, 0u32..8), 1..12),
    ) {
        let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
        let cfg = NetworkConfig::new(m, g).with_seed(seed);
        let wl = GroupWorkload::new(members.clone(), 0, 100);
        let mut sim = Simulation::new(
            cfg,
            GroupHarness::new(LocationView::new(members, MssId(0)), wl),
        );
        for (mh, cell) in moves {
            let mh = MhId(mh % g as u32);
            let cell = MssId(cell % m as u32);
            sim.with_ctx(|ctx, _| {
                if ctx.current_cell(mh) != Some(cell) {
                    ctx.initiate_move(mh, Some(cell));
                }
            });
            // Let each move fully settle before the next (sequential moves;
            // concurrency is exercised by the churn tests).
            sim.run_to_quiescence(5_000_000);
        }
        prop_assert!(sim.protocol().strategy().is_consistent());
    }

    /// Ledger arithmetic: total cost always decomposes into its parts, and
    /// deltas of later snapshots never underflow.
    #[test]
    fn prop_ledger_decomposition(
        m in 2usize..6,
        n in 2usize..8,
        seed in 0u64..500,
    ) {
        let cfg = NetworkConfig::new(m, n)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(200));
        let wl = WorkloadConfig::all_mhs(n, 1);
        let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(m), wl));
        sim.run_until(SimTime::from_ticks(5_000));
        let early = sim.ledger().clone();
        sim.run_until(SimTime::from_ticks(200_000));
        let late = sim.ledger().clone();
        let d = late.delta(&early);
        prop_assert_eq!(d.total_cost(), d.fixed_cost + d.wireless_cost + d.search_cost);
        prop_assert!(late.total_cost() >= early.total_cost());
        prop_assert_eq!(
            late.wireless_msgs - early.wireless_msgs,
            d.wireless_msgs
        );
    }

    /// Runs are bit-reproducible: identical seeds give identical ledgers.
    #[test]
    fn prop_determinism(seed in 0u64..300) {
        let go = || {
            let cfg = NetworkConfig::new(3, 6)
                .with_seed(seed)
                .with_mobility(MobilityConfig::moving(250));
            let wl = WorkloadConfig::all_mhs(6, 1);
            let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(3), wl));
            sim.run_until(SimTime::from_ticks(100_000));
            sim.ledger().clone()
        };
        prop_assert_eq!(go(), go());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The exactly-once extension holds its three guarantees — no miss, no
    /// duplicate, one global total order — under arbitrary churn schedules.
    #[test]
    fn prop_exactly_once_invariants(
        m in 3usize..8,
        g in 2usize..8,
        seed in 0u64..400,
        dwell in 80u64..1500,
        msgs in 3usize..15,
    ) {
        let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
        let cfg = NetworkConfig::new(m, g)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(dwell));
        let wl = GroupWorkload::new(members.clone(), msgs, 50);
        let mut sim = Simulation::new(
            cfg,
            GroupHarness::new(ExactlyOnce::new(members, MssId(0)), wl),
        );
        // Run past the last send, then give stragglers time to land.
        sim.run_until(SimTime::from_ticks(60 * msgs as u64 + 50_000));
        let r = sim.protocol().report();
        prop_assert_eq!(r.sent, msgs as u64);
        prop_assert_eq!(r.missed, 0, "{:?}", r);
        prop_assert_eq!(r.duplicates, 0, "{:?}", r);
        prop_assert!(sim.protocol().total_order_consistent());
    }

    /// The adaptive proxy policy serves every interaction for any radius.
    #[test]
    fn prop_adaptive_proxy_serves_all(
        m in 3usize..8,
        n in 2usize..6,
        seed in 0u64..400,
        radius in 0u32..4,
    ) {
        let clients: Vec<MhId> = (0..n as u32).map(MhId).collect();
        let cfg = NetworkConfig::new(m, n)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(400));
        let wl = ProxyWorkload { inputs_per_client: 2, mean_interval: 150 };
        let mut sim = Simulation::new(
            cfg,
            ProxyRuntime::new(EchoService::new(), clients, ProxyPolicy::Adaptive { radius }, wl),
        );
        sim.run_until(SimTime::from_ticks(2_000_000));
        let r = sim.protocol().report();
        prop_assert_eq!(r.inputs_sent, 2 * n as u64);
        prop_assert_eq!(r.outputs_delivered, r.inputs_sent, "{:?}", r);
    }
}
