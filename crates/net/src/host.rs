//! Runtime state of hosts.
//!
//! Each MSS keeps the list of MHs local to its cell plus the "disconnected"
//! flags required by the model: when an MH disconnects, its last MSS marks it
//! so that a later search can be answered with the disconnected status.

use crate::ids::{MhId, MssId};
use std::collections::{BTreeSet, VecDeque};

/// An uplink message buffered while its sender is between cells.
#[derive(Debug, Clone)]
pub enum OutMsg<M> {
    /// A plain uplink payload for the (next) local MSS.
    Plain(M),
    /// An MH→MH payload that the local MSS must search-forward, carrying its
    /// logical-FIFO sequence number.
    ToMh {
        /// Final destination.
        dst: MhId,
        /// Per-pair sequence number assigned at send time.
        seq: u64,
        /// Payload.
        msg: M,
    },
}

/// Connectivity status of a mobile host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MhStatus {
    /// Attached to a cell and reachable.
    Connected,
    /// Has sent `leave(r)` and not yet joined a new cell.
    BetweenCells,
    /// Has sent `disconnect(r)`; may reconnect later.
    Disconnected,
}

/// Per-MH kernel state.
#[derive(Debug, Clone)]
pub struct MhState<M> {
    /// Current cell, when connected.
    pub cell: Option<MssId>,
    /// Connectivity status.
    pub status: MhStatus,
    /// Whether the MH is in doze mode (deliveries still succeed but count as
    /// interruptions).
    pub dozing: bool,
    /// Incremented on every leave/disconnect; wireless downlink deliveries
    /// carry the epoch they were sent under and are dropped when stale
    /// (prefix-delivery semantics).
    pub epoch: u64,
    /// The id of the cell the MH most recently left (supplied with `join()`
    /// / `reconnect()` when the configuration says so).
    pub prev_cell: Option<MssId>,
    /// Home base cell for locality-biased mobility.
    pub home: MssId,
    /// MSS holding this MH's "disconnected" flag, if disconnected.
    pub disconnected_at: Option<MssId>,
    /// Uplink messages issued while between cells, flushed on join.
    pub outbox: VecDeque<OutMsg<M>>,
    /// Messages received on the current cell's downlink (the `r` of
    /// `leave(r)`).
    pub down_received: u64,
    /// Messages sent on the current cell's downlink.
    pub down_sent: u64,
}

impl<M> MhState<M> {
    /// A freshly-connected MH in `cell` with the given home base.
    pub fn new(cell: MssId, home: MssId) -> Self {
        MhState {
            cell: Some(cell),
            status: MhStatus::Connected,
            dozing: false,
            epoch: 0,
            prev_cell: None,
            home,
            disconnected_at: None,
            outbox: VecDeque::new(),
            down_received: 0,
            down_sent: 0,
        }
    }

    /// True when attached to a cell.
    pub fn is_connected(&self) -> bool {
        self.status == MhStatus::Connected
    }
}

/// Per-MSS kernel state.
#[derive(Debug, Clone, Default)]
pub struct MssState {
    /// MHs that have identified themselves with this MSS (the paper's list
    /// of local MH ids).
    pub local: BTreeSet<MhId>,
    /// MHs whose "disconnected" flag is set at this MSS.
    pub disconnected_here: BTreeSet<MhId>,
}

impl MssState {
    /// True when `mh` is local to this cell.
    pub fn has_local(&self, mh: MhId) -> bool {
        self.local.contains(&mh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_mh_is_connected() {
        let h: MhState<()> = MhState::new(MssId(2), MssId(2));
        assert!(h.is_connected());
        assert_eq!(h.cell, Some(MssId(2)));
        assert_eq!(h.epoch, 0);
        assert!(h.outbox.is_empty());
    }

    #[test]
    fn status_transitions_affect_is_connected() {
        let mut h: MhState<()> = MhState::new(MssId(0), MssId(0));
        h.status = MhStatus::BetweenCells;
        assert!(!h.is_connected());
        h.status = MhStatus::Disconnected;
        assert!(!h.is_connected());
    }

    #[test]
    fn mss_local_list() {
        let mut m = MssState::default();
        assert!(!m.has_local(MhId(1)));
        m.local.insert(MhId(1));
        assert!(m.has_local(MhId(1)));
        m.local.remove(&MhId(1));
        m.disconnected_here.insert(MhId(1));
        assert!(!m.has_local(MhId(1)));
        assert!(m.disconnected_here.contains(&MhId(1)));
    }
}
