//! **Algorithm L2C** — L2 with *flat combining* at the MSS proxies.
//!
//! L2 already moves Lamport's queue machinery onto the fixed network, but it
//! still pays one full Lamport exchange (`3(M−1)` fixed messages) and three
//! wireless messages *per critical-section execution*. Under heavy traffic
//! that is the bottleneck — and it is exactly the situation flat combining
//! was invented for: a combiner thread collects every pending operation on a
//! shared structure and applies the whole batch under one lock acquisition.
//!
//! L2C applies that idea to the paper's "push work to the static network"
//! principle. Each MSS is a *combiner* for its cell:
//!
//! 1. An MH ships its critical-section operation with a single wireless
//!    `init` to its local MSS and is done transmitting — the operation
//!    executes *at the proxy*, so neither the grant nor the release crosses
//!    the wireless hop (flat-combining semantics: the CS is an operation on
//!    shared state, applied by whoever holds the lock).
//! 2. The MSS keeps a FIFO of collected operations. At most one *combined*
//!    entry per MSS is in the Lamport queue at a time; when the entry is
//!    granted, the proxy drains everything collected so far into one batch —
//!    the combining window is the queueing delay, so batches grow exactly
//!    when contention does — and serves the batch in arrival order under the
//!    single acquisition.
//! 3. When the batch finishes, results for members still in the cell are
//!    delivered with **one** cell broadcast (one `C_wireless` charge
//!    regardless of batch size); members that moved away get a searched
//!    forward each (the Section 5 proxy obligation). One `release`
//!    broadcast closes the batch, and a [`TraceEvent::CombineBatch`] records
//!    its size.
//!
//! Steady-state wireless cost per execution is therefore `(k + 1)/k` for
//! batch size `k` — against L2's constant 3 — and the `3(M−1)`-fixed-message
//! Lamport exchange is amortized over the whole batch
//! (`mobidist_cost::l2c_batch_cost` gives the closed form).
//!
//! Mutual exclusion and ordering are inherited from Lamport's argument over
//! the combined entries (FIFO fixed channels, grant only at the queue head
//! with later timestamps witnessed from every peer); within a batch the
//! combiner serves strictly sequentially. Grant keys encode
//! `(batch timestamp, serve index)`, so the checker's nondecreasing-key
//! invariant verifies both levels on every run.
//!
//! Disconnections are *cheaper* than in L2: a member that disconnects after
//! `init` still gets served (its operation already lives at the combiner),
//! and a holder that "disconnects" costs nothing because the release never
//! touches the wireless network. Only the result forward can fail, which is
//! recorded in the ledger and otherwise harmless.

use crate::algorithm::{AlgoCtx, MutexAlgorithm};
use mobidist_clock::{LamportClock, Timestamp};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::obs::TraceEvent;
use mobidist_net::proto::Src;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A *combined* queue entry: one Lamport request standing for every
/// operation its proxy collected before the grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CEntry {
    /// Timestamp assigned when the proxy opened the combined request.
    pub ts: Timestamp,
    /// The combining proxy.
    pub proxy: MssId,
}

/// L2C protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2cMsg {
    /// MH→MSS (wireless): my critical-section operation; combine it.
    Init,
    /// MSS→MSS: a timestamped combined request.
    Request(CEntry),
    /// MSS→MSS: acknowledgement carrying the replier's clock.
    Reply(Timestamp),
    /// MSS→MSS: the combined entry's whole batch has been served.
    Release(Timestamp, CEntry),
    /// MSS→cell (one broadcast): results of the finished batch, for every
    /// member still local. Non-members ignore it.
    BatchDone,
    /// MSS→moved MH (searched): your result, forwarded after you left the
    /// combiner's cell.
    Result,
}

/// One batch in service at its combiner.
#[derive(Debug)]
struct Batch {
    entry: CEntry,
    /// Members not yet served, in arrival order.
    members: VecDeque<MhId>,
    /// Members already served (result delivery owed).
    done: Vec<MhId>,
    serving: Option<MhId>,
    served: u32,
}

/// Per-MSS combiner state.
#[derive(Debug)]
struct Station {
    clock: LamportClock,
    queue: BTreeSet<CEntry>,
    last_seen: BTreeMap<MssId, Timestamp>,
    /// Operations collected but not yet drained into a batch.
    pending: VecDeque<MhId>,
    /// My outstanding combined request, if any (at most one).
    mine: Option<CEntry>,
    /// The batch currently being served, if any.
    batch: Option<Batch>,
}

/// Flat-combining L2 at the MSS proxies. See the module docs.
#[derive(Debug)]
pub struct L2c {
    stations: BTreeMap<MssId, Station>,
    /// MH currently inside the critical section → its combiner.
    server_of: BTreeMap<MhId, MssId>,
    /// Largest batch one grant may serve (`None` = unbounded). See
    /// [`Self::with_batch_cap`].
    batch_cap: Option<u32>,
}

/// Grant-order key: the batch's Lamport pair in the high bits, the serve
/// index (saturating at 4095) in the low 12 — nondecreasing across batches
/// by Lamport's order and within a batch by construction.
fn grant_key(ts: Timestamp, served: u32) -> u64 {
    let base = (ts.counter << 16) | u64::from(ts.process & 0xFFFF);
    (base << 12) | u64::from(served.min(0xFFF))
}

impl L2c {
    /// Creates an instance for `m` MSSs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "L2C needs at least one MSS");
        let stations = (0..m as u32)
            .map(|i| {
                (
                    MssId(i),
                    Station {
                        clock: LamportClock::new(i),
                        queue: BTreeSet::new(),
                        last_seen: BTreeMap::new(),
                        pending: VecDeque::new(),
                        mine: None,
                        batch: None,
                    },
                )
            })
            .collect();
        L2c {
            stations,
            server_of: BTreeMap::new(),
            batch_cap: None,
        }
    }

    /// Caps how many collected operations one grant may serve (clamped to
    /// at least 1). An uncapped combiner maximises amortisation but lets a
    /// saturated cell monopolise the lock for its whole backlog, starving
    /// remote requesters; with a cap the leftover operations reopen a fresh
    /// combined request that requeues behind other proxies' entries in
    /// Lamport order. The trade is per-execution message cost (amortisation
    /// shrinks) against a bound on per-grant lock-holding time —
    /// EXPERIMENTS.md records the measured Jain-index change at N=64
    /// (slightly *negative*: split-off leftovers wait out an extra token
    /// rotation, so the cap buys bounded batches, not a better index).
    pub fn with_batch_cap(mut self, cap: u32) -> Self {
        self.batch_cap = Some(cap.max(1));
        self
    }

    /// Number of combined entries currently queued at `mss` (for tests).
    pub fn queue_len(&self, mss: MssId) -> usize {
        self.stations[&mss].queue.len()
    }

    /// Number of collected-but-unbatched operations at `mss` (for tests).
    pub fn pending_len(&self, mss: MssId) -> usize {
        self.stations[&mss].pending.len()
    }

    fn station(&mut self, me: MssId) -> &mut Station {
        self.stations.get_mut(&me).expect("known MSS")
    }

    fn note_seen(&mut self, me: MssId, from: MssId, ts: Timestamp) {
        let e = self.station(me).last_seen.entry(from).or_insert(ts);
        if ts > *e {
            *e = ts;
        }
    }

    /// Opens a combined request covering everything in `pending`.
    fn open_request(&mut self, ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>, me: MssId) {
        let s = self.station(me);
        debug_assert!(s.mine.is_none() && s.batch.is_none());
        let ts = s.clock.tick();
        let entry = CEntry { ts, proxy: me };
        s.queue.insert(entry);
        s.mine = Some(entry);
        ctx.broadcast_fixed(me, L2cMsg::Request(entry));
    }

    /// Lamport grant check for this combiner's outstanding entry; on success
    /// the collected operations become the batch and service starts.
    fn try_grant(&mut self, ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>, me: MssId) {
        let m = ctx.num_mss();
        let cap = self.batch_cap;
        {
            let s = self.station(me);
            if s.batch.is_some() {
                return;
            }
            let Some(head) = s.queue.iter().next().copied() else {
                return;
            };
            if head.proxy != me || s.mine != Some(head) {
                return;
            }
            let all_later = (0..m as u32)
                .map(MssId)
                .filter(|o| *o != me)
                .all(|o| s.last_seen.get(&o).is_some_and(|t| *t > head.ts));
            if !all_later {
                return;
            }
            // The combining window closes here: everything collected while
            // the entry queued — up to the batch cap — is served under this
            // one acquisition. Capped leftovers stay pending and reopen a
            // fresh request when the batch finishes.
            let members = match cap {
                Some(cap) if s.pending.len() > cap as usize => {
                    s.pending.drain(..cap as usize).collect()
                }
                _ => std::mem::take(&mut s.pending),
            };
            debug_assert!(!members.is_empty(), "a combined request covers >= 1 op");
            s.mine = None;
            s.batch = Some(Batch {
                entry: head,
                members,
                done: Vec::new(),
                serving: None,
                served: 0,
            });
        }
        self.serve_next(ctx, me);
    }

    /// Grants the next member of the in-service batch, or finishes it.
    fn serve_next(&mut self, ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>, me: MssId) {
        let next = {
            let b = self.station(me).batch.as_mut().expect("batch in service");
            if let Some(mh) = b.members.pop_front() {
                b.serving = Some(mh);
                b.served += 1;
                Some((mh, grant_key(b.entry.ts, b.served)))
            } else {
                None
            }
        };
        match next {
            Some((mh, key)) => {
                self.server_of.insert(mh, me);
                ctx.grant_with_key(mh, key);
            }
            None => self.finish_batch(ctx, me),
        }
    }

    /// Closes the served batch: one result broadcast for the cell plus a
    /// searched forward per moved member, then the `release` broadcast.
    fn finish_batch(&mut self, ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>, me: MssId) {
        let batch = self.station(me).batch.take().expect("batch in service");
        ctx.emit(TraceEvent::CombineBatch {
            mss: me,
            size: batch.served,
        });
        ctx.bump("combine_batches");
        let mut any_local = false;
        for &mh in &batch.done {
            if ctx.is_local(me, mh) {
                any_local = true;
            } else {
                // The member left (or disconnected) after init: the proxy
                // obligation — forward its result with a search.
                ctx.search_send(me, mh, L2cMsg::Result);
            }
        }
        if any_local {
            // One charged broadcast delivers every still-local result.
            ctx.broadcast_cell(me, L2cMsg::BatchDone);
        }
        let s = self.station(me);
        s.queue.remove(&batch.entry);
        let ts = s.clock.tick();
        ctx.broadcast_fixed(me, L2cMsg::Release(ts, batch.entry));
        if !self.station(me).pending.is_empty() {
            self.open_request(ctx, me);
        }
        self.try_grant(ctx, me);
    }
}

impl MutexAlgorithm for L2c {
    type Msg = L2cMsg;
    type Timer = ();

    fn name(&self) -> &'static str {
        "L2C"
    }

    fn request(&mut self, ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>, mh: MhId) {
        // The MH's entire contribution: one wireless init carrying its
        // operation. Everything else happens on the fixed network.
        let _ = ctx.send_wireless_up(mh, L2cMsg::Init);
    }

    fn release(&mut self, ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>, mh: MhId) {
        // The operation ran at the combiner, so "release" is a local step
        // there — no wireless messages, connected or not.
        let Some(me) = self.server_of.remove(&mh) else {
            return;
        };
        {
            let b = self.station(me).batch.as_mut().expect("batch in service");
            debug_assert_eq!(b.serving, Some(mh));
            b.serving = None;
            b.done.push(mh);
        }
        self.serve_next(ctx, me);
    }

    fn on_mss_msg(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>,
        at: MssId,
        src: Src,
        msg: L2cMsg,
    ) {
        match msg {
            L2cMsg::Init => {
                let mh = src.as_mh().expect("init arrives on the uplink");
                let s = self.station(at);
                s.pending.push_back(mh);
                if s.mine.is_none() && s.batch.is_none() {
                    self.open_request(ctx, at);
                    self.try_grant(ctx, at);
                }
            }
            L2cMsg::Request(entry) => {
                let from = src.as_mss().expect("requests travel MSS to MSS");
                self.note_seen(at, from, entry.ts);
                let s = self.station(at);
                s.clock.witness(entry.ts);
                s.queue.insert(entry);
                let reply_ts = self.station(at).clock.tick();
                ctx.send_fixed(at, from, L2cMsg::Reply(reply_ts));
            }
            L2cMsg::Reply(ts) => {
                let from = src.as_mss().expect("replies travel MSS to MSS");
                self.note_seen(at, from, ts);
                self.station(at).clock.witness(ts);
                self.try_grant(ctx, at);
            }
            L2cMsg::Release(ts, entry) => {
                let from = src.as_mss().expect("releases travel MSS to MSS");
                self.note_seen(at, from, ts);
                let s = self.station(at);
                s.clock.witness(ts);
                s.queue.remove(&entry);
                self.try_grant(ctx, at);
            }
            L2cMsg::BatchDone | L2cMsg::Result => {
                unreachable!("results are delivered to MHs, not MSSs");
            }
        }
    }

    fn on_mh_msg(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>,
        at: MhId,
        _src: Src,
        msg: L2cMsg,
    ) {
        match msg {
            // Result delivery: the episode already completed at the
            // combiner; the MH merely learns the outcome. The cell
            // broadcast also reaches non-members, which ignore it.
            L2cMsg::BatchDone | L2cMsg::Result => {
                let _ = (ctx, at);
            }
            other => unreachable!("unexpected message at an MH: {other:?}"),
        }
    }

    fn on_search_failed(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, L2cMsg, ()>,
        _origin: MssId,
        _target: MhId,
        msg: L2cMsg,
    ) {
        if let L2cMsg::Result = msg {
            // The member disconnected before its result could be forwarded.
            // Its operation still executed; only the notification is lost.
            ctx.bump("l2c_lost_results");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_entries_order_by_timestamp_then_proxy() {
        let a = CEntry {
            ts: Timestamp::new(1, 5),
            proxy: MssId(5),
        };
        let b = CEntry {
            ts: Timestamp::new(2, 0),
            proxy: MssId(0),
        };
        assert!(a < b, "smaller timestamp wins regardless of proxy id");
    }

    #[test]
    fn grant_keys_are_increasing_within_and_across_batches() {
        let early = Timestamp::new(3, 1);
        let late = Timestamp::new(4, 0);
        let k1 = grant_key(early, 1);
        let k2 = grant_key(early, 2);
        let k3 = grant_key(late, 1);
        assert!(k1 < k2, "serve index orders members within a batch");
        assert!(k2 < k3, "a later batch outranks every earlier member");
        // The serve index saturates instead of corrupting the batch bits.
        assert!(grant_key(early, 50_000) < k3);
    }

    #[test]
    fn fresh_instance_is_empty() {
        let a = L2c::new(4);
        for i in 0..4u32 {
            assert_eq!(a.queue_len(MssId(i)), 0);
            assert_eq!(a.pending_len(MssId(i)), 0);
        }
        assert_eq!(a.name(), "L2C");
    }

    #[test]
    #[should_panic(expected = "at least one MSS")]
    fn zero_stations_rejected() {
        let _ = L2c::new(0);
    }
}
