//! Regenerates E11: the exactly-once extension (reference [1]) under churn.
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_group::e11_exactly_once(quick));
}
