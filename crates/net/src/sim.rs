//! The simulation driver: owns a [`Kernel`] and a [`Protocol`] and runs the
//! event loop.

use crate::config::NetworkConfig;
use crate::kernel::Kernel;
use crate::ledger::CostLedger;
use crate::proto::{Ctx, ProtoEvent, Protocol};
use crate::time::SimTime;

/// A running simulation: the two-tier network plus one protocol instance.
///
/// # Examples
///
/// A protocol that bounces one message from an MH to its MSS and back:
///
/// ```
/// use mobidist_net::prelude::*;
///
/// struct PingPong { done: bool }
///
/// impl Protocol for PingPong {
///     type Msg = &'static str;
///     type Timer = ();
///     fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {
///         ctx.send_wireless_up(MhId(0), "ping").unwrap();
///     }
///     fn on_mss_msg(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
///                   at: MssId, _src: Src, _msg: Self::Msg) {
///         ctx.send_wireless_down(at, MhId(0), "pong").unwrap();
///     }
///     fn on_mh_msg(&mut self, _ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
///                  _at: MhId, _src: Src, msg: Self::Msg) {
///         assert_eq!(msg, "pong");
///         self.done = true;
///     }
/// }
///
/// let cfg = NetworkConfig::new(2, 2);
/// let mut sim = Simulation::new(cfg, PingPong { done: false });
/// sim.run_to_quiescence(10_000);
/// assert!(sim.protocol().done);
/// ```
#[derive(Debug)]
pub struct Simulation<P: Protocol> {
    kernel: Kernel<P::Msg, P::Timer>,
    proto: P,
    started: bool,
}

impl<P: Protocol> Simulation<P> {
    /// Creates a simulation; `Protocol::on_start` runs at the first step.
    pub fn new(cfg: NetworkConfig, proto: P) -> Self {
        Simulation {
            kernel: Kernel::new(cfg),
            proto,
            started: false,
        }
    }

    /// Rewinds this simulation to the state `Simulation::new(cfg, proto)`
    /// would produce, recycling the kernel's allocations (event-wheel slots,
    /// FIFO chains, reorder buffers, outboxes, ledger vectors) instead of
    /// rebuilding them.
    ///
    /// A reset simulation replays byte-identical traces and cost tables for
    /// the same `(cfg, proto)` — sweeps reuse simulations through
    /// [`SimPool`] on the strength of this.
    pub fn reset(&mut self, cfg: NetworkConfig, proto: P) {
        self.kernel.reset(cfg);
        self.proto = proto;
        self.started = false;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// The protocol under simulation.
    pub fn protocol(&self) -> &P {
        &self.proto
    }

    /// Mutable access to the protocol (for workload inspection between
    /// phases).
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.proto
    }

    /// The kernel (topology queries, trace, ledger).
    pub fn kernel(&self) -> &Kernel<P::Msg, P::Timer> {
        &self.kernel
    }

    /// Mutable kernel access (enable tracing, custom counters).
    pub fn kernel_mut(&mut self) -> &mut Kernel<P::Msg, P::Timer> {
        &mut self.kernel
    }

    /// The cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        self.kernel.ledger()
    }

    /// Installs a structured trace sink on the kernel (see
    /// [`Kernel::set_trace_sink`]).
    pub fn set_trace_sink(&mut self, sink: Box<dyn crate::obs::TraceSink>) {
        self.kernel.set_trace_sink(sink);
    }

    /// Ends the traced run — the sink sees the final ledger and is
    /// detached and returned (see [`Kernel::finish_trace`]).
    pub fn finish_trace(&mut self) -> Option<Box<dyn crate::obs::TraceSink>> {
        self.kernel.finish_trace()
    }

    /// Runs the protocol's `on_start` hook plus anything it scheduled at
    /// time zero. Called implicitly by the run methods.
    pub fn start(&mut self) {
        if !self.started {
            self.started = true;
            self.proto.on_start(&mut Ctx {
                k: &mut self.kernel,
            });
            self.drain_pending();
        }
    }

    /// Processes one timed event (and all protocol events it triggers).
    /// Returns `false` when the event queue is exhausted.
    pub fn step(&mut self) -> bool {
        self.start();
        if !self.kernel.advance() {
            return false;
        }
        self.drain_pending();
        true
    }

    /// Runs until simulated time passes `until` or the queue empties.
    pub fn run_until(&mut self, until: SimTime) {
        self.start();
        // Fused pop: one heap-root access per event instead of peek + pop.
        while self.kernel.advance_up_to(until) {
            self.drain_pending();
        }
    }

    /// Runs for `d` more ticks of simulated time.
    pub fn run_for(&mut self, d: u64) {
        let until = self.now() + d;
        self.run_until(until);
    }

    /// Runs until no events remain or simulated time exceeds `max_ticks`.
    /// Returns `true` when the system went quiescent within the bound.
    pub fn run_to_quiescence(&mut self, max_ticks: u64) -> bool {
        let deadline = SimTime::from_ticks(max_ticks);
        self.start();
        while self.kernel.advance_up_to(deadline) {
            self.drain_pending();
        }
        self.kernel.next_event_time().is_none()
    }

    /// Allows a test or workload driver to act on the protocol directly with
    /// a kernel context, outside any event.
    pub fn with_ctx<R>(
        &mut self,
        f: impl FnOnce(&mut Ctx<'_, P::Msg, P::Timer>, &mut P) -> R,
    ) -> R {
        self.start();
        let r = f(
            &mut Ctx {
                k: &mut self.kernel,
            },
            &mut self.proto,
        );
        self.drain_pending();
        r
    }

    fn drain_pending(&mut self) {
        while let Some(pe) = self.kernel.take_pending() {
            let ctx = &mut Ctx {
                k: &mut self.kernel,
            };
            match pe {
                ProtoEvent::MssMsg { at, src, msg } => self.proto.on_mss_msg(ctx, at, src, msg),
                ProtoEvent::MhMsg { at, src, msg } => self.proto.on_mh_msg(ctx, at, src, msg),
                ProtoEvent::MssBatch { at, mut msgs } => {
                    // Drain by value: dropping the iterator clears leftovers,
                    // and the emptied vector's capacity goes back to the
                    // kernel for the next batch.
                    self.proto.on_mss_batch(ctx, at, msgs.drain(..));
                    self.kernel.recycle_batch(msgs);
                }
                ProtoEvent::Timer(t) => self.proto.on_timer(ctx, t),
                ProtoEvent::Joined { mh, mss, prev } => self.proto.on_mh_joined(ctx, mh, mss, prev),
                ProtoEvent::Left { mh, mss } => self.proto.on_mh_left(ctx, mh, mss),
                ProtoEvent::Disconnected { mh, mss } => self.proto.on_mh_disconnected(ctx, mh, mss),
                ProtoEvent::Reconnected { mh, mss, prev } => {
                    self.proto.on_mh_reconnected(ctx, mh, mss, prev)
                }
                ProtoEvent::SearchFailed {
                    origin,
                    target,
                    msg,
                } => self.proto.on_search_failed(ctx, origin, target, msg),
                ProtoEvent::WirelessLost { mss, mh, msg } => {
                    self.proto.on_wireless_lost(ctx, mss, mh, msg)
                }
                ProtoEvent::MssCrashed { mss } => self.proto.on_mss_crashed(ctx, mss),
                ProtoEvent::MssRecovered { mss } => self.proto.on_mss_recovered(ctx, mss),
            }
        }
    }
}

/// A recycling pool of [`Simulation`]s for one protocol type.
///
/// Sweeps run thousands of short `(config, seed)` points; building each
/// `Simulation` from scratch spends more time allocating (wheel slots, chain
/// arrays, ledger vectors, reorder maps) than simulating. A pool hands each
/// point a recycled simulation via [`Simulation::reset`], which clears state
/// but keeps every allocation warm. Determinism is unaffected: a reset
/// simulation replays byte-identical results (see `Simulation::reset`).
///
/// Pools are per-worker state — each sweep worker owns its own (see
/// `map_indexed_with` in the bench crate), so no synchronisation is needed.
///
/// # Examples
///
/// ```
/// use mobidist_net::prelude::*;
///
/// #[derive(Debug, Default)]
/// struct Nop;
/// impl Protocol for Nop {
///     type Msg = ();
///     type Timer = ();
///     fn on_mss_msg(&mut self, _: &mut Ctx<'_, (), ()>, _: MssId, _: Src, _: ()) {}
///     fn on_mh_msg(&mut self, _: &mut Ctx<'_, (), ()>, _: MhId, _: Src, _: ()) {}
/// }
///
/// let mut pool: SimPool<Nop> = SimPool::new();
/// for seed in 0..3 {
///     let cfg = NetworkConfig::new(2, 4).with_seed(seed);
///     let quiesced = pool.run(cfg, Nop, |sim| sim.run_to_quiescence(10_000));
///     assert!(quiesced);
/// }
/// assert_eq!(pool.idle(), 1); // one simulation served all three points
/// ```
pub struct SimPool<P: Protocol> {
    free: Vec<Simulation<P>>,
}

impl<P: Protocol> SimPool<P> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        SimPool { free: Vec::new() }
    }

    /// Number of idle simulations held for reuse.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Runs `f` on a simulation initialised to `(cfg, proto)` — recycled
    /// when one is idle, freshly built otherwise — and returns the
    /// simulation to the pool afterwards.
    pub fn run<R>(
        &mut self,
        cfg: NetworkConfig,
        proto: P,
        f: impl FnOnce(&mut Simulation<P>) -> R,
    ) -> R {
        let mut sim = match self.free.pop() {
            Some(mut sim) => {
                sim.reset(cfg, proto);
                sim
            }
            None => Simulation::new(cfg, proto),
        };
        let out = f(&mut sim);
        self.free.push(sim);
        out
    }
}

impl<P: Protocol> Default for SimPool<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> std::fmt::Debug for SimPool<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPool")
            .field("idle", &self.free.len())
            .finish()
    }
}
