//! Batched vs unbatched delivery must be observationally equivalent.
//!
//! The delivery engine's contract (DESIGN.md §7): flipping
//! [`DeliveryMode`] changes how many wheel events and protocol callbacks
//! carry a same-tick run — never *what* the protocol observes or what the
//! run costs. These tests drive a chatty workload — wired broadcast storms,
//! cell broadcasts, uplink echo storms, mobility, a crash and a partition —
//! through both modes and require:
//!
//! * identical callback sequences (the protocol's own log),
//! * identical cost ledgers and `events_processed` totals,
//! * per-tick trace **multiset** equality (within one tick the batched
//!   trace groups a run's receive records before the fused callback, so
//!   only the interleaving may differ — never the events themselves),
//! * that batches really form (`deliver_batch` appears, lengths ≥ 2) and
//!   flatten in arrival order.

use mobidist_net::prelude::*;
use mobidist_net::time::SimTime;
use std::collections::BTreeMap;

/// Payloads of the storm protocol.
#[derive(Debug, Clone)]
enum SMsg {
    /// MSS↔MSS wave, carrying its round.
    Wired(u32),
    /// MSS→cell broadcast payload.
    Down(u32),
    /// MH→MSS echo.
    Up,
}

/// Creates same-(tick, destination) pileups on purpose: every MSS opens
/// with a wired broadcast, every wired arrival below the round cap
/// re-broadcasts, round-1 arrivals also broadcast to their cell, and every
/// MH echoes the first downlink back up — so each MSS sees `M - 1` wired
/// arrivals per tick and each cell's echoes land together two ticks later.
#[derive(Debug, Default)]
struct Storm {
    log: Vec<String>,
}

impl Protocol for Storm {
    type Msg = SMsg;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, SMsg, ()>) {
        for m in 0..ctx.num_mss() {
            ctx.broadcast_fixed(MssId(m as u32), SMsg::Wired(0));
        }
    }

    fn on_mss_msg(&mut self, ctx: &mut Ctx<'_, SMsg, ()>, at: MssId, src: Src, msg: SMsg) {
        self.log.push(format!("mss {at:?} {src:?} {msg:?}"));
        match msg {
            SMsg::Wired(h) if h < 2 => {
                ctx.broadcast_fixed(at, SMsg::Wired(h + 1));
                if h == 1 {
                    ctx.broadcast_cell(at, SMsg::Down(0));
                }
            }
            _ => {}
        }
    }

    fn on_mh_msg(&mut self, ctx: &mut Ctx<'_, SMsg, ()>, at: MhId, src: Src, msg: SMsg) {
        self.log.push(format!("mh {at:?} {src:?} {msg:?}"));
        if let SMsg::Down(0) = msg {
            let _ = ctx.send_wireless_up(at, SMsg::Up);
        }
    }
}

struct RunOut {
    log: Vec<String>,
    ledger: CostLedger,
    events_processed: u64,
    /// Per-kind event counts over the whole trace.
    kinds: BTreeMap<String, usize>,
    /// Serialized trace events grouped per tick, each group sorted — the
    /// within-tick order is the one thing the modes may disagree on.
    per_tick: BTreeMap<u64, Vec<String>>,
}

fn storm_run(mode: DeliveryMode) -> RunOut {
    let cfg = NetworkConfig::new(6, 24)
        .with_seed(9)
        .with_delivery(mode)
        .with_mobility(MobilityConfig::moving(150))
        .with_fault(
            FaultConfig::none()
                .with_event(
                    40,
                    FaultKind::MssCrash {
                        mss: 2,
                        down_for: 60,
                    },
                )
                .with_event(
                    70,
                    FaultKind::Partition {
                        cut: 3,
                        heal_after: 50,
                    },
                ),
        );
    let mut sim = Simulation::new(cfg, Storm::default());
    sim.set_trace_sink(Box::new(RingSink::new(1 << 20)));
    sim.run_until(SimTime::from_ticks(5_000));
    let events_processed = sim.kernel().events_processed();
    let sink = sim.finish_trace().expect("sink installed");
    let ring = sink.as_any().downcast_ref::<RingSink>().expect("ring sink");
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut per_tick: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for (t, _, ev) in ring.iter() {
        *kinds.entry(ev.name().to_string()).or_default() += 1;
        if ev.name() != "deliver_batch" {
            per_tick
                .entry(t.ticks())
                .or_default()
                .push(format!("{ev:?}"));
        }
    }
    for group in per_tick.values_mut() {
        group.sort();
    }
    RunOut {
        log: std::mem::take(&mut sim.protocol_mut().log),
        ledger: sim.ledger().clone(),
        events_processed,
        kinds,
        per_tick,
    }
}

#[test]
fn storm_runs_are_equivalent_across_modes() {
    let batched = storm_run(DeliveryMode::Batched);
    let unbatched = storm_run(DeliveryMode::Unbatched);

    assert!(
        batched.log.len() > 500,
        "the storm must actually generate traffic, got {} callbacks",
        batched.log.len()
    );
    assert_eq!(batched.log, unbatched.log, "callback sequences diverged");
    assert_eq!(batched.ledger, unbatched.ledger, "cost ledgers diverged");
    assert_eq!(
        batched.events_processed, unbatched.events_processed,
        "logical event totals diverged"
    );

    // Batches must really form, and only in batched mode.
    let deliver_batches = batched.kinds.get("deliver_batch").copied().unwrap_or(0);
    assert!(deliver_batches > 0, "no run ever coalesced");
    assert!(!unbatched.kinds.contains_key("deliver_batch"));

    // Per-kind counts agree once the diagnostic marker is set aside.
    let mut batched_kinds = batched.kinds.clone();
    batched_kinds.remove("deliver_batch");
    assert_eq!(batched_kinds, unbatched.kinds, "event-kind counts diverged");

    // Per-tick multiset equality: same events at every tick, whatever the
    // within-tick interleaving.
    assert_eq!(
        batched.per_tick, unbatched.per_tick,
        "per-tick trace multisets diverged"
    );
}

#[test]
fn reruns_are_identical_within_each_mode() {
    for mode in [DeliveryMode::Batched, DeliveryMode::Unbatched] {
        let a = storm_run(mode);
        let b = storm_run(mode);
        assert_eq!(a.log, b.log);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.kinds, b.kinds);
    }
}

/// Records whether deliveries arrived alone or in a batch, flattening
/// batches itself (no default unroll) so the test can compare order.
#[derive(Debug, Default)]
struct BatchObserver {
    singles: Vec<(MssId, Src, u32)>,
    batch_lens: Vec<usize>,
}

impl Protocol for BatchObserver {
    type Msg = u32;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32, ()>) {
        // Every MH fires at once: each cell's uplinks share one arrival
        // tick, so each MSS gets one N/M-long run.
        for mh in 0..ctx.num_mh() {
            let _ = ctx.send_wireless_up(MhId(mh as u32), mh as u32);
        }
    }

    fn on_mss_msg(&mut self, _: &mut Ctx<'_, u32, ()>, at: MssId, src: Src, msg: u32) {
        self.singles.push((at, src, msg));
    }

    fn on_mh_msg(&mut self, _: &mut Ctx<'_, u32, ()>, _: MhId, _: Src, _: u32) {}

    fn on_mss_batch(&mut self, _: &mut Ctx<'_, u32, ()>, at: MssId, batch: MsgBatch<'_, u32>) {
        self.batch_lens.push(batch.len());
        for (src, msg) in batch {
            self.singles.push((at, src, msg));
        }
    }
}

#[test]
fn batches_flatten_in_arrival_order() {
    // All 20 hosts in one cell: their uplinks form one consecutive
    // same-(tick, destination) run, i.e. exactly one batch. (Batch
    // formation is *run*-based — round-robin placement would interleave
    // destinations in `(time, seq)` order, and a coalescer that skipped
    // over other destinations to merge them would reorder callbacks.)
    let run = |mode| {
        let cfg = NetworkConfig::new(4, 20)
            .with_seed(3)
            .with_placement(Placement::Clustered { cells: 1 })
            .with_delivery(mode);
        let mut sim = Simulation::new(cfg, BatchObserver::default());
        sim.run_to_quiescence(10_000);
        (
            sim.protocol().singles.clone(),
            sim.protocol().batch_lens.clone(),
        )
    };
    let (batched_singles, batched_lens) = run(DeliveryMode::Batched);
    let (unbatched_singles, unbatched_lens) = run(DeliveryMode::Unbatched);

    assert_eq!(batched_singles.len(), 20, "every uplink must arrive");
    assert_eq!(batched_singles, unbatched_singles, "arrival order diverged");
    assert!(unbatched_lens.is_empty(), "unbatched mode must never batch");
    assert_eq!(batched_lens, vec![20]);
}
