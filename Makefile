# Convenience targets; see ci/check.sh for the full gate.

.PHONY: build test check bench perf quick

build:
	cargo build --workspace --release

test:
	cargo test --workspace -q

check:
	./ci/check.sh

# All experiment tables + micro-benchmarks.
bench:
	cargo bench --workspace

# Kernel wall-time/events-per-second report -> BENCH_kernel.json.
perf:
	cargo run --release --bin perfreport

# Fast small-scale experiment tables.
quick:
	cargo run --release --bin experiments -- all --quick
