//! **Exactly-once group delivery** — the extension the paper points to via
//! its reference \[1\] (Acharya & Badrinath, *Delivering multicast messages in
//! networks with mobile hosts*, ICDCS 1993).
//!
//! The three Section-4 strategies lose messages to members that are between
//! cells when a group message goes out (the paper's accounting footnote
//! simply disregards the case). This strategy buys *exactly-once* delivery
//! for every member regardless of movement:
//!
//! * a **sequencer** MSS assigns consecutive sequence numbers to group
//!   messages and broadcasts them to every MSS (FIFO wired channels make
//!   each MSS's log a prefix of the sequencer's);
//! * every MSS buffers the sequenced log and tracks, per local member, the
//!   next sequence number to deliver;
//! * on a move, the member's delivery cursor travels with the handoff; any
//!   downlink copies that were in flight when the member left are rolled
//!   back at `leave` time (their loss is certain under prefix-delivery
//!   semantics) and retransmitted by the *new* cell from its buffer.
//!
//! The price is static-network bandwidth: every message costs a full
//! `(M−1)`-MSS broadcast instead of a location-view fan-out. Experiment
//! E11 quantifies the trade.

use crate::strategy::{GroupCtx, LocationStrategy};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::Src;
use std::collections::{BTreeMap, BTreeSet};

/// Exactly-once protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EoMsg {
    /// Uplink: a member submits a group message.
    Submit {
        /// The group message id.
        msg_id: u64,
    },
    /// Fixed: relayed submission on its way to the sequencer.
    ToSequencer {
        /// The group message id.
        msg_id: u64,
        /// The submitting member.
        sender: MhId,
    },
    /// Fixed: the sequenced message, broadcast to every MSS.
    Sequenced {
        /// Position in the global order.
        seq: u64,
        /// The group message id.
        msg_id: u64,
        /// The submitting member (skipped at delivery).
        sender: MhId,
    },
    /// Downlink: in-order delivery to a member.
    Deliver {
        /// Position in the global order.
        seq: u64,
        /// The group message id.
        msg_id: u64,
    },
}

/// The exactly-once strategy. See the module docs.
#[derive(Debug)]
pub struct ExactlyOnce {
    members: BTreeSet<MhId>,
    sequencer: MssId,
    /// Next sequence number the sequencer will assign.
    next_seq: u64,
    /// The sequenced log: `log[i]` has seq `i`.
    log: Vec<(u64, MhId)>, // (msg_id, sender)
    /// Highest sequence number each MSS has received (exclusive bound:
    /// the MSS holds seqs `0..high[mss]`).
    high: BTreeMap<MssId, u64>,
    /// Per-member delivery cursor: next seq to hand to the member.
    cursor: BTreeMap<MhId, u64>,
    /// Copies sent on the member's current downlink but not yet confirmed
    /// received (rolled back wholesale on leave).
    pending: BTreeMap<MhId, Vec<u64>>,
    /// Retransmissions performed after moves.
    retransmissions: u64,
}

impl ExactlyOnce {
    /// Creates the strategy with the given sequencer MSS.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<MhId>, sequencer: MssId) -> Self {
        assert!(!members.is_empty(), "a group needs members");
        let cursor = members.iter().map(|m| (*m, 0)).collect();
        ExactlyOnce {
            members: members.into_iter().collect(),
            sequencer,
            next_seq: 0,
            log: Vec::new(),
            high: BTreeMap::new(),
            cursor,
            pending: BTreeMap::new(),
            retransmissions: 0,
        }
    }

    /// Copies retransmitted from a new cell's buffer after a move.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// The global sequence length so far.
    pub fn sequenced(&self) -> u64 {
        self.next_seq
    }

    /// Pushes every due log entry down to `mh`, which must be local to
    /// `mss`.
    fn drain_to(&mut self, ctx: &mut GroupCtx<'_, '_, EoMsg, ()>, mss: MssId, mh: MhId) {
        let high = self.high.get(&mss).copied().unwrap_or(0);
        let cur = self.cursor.get_mut(&mh).expect("known member");
        while *cur < high {
            let seq = *cur;
            let (msg_id, sender) = self.log[seq as usize];
            *cur += 1;
            if sender == mh {
                continue; // members do not receive their own messages
            }
            if ctx
                .send_wireless_down(mss, mh, EoMsg::Deliver { seq, msg_id })
                .is_ok()
            {
                self.pending.entry(mh).or_default().push(seq);
            }
        }
    }
}

impl LocationStrategy for ExactlyOnce {
    type Msg = EoMsg;
    type Timer = ();

    fn name(&self) -> &'static str {
        "exactly-once"
    }

    fn on_start(
        &mut self,
        _ctx: &mut GroupCtx<'_, '_, EoMsg, ()>,
        _placement: &BTreeMap<MhId, MssId>,
    ) {
    }

    fn send_group_message(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, EoMsg, ()>,
        from: MhId,
        msg_id: u64,
    ) {
        let _ = ctx.send_wireless_up(from, EoMsg::Submit { msg_id });
    }

    fn on_mss_msg(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, EoMsg, ()>,
        at: MssId,
        src: Src,
        msg: EoMsg,
    ) {
        match msg {
            EoMsg::Submit { msg_id } => {
                let sender = src.as_mh().expect("submissions arrive on the uplink");
                if at == self.sequencer {
                    self.on_mss_msg(ctx, at, Src::Mss(at), EoMsg::ToSequencer { msg_id, sender });
                } else {
                    ctx.send_fixed(at, self.sequencer, EoMsg::ToSequencer { msg_id, sender });
                }
            }
            EoMsg::ToSequencer { msg_id, sender } => {
                debug_assert_eq!(at, self.sequencer);
                let seq = self.next_seq;
                self.next_seq += 1;
                self.log.push((msg_id, sender));
                // Broadcast the sequenced message to every MSS (including
                // this one, locally).
                let all: Vec<MssId> = ctx.mss_ids().collect();
                for mss in all {
                    if mss == at {
                        self.high.insert(at, seq + 1);
                        let locals: Vec<MhId> = self
                            .members
                            .iter()
                            .copied()
                            .filter(|m| ctx.is_local(at, *m))
                            .collect();
                        for mh in locals {
                            self.drain_to(ctx, at, mh);
                        }
                    } else {
                        ctx.send_fixed(
                            at,
                            mss,
                            EoMsg::Sequenced {
                                seq,
                                msg_id,
                                sender,
                            },
                        );
                    }
                }
            }
            EoMsg::Sequenced { seq, .. } => {
                // FIFO from the sequencer ⇒ seqs arrive in order.
                self.high.insert(at, seq + 1);
                let locals: Vec<MhId> = self
                    .members
                    .iter()
                    .copied()
                    .filter(|m| ctx.is_local(at, *m))
                    .collect();
                for mh in locals {
                    self.drain_to(ctx, at, mh);
                }
            }
            EoMsg::Deliver { .. } => unreachable!("deliveries terminate at MHs"),
        }
    }

    fn on_mh_msg(&mut self, ctx: &mut GroupCtx<'_, '_, EoMsg, ()>, at: MhId, _: Src, msg: EoMsg) {
        let EoMsg::Deliver { seq, msg_id } = msg else {
            unreachable!("MHs only receive deliveries");
        };
        // Confirmed received: it can no longer be rolled back.
        if let Some(p) = self.pending.get_mut(&at) {
            p.retain(|s| *s != seq);
        }
        ctx.deliver(at, msg_id);
    }

    fn on_member_left(&mut self, _ctx: &mut GroupCtx<'_, '_, EoMsg, ()>, mh: MhId, _mss: MssId) {
        // Copies still on the wire are certain losses (prefix delivery):
        // rewind the cursor to the earliest unconfirmed copy.
        if let Some(p) = self.pending.remove(&mh) {
            if let Some(min) = p.into_iter().min() {
                let cur = self.cursor.get_mut(&mh).expect("known member");
                *cur = (*cur).min(min);
            }
        }
    }

    fn on_member_disconnected(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, EoMsg, ()>,
        mh: MhId,
        mss: MssId,
    ) {
        self.on_member_left(ctx, mh, mss);
    }

    fn on_member_joined(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, EoMsg, ()>,
        mh: MhId,
        mss: MssId,
        _prev: Option<MssId>,
    ) {
        // The cursor arrived with the handoff; the new cell retransmits
        // whatever the member missed.
        let before = self.cursor.get(&mh).copied().unwrap_or(0);
        self.drain_to(ctx, mss, mh);
        let after = self.cursor.get(&mh).copied().unwrap_or(0);
        self.retransmissions += after.saturating_sub(before);
    }

    fn on_member_reconnected(
        &mut self,
        ctx: &mut GroupCtx<'_, '_, EoMsg, ()>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        self.on_member_joined(ctx, mh, mss, prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_strategy_state() {
        let eo = ExactlyOnce::new(vec![MhId(0), MhId(1)], MssId(2));
        assert_eq!(eo.sequenced(), 0);
        assert_eq!(eo.retransmissions(), 0);
        assert_eq!(eo.name(), "exactly-once");
    }

    #[test]
    #[should_panic(expected = "a group needs members")]
    fn empty_group_rejected() {
        let _ = ExactlyOnce::new(vec![], MssId(0));
    }

    #[test]
    fn cursor_rollback_on_leave_rewinds_to_earliest_pending() {
        let mut eo = ExactlyOnce::new(vec![MhId(0)], MssId(0));
        eo.cursor.insert(MhId(0), 7);
        eo.pending.insert(MhId(0), vec![5, 6]);
        // Simulate the leave bookkeeping without a network.
        if let Some(p) = eo.pending.remove(&MhId(0)) {
            if let Some(min) = p.into_iter().min() {
                let cur = eo.cursor.get_mut(&MhId(0)).unwrap();
                *cur = (*cur).min(min);
            }
        }
        assert_eq!(eo.cursor[&MhId(0)], 5);
        assert!(eo.pending.is_empty());
    }
}
