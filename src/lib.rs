//! # mobidist — distributed algorithms for mobile hosts
//!
//! A complete, tested reproduction of **B. R. Badrinath, Arup Acharya &
//! Tomasz Imieliński, "Structuring Distributed Algorithms for Mobile
//! Hosts", ICDCS 1994** — the two-tier system model, both mutual-exclusion
//! redesigns with their baselines, group location management, and the proxy
//! framework.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`net`] — the two-tier network simulator (MSSs, MHs, cells, FIFO
//!   channels, search, mobility, disconnection, cost/energy ledger);
//! * [`clock`] — Lamport logical clocks;
//! * [`mutex`] — the mutual-exclusion suite: L1, L2, R1, R2/R2′/token-list
//!   under a shared workload + invariant harness;
//! * [`group`] — pure-search, always-inform and location-view group
//!   location management;
//! * [`proxy`] — the proxy framework lifting static-host algorithms to
//!   mobile clients;
//! * [`cost`] — the paper's closed-form cost formulas.
//!
//! ## Quickstart
//!
//! ```
//! use mobidist::prelude::*;
//!
//! // 4 support stations, 16 mobile hosts, every host wants the critical
//! // section twice while roaming between cells.
//! let cfg = NetworkConfig::new(4, 16)
//!     .with_seed(42)
//!     .with_mobility(MobilityConfig::moving(500));
//! let workload = WorkloadConfig::all_mhs(16, 2);
//! let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(4), workload));
//! sim.run_until(SimTime::from_ticks(5_000_000));
//!
//! let report = sim.protocol().report();
//! assert!(report.is_clean_and_live());
//! assert_eq!(report.completed, 32);
//! ```

#![deny(missing_docs)]

pub use mobidist_clock as clock;
pub use mobidist_core as mutex;
pub use mobidist_cost as cost;
pub use mobidist_group as group;
pub use mobidist_net as net;
pub use mobidist_proxy as proxy;

/// Everything needed to build and run simulations of the paper's systems.
pub mod prelude {
    pub use mobidist_clock::{LamportClock, Timestamp};
    pub use mobidist_core::prelude::*;
    pub use mobidist_cost::Params;
    pub use mobidist_group::prelude::*;
    pub use mobidist_net::prelude::*;
    pub use mobidist_proxy::prelude::*;
}
