//! Regenerates E9: fairness guards and the malicious under-reporter.
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_mutex::e9_fairness(quick));
}
