//! Regenerates E1: L1 vs L2 cost per execution (Section 3.1.1).
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_mutex::e1_lamport(quick));
}
