//! End-to-end runs of every mutual-exclusion algorithm under the shared
//! harness: safety, liveness, ordering, mobility and disconnection
//! behaviour, and the cost shapes the paper derives.
//!
//! Note on horizons: L1/L2 runs quiesce once all requests are served, so a
//! generous `run_until` bound just stops early. The ring algorithms keep the
//! token circulating forever (as the paper describes), so their runs use
//! explicit horizons sized to the workload.

use mobidist_core::prelude::*;
use mobidist_net::prelude::*;

fn net(m: usize, n: usize, seed: u64) -> NetworkConfig {
    NetworkConfig::new(m, n).with_seed(seed)
}

fn run<A: MutexAlgorithm>(
    cfg: NetworkConfig,
    algo: A,
    wl: WorkloadConfig,
    horizon: u64,
) -> (MutexReport, Simulation<MutexHarness<A>>) {
    let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
    sim.run_until(SimTime::from_ticks(horizon));
    let report = sim.protocol().report();
    (report, sim)
}

/// Steps the simulation until some MH holds the critical section.
fn wait_for_holder<A: MutexAlgorithm>(sim: &mut Simulation<MutexHarness<A>>, max: u64) -> MhId {
    let deadline = SimTime::from_ticks(max);
    loop {
        if let Some(h) = sim.protocol().checker().holder() {
            return h;
        }
        assert!(sim.now() < deadline, "no CS holder appeared by {deadline}");
        assert!(sim.step(), "simulation went quiescent with no holder");
    }
}

// ---------------------------------------------------------------- L1 ----

#[test]
fn l1_serves_all_requests_safely_static() {
    let n = 6;
    let wl = WorkloadConfig::all_mhs(n, 3);
    let participants = wl.requesters.clone();
    let (r, sim) = run(net(3, n, 1), L1::new(participants), wl, 10_000_000);
    assert!(r.is_clean_and_live(), "{r:?}");
    assert_eq!(r.completed, 18);
    assert!(sim.protocol().checker().clean());
}

#[test]
fn l1_respects_timestamp_order() {
    let n = 5;
    let wl = WorkloadConfig::all_mhs(n, 4).with_think(30);
    let participants = wl.requesters.clone();
    let (r, _) = run(net(2, n, 2), L1::new(participants), wl, 10_000_000);
    assert_eq!(r.order_violations, 0, "grants must follow timestamp order");
    assert_eq!(r.completed, 20);
}

#[test]
fn l1_works_under_mobility() {
    let n = 5;
    let cfg = net(4, n, 3).with_mobility(MobilityConfig::moving(400));
    let wl = WorkloadConfig::all_mhs(n, 3);
    let participants = wl.requesters.clone();
    let mut sim = Simulation::new(cfg, MutexHarness::new(L1::new(participants), wl));
    sim.run_until(SimTime::from_ticks(1_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 15, "{r:?}");
}

#[test]
fn l1_cost_scales_linearly_with_n() {
    // One complete execution by one requester; everyone else passive.
    let measure = |n: usize| -> u64 {
        let wl = WorkloadConfig::only(vec![MhId(0)], 1);
        let algo = L1::new((0..n as u32).map(MhId).collect());
        let (r, sim) = run(net(4, n, 5), algo, wl, 10_000_000);
        assert!(r.is_clean_and_live());
        sim.ledger().total_cost()
    };
    let c8 = measure(8);
    let c16 = measure(16);
    let c32 = measure(32);
    // Paper: 3(N−1)(2C_w + C_s). Ratios should be ≈ (N−1) ratios.
    let r1 = c16 as f64 / c8 as f64;
    let r2 = c32 as f64 / c16 as f64;
    assert!((r1 - 15.0 / 7.0).abs() < 0.25, "c16/c8 = {r1}");
    assert!((r2 - 31.0 / 15.0).abs() < 0.25, "c32/c16 = {r2}");
}

#[test]
fn l1_exact_paper_cost_for_single_execution() {
    // Static hosts, one requester, default cost model: the measured total
    // must be exactly 3(N−1)(2·C_w + C_s).
    let n = 10;
    let wl = WorkloadConfig::only(vec![MhId(0)], 1);
    let algo = L1::new((0..n as u32).map(MhId).collect());
    let (r, sim) = run(net(4, n, 6), algo, wl, 10_000_000);
    assert!(r.is_clean_and_live());
    let c = sim.kernel().config().cost;
    let predicted = 3 * (n as u64 - 1) * (2 * c.c_wireless + c.c_search);
    assert_eq!(sim.ledger().total_cost(), predicted);
    // Energy: 6(N−1) wireless ops total, 3(N−1) at the initiator.
    assert_eq!(sim.ledger().total_energy(), 6 * (n as u64 - 1));
    assert_eq!(sim.ledger().mh_energy[0], 3 * (n as u64 - 1));
}

#[test]
fn l1_stalls_when_a_participant_disconnects() {
    let n = 5;
    let wl = WorkloadConfig::only(vec![MhId(0)], 1).with_think(500);
    let algo = L1::new((0..n as u32).map(MhId).collect());
    let cfg = net(3, n, 7);
    let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
    // Disconnect a passive participant before the request goes out.
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(4)));
    sim.run_until(SimTime::from_ticks(5_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.completed, 0, "L1 cannot finish without mh4's reply");
    assert_eq!(r.outstanding, 1, "the request stalls forever");
}

// ---------------------------------------------------------------- L2 ----

#[test]
fn l2_serves_all_requests_safely_static() {
    let n = 8;
    let (r, sim) = run(
        net(4, n, 1),
        L2::new(4),
        WorkloadConfig::all_mhs(n, 3),
        10_000_000,
    );
    assert!(r.is_clean_and_live(), "{r:?}");
    assert_eq!(r.completed, 24);
    assert!(sim.protocol().checker().clean());
}

#[test]
fn l2_respects_timestamp_order() {
    let n = 8;
    let (r, _) = run(
        net(4, n, 11),
        L2::new(4),
        WorkloadConfig::all_mhs(n, 3).with_think(20),
        10_000_000,
    );
    assert_eq!(r.order_violations, 0);
    assert_eq!(r.completed, 24);
}

#[test]
fn l2_works_under_heavy_mobility() {
    let n = 10;
    let cfg = net(5, n, 12).with_mobility(MobilityConfig::moving(150));
    let mut sim = Simulation::new(
        cfg,
        MutexHarness::new(L2::new(5), WorkloadConfig::all_mhs(n, 3)),
    );
    sim.run_until(SimTime::from_ticks(1_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 30, "{r:?}");
}

#[test]
fn l2_exact_paper_cost_for_single_execution() {
    // One requester, static hosts: cost must be exactly
    // 3C_w + C_s + 3(M−1)C_f (the paper's extra C_fixed term pays the
    // release relay when the MH has moved; here it stays local).
    let m = 6;
    let n = 12;
    let wl = WorkloadConfig::only(vec![MhId(0)], 1);
    let (r, sim) = run(net(m, n, 13), L2::new(m), wl, 10_000_000);
    assert!(r.is_clean_and_live());
    let c = sim.kernel().config().cost;
    let predicted = 3 * c.c_wireless + c.c_search + 3 * (m as u64 - 1) * c.c_fixed;
    assert_eq!(sim.ledger().total_cost(), predicted);
    // Exactly three wireless messages touch the MH.
    assert_eq!(sim.ledger().wireless_msgs, 3);
    assert_eq!(sim.ledger().total_energy(), 3);
}

#[test]
fn l2_cost_constant_in_n() {
    let measure = |n: usize| -> u64 {
        let wl = WorkloadConfig::only(vec![MhId(0)], 1);
        let (r, sim) = run(net(4, n, 14), L2::new(4), wl, 10_000_000);
        assert!(r.is_clean_and_live());
        sim.ledger().total_cost()
    };
    let c8 = measure(8);
    let c64 = measure(64);
    assert_eq!(c8, c64, "L2 cost must not depend on N");
}

#[test]
fn l2_withdraws_request_of_disconnected_initiator() {
    let n = 6;
    let wl = WorkloadConfig::only(vec![MhId(0), MhId(1)], 1).with_think(10);
    let cfg = net(3, n, 15);
    let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(3), wl));
    // Let both requests get issued, then disconnect mh0 while it may be
    // waiting for its grant.
    sim.run_until(SimTime::from_ticks(40));
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(0)));
    sim.run_until(SimTime::from_ticks(10_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.outstanding, 0, "no request may stall: {r:?}");
    assert_eq!(
        r.completed + r.aborted,
        r.issued,
        "every request completes or aborts"
    );
    assert!(r.completed >= 1, "the connected requester must finish");
}

#[test]
fn l2_holder_disconnecting_releases_on_reconnect() {
    let n = 4;
    let wl = WorkloadConfig::only(vec![MhId(0), MhId(1)], 1)
        .with_think(5)
        .with_hold(2_000);
    let cfg = net(2, n, 16);
    let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(2), wl));
    let holder = wait_for_holder(&mut sim, 100_000);
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(holder));
    // The hold timer fires while disconnected; release is deferred.
    sim.run_until(SimTime::from_ticks(sim.now().ticks() + 10_000));
    sim.with_ctx(|ctx, _| ctx.initiate_reconnect(holder, None, 10));
    sim.run_until(SimTime::from_ticks(10_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 2, "both finish after the reconnect: {r:?}");
}

// --------------------------------------------------------------- L2C ----

#[test]
fn l2c_serves_all_requests_safely_static() {
    let n = 8;
    let (r, sim) = run(
        net(4, n, 1),
        L2c::new(4),
        WorkloadConfig::all_mhs(n, 3),
        10_000_000,
    );
    assert!(r.is_clean_and_live(), "{r:?}");
    assert_eq!(r.completed, 24);
    assert!(sim.protocol().checker().clean());
}

#[test]
fn l2c_respects_batch_then_index_order() {
    let n = 8;
    let (r, _) = run(
        net(4, n, 11),
        L2c::new(4),
        WorkloadConfig::all_mhs(n, 3).with_think(20),
        10_000_000,
    );
    assert_eq!(r.order_violations, 0, "grant keys must be nondecreasing");
    assert_eq!(r.completed, 24);
}

#[test]
fn l2c_single_execution_costs_two_wireless_messages() {
    // One requester, static: init uplink + the batch-done cell broadcast —
    // two charged wireless messages against L2's three, even with nothing
    // to combine.
    let m = 6;
    let n = 12;
    let wl = WorkloadConfig::only(vec![MhId(0)], 1);
    let (r, sim) = run(net(m, n, 13), L2c::new(m), wl, 10_000_000);
    assert!(r.is_clean_and_live());
    assert_eq!(sim.ledger().wireless_msgs, 2);
    assert_eq!(sim.ledger().fixed_msgs, 3 * (m as u64 - 1));
    assert_eq!(sim.ledger().custom("combine_batches"), 1);
    assert_eq!(sim.ledger().searches, 0, "nobody moved, nobody is searched");
}

#[test]
fn l2c_batches_under_contention_and_beats_l2_on_wireless() {
    // Saturated cell: every MH requests at once, repeatedly. The combiner
    // should serve many operations per Lamport acquisition, pushing
    // wireless messages per execution toward 1 (init) + 1/k (broadcast).
    let n = 24;
    let wl = WorkloadConfig::all_mhs(n, 4).with_think(5).with_hold(8);
    let (rc, simc) = run(net(4, n, 17), L2c::new(4), wl.clone(), 10_000_000);
    assert!(rc.is_clean_and_live(), "{rc:?}");
    assert_eq!(rc.completed, 96);
    let batches = simc.ledger().custom("combine_batches");
    assert!(
        batches * 2 < rc.completed,
        "mean batch size must exceed 2 under saturation: {batches} batches"
    );
    let (rl, siml) = run(net(4, n, 17), L2::new(4), wl, 10_000_000);
    assert_eq!(rl.completed, 96);
    assert!(
        simc.ledger().wireless_msgs * 2 <= siml.ledger().wireless_msgs,
        "L2C must at least halve L2's wireless traffic under load: {} vs {}",
        simc.ledger().wireless_msgs,
        siml.ledger().wireless_msgs
    );
}

#[test]
fn l2c_works_under_heavy_mobility() {
    let n = 10;
    let cfg = net(5, n, 12).with_mobility(MobilityConfig::moving(150));
    let mut sim = Simulation::new(
        cfg,
        MutexHarness::new(L2c::new(5), WorkloadConfig::all_mhs(n, 3)),
    );
    sim.run_until(SimTime::from_ticks(1_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.order_violations, 0);
    assert_eq!(r.completed, 30, "{r:?}");
}

#[test]
fn l2c_serves_members_that_disconnect_while_waiting() {
    // In L2 a waiter's disconnection aborts its request (the grant search
    // fails). In L2C the operation already lives at the combiner, so it is
    // served anyway — the paper's thesis taken to its limit.
    let n = 6;
    let wl = WorkloadConfig::only(vec![MhId(0), MhId(1)], 1)
        .with_think(10)
        .with_hold(2_000);
    let cfg = net(3, n, 15);
    let mut sim = Simulation::new(cfg, MutexHarness::new(L2c::new(3), wl));
    // Let both requests get collected, then disconnect one waiter.
    sim.run_until(SimTime::from_ticks(40));
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(0)));
    sim.run_until(SimTime::from_ticks(10_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, r.issued, "every collected op is served: {r:?}");
    assert_eq!(r.outstanding, 0);
}

#[test]
fn l2c_batch_cap_bounds_batches_and_stays_live() {
    // Same saturated workload as the uncapped contention test: every batch
    // must respect the cap, every operation must still be served, and the
    // capped run must close more (smaller) batches than the uncapped one.
    let n = 24;
    let wl = WorkloadConfig::all_mhs(n, 4).with_think(5).with_hold(8);
    let (rc, simc) = run(
        net(4, n, 17),
        L2c::new(4).with_batch_cap(3),
        wl.clone(),
        10_000_000,
    );
    assert!(rc.is_clean_and_live(), "{rc:?}");
    assert_eq!(rc.completed, 96);
    let capped_batches = simc.ledger().custom("combine_batches");
    assert!(
        capped_batches * 3 >= rc.completed,
        "no batch may exceed the cap of 3: {capped_batches} batches for {} ops",
        rc.completed
    );
    let (ru, simu) = run(net(4, n, 17), L2c::new(4), wl, 10_000_000);
    assert_eq!(ru.completed, 96);
    assert!(
        capped_batches > simu.ledger().custom("combine_batches"),
        "capping splits the backlog into more acquisitions"
    );
}

#[test]
fn l2c_mixed_hold_profile_is_safe_and_live() {
    // The fairness workload: alternating short/long critical sections.
    let n = 8;
    let wl = WorkloadConfig::all_mhs(n, 3)
        .with_think(30)
        .with_hold_profile(vec![3, 30]);
    let (r, _) = run(net(4, n, 18), L2c::new(4), wl, 10_000_000);
    assert!(r.is_clean_and_live(), "{r:?}");
    assert_eq!(r.completed, 24);
}

// ---------------------------------------------------------------- R1 ----

#[test]
fn r1_serves_all_requests_safely_static() {
    let n = 6;
    let wl = WorkloadConfig::all_mhs(n, 3);
    let ring = wl.requesters.clone();
    let (r, sim) = run(
        net(3, n, 21),
        R1::new(ring, R1DisconnectPolicy::Stall),
        wl,
        400_000,
    );
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 18, "{r:?}");
    assert!(sim.protocol().algorithm().traversals() > 0);
}

#[test]
fn r1_token_circulates_even_with_no_requests() {
    let n = 4;
    let wl = WorkloadConfig::only(vec![], 0);
    let ring: Vec<MhId> = (0..n as u32).map(MhId).collect();
    let (_, sim) = run(
        net(2, n, 22),
        R1::new(ring, R1DisconnectPolicy::Stall),
        wl,
        100_000,
    );
    let a = sim.protocol().algorithm();
    assert!(
        a.traversals() >= 10,
        "token keeps burning cost with zero demand: {}",
        a.traversals()
    );
    // Every completed hop cost the paper's MH→MH price (the final hop may
    // still be in flight at the horizon).
    let c = sim.kernel().config().cost;
    let total = sim.ledger().total_cost();
    assert!(total <= a.hops() * c.mh_to_mh());
    assert!(total >= (a.hops() - 1) * c.mh_to_mh());
}

#[test]
fn r1_interrupts_dozing_mhs() {
    let n = 6;
    // Only mh0 requests; everyone else dozes — and still gets interrupted.
    let wl = WorkloadConfig::only(vec![MhId(0)], 2).with_doze();
    let ring: Vec<MhId> = (0..n as u32).map(MhId).collect();
    let (_, sim) = run(
        net(3, n, 23),
        R1::new(ring, R1DisconnectPolicy::Stall),
        wl,
        100_000,
    );
    assert!(
        sim.ledger().doze_interruptions > 10,
        "dozing relays are interrupted: {}",
        sim.ledger().doze_interruptions
    );
}

#[test]
fn r1_stalls_on_disconnection_until_reconnect() {
    let n = 4;
    let wl = WorkloadConfig::only(vec![MhId(0)], 2).with_think(100);
    let ring: Vec<MhId> = (0..n as u32).map(MhId).collect();
    let cfg = net(2, n, 24);
    let mut sim = Simulation::new(
        cfg,
        MutexHarness::new(R1::new(ring, R1DisconnectPolicy::Stall), wl),
    );
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(2)));
    sim.run_until(SimTime::from_ticks(200_000));
    let stalled = sim.protocol().algorithm().stalls();
    assert!(stalled > 0, "ring must stall on the disconnected relay");
    // Reconnect lets the ring resume.
    sim.with_ctx(|ctx, _| ctx.initiate_reconnect(MhId(2), None, 10));
    sim.run_until(SimTime::from_ticks(3_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.completed, 2, "resumes after reconnect: {r:?}");
}

#[test]
fn r1_skip_policy_heals_the_ring() {
    let n = 4;
    let wl = WorkloadConfig::only(vec![MhId(0)], 2).with_think(100);
    let ring: Vec<MhId> = (0..n as u32).map(MhId).collect();
    let cfg = net(2, n, 25);
    let mut sim = Simulation::new(
        cfg,
        MutexHarness::new(R1::new(ring, R1DisconnectPolicy::Skip), wl),
    );
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(2)));
    sim.run_until(SimTime::from_ticks(1_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.completed, 2, "skip policy keeps the ring alive: {r:?}");
    assert!(sim.protocol().algorithm().skips() > 0);
}

// ---------------------------------------------------------------- R2 ----

#[test]
fn r2_serves_all_requests_safely_static() {
    let n = 8;
    let (r, sim) = run(
        net(4, n, 31),
        R2::new(4, RingGuard::Plain),
        WorkloadConfig::all_mhs(n, 3),
        400_000,
    );
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 24, "{r:?}");
    assert!(sim.protocol().algorithm().traversals() > 0);
}

#[test]
fn r2_counter_guard_limits_one_access_per_traversal() {
    let n = 6;
    let (r, sim) = run(
        net(3, n, 32),
        R2::new(3, RingGuard::Counter),
        WorkloadConfig::all_mhs(n, 4).with_think(5),
        400_000,
    );
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 24, "{r:?}");
    assert_eq!(
        sim.protocol().algorithm().max_services_per_traversal(),
        1,
        "R2' must serve each MH at most once per traversal"
    );
}

#[test]
fn r2_token_list_limits_one_access_per_traversal() {
    let n = 6;
    let (r, sim) = run(
        net(3, n, 33),
        R2::new(3, RingGuard::TokenList),
        WorkloadConfig::all_mhs(n, 4).with_think(5),
        400_000,
    );
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 24, "{r:?}");
    assert_eq!(sim.protocol().algorithm().max_services_per_traversal(), 1);
}

#[test]
fn r2_counter_guard_is_fooled_by_a_liar_but_token_list_is_not() {
    // The liar always reports access-count 0. Under R2' it can be served
    // multiple times per traversal by re-requesting at the next ring MSS;
    // the token-list variant shuts this down.
    let n = 4;
    let liar = MhId(0);
    let mobility = MobilityConfig {
        enabled: true,
        mean_dwell: 60,
        mean_gap: 5,
        ..MobilityConfig::default()
    };
    let max_served = |guard: RingGuard, seed: u64| -> u64 {
        let wl = WorkloadConfig::only(vec![liar], 40)
            .with_think(10)
            .with_hold(3);
        let cfg = net(4, n, seed).with_mobility(mobility);
        let (r, sim) = run(cfg, R2::new(4, guard).with_liar(liar), wl, 150_000);
        assert_eq!(r.safety_violations, 0);
        sim.protocol().algorithm().max_services_per_traversal()
    };
    let mut fooled = 0;
    let mut protected_ok = true;
    for seed in 40..46 {
        if max_served(RingGuard::Counter, seed) > 1 {
            fooled += 1;
        }
        if max_served(RingGuard::TokenList, seed) > 1 {
            protected_ok = false;
        }
    }
    assert!(fooled > 0, "the liar should beat R2' in at least one run");
    assert!(protected_ok, "the token-list guard must never be beaten");
}

#[test]
fn r2_exact_paper_cost_for_single_request() {
    // Static hosts, one requester at its local MSS, measured from request to
    // completion: serving costs 3C_w + C_s (the MH never moved, so the
    // return relay is local) plus M·C_f token passing per traversal.
    let m = 4;
    let n = 4;
    let wl = WorkloadConfig::only(vec![MhId(0)], 1).with_think(1);
    let cfg = net(m, n, 34);
    let mut sim = Simulation::new(cfg, MutexHarness::new(R2::new(m, RingGuard::Plain), wl));
    sim.run_until(SimTime::from_ticks(500));
    let r = sim.protocol().report();
    assert_eq!(r.completed, 1, "{r:?}");
    let c = sim.kernel().config().cost;
    let a = sim.protocol().algorithm();
    let serve_cost = 3 * c.c_wireless + c.c_search; // grant + CS + return, local MH
    let ring_cost = a.token_passes() * c.c_fixed;
    assert_eq!(sim.ledger().total_cost(), serve_cost + ring_cost);
}

#[test]
fn r2_skips_disconnected_requester_and_token_survives() {
    let n = 6;
    // Two requesters with long holds; whoever wins first keeps the token
    // long enough for us to disconnect the other *while it waits*.
    let wl = WorkloadConfig::only(vec![MhId(1), MhId(2)], 1)
        .with_think(5)
        .with_hold(2_000);
    let cfg = net(3, n, 4);
    let mut sim = Simulation::new(cfg, MutexHarness::new(R2::new(3, RingGuard::Plain), wl));
    let holder = wait_for_holder(&mut sim, 100_000);
    let waiter = if holder == MhId(1) { MhId(2) } else { MhId(1) };
    // Make sure the waiter has actually issued its request, then kill it.
    sim.run_until(SimTime::from_ticks(sim.now().ticks() + 500));
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(waiter));
    sim.run_until(SimTime::from_ticks(sim.now().ticks() + 300_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 1, "{r:?}");
    assert_eq!(
        r.outstanding, 0,
        "the dead request must be withdrawn: {r:?}"
    );
    assert!(r.aborted >= 1 || r.issued == 1, "{r:?}");
    // Ring still turning afterwards.
    assert!(sim.protocol().algorithm().traversals() > 1);
}

#[test]
fn r2_disconnection_of_passive_mh_costs_nothing() {
    let n = 8;
    let wl = WorkloadConfig::only(vec![MhId(0)], 2).with_think(50);
    let cfg = net(4, n, 36);
    let mut sim = Simulation::new(cfg, MutexHarness::new(R2::new(4, RingGuard::Plain), wl));
    sim.with_ctx(|ctx, _| {
        ctx.initiate_disconnect(MhId(5));
        ctx.initiate_disconnect(MhId(6));
    });
    sim.run_until(SimTime::from_ticks(300_000));
    let r = sim.protocol().report();
    assert_eq!(
        r.completed, 2,
        "passive disconnections are invisible: {r:?}"
    );
}

#[test]
fn r2_never_interrupts_passive_dozers() {
    let n = 6;
    let wl = WorkloadConfig::only(vec![MhId(0)], 2).with_doze();
    let cfg = net(3, n, 37);
    let mut sim = Simulation::new(cfg, MutexHarness::new(R2::new(3, RingGuard::Counter), wl));
    sim.run_until(SimTime::from_ticks(300_000));
    let r = sim.protocol().report();
    assert_eq!(r.completed, 2);
    assert_eq!(
        sim.ledger().doze_interruptions,
        0,
        "R2 interrupts only requesters (contrast with R1)"
    );
}

#[test]
fn r2_works_under_heavy_mobility() {
    let n = 10;
    let cfg = net(5, n, 38).with_mobility(MobilityConfig::moving(200));
    let (r, _) = run(
        cfg,
        R2::new(5, RingGuard::Counter),
        WorkloadConfig::all_mhs(n, 3),
        400_000,
    );
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 30, "{r:?}");
}

#[test]
fn r2_holder_disconnect_stalls_ring_until_reconnect() {
    let n = 4;
    let wl = WorkloadConfig::only(vec![MhId(0), MhId(1)], 1)
        .with_think(5)
        .with_hold(1_000);
    let cfg = net(2, n, 39);
    let mut sim = Simulation::new(cfg, MutexHarness::new(R2::new(2, RingGuard::Plain), wl));
    let holder = wait_for_holder(&mut sim, 100_000);
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(holder));
    sim.run_until(SimTime::from_ticks(sim.now().ticks() + 5_000));
    // Ring is stalled: the other request cannot complete.
    assert!(sim.protocol().report().completed <= 1);
    sim.with_ctx(|ctx, _| ctx.initiate_reconnect(holder, None, 10));
    sim.run_until(SimTime::from_ticks(sim.now().ticks() + 500_000));
    let r = sim.protocol().report();
    assert_eq!(r.completed, 2, "token returns after reconnect: {r:?}");
    assert_eq!(r.safety_violations, 0);
}

// ------------------------------------------------------------ cross ----

#[test]
fn all_algorithms_same_workload_same_grants() {
    // Identical workload and seed: every algorithm serves all requests
    // exactly once, whatever the internal machinery.
    let n = 6;
    let wl = WorkloadConfig::all_mhs(n, 2);
    let total = (n * 2) as u64;

    let (r, _) = run(
        net(3, n, 50),
        L1::new(wl.requesters.clone()),
        wl.clone(),
        5_000_000,
    );
    assert_eq!((r.completed, r.safety_violations), (total, 0), "L1");

    let (r, _) = run(net(3, n, 50), L2::new(3), wl.clone(), 5_000_000);
    assert_eq!((r.completed, r.safety_violations), (total, 0), "L2");

    let (r, _) = run(
        net(3, n, 50),
        R1::new(wl.requesters.clone(), R1DisconnectPolicy::Stall),
        wl.clone(),
        1_000_000,
    );
    assert_eq!((r.completed, r.safety_violations), (total, 0), "R1");

    let (r, _) = run(net(3, n, 50), R2::new(3, RingGuard::Counter), wl, 400_000);
    assert_eq!((r.completed, r.safety_violations), (total, 0), "R2'");
}

#[test]
fn deterministic_replay_same_seed() {
    let n = 8;
    let wl = WorkloadConfig::all_mhs(n, 2);
    let go = || {
        let cfg = net(4, n, 99).with_mobility(MobilityConfig::moving(300));
        let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(4), wl.clone()));
        sim.run_until(SimTime::from_ticks(1_000_000));
        (sim.protocol().report(), sim.ledger().clone())
    };
    let (ra, la) = go();
    let (rb, lb) = go();
    assert_eq!(ra, rb);
    assert_eq!(la, lb);
}

// ------------------------------------------------ request handoff ----

#[test]
fn r2_request_handoff_serves_the_request_at_the_new_cell() {
    // mh1 requests at mss1 and immediately moves to mss2 while the token is
    // still at mss0. Without the Section-2 handoff the request stays (and
    // is served from) mss1; with it, the request follows the MH to mss2.
    let serve_site = |handoff: bool| -> MssId {
        let mut algo = R2::new(3, RingGuard::Plain);
        if handoff {
            algo = algo.with_request_handoff();
        }
        // Slow the wired plane so the token is still in flight to mss1 when
        // the move completes.
        let mut cfg = net(3, 3, 60);
        cfg.latency.fixed = LatencyModel::Fixed(200);
        let wl = WorkloadConfig::only(vec![MhId(1)], 1).with_think(1);
        let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
        // Let the request reach mss1, then move mh1 to mss2.
        sim.run_until(SimTime::from_ticks(20));
        sim.with_ctx(|ctx, _| ctx.initiate_move(MhId(1), Some(MssId(2))));
        sim.run_until(SimTime::from_ticks(sim.now().ticks() + 100_000));
        let r = sim.protocol().report();
        assert_eq!(r.completed, 1, "handoff={handoff}: {r:?}");
        sim.protocol().algorithm().service_log()[0].0
    };
    assert_eq!(serve_site(false), MssId(1), "request stays at the old cell");
    assert_eq!(serve_site(true), MssId(2), "request travels with the MH");
}

#[test]
fn r2_request_handoff_is_safe_under_churn() {
    let n = 8;
    let cfg = net(4, n, 61).with_mobility(MobilityConfig {
        enabled: true,
        mean_dwell: 80,
        mean_gap: 10,
        ..MobilityConfig::default()
    });
    let wl = WorkloadConfig::all_mhs(n, 3).with_think(20);
    let algo = R2::new(4, RingGuard::Counter).with_request_handoff();
    let (r, sim) = run(cfg, algo, wl, 600_000);
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 24, "{r:?}");
    assert!(
        sim.ledger().custom("r2_request_handoffs") > 0,
        "this much churn must trigger at least one queue handoff"
    );
}
