//! Kernel performance report.
//!
//! Runs a fixed workload matrix through the simulator — sized well above the
//! paper-scale experiments so kernel overhead dominates — and records wall
//! time plus events/second for each, alongside a batched-vs-unbatched
//! delivery comparison on the same rows, sequential-vs-parallel wall
//! times for multi-seed experiment sweeps, the space-sharded scale curve
//! (E12's ladder up to one million hosts), sharded throughput at 1/2/4/6/8
//! workers, and cold-vs-warm run-cache timings. Results are printed as a
//! table and written to `BENCH_kernel.json` (hand-rolled JSON; the
//! workspace has no serde).
//!
//! ```text
//! cargo run --release --bin perfreport
//! cargo run --release --bin perfreport -- --shard-only
//! cargo run --release --bin perfreport -- --delivery-only
//! ```
//!
//! `--shard-only` re-times just the sharded legs and splices the fresh
//! `scale` and `shard_throughput` sections into the existing
//! `BENCH_kernel.json`, leaving every other section's numbers untouched
//! (the `make shardbench` target). `--delivery-only` does the same for the
//! `delivery` section (the `make deliverybench` target).
//!
//! Every workload is a fixed `(config, seed)` pair, so the *work done* is
//! identical from run to run and across machines; only the wall times vary.

use mobidist_bench::exp_fault::RobustnessPoint;
use mobidist_bench::exp_serve::ServingPoint;
use mobidist_bench::parallel::{map_indexed_with, oversubscribed};
use mobidist_bench::{exp_fault, exp_group, exp_mutex, exp_scale, exp_serve};
use mobidist_core::prelude::*;
use mobidist_group::prelude::*;
use mobidist_net::prelude::*;
use mobidist_net::shard::run_scale;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured kernel workload.
struct KernelRow {
    name: &'static str,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
}

/// Runs `sim` until `horizon` or quiescence, returning the kernel's
/// logical-event count. Batched delivery processes several logical events
/// per step, so the count comes from the kernel (where coalesced batch
/// members and fused fan-out recipients count individually — both delivery
/// modes report the same total for the same workload) rather than from
/// counting step iterations.
fn drive<P: Protocol>(sim: &mut Simulation<P>, horizon: u64) -> u64 {
    sim.run_until(SimTime::from_ticks(horizon));
    sim.kernel().events_processed()
}

fn measure(name: &'static str, run: impl Fn() -> u64) -> KernelRow {
    // One warm-up, then the median of three timed runs.
    let events = run();
    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let e = run();
            assert_eq!(e, events, "workload must be deterministic");
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(f64::total_cmp);
    let wall_ms = walls[1];
    KernelRow {
        name,
        events,
        wall_ms,
        events_per_sec: events as f64 / (wall_ms / 1e3),
    }
}

/// The three kernel workloads, parameterised by delivery mode so the
/// `delivery` section can re-time the exact same rows on both paths.
fn l2_workload(mode: DeliveryMode) -> u64 {
    let cfg = NetworkConfig::new(8, 200).with_seed(11).with_delivery(mode);
    let wl = WorkloadConfig::all_mhs(200, 2);
    let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(8), wl));
    let events = drive(&mut sim, 50_000_000);
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert!(r.completed >= 300, "most requests must finish: {r:?}");
    events
}

fn r2_workload(mode: DeliveryMode) -> u64 {
    let cfg = NetworkConfig::new(8, 120).with_seed(12).with_delivery(mode);
    let wl = WorkloadConfig::all_mhs(120, 2);
    let algo = R2::new(8, RingGuard::Counter);
    let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
    let events = drive(&mut sim, 2_000_000);
    assert_eq!(sim.protocol().report().safety_violations, 0);
    events
}

fn lv_workload(mode: DeliveryMode) -> u64 {
    let members: Vec<MhId> = (0..60u32).map(MhId).collect();
    let cfg = NetworkConfig::new(8, 60)
        .with_seed(13)
        .with_delivery(mode)
        .with_mobility(MobilityConfig::moving(400));
    let wl = GroupWorkload::new(members.clone(), 120, 50);
    let mut sim = Simulation::new(
        cfg,
        GroupHarness::new(LocationView::new(members, MssId(0)), wl),
    );
    let events = drive(&mut sim, 2_000_000);
    assert!(sim.protocol().report().delivered > 0);
    events
}

/// A kernel workload: runs under the given delivery mode, returns the
/// logical event count.
type Workload = fn(DeliveryMode) -> u64;

/// The kernel workload matrix: `(row name, workload)` pairs shared by the
/// `kernel` section (batched, the shipping configuration) and the
/// `delivery` section (both modes).
const KERNEL_WORKLOADS: [(&str, Workload); 3] = [
    ("l2_mutex_n200_m8", l2_workload),
    ("r2_ring_n120_m8", r2_workload),
    ("location_view_g60_mobile", lv_workload),
];

fn kernel_matrix() -> Vec<KernelRow> {
    KERNEL_WORKLOADS
        .into_iter()
        .map(|(name, f)| measure(name, || f(DeliveryMode::Batched)))
        .collect()
}

/// One kernel row timed under both delivery modes.
struct DeliveryRow {
    name: &'static str,
    events: u64,
    unbatched_ms: f64,
    batched_ms: f64,
    unbatched_eps: f64,
    batched_eps: f64,
    speedup: f64,
}

/// The `l2_mutex_n200_m8` acceptance floor: twice the pre-delivery-engine
/// rate recorded on the reference box (1.44M events/s).
const L2_FLOOR_EPS: f64 = 2.9e6;

fn delivery_matrix() -> Vec<DeliveryRow> {
    KERNEL_WORKLOADS
        .into_iter()
        .map(|(name, f)| {
            let un = measure(name, || f(DeliveryMode::Unbatched));
            let ba = measure(name, || f(DeliveryMode::Batched));
            assert_eq!(
                un.events, ba.events,
                "{name}: delivery modes must process the same logical events"
            );
            let speedup = ba.events_per_sec / un.events_per_sec;
            // Batching must never cost throughput; 0.9 absorbs timing noise
            // on the short rows.
            assert!(
                speedup >= 0.9,
                "{name}: batched delivery regressed throughput ({:.0} vs {:.0} events/s)",
                ba.events_per_sec,
                un.events_per_sec
            );
            if name == "l2_mutex_n200_m8" {
                assert!(
                    ba.events_per_sec >= L2_FLOOR_EPS,
                    "l2 row below the delivery-engine acceptance floor: \
                     {:.0} < {L2_FLOOR_EPS:.0} events/s",
                    ba.events_per_sec
                );
            }
            DeliveryRow {
                name,
                events: ba.events,
                unbatched_ms: un.wall_ms,
                batched_ms: ba.wall_ms,
                unbatched_eps: un.events_per_sec,
                batched_eps: ba.events_per_sec,
                speedup,
            }
        })
        .collect()
}

/// One sweep timed sequentially and at the parallel worker count.
struct SweepRow {
    name: &'static str,
    seq_ms: f64,
    par_ms: f64,
    jobs: usize,
    /// True when `jobs` workers would oversubscribe this machine; the
    /// parallel leg then ran on the sequential fallback and its "speedup"
    /// measures fan-out overhead, not concurrency.
    oversubscribed: bool,
}

fn time_ms(f: impl Fn()) -> f64 {
    // One warm-up, then the median of three timed runs (same protocol as
    // `measure`, so sweep speedups aren't single-sample noise).
    f();
    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(f64::total_cmp);
    walls[1]
}

/// CPUs this process can actually use.
fn cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Worker count for the parallel legs: the machine's parallelism, floored
/// at 4 so the parallel path is always exercised with real fan-out.
/// Earlier reports ran this leg at `available_parallelism` alone, which on
/// a single-CPU runner silently degenerated to a second sequential leg
/// (`jobs: 1` rows with ~1.0x "speedups" that said nothing about the
/// fan-out). Every row now records the worker count actually used, and the
/// report records `cpus`, so a ~1x speedup on a 1-CPU box reads as what it
/// is — an oversubscription sanity check (overhead stays small) — while an
/// N-core machine shows the real ~Nx.
fn par_jobs() -> usize {
    cpus().max(4)
}

/// How many seeds each sweep fans out over. Sized so the sequential leg
/// takes on the order of a second — enough work for the fan-out to beat
/// thread start-up and show real multi-core speedup.
const SWEEP_SEEDS: u64 = 48;

fn l2_seed_sweep(jobs: usize) {
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let msgs = map_indexed_with(seeds, jobs, exp_mutex::L2Pool::new, |pool, _, seed| {
        let cfg = NetworkConfig::new(8, 60).with_seed(1_000 + seed);
        exp_mutex::run_l2_in(pool, cfg, 2, 4_000_000)
            .ledger
            .fixed_msgs
    });
    assert!(msgs.iter().all(|&m| m > 0), "every run must do work");
}

fn r2_seed_sweep(jobs: usize) {
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let msgs = map_indexed_with(seeds, jobs, exp_mutex::R2Pool::new, |pool, _, seed| {
        let cfg = NetworkConfig::new(8, 60).with_seed(2_000 + seed);
        let wl = WorkloadConfig::all_mhs(60, 2);
        let (run, _, _, _) =
            exp_mutex::run_r2_in(pool, cfg, RingGuard::Counter, wl, 2_000_000, None);
        run.ledger.fixed_msgs + run.ledger.wireless_msgs
    });
    assert!(msgs.iter().all(|&m| m > 0), "every run must do work");
}

fn group_seed_sweep(jobs: usize) {
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let members: Vec<MhId> = (0..12u32).map(MhId).collect();
    let delivered = map_indexed_with(
        seeds,
        jobs,
        exp_group::StrategyPools::new,
        |pools, _, seed| {
            let cfg = NetworkConfig::new(8, 12)
                .with_seed(3_000 + seed)
                .with_mobility(MobilityConfig::moving(400));
            let wl = GroupWorkload::new(members.clone(), 24, 60);
            exp_group::run_strategy_in(pools, cfg, "location-view", members.clone(), wl, 2_000_000)
                .report
                .delivered
        },
    );
    assert!(delivered.iter().all(|&d| d > 0), "every run must deliver");
}

/// A sweep leg parameterised by worker count.
type SweepFn = fn(usize);

fn sweep_matrix() -> Vec<SweepRow> {
    let jobs = par_jobs();
    let sweeps: [(&'static str, SweepFn); 3] = [
        ("l2_mutex_48seeds", l2_seed_sweep),
        ("r2_ring_48seeds", r2_seed_sweep),
        ("location_view_48seeds", group_seed_sweep),
    ];
    sweeps
        .into_iter()
        .map(|(name, f)| {
            let seq_ms = time_ms(|| f(1));
            let par_ms = time_ms(|| f(jobs));
            SweepRow {
                name,
                seq_ms,
                par_ms,
                jobs,
                oversubscribed: oversubscribed(jobs),
            }
        })
        .collect()
}

/// One point of the space-sharded scale curve (E12's ladder).
struct ScaleRow {
    hosts: usize,
    cells: usize,
    shards: usize,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    bytes_per_host: u64,
}

/// Times one sharded run: median of three (the runs dominate thread
/// start-up at every ladder size, so no warm-up pass is needed).
fn time_scale(spec: &mobidist_net::shard::ScaleSpec, shards: usize) -> (f64, u64, u64) {
    let mut events = 0;
    let mut state_bytes = 0;
    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let r = run_scale(spec, shards);
            events = r.events;
            state_bytes = r.state_bytes;
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(f64::total_cmp);
    (walls[1], events, state_bytes)
}

fn scale_matrix(shards: usize) -> Vec<ScaleRow> {
    exp_scale::scale_points(false)
        .into_iter()
        .map(|(hosts, cells)| {
            let spec = exp_scale::scale_spec(hosts, cells);
            let (wall_ms, events, state_bytes) = time_scale(&spec, shards);
            ScaleRow {
                hosts,
                cells,
                shards: shards.min(cells),
                events,
                wall_ms,
                events_per_sec: events as f64 / (wall_ms / 1e3),
                bytes_per_host: state_bytes / hosts as u64,
            }
        })
        .collect()
}

/// Sharded throughput at the top of the ladder, 1/2/4/6/8 workers.
struct ShardRow {
    shards: usize,
    wall_ms: f64,
    events_per_sec: f64,
}

fn shard_matrix() -> (usize, Vec<ShardRow>) {
    let (hosts, cells) = *exp_scale::scale_points(false)
        .last()
        .expect("ladder is never empty");
    let spec = exp_scale::scale_spec(hosts, cells);
    let rows = [1usize, 2, 4, 6, 8]
        .into_iter()
        .map(|shards| {
            let (wall_ms, events, _) = time_scale(&spec, shards);
            ShardRow {
                shards,
                wall_ms,
                events_per_sec: events as f64 / (wall_ms / 1e3),
            }
        })
        .collect();
    (hosts, rows)
}

/// Cold vs warm timings for the content-addressed run cache.
struct CacheRow {
    name: &'static str,
    cold_ms: f64,
    warm_disk_ms: f64,
    warm_mem_ms: f64,
}

fn cache_matrix() -> CacheRow {
    // Workload: the three quick sweeps back to back. Cold runs each get a
    // fresh cache directory (so every one simulates and stores); warm-disk
    // runs clear the in-process tier first (so every run decodes from
    // disk); warm-memory runs replay from the in-process map. Median of 3
    // for each leg, same protocol as `measure`.
    let workload = || {
        exp_mutex::e1_lamport(true);
        exp_mutex::e2_ring(true);
        exp_group::e5_group_strategies(true);
    };
    let base = std::env::temp_dir().join(format!("mobidist-perfreport-{}", std::process::id()));
    let cache = mobidist_runcache::store::global();
    let mut cold: Vec<f64> = (0..3)
        .map(|i| {
            let dir = base.join(format!("cold{i}"));
            std::fs::create_dir_all(&dir).expect("create cache dir");
            std::env::set_var(mobidist_runcache::CACHE_ENV, &dir);
            cache.clear_memory();
            let t0 = Instant::now();
            workload();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    cold.sort_by(f64::total_cmp);
    // The last cold directory is now fully populated; reuse it warm.
    let warm_disk_ms = time_ms(|| {
        cache.clear_memory();
        workload();
    });
    let warm_mem_ms = time_ms(workload);
    std::env::remove_var(mobidist_runcache::CACHE_ENV);
    let _ = std::fs::remove_dir_all(&base);
    CacheRow {
        name: "quick_sweeps_e1_e2_e5",
        cold_ms: cold[1],
        warm_disk_ms,
        warm_mem_ms,
    }
}

/// The headline serving comparison (E13's largest cell): L2 vs the
/// combining L2C at 1024 closed-loop requesters over 8 MSSs. Asserts the
/// optimisation's contract — at saturation L2C spends at least 2x fewer
/// wireless messages per entry without losing throughput — so a regression
/// fails the report rather than silently shipping a worse number.
fn serving_matrix() -> Vec<ServingPoint> {
    let rows = exp_serve::serving_comparison(false);
    let l2 = &rows[0];
    let l2c = &rows[1];
    assert!(
        l2c.wireless_per_entry * 2.0 <= l2.wireless_per_entry,
        "L2C must at least halve wireless per entry: {:.2} vs {:.2}",
        l2c.wireless_per_entry,
        l2.wireless_per_entry
    );
    assert!(
        l2c.throughput_per_ktick >= l2.throughput_per_ktick,
        "L2C must not lose throughput: {:.2} vs {:.2}",
        l2c.throughput_per_ktick,
        l2.throughput_per_ktick
    );
    rows
}

/// The robustness matrix (E14's waypoint-mobility row): L2, L2C and R2
/// against crash, partition and storm cells. Asserts the fault plane's
/// contract — every fault cell finished its fixed work (completion and
/// safety are asserted inside the runs), recorded exactly the scheduled
/// fault events, and still made forward progress — so a cell that stalls
/// under faults fails the report rather than silently shipping.
fn robustness_matrix() -> Vec<RobustnessPoint> {
    let rows = exp_fault::robustness_comparison(false);
    assert_eq!(
        rows.len(),
        exp_fault::E14_ALGOS.len() * 3,
        "robustness matrix must cover every algorithm x fault cell"
    );
    for r in &rows {
        assert!(
            r.fault_events > 0,
            "{}/{}: fault cell recorded no fault events",
            r.algo,
            r.fault
        );
        assert!(
            r.throughput_per_ktick > 0.0 && r.throughput_per_ktick.is_finite(),
            "{}/{}: no forward progress under faults",
            r.algo,
            r.fault
        );
    }
    rows
}

/// The `scale` + `shard_throughput` sections, exactly as they appear in the
/// full report — from `  "scale": [` up to and including the trailing
/// `]},` newline. Shared by the full serializer and the `--shard-only`
/// splice so the two paths can never drift apart.
fn sharded_sections_json(scale: &[ScaleRow], shard_hosts: usize, shard: &[ShardRow]) -> String {
    let mut j = String::from("  \"scale\": [\n");
    for (i, r) in scale.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"hosts\": {}, \"cells\": {}, \"shards\": {}, \"events\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.0}, \"bytes_per_host\": {}}}{}",
            r.hosts,
            r.cells,
            r.shards,
            r.events,
            r.wall_ms,
            r.events_per_sec,
            r.bytes_per_host,
            if i + 1 < scale.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        j,
        "  ],\n  \"shard_throughput\": {{\"hosts\": {shard_hosts}, \"rows\": ["
    );
    let base_rate = shard.first().map_or(1.0, |r| r.events_per_sec);
    for (i, r) in shard.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"shards\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, \"speedup\": {:.2}}}{}",
            r.shards,
            r.wall_ms,
            r.events_per_sec,
            r.events_per_sec / base_rate,
            if i + 1 < shard.len() { "," } else { "" }
        );
    }
    j.push_str("  ]},\n");
    j
}

/// `--shard-only`: replace the `scale` + `shard_throughput` sections of an
/// existing report in place. The sections are adjacent by construction
/// (both serializers share [`sharded_sections_json`]), so the splice is a
/// single range swap anchored on the section headers.
fn splice_sharded_sections(report: &str, fresh: &str) -> String {
    let start = report
        .find("  \"scale\": [")
        .expect("BENCH_kernel.json has no scale section; run a full perfreport first");
    let after = report[start..]
        .find("\n  \"serving\":")
        .map(|off| start + off + 1)
        .expect("BENCH_kernel.json has no serving section after scale");
    let mut out = String::with_capacity(report.len());
    out.push_str(&report[..start]);
    out.push_str(fresh);
    out.push_str(&report[after..]);
    out
}

/// The `delivery` section exactly as it appears in the full report — from
/// `  "delivery": [` up to and including its trailing `],` newline. Shared
/// by the full serializer and the `--delivery-only` splice.
fn delivery_section_json(delivery: &[DeliveryRow]) -> String {
    let mut j = String::from("  \"delivery\": [\n");
    for (i, r) in delivery.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"events\": {}, \"unbatched_ms\": {:.3}, \"batched_ms\": {:.3}, \
             \"unbatched_events_per_sec\": {:.0}, \"batched_events_per_sec\": {:.0}, \"speedup\": {:.2}}}{}",
            json_escape_free(r.name),
            r.events,
            r.unbatched_ms,
            r.batched_ms,
            r.unbatched_eps,
            r.batched_eps,
            r.speedup,
            if i + 1 < delivery.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j
}

/// `--delivery-only`: replace the `delivery` section of an existing report
/// in place, anchored on the section headers (it sits between `kernel` and
/// `sweeps` by construction).
fn splice_delivery_section(report: &str, fresh: &str) -> String {
    let start = report
        .find("  \"delivery\": [")
        .expect("BENCH_kernel.json has no delivery section; run a full perfreport first");
    let after = report[start..]
        .find("\n  \"sweeps\":")
        .map(|off| start + off + 1)
        .expect("BENCH_kernel.json has no sweeps section after delivery");
    let mut out = String::with_capacity(report.len());
    out.push_str(&report[..start]);
    out.push_str(fresh);
    out.push_str(&report[after..]);
    out
}

fn json_escape_free(s: &str) -> &str {
    // All names in this report are static identifiers; assert rather than
    // escape so a future rename cannot silently emit invalid JSON.
    assert!(
        s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "JSON field would need escaping: {s}"
    );
    s
}

#[allow(clippy::too_many_arguments)] // one flat serializer, one section per arg
fn to_json(
    kernel: &[KernelRow],
    delivery: &[DeliveryRow],
    sweeps: &[SweepRow],
    scale: &[ScaleRow],
    shard_hosts: usize,
    shard: &[ShardRow],
    serving: &[ServingPoint],
    robustness: &[RobustnessPoint],
    cache: &CacheRow,
) -> String {
    let mut j = format!("{{\n  \"cpus\": {},\n  \"kernel\": [\n", cpus());
    for (i, r) in kernel.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"events\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}}{}",
            json_escape_free(r.name),
            r.events,
            r.wall_ms,
            r.events_per_sec,
            if i + 1 < kernel.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str(&delivery_section_json(delivery));
    j.push_str("  \"sweeps\": [\n");
    for (i, r) in sweeps.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"seq_ms\": {:.3}, \"par_ms\": {:.3}, \"jobs\": {}, \"speedup\": {:.2}, \"oversubscribed\": {}}}{}",
            json_escape_free(r.name),
            r.seq_ms,
            r.par_ms,
            r.jobs,
            r.seq_ms / r.par_ms,
            r.oversubscribed,
            if i + 1 < sweeps.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str(&sharded_sections_json(scale, shard_hosts, shard));
    let _ = writeln!(
        j,
        "  \"serving\": {{\"requesters\": {}, \"rows\": [",
        serving.first().map_or(0, |r| r.requesters)
    );
    for (i, r) in serving.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"algo\": \"{}\", \"throughput_per_ktick\": {:.2}, \"p95\": {}, \
             \"wireless_per_entry\": {:.3}, \"mean_batch\": {:.2}}}{}",
            json_escape_free(r.algo),
            r.throughput_per_ktick,
            r.p95,
            r.wireless_per_entry,
            r.mean_batch,
            if i + 1 < serving.len() { "," } else { "" }
        );
    }
    let wifi_reduction = match serving {
        [l2, l2c] => l2.wireless_per_entry / l2c.wireless_per_entry,
        _ => 0.0,
    };
    let _ = writeln!(j, "  ], \"wireless_reduction\": {wifi_reduction:.2}}},");
    j.push_str("  \"robustness\": [\n");
    for (i, r) in robustness.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"algo\": \"{}\", \"fault\": \"{}\", \"throughput_per_ktick\": {:.2}, \
             \"p95\": {}, \"slowdown\": {:.2}, \"fault_events\": {}}}{}",
            json_escape_free(r.algo),
            json_escape_free(r.fault),
            r.throughput_per_ktick,
            r.p95,
            r.slowdown,
            r.fault_events,
            if i + 1 < robustness.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"cache\": {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"warm_disk_ms\": {:.3}, \
         \"warm_mem_ms\": {:.3}, \"disk_speedup\": {:.2}, \"mem_speedup\": {:.2}}}",
        json_escape_free(cache.name),
        cache.cold_ms,
        cache.warm_disk_ms,
        cache.warm_mem_ms,
        cache.cold_ms / cache.warm_disk_ms,
        cache.cold_ms / cache.warm_mem_ms,
    );
    j.push_str("}\n");
    j
}

/// Re-times the sharded legs only and splices them into the existing
/// `BENCH_kernel.json` (the `make shardbench` fast path).
fn shard_only() {
    let path = "BENCH_kernel.json";
    let report = std::fs::read_to_string(path)
        .expect("BENCH_kernel.json not found; run a full perfreport first");
    println!(
        "shard-only: re-timing scale curve ({} shards) and shard matrix",
        par_jobs()
    );
    let scale = scale_matrix(par_jobs());
    for r in &scale {
        println!(
            "  {:>9} hosts / {:>4} cells  {:>10} events  {:>9.1} ms  {:>12.0} events/s  {} B/host",
            r.hosts, r.cells, r.events, r.wall_ms, r.events_per_sec, r.bytes_per_host
        );
    }
    let (shard_hosts, shard) = shard_matrix();
    let base_rate = shard.first().map_or(1.0, |r| r.events_per_sec);
    for r in &shard {
        println!(
            "  {} hosts @ {} shard(s)  {:>9.1} ms  {:>12.0} events/s  ({:.2}x)",
            shard_hosts,
            r.shards,
            r.wall_ms,
            r.events_per_sec,
            r.events_per_sec / base_rate
        );
    }
    let fresh = sharded_sections_json(&scale, shard_hosts, &shard);
    std::fs::write(path, splice_sharded_sections(&report, &fresh))
        .expect("write BENCH_kernel.json");
    println!("spliced scale + shard_throughput into BENCH_kernel.json");
}

/// Prints the delivery comparison rows in the report's console format.
fn print_delivery(delivery: &[DeliveryRow]) {
    for r in delivery {
        println!(
            "  {:<28} unbatched {:>12.0} ev/s   batched {:>12.0} ev/s   speedup {:.2}x",
            r.name, r.unbatched_eps, r.batched_eps, r.speedup
        );
    }
}

/// Re-times the delivery comparison only and splices it into the existing
/// `BENCH_kernel.json` (the `make deliverybench` fast path).
fn delivery_only() {
    let path = "BENCH_kernel.json";
    let report = std::fs::read_to_string(path)
        .expect("BENCH_kernel.json not found; run a full perfreport first");
    println!("delivery-only: re-timing kernel rows under both delivery modes");
    let delivery = delivery_matrix();
    print_delivery(&delivery);
    let fresh = delivery_section_json(&delivery);
    std::fs::write(path, splice_delivery_section(&report, &fresh))
        .expect("write BENCH_kernel.json");
    println!("spliced delivery into BENCH_kernel.json");
}

fn main() {
    // A caller-supplied cache would memoize the sweep legs and turn the
    // seq/par timings into replay timings; the cache section manages the
    // variable itself. A caller-supplied MOBIDIST_JOBS is irrelevant: the
    // sweep legs pass their worker counts explicitly. A caller-supplied
    // MOBIDIST_DELIVERY is overridden row by row: every workload pins its
    // mode via `with_delivery`.
    std::env::remove_var(mobidist_runcache::CACHE_ENV);
    if std::env::args().any(|a| a == "--shard-only") {
        shard_only();
        return;
    }
    if std::env::args().any(|a| a == "--delivery-only") {
        delivery_only();
        return;
    }
    println!(
        "machine: {} cpu(s) — parallel legs run at {} workers and record \
         the true count; expect ~1x speedups on a 1-cpu runner",
        cpus(),
        par_jobs()
    );
    if cpus() == 1 {
        println!(
            "note: this host has a single cpu — parallel and sharded \
             speedups below are not meaningful on this host; they only \
             sanity-check that fan-out overhead stays small"
        );
    }
    println!("\nkernel workload matrix (median of 3 runs):");
    let kernel = kernel_matrix();
    for r in &kernel {
        println!(
            "  {:<28} {:>10} events  {:>9.1} ms  {:>12.0} events/s",
            r.name, r.events, r.wall_ms, r.events_per_sec
        );
    }
    println!("\ndelivery engine (batched vs unbatched, median of 3 each):");
    let delivery = delivery_matrix();
    print_delivery(&delivery);
    println!("\nsweep fan-out (sequential vs {} workers):", par_jobs());
    let sweeps = sweep_matrix();
    for r in &sweeps {
        println!(
            "  {:<22} seq {:>8.1} ms   par {:>8.1} ms   jobs {}   speedup {:.2}x{}",
            r.name,
            r.seq_ms,
            r.par_ms,
            r.jobs,
            r.seq_ms / r.par_ms,
            if r.oversubscribed {
                "   [oversubscribed: sequential fallback]"
            } else {
                ""
            }
        );
    }
    println!(
        "\nspace-sharded scale curve ({} shards, median of 3):",
        par_jobs()
    );
    let scale = scale_matrix(par_jobs());
    for r in &scale {
        println!(
            "  {:>9} hosts / {:>4} cells  {:>10} events  {:>9.1} ms  {:>12.0} events/s  {} B/host",
            r.hosts, r.cells, r.events, r.wall_ms, r.events_per_sec, r.bytes_per_host
        );
    }
    println!("\nsharded throughput at the top of the ladder (median of 3):");
    let (shard_hosts, shard) = shard_matrix();
    let base_rate = shard.first().map_or(1.0, |r| r.events_per_sec);
    for r in &shard {
        println!(
            "  {} hosts @ {} shard(s)  {:>9.1} ms  {:>12.0} events/s  ({:.2}x)",
            shard_hosts,
            r.shards,
            r.wall_ms,
            r.events_per_sec,
            r.events_per_sec / base_rate
        );
    }
    println!("\nserving comparison (E13 headline cell: L2 vs combining L2C):");
    let serving = serving_matrix();
    for r in &serving {
        println!(
            "  {:<4} @ {} requesters  thr {:>7.2} /ktick  p95 {:>6}  wifi/entry {:>5.2}{}",
            r.algo,
            r.requesters,
            r.throughput_per_ktick,
            r.p95,
            r.wireless_per_entry,
            if r.mean_batch > 0.0 {
                format!("  batch {:.2}", r.mean_batch)
            } else {
                String::new()
            }
        );
    }
    if let [l2, l2c] = &serving[..] {
        println!(
            "  wireless reduction {:.2}x at equal-or-better throughput ({:.2}x)",
            l2.wireless_per_entry / l2c.wireless_per_entry,
            l2c.throughput_per_ktick / l2.throughput_per_ktick
        );
    }

    println!("\nrobustness (E14 waypoint row: faults vs fault-free baseline):");
    let robustness = robustness_matrix();
    for r in &robustness {
        println!(
            "  {:<4} under {:<9}  thr {:>7.2} /ktick  p95 {:>6}  slowdown {:>5.2}x  events {}",
            r.algo, r.fault, r.throughput_per_ktick, r.p95, r.slowdown, r.fault_events
        );
    }

    println!("\nrun cache (cold vs warm, median of 3):");
    let cache = cache_matrix();
    println!(
        "  {:<24} cold {:>8.1} ms   disk {:>8.1} ms ({:.1}x)   mem {:>8.1} ms ({:.1}x)",
        cache.name,
        cache.cold_ms,
        cache.warm_disk_ms,
        cache.cold_ms / cache.warm_disk_ms,
        cache.warm_mem_ms,
        cache.cold_ms / cache.warm_mem_ms,
    );
    let json = to_json(
        &kernel,
        &delivery,
        &sweeps,
        &scale,
        shard_hosts,
        &shard,
        &serving,
        &robustness,
        &cache,
    );
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");
}
