//! A shared campus printer guarded by a token ring.
//!
//! Sixteen students with laptops roam among four campus buildings (cells).
//! A single printer must be used by one student at a time. We compare the
//! baseline the paper argues against — a token ring threaded through the
//! *laptops* (R1) — with the paper's redesign, a ring through the
//! buildings' support stations with the fairness counter (R2′). Half the
//! students close their laptops mid-run (voluntary disconnection) and
//! reopen them later.
//!
//! Run with:
//!
//! ```text
//! cargo run --example campus_printer
//! ```

use mobidist::prelude::*;

const BUILDINGS: usize = 4;
const STUDENTS: usize = 16;
const HORIZON: u64 = 800_000;

fn network(seed: u64) -> NetworkConfig {
    NetworkConfig::new(BUILDINGS, STUDENTS)
        .with_seed(seed)
        .with_mobility(MobilityConfig::moving(2_000))
        .with_disconnect(DisconnectConfig {
            enabled: true,
            mean_uptime: 40_000,
            mean_downtime: 5_000,
            p_supply_prev: 1.0,
        })
}

fn print_jobs() -> WorkloadConfig {
    WorkloadConfig::all_mhs(STUDENTS, 2)
        .with_think(4_000)
        .with_hold(200)
        .with_doze()
}

fn main() {
    // Baseline R1: the token visits every laptop, draining every battery
    // and stalling whenever the next laptop in the ring is closed.
    let ring: Vec<MhId> = (0..STUDENTS as u32).map(MhId).collect();
    let mut r1 = Simulation::new(
        network(7),
        MutexHarness::new(R1::new(ring, R1DisconnectPolicy::Stall), print_jobs()),
    );
    r1.run_until(SimTime::from_ticks(HORIZON));
    let rep1 = r1.protocol().report();

    // Redesign R2′: the token rings the buildings; laptops speak only to
    // print (3 wireless messages per job) and can sleep undisturbed.
    let mut r2 = Simulation::new(
        network(7),
        MutexHarness::new(R2::new(BUILDINGS, RingGuard::Counter), print_jobs()),
    );
    r2.run_until(SimTime::from_ticks(HORIZON));
    let rep2 = r2.protocol().report();

    println!("campus printer — {STUDENTS} students, {BUILDINGS} buildings, {HORIZON} ticks\n");
    println!("                         R1 (ring of laptops)   R2' (ring of buildings)");
    println!(
        "jobs printed             {:<22} {}",
        rep1.completed, rep2.completed
    );
    println!(
        "jobs dropped (offline)   {:<22} {}",
        rep1.aborted, rep2.aborted
    );
    println!(
        "safety violations        {:<22} {}",
        rep1.safety_violations, rep2.safety_violations
    );
    println!(
        "doze interruptions       {:<22} {}",
        r1.ledger().doze_interruptions,
        r2.ledger().doze_interruptions
    );
    println!(
        "battery drain (energy)   {:<22} {}",
        r1.ledger().total_energy(),
        r2.ledger().total_energy()
    );
    println!(
        "total message cost       {:<22} {}",
        r1.ledger().total_cost(),
        r2.ledger().total_cost()
    );
    let per_job = |energy: u64, done: u64| energy as f64 / done.max(1) as f64;
    println!(
        "battery per printed job  {:<22.1} {:.1}",
        per_job(r1.ledger().total_energy(), rep1.completed),
        per_job(r2.ledger().total_energy(), rep2.completed)
    );

    assert_eq!(rep1.safety_violations, 0);
    assert_eq!(rep2.safety_violations, 0);
    assert!(
        rep2.completed >= rep1.completed,
        "the redesign must not print fewer jobs"
    );
    assert!(
        per_job(r2.ledger().total_energy(), rep2.completed)
            < per_job(r1.ledger().total_energy(), rep1.completed),
        "the redesign must drain less battery per job"
    );
    assert_eq!(
        r2.ledger().doze_interruptions,
        0,
        "R2' lets idle laptops sleep"
    );
}
