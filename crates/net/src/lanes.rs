//! Lock-free synchronisation primitives for the space-sharded kernel.
//!
//! Two pieces, both purpose-built for the round-structured execution of
//! [`shard`](crate::shard) and useful to nothing else:
//!
//! * [`Lane`] — a double-buffered single-producer/single-consumer transfer
//!   lane. The sharded kernel keeps one lane per ordered worker pair
//!   `(src, dst)`, so a cross-shard send is a plain `Vec::push` by its one
//!   producer: no mutex, no CAS loop, no sharing within a round.
//! * [`EpochBarrier`] — a sense-reversing barrier over one atomic epoch
//!   counter, with a spin→yield→park slow path. One `wait` per round
//!   replaces the two `std::sync::Barrier` rendezvous the kernel used to
//!   pay per window.
//!
//! # The round protocol
//!
//! Workers advance in lock-step *rounds* separated by exactly one barrier.
//! During round `r` the producer of a lane appends only to buffer `r % 2`
//! and the consumer drains only buffer `(r + 1) % 2` — the buffer the
//! producer filled in round `r - 1`. The two ends therefore never touch the
//! same buffer in the same round, and the barrier between rounds orders
//! round `r`'s writes before round `r + 1`'s reads. [`Lane::publish`]
//! additionally release-stores the producer's finished round and
//! [`Lane::take`] acquire-loads it, so each handoff carries its own
//! happens-before edge (and a `debug_assert` that the protocol was kept)
//! rather than leaning on the barrier alone.
//!
//! This is the sole module in the workspace that uses `unsafe`; the two
//! blocks below are safe exactly because the round protocol gives each
//! buffer a unique accessor per round.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Thread;

/// A double-buffered SPSC lane between one ordered worker pair.
///
/// See the [module docs](self) for the round protocol that makes the
/// interior mutability sound. All methods take `&self`; the *caller*
/// guarantees that at most one thread plays producer and at most one plays
/// consumer, and that both agree on the current round.
#[derive(Debug, Default)]
pub struct Lane<T> {
    /// `bufs[r % 2]` is written by the producer during round `r` and
    /// drained by the consumer during round `r + 1`.
    bufs: [UnsafeCell<Vec<T>>; 2],
    /// Number of rounds the producer has published: after
    /// `publish(r)` this reads `r + 1`. Release/acquire pairs with
    /// [`Lane::take`].
    epoch: AtomicU64,
}

// SAFETY: a Lane is shared between exactly one producer and one consumer
// thread, which access disjoint buffers within a round (see module docs);
// the publish/take release–acquire pair orders cross-round access.
unsafe impl<T: Send> Sync for Lane<T> {}

impl<T> Lane<T> {
    /// An empty lane.
    pub fn new() -> Self {
        Lane {
            bufs: [UnsafeCell::new(Vec::new()), UnsafeCell::new(Vec::new())],
            epoch: AtomicU64::new(0),
        }
    }

    /// Appends `item` to the round-`round` buffer. Producer side only.
    #[inline]
    pub fn push(&self, round: u64, item: T) {
        debug_assert!(
            self.epoch.load(Ordering::Relaxed) <= round,
            "producer pushed into an already-published round"
        );
        // SAFETY: only the lane's single producer touches buffer
        // `round % 2` during round `round`; the consumer is draining the
        // other buffer (module docs).
        let buf = unsafe { &mut *self.bufs[(round % 2) as usize].get() };
        buf.push(item);
    }

    /// Marks round `round` finished on the producer side: every `push` for
    /// the round happens-before a subsequent [`take`](Self::take) of it.
    #[inline]
    pub fn publish(&self, round: u64) {
        self.epoch.store(round + 1, Ordering::Release);
    }

    /// Swaps the round-`round` buffer out into `scratch` (which must be
    /// empty and comes back carrying the round's items). Consumer side
    /// only, and only for a round the producer has already published.
    #[inline]
    pub fn take(&self, round: u64, scratch: &mut Vec<T>) {
        debug_assert!(scratch.is_empty(), "drain scratch must start empty");
        let published = self.epoch.load(Ordering::Acquire);
        debug_assert!(
            published > round,
            "consumer drained round {round} before its publish ({published})"
        );
        // SAFETY: the producer published round `round` (acquire load
        // above), is at least one barrier past it, and now writes only the
        // other buffer; the single consumer owns this one (module docs).
        let buf = unsafe { &mut *self.bufs[(round % 2) as usize].get() };
        std::mem::swap(buf, scratch);
    }
}

/// How many spin iterations a late arriver burns before yielding, and how
/// many yields before parking. Spinning is only worthwhile when the peers
/// are genuinely running on other cores; an oversubscribed machine (more
/// parties than hardware threads) must park immediately instead — every
/// cycle a waiter burns is a cycle stolen from the very peer it is waiting
/// for, which is why [`EpochBarrier::new`] disables the spin phase there.
const SPIN_LIMIT: u32 = 64;
const YIELD_LIMIT: u32 = 8;

/// A sense-reversing barrier for a fixed party count, built on one atomic
/// epoch plus park/unpark.
///
/// The "sense" is the epoch counter itself: a thread samples the epoch on
/// arrival and leaves once it changes, so consecutive barrier rounds cannot
/// be confused and the barrier is reusable without any reset phase. The
/// last arriver (the leader) resets the arrival count, bumps the epoch, and
/// unparks every waiter.
#[derive(Debug)]
pub struct EpochBarrier {
    parties: usize,
    /// Whether late arrivers spin/yield before parking; false when the
    /// parties outnumber the machine's hardware threads (see
    /// [`SPIN_LIMIT`]). Purely a scheduling hint — results are identical
    /// either way.
    spin: bool,
    arrived: AtomicUsize,
    epoch: AtomicU64,
    /// Threads that gave up spinning and parked; drained by the leader.
    /// Mutex-guarded, but only ever touched on the already-slow park path.
    parked: Mutex<Vec<Thread>>,
}

impl EpochBarrier {
    /// A barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        EpochBarrier {
            parties,
            spin: parties <= cpus,
            arrived: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            parked: Mutex::new(Vec::new()),
        }
    }

    /// The epoch (number of completed barrier rounds) observed now.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Blocks until all parties have called `wait` for the current round.
    ///
    /// Everything sequenced before any party's `wait` happens-before
    /// everything sequenced after every party's `wait` (the arrival
    /// counter's RMW chain into the leader, the epoch release-store out of
    /// it).
    pub fn wait(&self) {
        let epoch = self.epoch.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Leader: open the next round, then release every waiter. The
            // arrival reset must precede the epoch bump — nobody can arrive
            // for the next round before observing the new epoch.
            self.arrived.store(0, Ordering::Relaxed);
            self.epoch.store(epoch + 1, Ordering::Release);
            let waiters = std::mem::take(&mut *self.parked.lock().expect("barrier poisoned"));
            for t in waiters {
                t.unpark();
            }
            return;
        }
        if self.spin {
            for _ in 0..SPIN_LIMIT {
                if self.epoch.load(Ordering::Acquire) != epoch {
                    return;
                }
                std::hint::spin_loop();
            }
            for _ in 0..YIELD_LIMIT {
                if self.epoch.load(Ordering::Acquire) != epoch {
                    return;
                }
                std::thread::yield_now();
            }
        }
        loop {
            {
                let mut parked = self.parked.lock().expect("barrier poisoned");
                if self.epoch.load(Ordering::Acquire) != epoch {
                    return;
                }
                parked.push(std::thread::current());
            }
            // A leader that drained the list after our push has left us an
            // unpark token, so this park cannot be lost; a stale token from
            // an earlier round at worst costs one trip round the loop.
            std::thread::park();
            if self.epoch.load(Ordering::Acquire) != epoch {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = EpochBarrier::new(1);
        for round in 0..100 {
            b.wait();
            assert_eq!(b.epoch(), round + 1);
        }
    }

    #[test]
    fn barrier_separates_rounds() {
        // Each thread bumps a per-round counter; after the barrier every
        // thread must observe the full party count for the round, over
        // enough rounds to push late arrivers through the park path.
        const PARTIES: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = EpochBarrier::new(PARTIES);
        let counts: Vec<AtomicUsize> = (0..ROUNDS).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..PARTIES {
                scope.spawn(|| {
                    for c in &counts {
                        c.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(c.load(Ordering::Relaxed), PARTIES);
                    }
                });
            }
        });
        assert_eq!(barrier.epoch(), ROUNDS as u64);
    }

    #[test]
    fn lane_hands_rounds_across_threads() {
        let lane: Lane<u64> = Lane::new();
        let barrier = EpochBarrier::new(2);
        const ROUNDS: u64 = 500;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Producer: round r carries the values r*3 .. r*3+2.
                for r in 0..ROUNDS {
                    for i in 0..3 {
                        lane.push(r, r * 3 + i);
                    }
                    lane.publish(r);
                    barrier.wait();
                }
            });
            scope.spawn(|| {
                let mut scratch = Vec::new();
                for r in 0..ROUNDS {
                    barrier.wait();
                    lane.take(r, &mut scratch);
                    assert_eq!(scratch, [r * 3, r * 3 + 1, r * 3 + 2]);
                    scratch.clear();
                }
            });
        });
    }

    #[test]
    fn lane_take_recycles_capacity() {
        let lane: Lane<u64> = Lane::new();
        let mut scratch = Vec::new();
        for round in 0..10 {
            for i in 0..100 {
                lane.push(round, i);
            }
            lane.publish(round);
            lane.take(round, &mut scratch);
            assert_eq!(scratch.len(), 100);
            scratch.clear();
            // Round parity alternates buffers, so capacity settles after
            // both have grown once and no further allocation occurs.
            if round >= 2 {
                assert!(scratch.capacity() >= 100);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_party_barrier_is_rejected() {
        let _ = EpochBarrier::new(0);
    }

    #[test]
    fn parked_waiters_are_released() {
        // Force the park path: one thread arrives long before the other.
        let barrier = EpochBarrier::new(2);
        let released = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                barrier.wait();
                released.store(true, Ordering::Release);
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert!(!released.load(Ordering::Acquire));
            barrier.wait();
        });
        assert!(released.load(Ordering::Acquire));
    }
}
