//! Simulated time.
//!
//! The simulator advances a discrete logical clock measured in *ticks*. The
//! absolute scale is arbitrary; what matters — and what the paper's cost model
//! is built on — are the relative magnitudes of wired latency, wireless
//! latency and search latency configured in
//! [`LatencyConfig`](crate::config::LatencyConfig).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time, in ticks since simulation start.
///
/// # Examples
///
/// ```
/// use mobidist_net::time::SimTime;
/// let t = SimTime::ZERO + 5;
/// assert_eq!(t.ticks(), 5);
/// assert_eq!((t + 3) - t, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any horizon used in practice.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw ticks.
    pub const fn from_ticks(t: u64) -> Self {
        SimTime(t)
    }

    /// Ticks since simulation start.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference in ticks (`0` when `earlier` is later than `self`).
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, d: u64) -> SimTime {
        SimTime(self.0.saturating_add(d))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, d: u64) {
        self.0 = self.0.saturating_add(d);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(rhs.0 <= self.0, "time went backwards: {rhs} > {self}");
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        assert_eq!(t + 5, SimTime::from_ticks(15));
        assert_eq!(SimTime::from_ticks(15) - t, 5);
        let mut u = t;
        u += 7;
        assert_eq!(u.ticks(), 17);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + 1, SimTime::MAX);
        assert_eq!(SimTime::ZERO.saturating_since(SimTime::from_ticks(9)), 0);
        assert_eq!(SimTime::from_ticks(9).saturating_since(SimTime::ZERO), 9);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert_eq!(SimTime::from_ticks(42).to_string(), "t42");
    }
}
