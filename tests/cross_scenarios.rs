//! Cross-crate integration scenarios: the paper's structuring principle
//! verified end-to-end — for each pair of baseline and redesign, the
//! redesigned algorithm shifts load off the wireless links and off the
//! mobile hosts' batteries, under one shared seeded world.

use mobidist::prelude::*;

const SEED: u64 = 20260705;

fn world(m: usize, n: usize) -> NetworkConfig {
    NetworkConfig::new(m, n)
        .with_seed(SEED)
        .with_mobility(MobilityConfig::moving(800))
}

#[test]
fn principle_holds_for_lamport_pair() {
    let (m, n) = (4, 12);
    let wl = WorkloadConfig::all_mhs(n, 2);

    let mut l1 = Simulation::new(
        world(m, n),
        MutexHarness::new(L1::new(wl.requesters.clone()), wl.clone()),
    );
    l1.run_until(SimTime::from_ticks(3_000_000));
    let rep1 = l1.protocol().report();

    let mut l2 = Simulation::new(world(m, n), MutexHarness::new(L2::new(m), wl));
    l2.run_until(SimTime::from_ticks(3_000_000));
    let rep2 = l2.protocol().report();

    assert_eq!(rep1.safety_violations, 0);
    assert_eq!(rep2.safety_violations, 0);
    assert_eq!(rep1.completed, 24);
    assert_eq!(rep2.completed, 24);

    // The principle: the redesign pushes work onto the static segment.
    assert!(
        l2.ledger().wireless_msgs < l1.ledger().wireless_msgs / 4,
        "L2 wireless {} vs L1 {}",
        l2.ledger().wireless_msgs,
        l1.ledger().wireless_msgs
    );
    assert!(
        l2.ledger().total_energy() < l1.ledger().total_energy() / 4,
        "battery at MHs must collapse"
    );
    assert!(
        l2.ledger().searches < l1.ledger().searches,
        "search count must drop (constant vs O(N) per execution)"
    );
    // ... possibly at the price of more *fixed-network* messages, which is
    // exactly the trade the paper advocates.
    assert!(l2.ledger().fixed_msgs > 0);
}

#[test]
fn principle_holds_for_ring_pair() {
    let (m, n) = (4, 12);
    let wl = WorkloadConfig::only(vec![MhId(0), MhId(5), MhId(9)], 2).with_doze();
    let horizon = 400_000;

    let ring: Vec<MhId> = (0..n as u32).map(MhId).collect();
    let mut r1 = Simulation::new(
        world(m, n),
        MutexHarness::new(R1::new(ring, R1DisconnectPolicy::Stall), wl.clone()),
    );
    r1.run_until(SimTime::from_ticks(horizon));
    let rep1 = r1.protocol().report();

    let mut r2 = Simulation::new(
        world(m, n),
        MutexHarness::new(R2::new(m, RingGuard::Counter), wl),
    );
    r2.run_until(SimTime::from_ticks(horizon));
    let rep2 = r2.protocol().report();

    assert_eq!(rep1.safety_violations, 0);
    assert_eq!(rep2.safety_violations, 0);
    assert_eq!(rep2.completed, 6, "{rep2:?}");

    // Passive dozing MHs are never interrupted by R2', always by R1.
    assert!(r1.ledger().doze_interruptions > 0);
    assert_eq!(r2.ledger().doze_interruptions, 0);
    // Energy per completed request collapses.
    let per1 = r1.ledger().total_energy() as f64 / rep1.completed.max(1) as f64;
    let per2 = r2.ledger().total_energy() as f64 / rep2.completed.max(1) as f64;
    assert!(per2 < per1, "energy/request: R2' {per2} vs R1 {per1}");
}

#[test]
fn group_strategies_rank_as_the_paper_predicts_per_regime() {
    let members: Vec<MhId> = (0..8u32).map(MhId).collect();
    let run = |mobile: bool, which: &str| -> (u64, f64) {
        let mut cfg = NetworkConfig::new(8, 8)
            .with_seed(SEED)
            .with_placement(Placement::Clustered { cells: 2 });
        if mobile {
            cfg = cfg.with_mobility(MobilityConfig {
                enabled: true,
                mean_dwell: 150,
                mean_gap: 10,
                pattern: MovePattern::Locality {
                    p_local: 0.8,
                    home_span: 2,
                },
            });
        }
        let msgs = 12;
        let wl = GroupWorkload::new(members.clone(), msgs, 300);
        let horizon = 12 * 300 * 2;
        macro_rules! go {
            ($s:expr) => {{
                let mut sim = Simulation::new(cfg, GroupHarness::new($s, wl));
                sim.run_until(SimTime::from_ticks(horizon as u64));
                let r = sim.protocol().report();
                (sim.ledger().total_cost(), r.delivery_ratio())
            }};
        }
        match which {
            "ps" => go!(PureSearch::new(members.clone())),
            "ai" => go!(AlwaysInform::new(members.clone())),
            "lv" => go!(LocationView::new(members.clone(), MssId(0))),
            _ => unreachable!(),
        }
    };

    // Static regime: AI and LV beat PS (C_fixed hops beat searches).
    let (ps0, d_ps0) = run(false, "ps");
    let (ai0, d_ai0) = run(false, "ai");
    let (lv0, d_lv0) = run(false, "lv");
    assert!(d_ps0 == 1.0 && d_ai0 == 1.0 && d_lv0 == 1.0);
    assert!(ai0 < ps0, "static: AI {ai0} < PS {ps0}");
    assert!(lv0 < ps0, "static: LV {lv0} < PS {ps0}");

    // Mobile regime with a localised group: LV beats AI decisively.
    let (ai1, _) = run(true, "ai");
    let (lv1, d_lv1) = run(true, "lv");
    assert!(lv1 < ai1 / 2, "mobile: LV {lv1} ≪ AI {ai1}");
    assert!(d_lv1 > 0.8, "LV still delivers: {d_lv1}");
}

#[test]
fn proxy_layer_makes_the_static_algorithm_portable() {
    // The same CentralCounter byte-for-byte serves static and mobile
    // populations; only the runtime policy changes.
    let clients: Vec<MhId> = (0..6u32).map(MhId).collect();
    let wl = ProxyWorkload {
        inputs_per_client: 4,
        mean_interval: 200,
    };
    for mobile in [false, true] {
        for policy in [ProxyPolicy::Fixed, ProxyPolicy::LocalMss] {
            let mut cfg = NetworkConfig::new(4, 6).with_seed(SEED);
            if mobile {
                cfg = cfg.with_mobility(MobilityConfig::moving(400));
            }
            let mut sim = Simulation::new(
                cfg,
                ProxyRuntime::new(CentralCounter::new(), clients.clone(), policy, wl.clone()),
            );
            sim.run_until(SimTime::from_ticks(1_000_000));
            let r = sim.protocol().report();
            assert_eq!(r.inputs_sent, 24, "{mobile} {policy:?}");
            assert_eq!(r.outputs_delivered, 24, "{mobile} {policy:?}: {r:?}");
            assert_eq!(sim.protocol().algorithm().value(), 24);
        }
    }
}

#[test]
fn measured_costs_match_closed_forms_across_the_stack() {
    // One place where simulator and formula crates meet: static single
    // executions must match the paper's algebra to the unit.
    let p = Params::default();
    let (m, n) = (6, 10);

    let wl = WorkloadConfig::only(vec![MhId(0)], 1);
    let mut l1 = Simulation::new(
        NetworkConfig::new(m, n).with_seed(1),
        MutexHarness::new(L1::new((0..n as u32).map(MhId).collect()), wl.clone()),
    );
    l1.run_until(SimTime::from_ticks(10_000_000));
    assert_eq!(
        l1.ledger().total_cost(),
        mobidist::cost::l1_execution_cost(n as u64, p)
    );

    let mut l2 = Simulation::new(
        NetworkConfig::new(m, n).with_seed(1),
        MutexHarness::new(L2::new(m), wl),
    );
    l2.run_until(SimTime::from_ticks(10_000_000));
    // Static initiator ⇒ the release relay is local: formula minus C_fixed.
    assert_eq!(
        l2.ledger().total_cost(),
        mobidist::cost::l2_execution_cost(m as u64, p) - p.c_fixed
    );
}

#[test]
fn whole_stack_is_deterministic_per_seed() {
    let go = |seed: u64| -> Vec<u64> {
        let mut out = Vec::new();
        let wl = WorkloadConfig::all_mhs(8, 1);
        let mut sim = Simulation::new(
            NetworkConfig::new(4, 8)
                .with_seed(seed)
                .with_mobility(MobilityConfig::moving(300)),
            MutexHarness::new(L2::new(4), wl),
        );
        sim.run_until(SimTime::from_ticks(500_000));
        out.push(sim.ledger().total_cost());
        out.push(sim.ledger().moves);
        out.push(sim.protocol().report().completed);
        out
    };
    assert_eq!(go(5), go(5));
    assert_ne!(go(5), go(6), "different seeds explore different worlds");
}
