//! Minimal hand-rolled binary serialization for cached run results.
//!
//! Wire format rules, chosen for auditability over generality:
//!
//! * all integers are little-endian `u64` (even `u32`/`usize` fields —
//!   8 bytes of width buys platform independence for free at these sizes);
//! * `f64` is its IEEE-754 bit pattern;
//! * variable-width data (`String`, `Vec`, maps) is length-prefixed;
//! * `Option` is a 0/1 tag byte-widened to a `u64`;
//! * structs encode fields in declaration order, **destructured** so adding
//!   a field without extending the codec is a compile error.
//!
//! Decoding is *total*: any malformed input yields `None`, never a panic —
//! the [`store`](crate::store) layer turns that into a cache miss. There is
//! no in-band type information; the format version in the store's record
//! header changes whenever any `Codec` impl here changes shape.

use mobidist_net::ledger::CostLedger;
use std::collections::BTreeMap;

/// A cursor over an encoded record.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte was consumed — decoders should check this at
    /// the top level so trailing garbage is rejected.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next 8 bytes as a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Consumes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(bytes)
    }
}

/// A value that can be stored in and recovered from a cache record.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value, advancing `r`; `None` on any malformation.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

impl Codec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.u64()
    }
}

impl Codec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        u32::try_from(r.u64()?).ok()
    }
}

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        usize::try_from(r.u64()?).ok()
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u64()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(f64::from_bits(r.u64()?))
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let len = usize::decode(r)?;
        String::from_utf8(r.bytes(len)?.to_vec()).ok()
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => 0u64.encode(out),
            Some(v) => {
                1u64.encode(out);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u64()? {
            0 => Some(None),
            1 => Some(Some(T::decode(r)?)),
            _ => None,
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let len = usize::decode(r)?;
        // Cap the pre-allocation by what the buffer could possibly hold
        // (1 byte per element minimum) so a corrupted length cannot OOM.
        if len > r.remaining() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Some(out)
    }
}

impl Codec for BTreeMap<String, u64> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let len = usize::decode(r)?;
        if len > r.remaining() {
            return None;
        }
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = String::decode(r)?;
            let v = u64::decode(r)?;
            out.insert(k, v);
        }
        Some(out)
    }
}

macro_rules! codec_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }

            fn decode(r: &mut Reader<'_>) -> Option<Self> {
                Some(($($name::decode(r)?,)+))
            }
        }
    };
}

codec_tuple!(A: 0);
codec_tuple!(A: 0, B: 1);
codec_tuple!(A: 0, B: 1, C: 2);
codec_tuple!(A: 0, B: 1, C: 2, D: 3);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl Codec for CostLedger {
    fn encode(&self, out: &mut Vec<u8>) {
        let CostLedger {
            fixed_msgs,
            wireless_msgs,
            searches,
            re_searches,
            search_failures,
            fixed_cost,
            wireless_cost,
            search_cost,
            mh_tx,
            mh_rx,
            mh_energy,
            doze_interruptions,
            moves,
            handoffs,
            disconnects,
            reconnects,
            wireless_losses,
            custom,
        } = self;
        fixed_msgs.encode(out);
        wireless_msgs.encode(out);
        searches.encode(out);
        re_searches.encode(out);
        search_failures.encode(out);
        fixed_cost.encode(out);
        wireless_cost.encode(out);
        search_cost.encode(out);
        mh_tx.encode(out);
        mh_rx.encode(out);
        mh_energy.encode(out);
        doze_interruptions.encode(out);
        moves.encode(out);
        handoffs.encode(out);
        disconnects.encode(out);
        reconnects.encode(out);
        wireless_losses.encode(out);
        custom.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(CostLedger {
            fixed_msgs: Codec::decode(r)?,
            wireless_msgs: Codec::decode(r)?,
            searches: Codec::decode(r)?,
            re_searches: Codec::decode(r)?,
            search_failures: Codec::decode(r)?,
            fixed_cost: Codec::decode(r)?,
            wireless_cost: Codec::decode(r)?,
            search_cost: Codec::decode(r)?,
            mh_tx: Codec::decode(r)?,
            mh_rx: Codec::decode(r)?,
            mh_energy: Codec::decode(r)?,
            doze_interruptions: Codec::decode(r)?,
            moves: Codec::decode(r)?,
            handoffs: Codec::decode(r)?,
            disconnects: Codec::decode(r)?,
            reconnects: Codec::decode(r)?,
            wireless_losses: Codec::decode(r)?,
            custom: Codec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut bytes = Vec::new();
        v.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        assert_eq!(T::decode(&mut r), Some(v));
        assert!(r.is_empty(), "decoder left trailing bytes");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(u32::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(String::from("mean_wait"));
        round_trip(String::new());
        round_trip(Option::<u64>::None);
        round_trip(Some(7u64));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip((1u64, 2.5f64, String::from("x")));
        round_trip(BTreeMap::from([(String::from("k"), 9u64)]));
    }

    #[test]
    fn nan_bit_pattern_is_preserved() {
        let mut bytes = Vec::new();
        f64::NAN.encode(&mut bytes);
        let got = f64::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn cost_ledger_round_trips_with_every_field_set() {
        let mut l = CostLedger::new(3);
        l.fixed_msgs = 1;
        l.wireless_msgs = 2;
        l.searches = 3;
        l.re_searches = 4;
        l.search_failures = 5;
        l.fixed_cost = 6;
        l.wireless_cost = 7;
        l.search_cost = 8;
        l.mh_tx = vec![1, 0, 2];
        l.mh_rx = vec![0, 1, 0];
        l.mh_energy = vec![9, 9, 9];
        l.doze_interruptions = 9;
        l.moves = 10;
        l.handoffs = 11;
        l.disconnects = 12;
        l.reconnects = 13;
        l.wireless_losses = 14;
        l.custom.insert("location_updates".into(), 15);
        round_trip(l);
    }

    #[test]
    fn malformed_input_yields_none_not_panic() {
        assert_eq!(u64::decode(&mut Reader::new(&[1, 2, 3])), None);
        assert_eq!(
            String::decode(&mut Reader::new(&1000u64.to_le_bytes())),
            None
        );
        assert_eq!(bool::decode(&mut Reader::new(&7u64.to_le_bytes())), None);
        assert_eq!(
            Option::<u64>::decode(&mut Reader::new(&9u64.to_le_bytes())),
            None
        );
        // A huge claimed Vec length is bounded by the buffer, not allocated.
        assert_eq!(
            Vec::<u64>::decode(&mut Reader::new(&u64::MAX.to_le_bytes())),
            None
        );
        assert_eq!(CostLedger::decode(&mut Reader::new(&[0u8; 16])), None);
        // Invalid UTF-8 in a String.
        let mut bytes = Vec::new();
        2usize.encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(String::decode(&mut Reader::new(&bytes)), None);
    }
}
