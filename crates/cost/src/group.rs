//! Closed-form costs of the group-location strategies (Section 4).
//!
//! The scanned paper garbles parts of the Section 4.3 arithmetic; the
//! formulas here are re-derived from the per-operation costs the paper
//! states unambiguously:
//!
//! * a location-view **update** for one significant move costs at most
//!   `(|LV| + 3)·C_fixed` (incremental updates to the view plus the three
//!   extra messages M→M′, M′→coordinator, coordinator→M);
//! * a location-view **group message** costs `C_wireless` (uplink) +
//!   `(|LV| − 1)·C_fixed` (fan-out) + `(|G| − 1)·C_wireless` (downlinks to
//!   each recipient).
//!
//! The effective per-message cost then follows by amortising `f·MOB`
//! significant updates over `MSG` messages.

use crate::Params;

/// **Pure search** (Section 4.1) effective cost per group message:
/// `(|G|−1)(2·C_wireless + C_search)` — flat in mobility.
///
/// # Examples
///
/// ```
/// use mobidist_cost::{pure_search_effective, Params};
/// assert_eq!(pure_search_effective(8, Params::default()), 7.0 * 25.0);
/// ```
pub fn pure_search_effective(g: u64, p: Params) -> f64 {
    (g.saturating_sub(1) * p.mh_to_mh()) as f64
}

/// **Always inform** (Section 4.2) effective cost per group message:
/// `(1 + MOB/MSG)(|G|−1)(2·C_wireless + C_fixed)` — every move triggers a
/// full directory broadcast, amortised over the messages.
///
/// # Examples
///
/// ```
/// use mobidist_cost::{always_inform_effective, Params};
/// let p = Params::default();
/// // No mobility: just the data fan-out.
/// assert_eq!(always_inform_effective(8, 0.0, p), 7.0 * 21.0);
/// // One move per message doubles it.
/// assert_eq!(always_inform_effective(8, 1.0, p), 2.0 * 7.0 * 21.0);
/// ```
pub fn always_inform_effective(g: u64, mob_per_msg: f64, p: Params) -> f64 {
    (1.0 + mob_per_msg) * (g.saturating_sub(1) as f64) * (2 * p.c_wireless + p.c_fixed) as f64
}

/// **Location view** (Section 4.3) upper bound on the cost of updating
/// `LV(G)` after one significant move: `(|LV| + 3)·C_fixed`.
pub fn location_view_update_bound(lv: u64, p: Params) -> u64 {
    (lv + 3) * p.c_fixed
}

/// **Location view** effective cost per group message:
///
/// `f·(MOB/MSG)·(|LV|max + 3)·C_fixed  +  (|LV|max − 1)·C_fixed  +
/// |G|·C_wireless`
///
/// where `f` is the significant fraction of moves. Only `f·MOB` — not all
/// of `MOB` — shows up: that is the section's headline claim.
///
/// # Examples
///
/// ```
/// use mobidist_cost::{location_view_effective, Params};
/// let p = Params::default();
/// // Static members concentrated in 3 cells, group of 8:
/// let c = location_view_effective(8, 3, 0.0, 0.0, p);
/// assert_eq!(c, (3.0 - 1.0) * 1.0 + 8.0 * 10.0);
/// ```
pub fn location_view_effective(g: u64, lv_max: u64, f: f64, mob_per_msg: f64, p: Params) -> f64 {
    let update = f * mob_per_msg * ((lv_max + 3) * p.c_fixed) as f64;
    let fan_out = (lv_max.saturating_sub(1) * p.c_fixed) as f64;
    // One uplink from the sender + a downlink to each of the other |G|−1
    // members = |G| wireless messages per group message.
    let wireless = (g * p.c_wireless) as f64;
    update + fan_out + wireless
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::default()
    }

    #[test]
    fn pure_search_is_flat_in_mobility() {
        // No mobility parameter exists; verify scaling in |G| instead.
        assert_eq!(pure_search_effective(2, p()), 25.0);
        assert_eq!(
            pure_search_effective(9, p()) - pure_search_effective(8, p()),
            25.0
        );
    }

    #[test]
    fn always_inform_scales_with_ratio() {
        let base = always_inform_effective(10, 0.0, p());
        assert!(always_inform_effective(10, 0.5, p()) > base);
        let double = always_inform_effective(10, 1.0, p());
        assert!((double - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn crossover_pure_search_vs_always_inform() {
        // AI wins at low MOB/MSG (C_f < C_s per hop), PS wins at high.
        let g = 8;
        assert!(always_inform_effective(g, 0.0, p()) < pure_search_effective(g, p()));
        assert!(always_inform_effective(g, 5.0, p()) > pure_search_effective(g, p()));
        // Analytic crossover: (1+r)(2w+f) = 2w+s  ⇒  r = (s−f)/(2w+f).
        let r = (p().c_search - p().c_fixed) as f64 / (2 * p().c_wireless + p().c_fixed) as f64;
        let at = always_inform_effective(g, r, p());
        let ps = pure_search_effective(g, p());
        assert!((at - ps).abs() < 1e-6, "{at} vs {ps}");
    }

    #[test]
    fn location_view_depends_only_on_significant_fraction() {
        let g = 12;
        let lv = 3;
        // Same MOB/MSG, different f: cost follows f.
        let lo = location_view_effective(g, lv, 0.1, 4.0, p());
        let hi = location_view_effective(g, lv, 0.9, 4.0, p());
        assert!(lo < hi);
        // f = 0 ⇒ mobility entirely free.
        let free = location_view_effective(g, lv, 0.0, 100.0, p());
        let none = location_view_effective(g, lv, 0.0, 0.0, p());
        assert_eq!(free, none);
    }

    #[test]
    fn location_view_beats_always_inform_for_localised_groups() {
        let g = 16;
        let lv = 3; // members concentrated in 3 cells
        for ratio in [0.5, 1.0, 2.0, 8.0] {
            let ai = always_inform_effective(g, ratio, p());
            let lv_cost = location_view_effective(g, lv, 0.3, ratio, p());
            assert!(lv_cost < ai, "ratio {ratio}: {lv_cost} vs {ai}");
        }
    }

    #[test]
    fn update_bound_matches_paper() {
        assert_eq!(location_view_update_bound(5, p()), 8);
    }

    #[test]
    fn wireless_component_is_g_messages() {
        // The static segment absorbs everything except |G| wireless ops.
        let c0 = location_view_effective(10, 4, 0.2, 3.0, p());
        let c1 = location_view_effective(11, 4, 0.2, 3.0, p());
        assert_eq!(c1 - c0, p().c_wireless as f64);
    }
}
