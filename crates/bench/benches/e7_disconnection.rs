//! Regenerates E7: progress under voluntary disconnection.
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_mutex::e7_disconnection(quick));
}
