//! Behavioural tests of the deterministic fault-injection plane: MSS
//! fail-stop crashes with stable state, wired-plane partitions, handoff
//! storms — and the determinism/accounting contracts SCENARIOS.md
//! documents for them.

use mobidist_net::prelude::*;
use mobidist_net::time::SimTime;

/// Minimal recording protocol (fault hooks included).
#[derive(Debug, Default)]
struct Recorder {
    mss_msgs: Vec<(MssId, Src, String)>,
    crashed: Vec<MssId>,
    recovered: Vec<MssId>,
}

impl Protocol for Recorder {
    type Msg = String;
    type Timer = ();

    fn on_mss_msg(&mut self, _: &mut Ctx<'_, String, ()>, at: MssId, src: Src, msg: String) {
        self.mss_msgs.push((at, src, msg));
    }
    fn on_mh_msg(&mut self, _: &mut Ctx<'_, String, ()>, _: MhId, _: Src, _: String) {}
    fn on_mss_crashed(&mut self, _: &mut Ctx<'_, String, ()>, mss: MssId) {
        self.crashed.push(mss);
    }
    fn on_mss_recovered(&mut self, _: &mut Ctx<'_, String, ()>, mss: MssId) {
        self.recovered.push(mss);
    }
}

fn crash_cfg(m: usize, n: usize, mss: u32, at: u64, down_for: u64) -> NetworkConfig {
    NetworkConfig::new(m, n)
        .with_seed(42)
        .with_fault(FaultConfig::none().with_event(at, FaultKind::MssCrash { mss, down_for }))
}

#[test]
fn crash_defers_wired_traffic_and_recovery_flushes_it() {
    let mut s = Simulation::new(crash_cfg(4, 4, 3, 10, 1_000), Recorder::default());
    s.run_until(SimTime::from_ticks(50));
    assert!(s.kernel().mss_down(MssId(3)), "mss3 is crashed at t=50");
    assert_eq!(s.protocol().crashed, vec![MssId(3)]);
    // Fail-stop with stable state: a wired message to the down MSS is
    // deferred, not lost.
    s.with_ctx(|ctx, _| ctx.send_fixed(MssId(0), MssId(3), "stable".into()));
    s.run_until(SimTime::from_ticks(900));
    assert!(
        s.protocol().mss_msgs.is_empty(),
        "nothing delivered while down"
    );
    s.run_to_quiescence(100_000);
    assert!(!s.kernel().mss_down(MssId(3)));
    assert_eq!(s.protocol().recovered, vec![MssId(3)]);
    assert_eq!(s.protocol().mss_msgs.len(), 1, "flushed after recovery");
    assert_eq!(s.protocol().mss_msgs[0].2, "stable");
    let l = s.ledger();
    assert_eq!(l.custom("fault_crashes"), 1);
    assert_eq!(l.custom("fault_recovers"), 1);
    assert_eq!(l.fixed_msgs, 1, "the deferred send is charged exactly once");
}

#[test]
fn crash_evacuates_residents_and_redirects_joins() {
    // mh1 and mh5 live at mss1 (round-robin placement, m=4 n=8).
    let mut s = Simulation::new(crash_cfg(4, 8, 1, 10, 1_000_000), Recorder::default());
    s.run_until(SimTime::from_ticks(50_000));
    assert!(s.kernel().mss_down(MssId(1)));
    assert_eq!(
        s.kernel().local_mhs(MssId(1)).count(),
        0,
        "residents evacuated"
    );
    for mh in [MhId(1), MhId(5)] {
        let cell = s.kernel().current_cell(mh).expect("re-homed somewhere");
        assert_ne!(cell, MssId(1), "{mh:?} must not re-join the down cell");
    }
    assert!(s.ledger().moves >= 2, "evacuation uses ordinary handoffs");
}

#[test]
fn partition_defers_cross_half_traffic_and_heals_in_fifo_order() {
    let cfg = NetworkConfig::new(4, 4)
        .with_seed(7)
        .with_fault(FaultConfig::none().with_event(
            10,
            FaultKind::Partition {
                cut: 2,
                heal_after: 500,
            },
        ));
    let mut s = Simulation::new(cfg, Recorder::default());
    s.run_until(SimTime::from_ticks(100));
    s.with_ctx(|ctx, _| {
        // Cross-half (0|1 vs 2|3): deferred until the heal.
        for i in 0..5 {
            ctx.send_fixed(MssId(0), MssId(3), format!("x{i}"));
        }
        // Same-half: unaffected.
        ctx.send_fixed(MssId(0), MssId(1), "same-half".into());
    });
    s.run_until(SimTime::from_ticks(400));
    let got: Vec<&str> = s
        .protocol()
        .mss_msgs
        .iter()
        .map(|(_, _, m)| m.as_str())
        .collect();
    assert_eq!(got, vec!["same-half"], "cross-half traffic held back");
    s.run_to_quiescence(100_000);
    let got: Vec<&str> = s
        .protocol()
        .mss_msgs
        .iter()
        .map(|(_, _, m)| m.as_str())
        .collect();
    assert_eq!(
        got,
        vec!["same-half", "x0", "x1", "x2", "x3", "x4"],
        "heal flushes in arrival order"
    );
    let l = s.ledger();
    assert_eq!(l.custom("fault_partitions"), 1);
    assert_eq!(l.custom("fault_heals"), 1);
    assert_eq!(l.fixed_msgs, 6, "deferral never re-charges");
}

#[test]
fn handoff_storm_forces_mass_moves() {
    let cfg = NetworkConfig::new(4, 16)
        .with_seed(5)
        .with_fault(FaultConfig::none().with_event(10, FaultKind::HandoffStorm { count: 6 }));
    let mut s = Simulation::new(cfg, Recorder::default());
    s.run_to_quiescence(1_000_000);
    let l = s.ledger();
    assert_eq!(l.custom("fault_storms"), 1);
    assert!(l.moves >= 6, "at least the stormed hosts complete handoffs");
}

#[test]
fn fault_schedules_replay_bit_identically() {
    // The fault plane draws no scheduling randomness, so the same config
    // replays the same run — including evacuations and flush timing.
    let cfg = NetworkConfig::new(4, 8)
        .with_seed(11)
        .with_mobility(MobilityConfig::moving(200))
        .with_fault(
            FaultConfig::none()
                .with_event(
                    100,
                    FaultKind::MssCrash {
                        mss: 2,
                        down_for: 400,
                    },
                )
                .with_event(
                    700,
                    FaultKind::Partition {
                        cut: 2,
                        heal_after: 300,
                    },
                )
                .with_event(1_500, FaultKind::HandoffStorm { count: 4 }),
        );
    let mut a = Simulation::new(cfg.clone(), Recorder::default());
    let mut b = Simulation::new(cfg, Recorder::default());
    a.run_until(SimTime::from_ticks(5_000));
    b.run_until(SimTime::from_ticks(5_000));
    assert_eq!(a.ledger(), b.ledger(), "same seed+schedule ⇒ identical run");
    assert_eq!(a.protocol().crashed, b.protocol().crashed);
}

#[test]
fn fault_free_configs_are_unchanged_by_the_fault_plane() {
    // FaultConfig::none() must be a perfect no-op: same ledger as a config
    // that never mentions faults (the plane schedules nothing and draws no
    // rng, so pre-fault-plane runs replay identically).
    let base = NetworkConfig::new(4, 8)
        .with_seed(3)
        .with_mobility(MobilityConfig::moving(100));
    let explicit = base.clone().with_fault(FaultConfig::none());
    let mut a = Simulation::new(base, Recorder::default());
    let mut b = Simulation::new(explicit, Recorder::default());
    a.run_until(SimTime::from_ticks(5_000));
    b.run_until(SimTime::from_ticks(5_000));
    assert_eq!(a.ledger(), b.ledger());
}

#[test]
fn reset_clears_fault_state() {
    // A pooled simulation recycled from a faulty run must replay a
    // fault-free config byte-for-byte like a fresh simulation.
    let faulty = crash_cfg(4, 8, 1, 10, 1_000_000);
    let clean = NetworkConfig::new(4, 8)
        .with_seed(21)
        .with_mobility(MobilityConfig::moving(150));
    let mut recycled = Simulation::new(faulty, Recorder::default());
    recycled.run_until(SimTime::from_ticks(2_000));
    assert!(recycled.kernel().mss_down(MssId(1)));
    recycled.reset(clean.clone(), Recorder::default());
    let mut fresh = Simulation::new(clean, Recorder::default());
    recycled.run_until(SimTime::from_ticks(5_000));
    fresh.run_until(SimTime::from_ticks(5_000));
    assert!(!recycled.kernel().mss_down(MssId(1)));
    assert_eq!(recycled.ledger(), fresh.ledger());
}

#[test]
fn zoo_patterns_drive_the_kernel_deterministically() {
    // Each zoo pattern runs the full kernel loop and replays identically;
    // patterns produce different trajectories from the same seed.
    let mut move_counts = Vec::new();
    for pattern in [
        MovePattern::RandomWaypoint { leg: 4 },
        MovePattern::GaussMarkov { memory: 0.8 },
        MovePattern::GroupPlatoon {
            groups: 2,
            p_follow: 0.9,
        },
    ] {
        let cfg = NetworkConfig::new(8, 16)
            .with_seed(17)
            .with_mobility(MobilityConfig::moving(100).with_pattern(pattern));
        let mut a = Simulation::new(cfg.clone(), Recorder::default());
        let mut b = Simulation::new(cfg, Recorder::default());
        a.run_until(SimTime::from_ticks(10_000));
        b.run_until(SimTime::from_ticks(10_000));
        assert_eq!(a.ledger(), b.ledger(), "{pattern:?} must replay");
        assert!(a.ledger().moves > 20, "{pattern:?} generates churn");
        move_counts.push(a.ledger().moves);
    }
}
