//! The observability layer's central invariant, pinned end to end: enabling
//! `MOBIDIST_TRACE` never perturbs simulation results (experiment tables are
//! byte-identical with and without it), and the emitted event stream is
//! complete (trace-derived message counts exactly equal the cost-ledger
//! counters recorded at `run_end`) for E1, E2, E5, E11, E13 and E14 —
//! including the combining identity (L2C batch sizes sum to the CS-entry
//! count) and the fault identities (trace-level fault events equal the
//! ledger's fault counters).
//!
//! Everything lives in ONE `#[test]` because `MOBIDIST_TRACE` is
//! process-global: no other test in this binary may race on the variable.

use mobidist_bench::obs::{merge_worker_files, TRACE_ENV};
use mobidist_bench::{exp_fault, exp_group, exp_mutex, exp_serve};
use mobidist_net::metrics::Metrics;
use mobidist_net::obs::{parse_line, Line, RunMeta, RunSummary, TraceEvent};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;

fn render_all() -> String {
    let mut out = String::new();
    for t in [
        exp_mutex::e1_lamport(true),
        exp_mutex::e2_ring(true),
        exp_group::e5_group_strategies(true),
        exp_group::e11_exactly_once(true),
        exp_serve::e13_serving(true),
        exp_fault::e14_fault(true),
    ] {
        out.push_str(&t.to_string());
        out.push_str(&t.to_csv());
    }
    out
}

#[derive(Default)]
struct Derived {
    meta: Option<RunMeta>,
    metrics: Metrics,
    re_searches: u64,
    handoffs: u64,
    combined: u64,
    partitions_raised: u64,
    partitions_healed: u64,
    events: u64,
    summary: Option<(RunSummary, u64)>,
}

#[test]
fn tracing_is_invisible_and_counts_match_the_ledger() {
    let untraced = render_all();

    let trace: PathBuf =
        std::env::temp_dir().join(format!("mobidist-trace-check-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    std::env::set_var(TRACE_ENV, &trace);
    let traced = render_all();
    std::env::remove_var(TRACE_ENV);

    assert_eq!(
        untraced, traced,
        "enabling MOBIDIST_TRACE changed an experiment table"
    );

    let runs_merged = merge_worker_files(&trace).expect("merge worker part files");
    assert!(
        runs_merged >= 8,
        "expected >=8 traced runs across e1/e2/e5/e11"
    );

    // Re-derive every ledger counter from the event stream alone and diff
    // against the run_end snapshot the kernel wrote.
    let mut runs: BTreeMap<u64, Derived> = BTreeMap::new();
    let file = std::fs::File::open(&trace).expect("open merged trace");
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.expect("read trace line");
        match parse_line(&line).unwrap_or_else(|e| panic!("line {}: {e}", lineno + 1)) {
            Line::RunBegin(meta) => {
                let d = runs.entry(meta.run).or_default();
                assert!(d.meta.replace(meta).is_none(), "duplicate run_begin");
            }
            Line::Event { run, seq, t, ev } => {
                let d = runs.entry(run).or_default();
                assert_eq!(seq, d.events, "run {run}: seq not dense");
                d.events += 1;
                d.metrics.observe(t, &ev);
                match ev {
                    TraceEvent::Search { re: true, .. } => d.re_searches += 1,
                    TraceEvent::HandoffEnd {
                        to, prev: Some(p), ..
                    } if p != to => d.handoffs += 1,
                    TraceEvent::CombineBatch { size, .. } => d.combined += size as u64,
                    TraceEvent::FaultPartition { healed: false, .. } => d.partitions_raised += 1,
                    TraceEvent::FaultPartition { healed: true, .. } => d.partitions_healed += 1,
                    _ => {}
                }
            }
            Line::RunEnd { summary, events } => {
                let d = runs.entry(summary.run).or_default();
                assert!(
                    d.summary.replace((summary, events)).is_none(),
                    "duplicate run_end"
                );
            }
        }
    }
    assert_eq!(runs.len(), runs_merged);

    for (run, d) in &runs {
        let label = d.meta.as_ref().map_or("?", |m| m.label.as_str());
        let (s, claimed) = d.summary.as_ref().unwrap_or_else(|| {
            panic!("run {run} [{label}]: missing run_end");
        });
        assert_eq!(*claimed, d.events, "run {run} [{label}]: event count");
        let m = &d.metrics;
        let checks: [(&str, u64, u64); 16] = [
            ("fixed_msgs", m.fixed_msgs.get(), s.fixed_msgs),
            ("wireless_msgs", m.wireless_msgs.get(), s.wireless_msgs),
            ("searches", m.kind_count("search"), s.searches),
            ("re_searches", d.re_searches, s.re_searches),
            (
                "search_failures",
                m.kind_count("search_fail"),
                s.search_failures,
            ),
            ("moves", m.kind_count("handoff_end"), s.moves),
            ("handoffs", d.handoffs, s.handoffs),
            ("disconnects", m.kind_count("disconnect"), s.disconnects),
            ("reconnects", m.kind_count("reconnect"), s.reconnects),
            (
                "doze_interruptions",
                m.kind_count("doze_interrupt"),
                s.doze_interruptions,
            ),
            (
                "wireless_losses",
                m.kind_count("down_lost"),
                s.wireless_losses,
            ),
            (
                "fault_crashes",
                m.kind_count("fault_crash"),
                s.fault_crashes,
            ),
            (
                "fault_recovers",
                m.kind_count("fault_recover"),
                s.fault_recovers,
            ),
            ("fault_partitions", d.partitions_raised, s.fault_partitions),
            ("fault_heals", d.partitions_healed, s.fault_heals),
            ("fault_storms", m.kind_count("fault_storm"), s.fault_storms),
        ];
        for (name, derived, ledger) in checks {
            assert_eq!(
                derived, ledger,
                "run {run} [{label}]: trace-derived {name} != ledger"
            );
        }
        // Combining identity (E13's L2C cells): every grant is announced
        // in exactly one batch, so the batch sizes sum to the entry count.
        let batches = m.kind_count("combine_batch");
        let entries = m.kind_count("cs_enter");
        if batches > 0 && entries > 0 {
            assert_eq!(
                d.combined, entries,
                "run {run} [{label}]: combine_batch sizes must sum to cs_enter"
            );
        }
    }
    assert!(
        runs.values().any(|d| {
            d.metrics.kind_count("combine_batch") > 0 && d.metrics.kind_count("cs_enter") > 0
        }),
        "at least one traced run must exercise the combining identity"
    );
    assert!(
        runs.values()
            .any(|d| d.metrics.kind_count("fault_crash") > 0),
        "at least one traced run must exercise the fault identities (E14's crash cells)"
    );

    let _ = std::fs::remove_file(&trace);
}
