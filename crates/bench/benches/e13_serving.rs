//! Regenerates E13: the heavy-traffic serving benchmark.
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_serve::e13_serving(quick));
}
