//! `MOBIDIST_SHARDS` must never change what an experiment computes.
//!
//! Two halves. The classic experiments (E1/E2/E5/E11) do not run on the
//! sharded kernel at all, so the variable must be inert for them. E12
//! does run on it, and its table must be byte-identical at every worker
//! count — that is the determinism contract CI's shard-soundness gate
//! enforces with `cmp` at the CLI level.

use mobidist_bench::{exp_fault, exp_group, exp_mutex, exp_scale, exp_serve};
use std::sync::Mutex;

/// Serialises the tests in this file: they mutate `MOBIDIST_SHARDS`,
/// which is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_shards<T>(value: Option<&str>, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var(exp_scale::SHARDS_ENV).ok();
    match value {
        Some(v) => std::env::set_var(exp_scale::SHARDS_ENV, v),
        None => std::env::remove_var(exp_scale::SHARDS_ENV),
    }
    let out = f();
    match prev {
        Some(v) => std::env::set_var(exp_scale::SHARDS_ENV, v),
        None => std::env::remove_var(exp_scale::SHARDS_ENV),
    }
    out
}

#[test]
fn classic_experiments_ignore_the_shard_knob() {
    let _guard = ENV_LOCK.lock().unwrap();
    let render = || {
        [
            exp_mutex::e1_lamport(true).to_string(),
            exp_mutex::e2_ring(true).to_string(),
            exp_group::e5_group_strategies(true).to_string(),
            exp_group::e11_exactly_once(true).to_string(),
        ]
    };
    let unset = with_shards(None, render);
    let sharded = with_shards(Some("4"), render);
    assert_eq!(
        unset, sharded,
        "MOBIDIST_SHARDS must be inert for E1/E2/E5/E11"
    );
}

#[test]
fn e13_ignores_the_shard_knob() {
    // The serving benchmark runs on the classic kernel; like E1/E2/E5/E11
    // its table must not depend on the sharded-kernel worker count.
    let _guard = ENV_LOCK.lock().unwrap();
    let render = || exp_serve::e13_serving(true).to_string();
    let unset = with_shards(None, render);
    let sharded = with_shards(Some("4"), render);
    assert_eq!(unset, sharded, "MOBIDIST_SHARDS must be inert for E13");
}

#[test]
fn e14_ignores_the_shard_knob() {
    // The robustness grid injects faults into the classic kernel; the
    // fault schedule and mobility zoo must replay identically whatever
    // the sharded-kernel worker count is set to.
    let _guard = ENV_LOCK.lock().unwrap();
    let render = || exp_fault::e14_fault(true).to_string();
    let unset = with_shards(None, render);
    let sharded = with_shards(Some("4"), render);
    assert_eq!(unset, sharded, "MOBIDIST_SHARDS must be inert for E14");
}

#[test]
fn e12_table_is_identical_at_every_shard_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    let base = with_shards(Some("1"), || exp_scale::e12_scale_curve(true).to_string());
    for shards in ["2", "3", "8"] {
        let t = with_shards(Some(shards), || {
            exp_scale::e12_scale_curve(true).to_string()
        });
        assert_eq!(t, base, "E12 table diverged at {shards} shards");
    }
}
