//! The proxy framework (Section 5): decoupling host mobility from algorithm
//! design.
//!
//! A *proxy* is the MSS currently responsible for communicating with a
//! mobile host. A distributed algorithm written for **static** hosts — a
//! [`StaticAlgorithm`] — is executed unchanged at the proxies; the
//! [`ProxyRuntime`] is the second layer of the paper's two-layer structure,
//! handling everything mobility-related:
//!
//! * routing a client's *inputs* up from wherever it currently is to its
//!   proxy, and the algorithm's *outputs* back down;
//! * maintaining the MH↔proxy association per the chosen
//!   [`ProxyPolicy`]:
//!   [`Fixed`](ProxyPolicy::Fixed) — one proxy for the MH's lifetime, which
//!   must be informed of *every* move (the paper's warning: infeasible for
//!   frequent wide-area movers);
//!   [`LocalMss`](ProxyPolicy::LocalMss) — the proxy follows the MH, with a
//!   handoff state transfer on every move (the scope used by L2 and R2).
//!
//! The static algorithm sees none of this: total separation of mobility
//! from the algorithm, at a measurable price the experiments quantify.

use mobidist_net::host::MhStatus;
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::{Ctx, Protocol, Src};
use std::fmt::Debug;

/// Index of a static process (one per mobile client).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How proxies are associated with mobile hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProxyPolicy {
    /// The MH's initial MSS stays its proxy forever; every move triggers a
    /// location update to the proxy.
    Fixed,
    /// The proxy is always the current local MSS; every move triggers a
    /// handoff state transfer between MSSs.
    #[default]
    LocalMss,
    /// The "less static solution" the paper's Section 5 calls for: the
    /// proxy stays put while the client remains within `radius` cells
    /// (ring distance) of it — local moves cost only a cheap location
    /// update — and migrates via handoff on a *wide-area* move beyond the
    /// radius.
    Adaptive {
        /// Maximum ring distance before the proxy migrates.
        radius: u32,
    },
}

/// Ring distance between two cells in a system of `m` MSSs.
fn ring_distance(a: MssId, b: MssId, m: usize) -> u32 {
    let d = (a.0 as i64 - b.0 as i64).unsigned_abs() as u32;
    d.min(m as u32 - d)
}

/// Context handed to the static algorithm: the world according to a program
/// that believes all hosts are fixed.
#[derive(Debug)]
pub struct StaticCtx<AM> {
    num_procs: usize,
    sends: Vec<(ProcId, ProcId, AM)>,
    outputs: Vec<(ProcId, u64)>,
}

impl<AM> StaticCtx<AM> {
    /// Creates a detached context (useful for unit-testing a
    /// [`StaticAlgorithm`] without a network).
    pub fn new(num_procs: usize) -> Self {
        StaticCtx {
            num_procs,
            sends: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of processes in the computation.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Sends an algorithm message from one process to another.
    pub fn send(&mut self, from: ProcId, to: ProcId, msg: AM) {
        self.sends.push((from, to, msg));
    }

    /// Emits an output for the mobile client bound to `proc`.
    pub fn output(&mut self, proc: ProcId, value: u64) {
        self.outputs.push((proc, value));
    }
}

/// A distributed algorithm written for static hosts, oblivious to mobility.
pub trait StaticAlgorithm: Sized + 'static {
    /// Inter-process message type.
    type Msg: Debug + Clone + 'static;

    /// Short display name.
    fn name(&self) -> &'static str;

    /// Called once with the process count.
    fn on_init(&mut self, ctx: &mut StaticCtx<Self::Msg>) {
        let _ = ctx;
    }

    /// The mobile client bound to `proc` submitted `input`.
    fn on_input(&mut self, ctx: &mut StaticCtx<Self::Msg>, proc: ProcId, input: u64);

    /// An inter-process message arrived.
    fn on_msg(&mut self, ctx: &mut StaticCtx<Self::Msg>, at: ProcId, from: ProcId, msg: Self::Msg);
}

/// Runtime messages wrapping the static algorithm's traffic.
#[derive(Debug, Clone)]
pub enum PrxMsg<AM> {
    /// Uplink: client input, possibly needing relay to the proxy.
    Input {
        /// The submitting process.
        proc: ProcId,
        /// The input value.
        value: u64,
    },
    /// Fixed: input relayed to the proxy.
    FwdInput {
        /// The submitting process.
        proc: ProcId,
        /// The input value.
        value: u64,
    },
    /// Fixed: inter-proxy algorithm message.
    Algo {
        /// Sending process.
        from: ProcId,
        /// Receiving process.
        to: ProcId,
        /// Algorithm payload.
        msg: AM,
    },
    /// Output headed for a mobile client.
    Output {
        /// The process whose client receives it.
        proc: ProcId,
        /// The output value.
        value: u64,
    },
    /// One cell broadcast carrying every output headed to local clients of
    /// the cell — a single `C_wireless` charge regardless of batch size.
    /// Clients pick out their own items; other listeners ignore it.
    OutputBatch {
        /// `(process, value)` per combined output.
        items: Vec<(ProcId, u64)>,
    },
    /// Uplink + fixed: the client tells its fixed proxy where it now is.
    LocUpdate {
        /// The moving process.
        proc: ProcId,
        /// Its new cell.
        now_at: MssId,
    },
    /// Fixed: handoff of a process's proxy state to the new local MSS.
    Handoff {
        /// The migrating process.
        proc: ProcId,
    },
}

/// Workload: each mobile client submits inputs and awaits outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyWorkload {
    /// Inputs each client submits.
    pub inputs_per_client: usize,
    /// Mean interval between a client's submissions.
    pub mean_interval: u64,
}

impl Default for ProxyWorkload {
    fn default() -> Self {
        ProxyWorkload {
            inputs_per_client: 3,
            mean_interval: 100,
        }
    }
}

/// Summary of one proxy-runtime run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyReport {
    /// Inputs submitted by clients.
    pub inputs_sent: u64,
    /// Outputs delivered back to clients.
    pub outputs_delivered: u64,
    /// Location updates sent to fixed proxies.
    pub loc_updates: u64,
    /// Handoffs between local proxies.
    pub handoffs: u64,
    /// Outputs that needed a search because the client had moved again.
    pub stale_outputs: u64,
    /// Proxy processes caught on an MSS when it crashed (their wired
    /// traffic defers until the MSS recovers — fail-stop with stable
    /// state, so no proxy state is lost).
    pub proxy_outages: u64,
    /// Proxy processes still resident on an MSS when it recovered.
    pub proxy_recoveries: u64,
}

/// Executes a [`StaticAlgorithm`] at MSS proxies on behalf of mobile
/// clients. See the module docs.
#[derive(Debug)]
pub struct ProxyRuntime<A: StaticAlgorithm> {
    algo: A,
    policy: ProxyPolicy,
    clients: Vec<MhId>,
    /// Current proxy of each process.
    proxy_of: Vec<MssId>,
    /// Fixed policy: where the proxy believes its client currently is.
    last_known: Vec<MssId>,
    wl: ProxyWorkload,
    remaining: Vec<usize>,
    /// When set, outputs produced by one algorithm step are combined per
    /// destination cell into a single broadcast (see [`Self::with_combining`]).
    combine: bool,
    report: ProxyReport,
}

/// Runtime timers.
#[derive(Debug, Clone, Copy)]
pub enum PrxTimer {
    /// A client submits its next input.
    NextInput(ProcId),
}

impl<A: StaticAlgorithm> ProxyRuntime<A> {
    /// Creates a runtime binding each client MH to one static process.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty.
    pub fn new(algo: A, clients: Vec<MhId>, policy: ProxyPolicy, wl: ProxyWorkload) -> Self {
        assert!(!clients.is_empty(), "at least one client is required");
        let n = clients.len();
        ProxyRuntime {
            algo,
            policy,
            clients,
            proxy_of: vec![MssId(0); n],
            last_known: vec![MssId(0); n],
            wl,
            remaining: vec![0; n],
            combine: false,
            report: ProxyReport {
                inputs_sent: 0,
                outputs_delivered: 0,
                loc_updates: 0,
                handoffs: 0,
                stale_outputs: 0,
                proxy_outages: 0,
                proxy_recoveries: 0,
            },
        }
    }

    /// Enables combining output delivery: outputs produced by one static
    /// algorithm step and headed to clients that are currently *local* to
    /// their own proxy's cell are folded, per cell, into one
    /// [`PrxMsg::OutputBatch`] broadcast — one wireless charge for the whole
    /// batch, recorded as a `combine_batch` trace event. Outputs that need a
    /// relay or a search take the ordinary per-output path, and a member
    /// that leaves the cell while the broadcast is on the air is recovered
    /// with an individual searched forward, so delivery counts are
    /// identical to the non-combining runtime.
    pub fn with_combining(mut self) -> Self {
        self.combine = true;
        self
    }

    /// The final report.
    pub fn report(&self) -> ProxyReport {
        self.report.clone()
    }

    /// The wrapped static algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Current proxy of `proc` (test aid).
    pub fn proxy_of(&self, proc: ProcId) -> MssId {
        self.proxy_of[proc.index()]
    }

    fn proc_of(&self, mh: MhId) -> Option<ProcId> {
        self.clients
            .iter()
            .position(|c| *c == mh)
            .map(|i| ProcId(i as u32))
    }

    /// Applies queued static-algorithm effects to the real network.
    fn flush_static(
        &mut self,
        ctx: &mut Ctx<'_, PrxMsg<A::Msg>, PrxTimer>,
        sctx: StaticCtx<A::Msg>,
    ) {
        for (from, to, msg) in sctx.sends {
            let src_mss = self.proxy_of[from.index()];
            let dst_mss = self.proxy_of[to.index()];
            ctx.send_fixed(src_mss, dst_mss, PrxMsg::Algo { from, to, msg });
        }
        if self.combine {
            self.flush_outputs_combined(ctx, sctx.outputs);
        } else {
            for (proc, value) in sctx.outputs {
                self.route_output(ctx, proc, value);
            }
        }
    }

    /// Combining delivery: one broadcast per destination cell for the
    /// outputs whose clients are local to their proxy right now; everything
    /// else falls back to [`Self::route_output`].
    fn flush_outputs_combined(
        &mut self,
        ctx: &mut Ctx<'_, PrxMsg<A::Msg>, PrxTimer>,
        outputs: Vec<(ProcId, u64)>,
    ) {
        let mut cells: std::collections::BTreeMap<MssId, Vec<(ProcId, u64)>> =
            std::collections::BTreeMap::new();
        for (proc, value) in outputs {
            let proxy = self.proxy_of[proc.index()];
            let mh = self.clients[proc.index()];
            let believed = match self.policy {
                ProxyPolicy::Fixed | ProxyPolicy::Adaptive { .. } => self.last_known[proc.index()],
                ProxyPolicy::LocalMss => proxy,
            };
            if believed == proxy && ctx.is_local(proxy, mh) {
                cells.entry(proxy).or_default().push((proc, value));
            } else {
                self.route_output(ctx, proc, value);
            }
        }
        for (mss, items) in cells {
            ctx.emit(mobidist_net::obs::TraceEvent::CombineBatch {
                mss,
                size: items.len() as u32,
            });
            ctx.bump("combine_batches");
            ctx.broadcast_cell(mss, PrxMsg::OutputBatch { items });
        }
    }

    fn route_output(
        &mut self,
        ctx: &mut Ctx<'_, PrxMsg<A::Msg>, PrxTimer>,
        proc: ProcId,
        value: u64,
    ) {
        let proxy = self.proxy_of[proc.index()];
        let mh = self.clients[proc.index()];
        let believed = match self.policy {
            ProxyPolicy::Fixed | ProxyPolicy::Adaptive { .. } => self.last_known[proc.index()],
            ProxyPolicy::LocalMss => proxy,
        };
        if believed == proxy {
            self.deliver_output(ctx, proxy, proc, mh, value);
        } else {
            ctx.send_fixed(proxy, believed, PrxMsg::Output { proc, value });
        }
    }

    fn deliver_output(
        &mut self,
        ctx: &mut Ctx<'_, PrxMsg<A::Msg>, PrxTimer>,
        at: MssId,
        proc: ProcId,
        mh: MhId,
        value: u64,
    ) {
        if ctx.is_local(at, mh) {
            let _ = ctx.send_wireless_down(at, mh, PrxMsg::Output { proc, value });
        } else {
            // The client moved since we last heard: fall back to a search.
            self.report.stale_outputs += 1;
            ctx.emit(mobidist_net::obs::TraceEvent::ProxyForward { mss: at, mh });
            ctx.search_send(at, mh, PrxMsg::Output { proc, value });
        }
    }

    fn with_static(
        &mut self,
        ctx: &mut Ctx<'_, PrxMsg<A::Msg>, PrxTimer>,
        f: impl FnOnce(&mut A, &mut StaticCtx<A::Msg>),
    ) {
        let mut sctx = StaticCtx::new(self.clients.len());
        f(&mut self.algo, &mut sctx);
        self.flush_static(ctx, sctx);
    }

    fn schedule_input(&self, ctx: &mut Ctx<'_, PrxMsg<A::Msg>, PrxTimer>, proc: ProcId) {
        let d = ctx.rng().exp_delay(self.wl.mean_interval.max(1));
        ctx.set_timer(d, PrxTimer::NextInput(proc));
    }
}

impl<A: StaticAlgorithm> Protocol for ProxyRuntime<A> {
    type Msg = PrxMsg<A::Msg>;
    type Timer = PrxTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {
        for i in 0..self.clients.len() {
            let mh = self.clients[i];
            let cell = ctx.current_cell(mh).unwrap_or(MssId(0));
            // Every policy starts with the proxy at the initial cell; they
            // differ only in how the association evolves with moves.
            self.proxy_of[i] = cell;
            self.last_known[i] = cell;
            self.remaining[i] = self.wl.inputs_per_client;
            if self.wl.inputs_per_client > 0 {
                self.schedule_input(ctx, ProcId(i as u32));
            }
        }
        self.with_static(ctx, |a, s| a.on_init(s));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, timer: Self::Timer) {
        let PrxTimer::NextInput(proc) = timer;
        let i = proc.index();
        if self.remaining[i] == 0 {
            return;
        }
        let mh = self.clients[i];
        if ctx.mh_status(mh) != MhStatus::Connected {
            self.schedule_input(ctx, proc);
            return;
        }
        self.remaining[i] -= 1;
        self.report.inputs_sent += 1;
        let value = self.report.inputs_sent;
        let _ = ctx.send_wireless_up(mh, PrxMsg::Input { proc, value });
        if self.remaining[i] > 0 {
            self.schedule_input(ctx, proc);
        }
    }

    fn on_mss_msg(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MssId,
        _src: Src,
        msg: Self::Msg,
    ) {
        match msg {
            PrxMsg::Input { proc, value } => {
                // Arrived at the client's current MSS; relay to the proxy if
                // it lives elsewhere (only possible under the Fixed policy).
                let proxy = self.proxy_of[proc.index()];
                if proxy == at {
                    self.with_static(ctx, |a, s| a.on_input(s, proc, value));
                } else {
                    ctx.send_fixed(at, proxy, PrxMsg::FwdInput { proc, value });
                }
            }
            PrxMsg::FwdInput { proc, value } => {
                let proxy = self.proxy_of[proc.index()];
                if proxy == at {
                    self.with_static(ctx, |a, s| a.on_input(s, proc, value));
                } else {
                    // The proxy migrated while the input was in flight.
                    ctx.send_fixed(at, proxy, PrxMsg::FwdInput { proc, value });
                }
            }
            PrxMsg::Algo { from, to, msg } => {
                let proxy = self.proxy_of[to.index()];
                if proxy == at {
                    self.with_static(ctx, |a, s| a.on_msg(s, to, from, msg));
                } else {
                    // The proxy migrated while the message was in flight.
                    ctx.send_fixed(at, proxy, PrxMsg::Algo { from, to, msg });
                }
            }
            PrxMsg::Output { proc, value } => {
                let mh = self.clients[proc.index()];
                self.deliver_output(ctx, at, proc, mh, value);
            }
            PrxMsg::OutputBatch { .. } => {
                unreachable!("output batches are broadcast to cells, not relayed");
            }
            PrxMsg::LocUpdate { proc, now_at } => {
                debug_assert_ne!(self.policy, ProxyPolicy::LocalMss);
                let proxy = self.proxy_of[proc.index()];
                if proxy == at {
                    self.last_known[proc.index()] = now_at;
                } else {
                    // The uplink landed at the client's new cell; relay the
                    // update over the wire to the fixed proxy.
                    ctx.send_fixed(at, proxy, PrxMsg::LocUpdate { proc, now_at });
                }
            }
            PrxMsg::Handoff { proc } => {
                debug_assert_ne!(self.policy, ProxyPolicy::Fixed);
                self.proxy_of[proc.index()] = at;
                self.last_known[proc.index()] = at;
            }
        }
    }

    fn on_mh_msg(
        &mut self,
        _ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MhId,
        _src: Src,
        msg: Self::Msg,
    ) {
        match msg {
            PrxMsg::Output { .. } => {
                self.report.outputs_delivered += 1;
            }
            PrxMsg::OutputBatch { items } => {
                // The broadcast reaches every MH in the cell; each client
                // claims only its own items, other listeners find none.
                let mine = items
                    .iter()
                    .filter(|(p, _)| self.clients[p.index()] == at)
                    .count();
                self.report.outputs_delivered += mine as u64;
            }
            other => unreachable!("unexpected message at a client: {other:?}"),
        }
    }

    fn on_wireless_lost(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mss: MssId,
        mh: MhId,
        msg: Self::Msg,
    ) {
        match msg {
            PrxMsg::Output { proc, value } => {
                // The client left the cell while its output was on the air
                // (prefix-delivery semantics). The serving MSS recovers with
                // a search — part of the proxy's obligations.
                self.report.stale_outputs += 1;
                ctx.emit(mobidist_net::obs::TraceEvent::ProxyForward { mss, mh });
                ctx.search_send(mss, mh, PrxMsg::Output { proc, value });
            }
            PrxMsg::OutputBatch { items } => {
                // Only this MH missed the broadcast; recover its own items
                // with individual searched forwards.
                for (proc, value) in items {
                    if self.clients[proc.index()] == mh {
                        self.report.stale_outputs += 1;
                        ctx.emit(mobidist_net::obs::TraceEvent::ProxyForward { mss, mh });
                        ctx.search_send(mss, mh, PrxMsg::Output { proc, value });
                    }
                }
            }
            _ => {}
        }
    }

    fn on_mh_joined(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        let Some(proc) = self.proc_of(mh) else { return };
        match self.policy {
            ProxyPolicy::Fixed => {
                // The client must inform its proxy of every move: one
                // wireless uplink + one fixed hop.
                self.report.loc_updates += 1;
                let _ = ctx.send_wireless_up(mh, PrxMsg::LocUpdate { proc, now_at: mss });
            }
            ProxyPolicy::LocalMss => {
                // Handoff: the previous proxy ships the process state over.
                let from = prev.unwrap_or(self.proxy_of[proc.index()]);
                if from != mss {
                    self.report.handoffs += 1;
                    ctx.send_fixed(from, mss, PrxMsg::Handoff { proc });
                }
            }
            ProxyPolicy::Adaptive { radius } => {
                let proxy = self.proxy_of[proc.index()];
                if ring_distance(proxy, mss, ctx.num_mss()) <= radius {
                    // A local move: cheap location update, proxy stays.
                    self.report.loc_updates += 1;
                    let _ = ctx.send_wireless_up(mh, PrxMsg::LocUpdate { proc, now_at: mss });
                } else {
                    // A wide-area move: migrate the proxy via handoff.
                    self.report.handoffs += 1;
                    ctx.send_fixed(proxy, mss, PrxMsg::Handoff { proc });
                }
            }
        }
    }

    fn on_mss_crashed(&mut self, _ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, mss: MssId) {
        // Fail-stop with stable state: proxies resident on the crashed MSS
        // keep their state, and their wired traffic (inputs, algorithm
        // messages, handoffs *from* them) defers in the kernel until
        // recovery. Nothing to migrate — the state is on the down machine —
        // so the runtime only records the outage. Evacuated clients re-home
        // through the ordinary on_mh_joined path, whose handoff from the
        // crashed cell is itself deferred and flushes at recovery.
        self.report.proxy_outages +=
            self.proxy_of.iter().filter(|proxy| **proxy == mss).count() as u64;
    }

    fn on_mss_recovered(&mut self, _ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, mss: MssId) {
        // The kernel flushes deferred traffic (including pending handoffs
        // away from the recovered MSS) right after this hook runs; count the
        // processes whose proxy rode out the outage here.
        self.report.proxy_recoveries +=
            self.proxy_of.iter().filter(|proxy| **proxy == mss).count() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distance_is_symmetric_and_wraps() {
        assert_eq!(ring_distance(MssId(0), MssId(1), 8), 1);
        assert_eq!(ring_distance(MssId(1), MssId(0), 8), 1);
        assert_eq!(ring_distance(MssId(0), MssId(7), 8), 1, "wraps around");
        assert_eq!(ring_distance(MssId(0), MssId(4), 8), 4, "antipode");
        assert_eq!(ring_distance(MssId(3), MssId(3), 8), 0);
    }

    #[test]
    fn static_ctx_collects_effects() {
        let mut ctx: StaticCtx<u8> = StaticCtx::new(3);
        assert_eq!(ctx.num_procs(), 3);
        ctx.send(ProcId(0), ProcId(1), 7);
        ctx.output(ProcId(2), 99);
        assert_eq!(ctx.sends, vec![(ProcId(0), ProcId(1), 7)]);
        assert_eq!(ctx.outputs, vec![(ProcId(2), 99)]);
    }
}
