//! Multi-seed aggregation for experiment tables.
//!
//! Single seeded runs are deterministic but one-sided; the headline tables
//! average each measurement over several seeds and report mean ± standard
//! deviation so run-to-run spread is visible.

use std::fmt;

/// Mean, standard deviation and range of a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarises the samples.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            mean,
            std: var.sqrt(),
            min,
            max,
            n,
        }
    }

    /// Relative spread `std/mean` (0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean.abs()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std)
    }
}

/// Runs `f` for each seed and summarises the results.
///
/// Fans the seeds across worker threads ([`crate::parallel::default_jobs`]
/// of them); results are collected in seed order, so the summary is
/// bit-identical to a sequential loop.
pub fn over_seeds(seeds: impl IntoIterator<Item = u64>, f: impl Fn(u64) -> f64 + Sync) -> Summary {
    over_seeds_jobs(seeds, crate::parallel::default_jobs(), f)
}

/// [`over_seeds`] with an explicit worker count (1 = sequential).
pub fn over_seeds_jobs(
    seeds: impl IntoIterator<Item = u64>,
    jobs: usize,
    f: impl Fn(u64) -> f64 + Sync,
) -> Summary {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let samples = crate::parallel::map_indexed(seeds, jobs, |_, s| f(s));
    Summary::of(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!((s.min, s.max, s.n), (5.0, 5.0, 3));
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.to_string(), "5.00 ± 0.00");
    }

    #[test]
    fn summary_basic_statistics() {
        let s = Summary::of(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std - 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn over_seeds_feeds_each_seed() {
        let s = over_seeds(0..4, |seed| seed as f64);
        assert_eq!(s.mean, 1.5);
        assert_eq!(s.n, 4);
    }
}
