//! End-to-end runs of the three group-location strategies: delivery audit,
//! cost shapes, view maintenance, and the paper's comparative claims.

use mobidist_group::prelude::*;
use mobidist_net::prelude::*;
use std::collections::BTreeSet;

fn members(n: usize) -> Vec<MhId> {
    (0..n as u32).map(MhId).collect()
}

fn run<S: LocationStrategy>(
    cfg: NetworkConfig,
    strategy: S,
    wl: GroupWorkload,
    horizon: u64,
) -> (GroupReport, Simulation<GroupHarness<S>>) {
    let mut sim = Simulation::new(cfg, GroupHarness::new(strategy, wl));
    sim.run_until(SimTime::from_ticks(horizon));
    let r = sim.protocol().report();
    (r, sim)
}

// ------------------------------------------------------- pure search ----

#[test]
fn pure_search_delivers_everything_static() {
    let g = members(6);
    let cfg = NetworkConfig::new(4, 6).with_seed(1);
    let wl = GroupWorkload::new(g.clone(), 8, 50);
    let (r, _) = run(cfg, PureSearch::new(g), wl, 1_000_000);
    assert_eq!(r.sent, 8);
    assert_eq!(r.missed, 0, "{r:?}");
    assert_eq!(r.duplicates, 0);
    assert_eq!(r.expected, 8 * 5);
    assert_eq!(r.delivered, 40);
}

#[test]
fn pure_search_cost_matches_paper_formula() {
    // Static network, one message: (|G|−1)(2C_w + C_s), exactly.
    let g = members(8);
    let cfg = NetworkConfig::new(4, 8).with_seed(2);
    let wl = GroupWorkload::new(g.clone(), 1, 10);
    let (r, sim) = run(cfg, PureSearch::new(g), wl, 1_000_000);
    assert_eq!(r.missed, 0);
    let c = sim.kernel().config().cost;
    assert_eq!(sim.ledger().total_cost(), 7 * c.mh_to_mh());
}

#[test]
fn pure_search_cost_is_mobility_independent() {
    let g = members(6);
    let measure = |dwell: Option<u64>| -> u64 {
        let mut cfg = NetworkConfig::new(6, 6).with_seed(3);
        if let Some(d) = dwell {
            cfg = cfg.with_mobility(MobilityConfig::moving(d));
        }
        let wl = GroupWorkload::new(g.clone(), 20, 200);
        let (r, sim) = run(cfg, PureSearch::new(g.clone()), wl, 1_000_000);
        assert_eq!(r.sent, 20);
        // Normalize: cost per send (re-searches for mid-move targets add
        // noise; they are part of search cost).
        sim.ledger().total_cost()
    };
    let static_cost = measure(None);
    let mobile_cost = measure(Some(500));
    // Identical number of messages; search price per copy unchanged. Allow
    // a little headroom for re-searches of mid-move members.
    let per = static_cost as f64;
    assert!(
        (mobile_cost as f64) < per * 1.35,
        "pure search cost should not grow with mobility: {static_cost} vs {mobile_cost}"
    );
}

#[test]
fn pure_search_disconnected_members_are_skipped() {
    let g = members(5);
    let cfg = NetworkConfig::new(3, 5).with_seed(4);
    let wl = GroupWorkload::new(g.clone(), 3, 100);
    let mut sim = Simulation::new(cfg, GroupHarness::new(PureSearch::new(g), wl));
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(4)));
    sim.run_until(SimTime::from_ticks(1_000_000));
    let r = sim.protocol().report();
    // mh4 was disconnected at send time, so it is not an expected receiver.
    assert_eq!(r.sent, 3);
    assert_eq!(r.missed, 0, "{r:?}");
    assert_eq!(r.expected, 3 * 3);
    assert!(sim.ledger().custom("ps_undeliverable") > 0);
}

// ----------------------------------------------------- always inform ----

#[test]
fn always_inform_delivers_everything_static() {
    let g = members(6);
    let cfg = NetworkConfig::new(4, 6).with_seed(5);
    let wl = GroupWorkload::new(g.clone(), 8, 50);
    let (r, sim) = run(cfg, AlwaysInform::new(g), wl, 1_000_000);
    assert_eq!(r.missed, 0, "{r:?}");
    assert_eq!(r.duplicates, 0);
    // No moves → zero searches: the whole point of the directory.
    assert_eq!(sim.ledger().searches, 0);
}

#[test]
fn always_inform_static_cost_matches_paper_formula() {
    // One message, static: (|G|−1)(2C_w + C_f) — but members in the
    // sender's own cell need no fixed hop, so the measured value is the
    // formula minus C_f per co-located member. Use one member per cell to
    // hit the formula exactly.
    let g = members(5);
    let cfg = NetworkConfig::new(5, 5).with_seed(6); // round-robin: 1 per cell
    let wl = GroupWorkload::new(g.clone(), 1, 10);
    let (r, sim) = run(cfg, AlwaysInform::new(g), wl, 1_000_000);
    assert_eq!(r.missed, 0);
    let c = sim.kernel().config().cost;
    assert_eq!(
        sim.ledger().total_cost(),
        4 * (2 * c.c_wireless + c.c_fixed)
    );
}

#[test]
fn always_inform_updates_directories_after_moves() {
    let g = members(4);
    let cfg = NetworkConfig::new(4, 4).with_seed(7);
    let wl = GroupWorkload::new(g.clone(), 0, 100);
    let mut sim = Simulation::new(cfg, GroupHarness::new(AlwaysInform::new(g), wl));
    sim.with_ctx(|ctx, _| ctx.initiate_move(MhId(0), Some(MssId(3))));
    sim.run_to_quiescence(1_000_000);
    let s = sim.protocol().strategy();
    for owner in members(4) {
        if owner != MhId(0) {
            assert_eq!(
                s.recorded_location(owner, MhId(0)),
                Some(MssId(3)),
                "{owner} must learn the new location"
            );
        }
    }
    assert_eq!(sim.ledger().custom("ai_location_updates"), 1);
}

#[test]
fn always_inform_cost_grows_with_mobility_ratio() {
    let g = members(6);
    let measure = |dwell: u64| -> (f64, u64) {
        let cfg = NetworkConfig::new(6, 6)
            .with_seed(8)
            .with_mobility(MobilityConfig::moving(dwell));
        let wl = GroupWorkload::new(g.clone(), 15, 300);
        let (r, sim) = run(cfg, AlwaysInform::new(g.clone()), wl, 1_000_000);
        (r.mobility_ratio(), sim.ledger().total_cost())
    };
    let (slow_ratio, slow_cost) = measure(3_000);
    let (fast_ratio, fast_cost) = measure(300);
    assert!(fast_ratio > slow_ratio, "{fast_ratio} vs {slow_ratio}");
    assert!(
        fast_cost > slow_cost,
        "more moves ⇒ more update traffic: {fast_cost} vs {slow_cost}"
    );
}

#[test]
fn always_inform_stale_entries_fall_back_to_search() {
    let g = members(4);
    let cfg = NetworkConfig::new(4, 4)
        .with_seed(9)
        .with_mobility(MobilityConfig::moving(200));
    let wl = GroupWorkload::new(g.clone(), 25, 60);
    let (r, sim) = run(
        cfg,
        AlwaysInform::with_stale_policy(g, StalePolicy::Search),
        wl,
        2_000_000,
    );
    // With the search fallback, misses should stay rare (only mid-move
    // races), and any stale hit is visible in the counter.
    assert!(
        r.delivery_ratio() > 0.9,
        "fallback keeps delivery high: {r:?}"
    );
    let _ = sim.ledger().custom("ai_stale_fallbacks"); // may be 0 on calm seeds
}

// ----------------------------------------------------- location view ----

#[test]
fn location_view_delivers_everything_static() {
    let g = members(8);
    let cfg = NetworkConfig::new(4, 8).with_seed(10);
    let wl = GroupWorkload::new(g.clone(), 10, 50);
    let (r, sim) = run(cfg, LocationView::new(g, MssId(0)), wl, 1_000_000);
    assert_eq!(r.missed, 0, "{r:?}");
    assert_eq!(r.duplicates, 0);
    assert_eq!(sim.ledger().searches, 0, "LV never searches");
}

#[test]
fn location_view_static_cost_matches_paper_formula() {
    // One message, members clustered in 2 cells of 4 MSSs:
    // C_w (uplink) + (|LV|−1)·C_f + (|G|−1)·C_w (downlinks; sender excluded).
    let g = members(6);
    let cfg = NetworkConfig::new(4, 6)
        .with_seed(11)
        .with_placement(Placement::Clustered { cells: 2 });
    let wl = GroupWorkload::new(g.clone(), 1, 10);
    let (r, sim) = run(cfg, LocationView::new(g, MssId(0)), wl, 1_000_000);
    assert_eq!(r.missed, 0);
    let c = sim.kernel().config().cost;
    // C_w (uplink) + (|LV|−1 = 1)·C_f + 5 downlinks.
    let expected = c.c_wireless + c.c_fixed + 5 * c.c_wireless;
    assert_eq!(sim.ledger().total_cost(), expected);
}

#[test]
fn location_view_tracks_significant_moves_only() {
    let g = members(4);
    // Two members in each of cells 0,1 (clustered placement over 4 MSSs).
    let cfg = NetworkConfig::new(4, 4)
        .with_seed(12)
        .with_placement(Placement::Clustered { cells: 2 });
    let wl = GroupWorkload::new(g.clone(), 0, 100);
    let mut sim = Simulation::new(cfg, GroupHarness::new(LocationView::new(g, MssId(0)), wl));
    // Non-significant move: mh0 goes from cell0 to cell1 (both in LV, and
    // cell0 still hosts mh2).
    sim.with_ctx(|ctx, _| ctx.initiate_move(MhId(0), Some(MssId(1))));
    sim.run_to_quiescence(1_000_000);
    {
        let s = sim.protocol().strategy();
        assert_eq!(s.significant_moves(), 0, "intra-view move with survivors");
        assert_eq!(s.view().len(), 2);
        assert!(s.is_consistent());
    }
    // Significant move: mh2 (last member in cell0) moves to cell3 (outside
    // the view) — one delete AND one add.
    sim.with_ctx(|ctx, _| ctx.initiate_move(MhId(2), Some(MssId(3))));
    sim.run_to_quiescence(2_000_000);
    let s = sim.protocol().strategy();
    assert_eq!(s.significant_moves(), 2, "one add + one delete");
    let want: BTreeSet<MssId> = [MssId(1), MssId(3)].into_iter().collect();
    assert_eq!(*s.view(), want);
    assert!(s.is_consistent());
}

#[test]
fn location_view_stays_consistent_under_churn() {
    let g = members(8);
    let cfg = NetworkConfig::new(6, 8)
        .with_seed(13)
        .with_mobility(MobilityConfig::moving(150));
    let wl = GroupWorkload::new(g.clone(), 0, 100);
    let mut sim = Simulation::new(cfg, GroupHarness::new(LocationView::new(g, MssId(0)), wl));
    sim.run_until(SimTime::from_ticks(20_000));
    // Under live churn the copies are transiently out of sync by design;
    // the quiescent-convergence property is covered by
    // `location_view_tracks_significant_moves_only` and the proptest suite.
    // Here we check the live run's bookkeeping stays within bounds.
    let s = sim.protocol().strategy();
    assert!(s.member_moves() > 0);
    assert!(s.max_view_size() <= 6);
}

#[test]
fn location_view_size_stays_small_for_localised_groups() {
    let g = members(12);
    let cfg = NetworkConfig::new(12, 12)
        .with_seed(14)
        .with_placement(Placement::Clustered { cells: 3 })
        .with_mobility(MobilityConfig {
            enabled: true,
            mean_dwell: 300,
            mean_gap: 10,
            pattern: MovePattern::Locality {
                p_local: 0.95,
                home_span: 3,
            },
        });
    let wl = GroupWorkload::new(g.clone(), 20, 150);
    let (r, sim) = run(cfg, LocationView::new(g.clone(), MssId(0)), wl, 1_000_000);
    let s = sim.protocol().strategy();
    assert!(
        s.max_view_size() < g.len(),
        "|LV| = {} should stay below |G| = {}",
        s.max_view_size(),
        g.len()
    );
    assert!(
        s.significant_fraction() < 0.9,
        "locality makes many moves non-significant: f = {}",
        s.significant_fraction()
    );
    assert!(r.delivery_ratio() > 0.85, "{r:?}");
}

#[test]
fn location_view_beats_always_inform_on_high_mobility_ratio() {
    // High MOB/MSG with a localised group: LV pays only for significant
    // moves, AI pays a full directory broadcast for every move.
    let g = members(8);
    let build_cfg = |seed| {
        NetworkConfig::new(8, 8)
            .with_seed(seed)
            .with_placement(Placement::Clustered { cells: 2 })
            .with_mobility(MobilityConfig {
                enabled: true,
                mean_dwell: 100,
                mean_gap: 5,
                pattern: MovePattern::Locality {
                    p_local: 0.9,
                    home_span: 2,
                },
            })
    };
    let wl = GroupWorkload::new(g.clone(), 10, 2_000); // sparse messages
    let (_, sim_ai) = run(
        build_cfg(15),
        AlwaysInform::new(g.clone()),
        wl.clone(),
        3_000_000,
    );
    let (_, sim_lv) = run(build_cfg(15), LocationView::new(g, MssId(0)), wl, 3_000_000);
    let ai = sim_ai.ledger().total_cost();
    let lv = sim_lv.ledger().total_cost();
    assert!(
        lv < ai / 2,
        "location view must win big at high MOB/MSG: lv={lv} ai={ai}"
    );
}

#[test]
fn pure_search_beats_always_inform_when_moves_dominate() {
    // MOB/MSG ≫ 1: AI's update traffic dwarfs PS's per-send search cost.
    let g = members(6);
    let build_cfg = |seed| {
        NetworkConfig::new(6, 6)
            .with_seed(seed)
            .with_mobility(MobilityConfig::moving(80))
    };
    let wl = GroupWorkload::new(g.clone(), 5, 3_000);
    let (_, sim_ps) = run(
        build_cfg(16),
        PureSearch::new(g.clone()),
        wl.clone(),
        3_000_000,
    );
    let (_, sim_ai) = run(build_cfg(16), AlwaysInform::new(g), wl, 3_000_000);
    let ps = sim_ps.ledger().total_cost();
    let ai = sim_ai.ledger().total_cost();
    assert!(
        ps < ai,
        "pure search wins when moves dominate: ps={ps} ai={ai}"
    );
}

#[test]
fn always_inform_beats_pure_search_when_messages_dominate() {
    // MOB/MSG ≈ 0: AI sends at C_f per hop where PS pays C_s per copy.
    let g = members(6);
    let build_cfg = |seed| NetworkConfig::new(6, 6).with_seed(seed);
    let wl = GroupWorkload::new(g.clone(), 30, 50);
    let (_, sim_ps) = run(
        build_cfg(17),
        PureSearch::new(g.clone()),
        wl.clone(),
        2_000_000,
    );
    let (_, sim_ai) = run(build_cfg(17), AlwaysInform::new(g), wl, 2_000_000);
    let ps = sim_ps.ledger().total_cost();
    let ai = sim_ai.ledger().total_cost();
    assert!(
        ai < ps,
        "always inform wins when messages dominate: ai={ai} ps={ps}"
    );
}

#[test]
fn location_view_wireless_load_is_constant_per_member() {
    // The static segment absorbs the update traffic: MH energy per message
    // is one tx for the sender plus one rx per recipient, regardless of
    // mobility.
    let g = members(6);
    let cfg = NetworkConfig::new(6, 6)
        .with_seed(18)
        .with_mobility(MobilityConfig::moving(400));
    let wl = GroupWorkload::new(g.clone(), 12, 150);
    let (r, sim) = run(cfg, LocationView::new(g, MssId(0)), wl, 2_000_000);
    let energy = sim.ledger().total_energy();
    // Upper bound: each sent message costs 1 tx + (|G|−1) rx = 6 ops.
    assert!(
        energy <= r.sent * 6,
        "no wireless overhead beyond data delivery: {energy} > {}",
        r.sent * 6
    );
}

#[test]
fn deterministic_replay_group_runs() {
    let g = members(6);
    let go = || {
        let cfg = NetworkConfig::new(4, 6)
            .with_seed(77)
            .with_mobility(MobilityConfig::moving(250));
        let wl = GroupWorkload::new(g.clone(), 10, 100);
        let (r, sim) = run(cfg, LocationView::new(g.clone(), MssId(0)), wl, 1_000_000);
        (r, sim.ledger().clone())
    };
    let (ra, la) = go();
    let (rb, lb) = go();
    assert_eq!(ra, rb);
    assert_eq!(la, lb);
}

#[test]
fn cell_broadcast_cuts_wireless_cost_without_losing_messages() {
    // Members packed into 2 cells: per-member downlinks cost |G|−1 wireless
    // sends per message; a cell broadcast costs |LV| (plus the uplink).
    let g = members(8);
    let cfg = || {
        NetworkConfig::new(4, 8)
            .with_seed(21)
            .with_placement(Placement::Clustered { cells: 2 })
    };
    let wl = GroupWorkload::new(g.clone(), 10, 50);

    let (r_uni, sim_uni) = run(
        cfg(),
        LocationView::new(g.clone(), MssId(0)),
        wl.clone(),
        1_000_000,
    );
    let (r_bc, sim_bc) = run(
        cfg(),
        LocationView::new(g, MssId(0)).with_cell_broadcast(),
        wl,
        1_000_000,
    );

    assert_eq!(r_uni.missed, 0);
    assert_eq!(r_bc.missed, 0, "{r_bc:?}");
    assert_eq!(r_bc.duplicates, 0, "{r_bc:?}");
    assert_eq!(r_bc.delivered, r_uni.delivered);
    // 10 msgs × (1 uplink + 2 cells) = 30 transmissions vs 10 × (1 + 7) = 80.
    assert_eq!(sim_bc.ledger().wireless_msgs, 30);
    assert_eq!(sim_uni.ledger().wireless_msgs, 80);
    // Receivers still pay reception energy either way.
    assert_eq!(
        sim_bc.ledger().total_energy(),
        sim_uni.ledger().total_energy() + 10, // + sender overhears its own bcast
    );
}
