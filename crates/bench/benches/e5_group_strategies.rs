//! Regenerates E5: group-message cost vs mobility-to-message ratio (Section 4).
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_group::e5_group_strategies(quick));
}
