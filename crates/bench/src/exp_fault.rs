//! **E14** — robustness grid: the proxy-structured algorithms (L2, L2C,
//! R2) are swept across a mobility-model × fault-injection grid and
//! compared on throughput, tail latency, fairness and message cost while
//! stations crash, the wired plane partitions, and handoff storms hit.
//!
//! Every cell reuses the E13 fixed-work serving machinery
//! ([`crate::exp_serve`]): each requester issues a fixed number of
//! requests, the run executes until all of them completed, and the cell
//! asserts the safety checker's verdict — zero mutual-exclusion violations
//! and zero ordering-key regressions — *on every fault cell*, which is the
//! point of the experiment: the algorithms stay safe and finish their work
//! through crashes, partitions and storms; faults only move the
//! throughput/latency needle.
//!
//! Faults are scheduled early (tick 5 000, `FAULT_AT`) so they land while the
//! serving workload is in full swing, and each cell additionally
//! reconciles the run's fault ledger counters against the schedule it was
//! configured with ([`check_fault_accounting`]) — a cell that silently
//! skipped its fault would fail the table build, not just look suspiciously
//! fast.
//!
//! The grid is fanned out as independent tasks and assembled by index, so
//! the table is byte-identical at any `--jobs` (and at any
//! `MOBIDIST_SHARDS`: E14 runs on the generic kernel, which never consults
//! the shard knob).

use crate::exp_serve::{run_serve_labeled, ServeAlgo, ServePools, ServeRun};
use crate::parallel::{default_jobs, map_indexed_with};
use crate::table::{f2, Table};
use mobidist_core::prelude::*;
use mobidist_net::prelude::*;

/// Stations in every E14 cell.
const M: usize = 8;

/// Requests per requester (fixed work per cell is `N × REQS`).
const REQS: usize = 2;

/// Tick at which every fault fires: early enough to land inside the
/// serving run's first chunk, late enough that the workload is warmed up.
const FAULT_AT: u64 = 5_000;

/// The algorithms E14 compares — the proxy-structured trio. L1 and R1 are
/// excluded: they run on the MHs directly, so the MSS-level fault plane
/// exercises them only through deferred handoffs (E13 already covers
/// their serving behaviour).
pub const E14_ALGOS: [ServeAlgo; 3] = [ServeAlgo::L2, ServeAlgo::L2c, ServeAlgo::R2];

/// Run-cache site labels for the E14 construction sites (one per
/// algorithm; labels name sites, see [`crate::cache`]).
fn label_of(algo: ServeAlgo) -> &'static str {
    match algo {
        ServeAlgo::L2 => "e14_l2",
        ServeAlgo::L2c => "e14_l2c",
        ServeAlgo::R2 => "e14_r2",
        // Unused by E14; keep a stable label anyway so a future grid
        // extension cannot silently alias an E13 cache site.
        ServeAlgo::L1 => "e14_l1",
        ServeAlgo::R1 => "e14_r1",
    }
}

/// The mobility axis: named [`MovePattern`]s from the model zoo. Quick
/// mode keeps the two extremes (memoryless uniform vs. spatially
/// correlated waypoint); the full grid adds direction persistence and
/// group mobility.
pub fn mobility_grid(quick: bool) -> Vec<(&'static str, MovePattern)> {
    let mut grid = vec![
        ("uniform", MovePattern::UniformRandom),
        ("waypoint", MovePattern::RandomWaypoint { leg: 6 }),
    ];
    if !quick {
        grid.push(("gauss-markov", MovePattern::GaussMarkov { memory: 0.8 }));
        grid.push((
            "platoon",
            MovePattern::GroupPlatoon {
                groups: 4,
                p_follow: 0.9,
            },
        ));
    }
    grid
}

/// The fault axis: named [`FaultConfig`] schedules. `n` is the cell's MH
/// population (the storm moves half of it). Quick mode keeps the
/// fault-free baseline and the crash; the full grid adds the partition
/// and the handoff storm.
pub fn fault_grid(quick: bool, n: usize) -> Vec<(&'static str, FaultConfig)> {
    let mut grid = vec![
        ("none", FaultConfig::none()),
        (
            "crash",
            FaultConfig::none().with_event(
                FAULT_AT,
                FaultKind::MssCrash {
                    mss: 1,
                    down_for: 20_000,
                },
            ),
        ),
    ];
    if !quick {
        grid.push((
            "partition",
            FaultConfig::none().with_event(
                FAULT_AT,
                FaultKind::Partition {
                    cut: M as u32 / 2,
                    heal_after: 15_000,
                },
            ),
        ));
        grid.push((
            "storm",
            FaultConfig::none().with_event(
                FAULT_AT,
                FaultKind::HandoffStorm {
                    count: (n / 2) as u32,
                },
            ),
        ));
    }
    grid
}

/// Population and workload knobs of one mode.
fn knobs(quick: bool) -> (usize, u64, u64) {
    // (requesters, think ticks, mean dwell ticks)
    if quick {
        (16, 200, 1_000)
    } else {
        (64, 500, 2_000)
    }
}

/// Network configuration of one E14 cell. The seed is a pure function of
/// the cell's grid coordinates, so the perfreport robustness section
/// (which replays a sub-grid) hits the same run-cache entries as the
/// table.
fn e14_cfg(
    n: usize,
    dwell: u64,
    mob_idx: usize,
    pattern: MovePattern,
    fault_idx: usize,
    fault: &FaultConfig,
) -> NetworkConfig {
    NetworkConfig::new(M, n)
        .with_seed(1400 + (mob_idx * 16 + fault_idx) as u64)
        .with_mobility(MobilityConfig::moving(dwell).with_pattern(pattern))
        .with_fault(fault.clone())
}

/// Workload of one E14 cell.
fn e14_wl(n: usize, think: u64) -> WorkloadConfig {
    WorkloadConfig::all_mhs(n, REQS)
        .with_think(think)
        .with_hold(10)
}

/// Total fault events recorded by a run's ledger (crashes, recoveries,
/// partitions, heals and storms together).
pub fn fault_events(r: &ServeRun) -> u64 {
    [
        "fault_crashes",
        "fault_recovers",
        "fault_partitions",
        "fault_heals",
        "fault_storms",
    ]
    .iter()
    .map(|name| r.ledger.custom(name))
    .sum()
}

/// Reconciles a run's fault ledger counters against the named schedule it
/// was configured with. Panics on mismatch — a fault cell whose fault did
/// not actually fire (or a baseline cell that somehow recorded one) is a
/// harness bug, not a data point.
pub fn check_fault_accounting(fault: &str, r: &ServeRun) {
    let count = |name: &str| r.ledger.custom(name);
    match fault {
        "none" => assert_eq!(fault_events(r), 0, "fault-free cell recorded fault events"),
        "crash" => {
            assert_eq!(count("fault_crashes"), 1, "crash cell: crash did not fire");
            assert_eq!(
                count("fault_recovers"),
                1,
                "crash cell: recovery did not fire"
            );
        }
        "partition" => {
            assert_eq!(
                count("fault_partitions"),
                1,
                "partition cell: cut did not fire"
            );
            assert_eq!(count("fault_heals"), 1, "partition cell: heal did not fire");
        }
        "storm" => {
            assert_eq!(count("fault_storms"), 1, "storm cell: storm did not fire");
        }
        other => panic!("unknown fault cell name {other:?}"),
    }
}

/// **E14** — the robustness table. One row per
/// (mobility, fault, algorithm); every row is a completed fixed-work run
/// with safety asserted and fault accounting reconciled.
pub fn e14_fault(quick: bool) -> Table {
    let (n, think, dwell) = knobs(quick);
    let mobilities = mobility_grid(quick);
    let faults = fault_grid(quick, n);
    let mut t = Table::new(
        format!("E14 — robustness: mobility × faults under load (M = {M}, N = {n}, {REQS} req/MH)"),
        &[
            "mobility",
            "fault",
            "algo",
            "done",
            "thr/ktick",
            "p95",
            "jain",
            "wifi/entry",
            "wired/entry",
            "faults",
        ],
    );
    let mut tasks: Vec<(ServeAlgo, NetworkConfig, WorkloadConfig)> = Vec::new();
    let mut meta: Vec<(&'static str, &'static str, ServeAlgo)> = Vec::new();
    for (mi, (mob_name, pattern)) in mobilities.iter().enumerate() {
        for (fi, (fault_name, fault)) in faults.iter().enumerate() {
            for algo in E14_ALGOS {
                tasks.push((
                    algo,
                    e14_cfg(n, dwell, mi, *pattern, fi, fault),
                    e14_wl(n, think),
                ));
                meta.push((mob_name, fault_name, algo));
            }
        }
    }
    let runs = map_indexed_with(
        tasks,
        default_jobs(),
        ServePools::new,
        |pools, _, (algo, cfg, wl)| run_serve_labeled(pools, algo, label_of(algo), cfg, wl),
    );
    for ((mob_name, fault_name, algo), r) in meta.into_iter().zip(&runs) {
        check_fault_accounting(fault_name, r);
        let faults_cell = match fault_events(r) {
            0 => "-".into(),
            k => k.to_string(),
        };
        t.push(vec![
            mob_name.into(),
            fault_name.into(),
            algo.name().into(),
            r.completed.to_string(),
            f2(r.throughput_per_ktick()),
            r.p95.to_string(),
            f2(r.jain),
            f2(r.wireless_per_entry()),
            f2(r.fixed_per_entry()),
            faults_cell,
        ]);
    }
    t
}

/// One algorithm's point in perfreport's `robustness` section: a fault
/// cell compared against its own fault-free baseline on the waypoint
/// mobility row.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessPoint {
    /// Algorithm display name.
    pub algo: &'static str,
    /// Fault cell name (`crash`, `partition`, `storm`).
    pub fault: &'static str,
    /// Entries per 1000 simulated ticks in the fault cell.
    pub throughput_per_ktick: f64,
    /// 95th-percentile request→grant wait in the fault cell.
    pub p95: u64,
    /// Makespan of the fault cell relative to the fault-free baseline
    /// (1.0 = no slowdown; the fault plane charges no extra messages, so
    /// time is where fault cost shows).
    pub slowdown: f64,
    /// Fault events recorded by the cell's ledger (crash+recover etc.).
    pub fault_events: u64,
}

/// The headline robustness comparison: every E14 algorithm on the
/// waypoint-mobility row, every fault cell against its fault-free
/// baseline. Reuses the exact E14 table cells, so a warm run cache serves
/// both this and the table.
pub fn robustness_comparison(quick: bool) -> Vec<RobustnessPoint> {
    let (n, think, dwell) = knobs(quick);
    let mobilities = mobility_grid(quick);
    let faults = fault_grid(quick, n);
    // Waypoint is present in both quick and full grids.
    let mob_idx = mobilities
        .iter()
        .position(|(name, _)| *name == "waypoint")
        .expect("waypoint row in the mobility grid");
    let pattern = mobilities[mob_idx].1;
    let mut pools = ServePools::new();
    let mut points = Vec::new();
    for algo in E14_ALGOS {
        let mut baseline: Option<ServeRun> = None;
        for (fi, (fault_name, fault)) in faults.iter().enumerate() {
            let r = run_serve_labeled(
                &mut pools,
                algo,
                label_of(algo),
                e14_cfg(n, dwell, mob_idx, pattern, fi, fault),
                e14_wl(n, think),
            );
            check_fault_accounting(fault_name, &r);
            if *fault_name == "none" {
                baseline = Some(r);
                continue;
            }
            let base = baseline
                .as_ref()
                .expect("fault grid lists the fault-free baseline first");
            points.push(RobustnessPoint {
                algo: algo.name(),
                fault: fault_name,
                throughput_per_ktick: r.throughput_per_ktick(),
                p95: r.p95,
                slowdown: r.makespan as f64 / base.makespan.max(1) as f64,
                fault_events: fault_events(&r),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_quick_grid_completes_every_cell_with_faults_accounted() {
        let t = e14_fault(true);
        // 2 mobilities × 2 faults × 3 algorithms.
        assert_eq!(t.rows.len(), 12);
        let (n, ..) = knobs(true);
        let target = (n * REQS).to_string();
        for row in &t.rows {
            assert_eq!(
                row[3], target,
                "cell {}/{}/{} incomplete",
                row[0], row[1], row[2]
            );
            match row[1].as_str() {
                // Crash + recovery are two ledger events.
                "crash" => assert_eq!(row[9], "2", "crash cell missing fault events"),
                _ => assert_eq!(row[9], "-", "fault-free cell recorded fault events"),
            }
        }
    }

    #[test]
    fn e14_quick_is_deterministic() {
        let a = e14_fault(true);
        let b = e14_fault(true);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn robustness_comparison_reuses_the_grid_and_reports_finite_points() {
        let points = robustness_comparison(true);
        // 3 algorithms × 1 fault cell (quick grid: none + crash).
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.fault, "crash");
            assert_eq!(p.fault_events, 2);
            assert!(p.throughput_per_ktick.is_finite() && p.throughput_per_ktick > 0.0);
            assert!(p.slowdown.is_finite() && p.slowdown > 0.0);
        }
    }
}
