//! Pins the EXPERIMENTS.md record for the L2C batch-size cap at N = 64
//! closed-loop requesters over 8 MSSs, in saturation (think = 50).
//!
//! The measured result — deliberately pinned as a *negative* one — is that
//! capping does NOT improve the wait-time Jain index: uncapped combining
//! already grants batch members in FIFO station order, so splitting a
//! batch only pushes the leftover members out by a full token rotation.
//! Jain slips slightly (≈0.998 → ≈0.992 at cap = 4) and the maximum wait
//! grows, while the combining-round count strictly rises. What the cap
//! buys is a bound on per-round token-holding time (no station can drain
//! an unbounded queue in one grant), not better mean-wait fairness. The
//! assertions below hold the direction and the band of that record so a
//! behaviour drift shows up as a test failure, not a stale document.

use mobidist_bench::stats::jain;
use mobidist_core::prelude::*;
use mobidist_net::prelude::*;
use mobidist_net::time::SimTime;
use std::collections::BTreeMap;

const M: usize = 8;
const N: usize = 64;
const REQS: usize = 16;
const THINK: u64 = 50;

/// Runs the fixed-work N=64 saturation cell and reduces it to
/// (jain over per-MH mean waits, combining rounds, max wait).
fn serve_at(cap: Option<u32>) -> (f64, u64, u64) {
    let mut algo = L2c::new(M);
    if let Some(cap) = cap {
        algo = algo.with_batch_cap(cap);
    }
    let wl = WorkloadConfig::all_mhs(N, REQS)
        .with_think(THINK)
        .with_hold(10);
    let target = (N * REQS) as u64;
    let cfg = NetworkConfig::new(M, N)
        .with_seed(64)
        .with_mobility(MobilityConfig::moving(2_000));
    let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
    let mut t = 100_000u64;
    while sim.protocol().report().completed < target {
        assert!(t <= 500_000_000, "fixed work did not finish");
        sim.run_until(SimTime::from_ticks(t));
        t += 100_000;
    }
    let report = sim.protocol().report();
    assert_eq!(report.safety_violations, 0);
    assert_eq!(report.order_violations, 0);
    assert_eq!(report.completed, target);
    let mut per_mh: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    let mut max_wait = 0u64;
    for ep in sim.protocol().checker().episodes() {
        let e = per_mh.entry(ep.mh.0).or_insert((0, 0));
        e.0 += ep.wait();
        e.1 += 1;
        max_wait = max_wait.max(ep.wait());
    }
    let means: Vec<f64> = per_mh
        .values()
        .map(|(sum, n)| *sum as f64 / *n as f64)
        .collect();
    (
        jain(&means),
        sim.ledger().custom("combine_batches"),
        max_wait,
    )
}

#[test]
fn batch_cap_trades_rounds_for_bounded_batches_not_jain_at_n64() {
    let (jain_uncapped, batches_uncapped, max_uncapped) = serve_at(None);
    let (jain_capped, batches_capped, max_capped) = serve_at(Some(4));
    // The cap splits oversize batches, so the capped run takes strictly
    // more combining rounds and mean batch size drops below the cap.
    assert!(
        batches_capped > batches_uncapped,
        "cap did not split batches: {batches_capped} vs {batches_uncapped}"
    );
    let target = (N * REQS) as f64;
    assert!(
        target / batches_capped as f64 <= 4.0,
        "capped mean batch exceeds the cap"
    );
    // The recorded direction: Jain does NOT improve — it slips slightly
    // (leftovers wait out a token rotation) and the max wait grows.
    assert!(
        jain_capped <= jain_uncapped,
        "record says the cap must not improve Jain here: {jain_capped:.3} vs {jain_uncapped:.3}"
    );
    assert!(
        max_capped >= max_uncapped,
        "record says the cap lengthens the worst wait: {max_capped} vs {max_uncapped}"
    );
    // And the recorded band: the slip is small — combining stays fair.
    assert!(
        jain_uncapped > 0.97 && jain_capped > 0.97,
        "jain indices left the recorded band: {jain_uncapped:.3}, {jain_capped:.3}"
    );
    assert!(
        jain_uncapped - jain_capped < 0.02,
        "jain slip larger than the recorded ~0.006: {:.3}",
        jain_uncapped - jain_capped
    );
    println!(
        "uncapped: jain={jain_uncapped:.3} batches={batches_uncapped} max_wait={max_uncapped}; \
         cap=4: jain={jain_capped:.3} batches={batches_capped} max_wait={max_capped}"
    );
}
