//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties in simulated time
//! are broken by insertion order, so a run is a total order fully determined
//! by the configuration seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    body: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Min-heap of timed events with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use mobidist_net::event::EventQueue;
/// use mobidist_net::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ticks(5), "later");
/// q.push(SimTime::from_ticks(2), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.ticks(), e), (2, "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `body` at `time`.
    pub fn push(&mut self, time: SimTime, body: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, body });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.body))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(30), 3);
        q.push(SimTime::from_ticks(10), 1);
        q.push(SimTime::from_ticks(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(7);
        for i in 0..50 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ticks(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(4)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5), 'b');
        q.push(SimTime::from_ticks(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_ticks(3), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }
}
