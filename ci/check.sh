#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests.
#
# Run from the repository root:
#   ./ci/check.sh            # full gate
#   ./ci/check.sh --fast     # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --workspace --release
fi

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test"
cargo test --workspace -q

if [[ $fast -eq 0 ]]; then
  # Scheduler-equivalence and determinism gates in release mode: the timing
  # wheel must replay the reference heap's order, and sweeps must render
  # byte-identical tables at any worker count — with optimizations on, since
  # that's how experiment tables are produced.
  echo "==> release determinism gates"
  cargo test --release -q -p mobidist-net --test wheel_equivalence
  cargo test --release -q -p mobidist-bench --test determinism
  cargo test --release -q -p mobidist-bench --test sim_reuse
  cargo test --release -q -p mobidist-bench --test trace_check
fi

echo "==> OK"
