//! Quickstart: mutual exclusion for roaming mobile hosts in five minutes.
//!
//! Builds a two-tier network (4 support stations, 16 mobile hosts), lets
//! every host compete for a shared critical section twice while roaming
//! between cells, and prints the invariant report and the cost ledger —
//! the same measurements the paper's comparisons are built on.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mobidist::prelude::*;

fn main() {
    // The two-tier system model of the paper: M = 4 fixed support
    // stations, N = 16 mobile hosts, hosts switch cells every ~500 ticks.
    let cfg = NetworkConfig::new(4, 16)
        .with_seed(42)
        .with_mobility(MobilityConfig::moving(500));

    // Closed-loop workload: every mobile host thinks, requests the critical
    // section, holds it, releases — twice.
    let workload = WorkloadConfig::all_mhs(16, 2);

    // Algorithm L2: Lamport's mutual exclusion run *at the support
    // stations* on behalf of the mobile hosts — the paper's redesign.
    let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(4), workload));
    sim.run_until(SimTime::from_ticks(5_000_000));

    let report = sim.protocol().report();
    println!("algorithm : L2 (Lamport at the MSS proxies)");
    println!("issued    : {}", report.issued);
    println!("completed : {}", report.completed);
    println!("safety    : {} violations", report.safety_violations);
    println!("ordering  : {} violations", report.order_violations);
    println!("mean wait : {:.1} ticks", report.mean_wait);
    println!();
    println!("--- cost ledger ---");
    println!("{}", sim.ledger());
    println!();

    // The paper's headline: the mobile hosts touched the wireless network
    // only 3 times per execution, no matter how much they moved.
    let per_exec = sim.ledger().wireless_msgs as f64 / report.completed as f64;
    println!("wireless messages per execution: {per_exec:.2} (paper predicts 3)");

    assert!(report.is_clean_and_live());
}
