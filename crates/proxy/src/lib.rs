//! # mobidist-proxy — separating mobility from algorithm design
//!
//! Section 5 of *"Structuring Distributed Algorithms for Mobile Hosts"*
//! (ICDCS 1994) proposes associating a **proxy** — a fixed host — with each
//! mobile host, and running distributed algorithms *at the proxies*: one
//! layer executes an unchanged static-host algorithm over the proxies, the
//! other layer handles mobility (input/output routing, location updates or
//! handoffs). The association is characterised by the proxy's **scope**
//! (which MHs it serves: [`ProxyPolicy::Fixed`](framework::ProxyPolicy) vs
//! [`ProxyPolicy::LocalMss`](framework::ProxyPolicy)) and its
//! **obligations** (what it does when its MH moves mid-computation — here,
//! forwarding outputs with a search).
//!
//! ## Example
//!
//! ```
//! use mobidist_proxy::prelude::*;
//! use mobidist_net::prelude::*;
//!
//! let clients: Vec<MhId> = (0..4u32).map(MhId).collect();
//! let rt = ProxyRuntime::new(
//!     EchoService::new(),
//!     clients,
//!     ProxyPolicy::LocalMss,
//!     ProxyWorkload::default(),
//! );
//! let mut sim = Simulation::new(NetworkConfig::new(3, 4).with_seed(1), rt);
//! sim.run_to_quiescence(1_000_000);
//! let r = sim.protocol().report();
//! assert_eq!(r.inputs_sent, r.outputs_delivered);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod framework;

/// Convenient glob import.
pub mod prelude {
    pub use crate::algorithms::{
        Barrier, BarrierMsg, CentralCounter, CounterMsg, EchoService, Fanout,
    };
    pub use crate::framework::{
        ProcId, ProxyPolicy, ProxyReport, ProxyRuntime, ProxyWorkload, PrxMsg, PrxTimer,
        StaticAlgorithm, StaticCtx,
    };
}
