//! # mobidist-bench — the experiment harness
//!
//! Regenerates every cost comparison in *"Structuring Distributed
//! Algorithms for Mobile Hosts"* (ICDCS 1994) as a measured table printed
//! against the paper's closed-form prediction. One `harness = false` bench
//! target exists per experiment (`e0`…`e10`), so
//!
//! ```text
//! cargo bench --workspace
//! ```
//!
//! reprints the paper's entire evaluation. See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Each experiment also has a `quick` mode exercised by unit tests, so the
//! claims are checked on every `cargo test` run as well.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod exp_fault;
pub mod exp_group;
pub mod exp_model;
pub mod exp_mutex;
pub mod exp_proxy;
pub mod exp_scale;
pub mod exp_serve;
pub mod obs;
pub mod parallel;
pub mod stats;
pub mod table;

pub use stats::Summary;
pub use table::Table;
