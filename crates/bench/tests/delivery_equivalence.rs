//! `MOBIDIST_DELIVERY` must never change what an experiment computes.
//!
//! The batched delivery engine coalesces same-(tick, destination) runs and
//! fuses broadcast fan-outs; the unbatched path is the historical
//! one-event-per-message reference. Flipping the knob must leave every
//! experiment table byte-identical — that is the contract the CI
//! delivery-soundness gate enforces with `cmp` at the CLI level, pinned
//! here in-process for the kernel-heavy experiments (E1, E2, E13) and for
//! the sharded kernel at several worker counts.

use mobidist_bench::{exp_mutex, exp_serve};
use mobidist_net::config::DELIVERY_ENV;
use mobidist_net::prelude::*;
use std::sync::Mutex;

/// Serialises the tests in this file: they mutate `MOBIDIST_DELIVERY`,
/// which is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_delivery<T>(value: Option<&str>, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var(DELIVERY_ENV).ok();
    match value {
        Some(v) => std::env::set_var(DELIVERY_ENV, v),
        None => std::env::remove_var(DELIVERY_ENV),
    }
    let out = f();
    match prev {
        Some(v) => std::env::set_var(DELIVERY_ENV, v),
        None => std::env::remove_var(DELIVERY_ENV),
    }
    out
}

#[test]
fn mutex_experiment_tables_are_mode_invariant() {
    let _guard = ENV_LOCK.lock().unwrap();
    let render = || {
        [
            exp_mutex::e1_lamport(true).to_string(),
            exp_mutex::e2_ring(true).to_string(),
        ]
    };
    let batched = with_delivery(Some("batched"), render);
    let unbatched = with_delivery(Some("unbatched"), render);
    let default_mode = with_delivery(None, render);
    assert_eq!(batched, unbatched, "E1/E2 tables diverged across modes");
    assert_eq!(batched, default_mode, "the default must be batched");
}

#[test]
fn serving_benchmark_table_is_mode_invariant() {
    let _guard = ENV_LOCK.lock().unwrap();
    let render = || exp_serve::e13_serving(true).to_string();
    let batched = with_delivery(Some("batched"), render);
    let unbatched = with_delivery(Some("unbatched"), render);
    assert_eq!(batched, unbatched, "E13 table diverged across modes");
}

#[test]
fn sharded_kernel_is_mode_invariant_at_every_worker_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    let spec = ScaleSpec::new(16, 400).with_seed(7).with_horizon(2_000);
    let reference = run_scale_with_mode(&spec, 1, DeliveryMode::Unbatched);
    assert!(reference.ledger.fixed_msgs > 0, "need wired churn traffic");
    for shards in [1, 4, 8] {
        let batched = run_scale_with_mode(&spec, shards, DeliveryMode::Batched);
        assert_eq!(
            batched.digest, reference.digest,
            "digest diverged at {shards} shards"
        );
        assert_eq!(
            batched.ledger, reference.ledger,
            "ledger diverged at {shards} shards"
        );
        assert_eq!(
            batched.events, reference.events,
            "event count diverged at {shards} shards"
        );
        // The env knob must agree with the explicit parameter.
        let via_env = with_delivery(Some("batched"), || run_scale(&spec, shards));
        assert_eq!(via_env.digest, batched.digest);
    }
}
