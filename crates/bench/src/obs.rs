//! Opt-in trace capture for experiment sweeps.
//!
//! When `MOBIDIST_TRACE=<path>` is set (the `experiments` CLI sets it from
//! `--trace <path>`), every traced run attaches a
//! [`JsonlSink`](mobidist_net::obs::JsonlSink) before it starts and writes
//! a `run_begin`/events/`run_end` envelope. Because sweeps fan out across
//! worker threads and one file cannot be appended from many threads without
//! interleaving lines, each worker thread writes its own part file
//! (`<path>.w<K>`); [`merge_worker_files`] then folds the parts into
//! `<path>`, grouping lines by run id — within a run, file order is already
//! `(time, seq)` order because both are monotone per kernel.
//!
//! Run ids come from a process-wide counter, so *which* id a run gets is
//! scheduling-dependent under `--jobs > 1` — but every run's event stream,
//! and therefore every trace-derived count, is byte-deterministic (pinned
//! by the bench crate's `trace_check` test).

use mobidist_net::config::NetworkConfig;
use mobidist_net::fingerprint::Fingerprint;
use mobidist_net::ledger::CostLedger;
use mobidist_net::obs::{jsonl_file_sink, RunMeta, TraceEvent, TraceSink};
use mobidist_net::proto::Protocol;
use mobidist_net::sim::Simulation;
use mobidist_net::time::SimTime;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable naming the trace output path; unset means tracing
/// is disabled and simulations run with no sink installed.
pub const TRACE_ENV: &str = "MOBIDIST_TRACE";

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);
static WORKER_COUNTER: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static WORKER_ID: u64 = WORKER_COUNTER.fetch_add(1, Ordering::Relaxed);
}

/// The trace base path from [`TRACE_ENV`], when tracing is enabled.
pub fn trace_base() -> Option<PathBuf> {
    match std::env::var(TRACE_ENV) {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// The part file this thread appends to for `base`.
fn worker_part(base: &Path) -> PathBuf {
    let w = WORKER_ID.with(|id| *id);
    let mut os = base.as_os_str().to_owned();
    os.push(format!(".w{w}"));
    PathBuf::from(os)
}

/// Attaches a JSONL sink for one labelled run when tracing is enabled
/// (no-op otherwise). Call after the simulation is initialised/reset and
/// before it runs; pair with [`finish_run`] once the run completes.
pub fn install<P: Protocol>(sim: &mut Simulation<P>, label: &str) {
    let Some(base) = trace_base() else { return };
    let run = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let meta = RunMeta::new(run, label, sim.kernel().config());
    match jsonl_file_sink(&worker_part(&base), meta) {
        Ok(sink) => sim.set_trace_sink(Box::new(sink)),
        Err(e) => eprintln!("warning: cannot open trace file: {e}"),
    }
}

/// Ends a traced run: the sink writes its `run_end` ledger summary and is
/// detached. No-op when [`install`] did not attach a sink.
pub fn finish_run<P: Protocol>(sim: &mut Simulation<P>) {
    let _ = sim.finish_trace();
}

/// Opens one trace sink per shard of a space-sharded run (empty when
/// tracing is disabled).
///
/// Each shard records as an independent run — its own run id, a dense
/// per-shard `seq`, and a `run_end` carrying the shard's own ledger — into
/// its own part file, because the shards write concurrently and one append
/// stream cannot be shared. Part suffixes draw from the same counter as
/// per-thread worker parts, so the two namespaces never collide, and
/// [`merge_worker_files`] folds shard parts into the final trace exactly
/// like worker parts: grouped by run id.
pub fn install_shard_sinks(
    label: &str,
    cfg: &NetworkConfig,
    shards: usize,
) -> Vec<Box<dyn TraceSink>> {
    let Some(base) = trace_base() else {
        return Vec::new();
    };
    let mut sinks: Vec<Box<dyn TraceSink>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let run = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
        let part = WORKER_COUNTER.fetch_add(1, Ordering::Relaxed);
        let meta = RunMeta::new(run, label, cfg);
        let mut os = base.as_os_str().to_owned();
        os.push(format!(".w{part}"));
        match jsonl_file_sink(Path::new(&os), meta) {
            Ok(sink) => sinks.push(Box::new(sink)),
            Err(e) => {
                eprintln!("warning: cannot open shard trace file: {e}");
                return Vec::new();
            }
        }
    }
    sinks
}

/// Writes the trace envelope for a run served from the run cache (no-op
/// when tracing is disabled).
///
/// A cache hit replays a stored outcome without executing the kernel, so
/// there is no event stream to capture; instead the run appears in the
/// trace as `run_begin`, a single [`TraceEvent::CacheHit`] carrying the
/// descriptor fingerprint, and a `run_end` built from the **cached**
/// ledger. `tracereport --check` exempts such runs from event-count
/// identity for exactly this reason.
pub fn trace_cached_run(label: &str, cfg: &NetworkConfig, fp: Fingerprint, ledger: &CostLedger) {
    let Some(base) = trace_base() else { return };
    let run = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let meta = RunMeta::new(run, label, cfg);
    match jsonl_file_sink(&worker_part(&base), meta) {
        Ok(mut sink) => {
            sink.record(
                SimTime::ZERO,
                0,
                &TraceEvent::CacheHit {
                    fp_hi: fp.hi,
                    fp_lo: fp.lo,
                },
            );
            sink.finish(ledger);
        }
        Err(e) => eprintln!("warning: cannot open trace file: {e}"),
    }
}

/// Merges the per-worker part files of `base` into `base` itself and
/// deletes the parts.
///
/// Runs are emitted in ascending run id with their in-file line order
/// preserved (already `(time, seq)`-sorted within a run). Each run lives
/// wholly in one part file, so grouping lines by their `"run":N` envelope
/// field is a total, order-preserving merge.
///
/// # Errors
///
/// Propagates I/O errors; a malformed part line (no `"run":` field) is
/// reported as `InvalidData`.
pub fn merge_worker_files(base: &Path) -> std::io::Result<usize> {
    let dir = base.parent().filter(|p| !p.as_os_str().is_empty());
    let stem = base
        .file_name()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty trace path"))?
        .to_string_lossy()
        .into_owned();
    let mut parts: Vec<PathBuf> = std::fs::read_dir(dir.unwrap_or(Path::new(".")))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().map(|n| n.to_string_lossy()).is_some_and(|n| {
                n.strip_prefix(&stem)
                    .and_then(|rest| rest.strip_prefix(".w"))
                    .is_some_and(|k| !k.is_empty() && k.bytes().all(|b| b.is_ascii_digit()))
            })
        })
        .collect();
    parts.sort();
    // (run id, lines) per run, then a stable sort by run id.
    let mut runs: Vec<(u64, Vec<String>)> = Vec::new();
    for part in &parts {
        let file = std::io::BufReader::new(std::fs::File::open(part)?);
        for line in file.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let run = run_id_of(&line).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("trace line without run id in {}: {line:?}", part.display()),
                )
            })?;
            match runs.last_mut() {
                Some((r, lines)) if *r == run => lines.push(line),
                _ => {
                    if let Some(open) = runs.iter_mut().find(|(r, _)| *r == run) {
                        open.1.push(line);
                    } else {
                        runs.push((run, vec![line]));
                    }
                }
            }
        }
    }
    runs.sort_by_key(|(r, _)| *r);
    let count = runs.len();
    let mut out = std::io::BufWriter::new(std::fs::File::create(base)?);
    for (_, lines) in runs {
        for line in lines {
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
    }
    out.flush()?;
    for part in parts {
        let _ = std::fs::remove_file(part);
    }
    Ok(count)
}

/// Extracts the value of the `"run":` field from a schema line.
fn run_id_of(line: &str) -> Option<u64> {
    let idx = line.find("\"run\":")?;
    let digits: String = line[idx + 6..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_id_extraction() {
        assert_eq!(run_id_of("{\"v\":1,\"run\":42,\"ev\":\"x\"}"), Some(42));
        assert_eq!(run_id_of("{\"v\":1}"), None);
    }

    #[test]
    fn merge_groups_runs_across_parts() {
        let dir = std::env::temp_dir().join(format!("mobidist-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("trace.jsonl");
        std::fs::write(
            dir.join("trace.jsonl.w0"),
            "{\"v\":1,\"run\":1,\"ev\":\"run_begin\"}\n{\"v\":1,\"run\":1,\"ev\":\"run_end\"}\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("trace.jsonl.w1"),
            "{\"v\":1,\"run\":0,\"ev\":\"run_begin\"}\n{\"v\":1,\"run\":0,\"ev\":\"run_end\"}\n",
        )
        .unwrap();
        let merged = merge_worker_files(&base).unwrap();
        assert_eq!(merged, 2);
        let text = std::fs::read_to_string(&base).unwrap();
        let runs: Vec<Option<u64>> = text.lines().map(run_id_of).collect();
        assert_eq!(runs, vec![Some(0), Some(0), Some(1), Some(1)]);
        assert!(!dir.join("trace.jsonl.w0").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
