//! Space-sharded simulation kernel for million-host scale runs.
//!
//! The generic [`kernel`](crate::kernel) executes one global event queue —
//! ideal for protocol work, but a single thread and a global total order are
//! the wrong shape for populations six orders of magnitude above the paper's
//! examples. This module shards the *space* of the simulation instead: the
//! `M` MSS cells are block-partitioned across `S` workers, each worker owns
//! the hosts currently resident in its cells, and the workers advance a
//! shared logical clock with **conservative time synchronisation**.
//!
//! # Lookahead and windows
//!
//! The wired plane gives the sync protocol its lookahead: no influence can
//! cross a cell boundary in less than
//! [`LatencyModel::lower_bound`](crate::latency::LatencyModel::lower_bound)
//! ticks (`W`). Simulated time is cut into windows `[kW, (k+1)W)`. Within a
//! window every worker runs its own event queue independently — any event it
//! pops was already enqueued locally, and nothing a *remote* worker does in
//! the same window can affect it, because every cross-cell transfer sent in
//! window `k` is timestamped `≥ (k+1)W` (all cross-cell delays are clamped
//! to `≥ W`). At the end of each window the workers synchronise twice:
//!
//! 1. **process barrier** — every worker has popped all events `< (k+1)W`
//!    and published its outgoing transfers;
//! 2. each worker drains its own inbound mailbox into its local queue;
//! 3. **drain barrier** — nobody starts window `k+1` (and therefore nobody
//!    *sends* into a mailbox again) until every mailbox is drained.
//!
//! # Determinism
//!
//! A sharded run is **bit-identical at every worker count**, which the
//! `shard_equivalence` suite pins. The induction:
//!
//! * per-host decisions draw from a *stateless* RNG keyed by
//!   `(seed, host, decision counter)` — no draw interleaving exists to
//!   depend on;
//! * hosts interact only with the cell they occupy, and a host's entire
//!   record travels inside its single pending event, so no two workers ever
//!   share mutable host state;
//! * **every** cross-cell transfer goes through a mailbox, *including*
//!   transfers whose destination cell lives on the sending worker — the
//!   queue/mailbox residency of any in-flight event is therefore identical
//!   at every `S`;
//! * mailbox drains sort by `(arrival, source cell, per-worker send seq)`
//!   before insertion, so the commit order at a destination never depends
//!   on thread timing;
//! * ledger counters are commutative sums ([`CostLedger::merge`]) and the
//!   final digest hashes per-host state in `MhId` order, so neither depends
//!   on how hosts were partitioned.
//!
//! # Workload and charging
//!
//! The sharded kernel runs the paper's *mobility churn* workload: every MH
//! alternates an exponential dwell in a cell with an exponential gap
//! between cells, and each inter-cell `join(mh, prev)` makes the new MSS
//! send one wired handoff notification back to the previous MSS. Wired
//! messages are charged **at delivery** (the receiving worker owns the
//! charge), and each delivery emits one
//! [`TraceEvent::ShardRecv`] — so `tracereport --check`'s
//! `fixed_msgs` identity holds per shard with no special casing. Leaves and
//! joins emit the ordinary `HandoffBegin`/`HandoffEnd` events, keeping the
//! `moves`/`handoffs` identities intact, and every window boundary emits a
//! [`TraceEvent::ShardSync`] stamped at the window-end time so per-shard
//! `(t, seq)` stays strictly increasing.
//!
//! # Memory
//!
//! There is no per-host array at all: a host's record (20 bytes) lives
//! inside its one pending event, so resident state is one queue entry per
//! host — tens of bytes — and the only allocations on the hot path are the
//! amortised growth of queues and mailboxes, which are pooled per worker
//! and recycled every window (`mem::swap` with a scratch buffer, never a
//! fresh `Vec`).
//!
//! # Examples
//!
//! ```
//! use mobidist_net::shard::{run_scale, ScaleSpec};
//!
//! let spec = ScaleSpec::new(8, 200).with_seed(7);
//! let a = run_scale(&spec, 1);
//! let b = run_scale(&spec, 4);
//! assert_eq!(a.digest, b.digest);
//! assert_eq!(a.ledger, b.ledger);
//! ```

use crate::cost::CostModel;
use crate::event::EventQueue;
use crate::fingerprint::{CanonHash, CanonHasher, Fingerprint};
use crate::ids::{MhId, MssId};
use crate::latency::LatencyModel;
use crate::ledger::CostLedger;
use crate::mobility::MovePattern;
use crate::obs::{TraceEvent, TraceSink};
use crate::rng::SimRng;
use crate::time::SimTime;
use std::sync::{Barrier, Mutex};

/// Canonical description of one scale-curve run (experiment E12).
///
/// The worker count is deliberately **not** part of the spec: results are
/// independent of it, so two runs of the same spec at different shard
/// counts share one fingerprint (and one run-cache identity, were the scale
/// experiment cached — it is not, precisely so the CI shard-soundness gate
/// re-executes both legs).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSpec {
    /// Number of MSS cells, `M`.
    pub num_mss: usize,
    /// Number of mobile hosts, `N`.
    pub num_mh: usize,
    /// Mean ticks an MH dwells in a cell before leaving.
    pub mean_dwell: u64,
    /// Mean ticks an MH spends between cells (clamped to the lookahead).
    pub mean_gap: u64,
    /// Fixed wired MSS↔MSS latency; its lower bound is the sync lookahead.
    pub wired_latency: u64,
    /// How a leaving MH picks its next cell.
    pub pattern: MovePattern,
    /// Simulated horizon in ticks; events at or after it never execute.
    pub horizon: u64,
    /// Message-cost parameters for the ledger.
    pub cost: CostModel,
    /// Root seed; together with the other fields it fully determines the
    /// run at every shard count.
    pub seed: u64,
}

impl ScaleSpec {
    /// A mobility-churn spec over `m` cells and `n` hosts with the default
    /// dwell/gap/latency parameters used by the scale curve.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n == 0`.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0, "at least one MSS is required");
        assert!(n > 0, "at least one MH is required");
        ScaleSpec {
            num_mss: m,
            num_mh: n,
            mean_dwell: 500,
            mean_gap: 20,
            wired_latency: 5,
            pattern: MovePattern::UniformRandom,
            horizon: 2_000,
            cost: CostModel::default(),
            seed: 0,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the simulated horizon.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Replaces the mobility dwell/gap means.
    pub fn with_churn(mut self, mean_dwell: u64, mean_gap: u64) -> Self {
        self.mean_dwell = mean_dwell;
        self.mean_gap = mean_gap;
        self
    }

    /// Replaces the move pattern.
    pub fn with_pattern(mut self, pattern: MovePattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// The conservative lookahead `W`: the wired plane's minimum latency,
    /// below which no cross-cell influence can travel.
    pub fn lookahead(&self) -> u64 {
        LatencyModel::Fixed(self.wired_latency).lower_bound()
    }

    /// Closed-form expected move count: each host completes one move per
    /// `mean_dwell + mean_gap` ticks on average. E12 reports measured
    /// moves against this prediction as a model-fidelity check.
    pub fn predicted_moves(&self) -> u64 {
        self.num_mh as u64 * self.horizon / (self.mean_dwell + self.mean_gap).max(1)
    }
}

impl CanonHash for ScaleSpec {
    fn canon_hash(&self, h: &mut CanonHasher) {
        // Destructured so a new spec field without a hash update is a
        // compile error (the shard count is intentionally absent — it is a
        // run parameter, not part of the spec).
        let ScaleSpec {
            num_mss,
            num_mh,
            mean_dwell,
            mean_gap,
            wired_latency,
            pattern,
            horizon,
            cost,
            seed,
        } = self;
        h.write_u64(*num_mss as u64);
        h.write_u64(*num_mh as u64);
        h.write_u64(*mean_dwell);
        h.write_u64(*mean_gap);
        h.write_u64(*wired_latency);
        pattern.canon_hash(h);
        h.write_u64(*horizon);
        cost.canon_hash(h);
        h.write_u64(*seed);
    }
}

/// Result of one sharded scale run. Every field except
/// [`shards`](Self::shards) is identical at every worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Merged cost ledger (per-shard ledgers folded with
    /// [`CostLedger::merge`]).
    pub ledger: CostLedger,
    /// Simulation events executed (leaves + joins + wired deliveries).
    pub events: u64,
    /// Conservative-sync windows the run advanced through.
    pub windows: u64,
    /// Canonical digest of the complete final state — every host record
    /// (in `MhId` order) plus every undelivered wired message.
    pub digest: Fingerprint,
    /// Nominal resident state footprint: one queue entry per host. The
    /// scale curve divides this by `N` for its bytes/host column.
    pub state_bytes: u64,
    /// Lookahead `W` the run synchronised on.
    pub lookahead: u64,
    /// Worker count actually used (requested count clamped to `[1, M]`).
    pub shards: usize,
}

/// The complete per-host state, resident inside the host's single pending
/// event: current (or, mid-move, target) cell, home base, the stateless-RNG
/// decision counter, and completed moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HostRec {
    id: u32,
    home: u32,
    cell: u32,
    ctr: u32,
    moves: u32,
}

/// A worker-local scheduled event.
#[derive(Debug, Clone, Copy)]
enum SEv {
    /// The host leaves `rec.cell`.
    Leave(HostRec),
    /// The host joins `rec.cell`, arriving from cell `.1`.
    Join(HostRec, u32),
    /// A wired handoff notification from cell `.0` arrives at cell `.1`.
    Wired(u32, u32),
}

/// A cross-cell message in flight between workers. `src_cell` and
/// `src_seq` (a per-sending-worker monotone counter) make the drain order
/// at the destination a pure function of simulation state.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    arrival: u64,
    src_cell: u32,
    src_seq: u64,
    ev: SEv,
}

/// Block partition of cells over shards: shard `s` owns the contiguous
/// cell range `[s*M/S, (s+1)*M/S)`, which keeps locality-pattern traffic
/// mostly intra-worker.
#[inline]
fn shard_of(cell: u32, m: usize, shards: usize) -> usize {
    cell as usize * shards / m
}

/// The stateless per-decision RNG: host id in the high seed bits, decision
/// counter in the low bits, decorrelated by `seed_from`'s splitmix rounds.
#[inline]
fn decision_rng(seed: u64, id: u32, ctr: u32) -> SimRng {
    SimRng::seed_from(seed ^ ((id as u64) << 32) ^ ctr as u64)
}

/// One resident host flattened for digesting:
/// `(id, tag, due, cell, home, ctr, moves, prev)`.
type HostRow = (u32, u8, u64, u32, u32, u32, u32, u32);

/// Everything a worker hands back when its windows are done.
struct ShardOut {
    ledger: CostLedger,
    events: u64,
    hosts: Vec<HostRow>,
    /// `(due, from, to)` for each undelivered wired notification.
    wires: Vec<(u64, u32, u32)>,
    sink: Option<Box<dyn TraceSink>>,
}

/// Runs `spec` across `shards` workers with tracing disabled.
///
/// See [`run_scale_traced`] for the full contract.
pub fn run_scale(spec: &ScaleSpec, shards: usize) -> ScaleReport {
    run_scale_traced(spec, shards, Vec::new()).0
}

/// Runs `spec` across `shards` workers, feeding each worker's trace into
/// its own [`TraceSink`].
///
/// `sinks` must be empty (tracing disabled, zero per-event cost) or hold
/// exactly one sink per *effective* worker (`shards` clamped to `[1, M]`).
/// Each shard is recorded as an independent run — dense `seq` from 0,
/// strictly increasing `(t, seq)`, and a `finish` carrying that shard's own
/// ledger — so `tracereport --check` validates every shard separately. The
/// sinks are returned after their `finish` so callers can inspect or drop
/// (and thereby flush) them.
///
/// # Panics
///
/// Panics if `sinks` is non-empty with a length other than the effective
/// worker count, or if a worker thread panics.
pub fn run_scale_traced(
    spec: &ScaleSpec,
    shards: usize,
    sinks: Vec<Box<dyn TraceSink>>,
) -> (ScaleReport, Vec<Box<dyn TraceSink>>) {
    let m = spec.num_mss;
    let n = spec.num_mh;
    let shards = shards.clamp(1, m);
    assert!(
        sinks.is_empty() || sinks.len() == shards,
        "expected 0 or {shards} trace sinks, got {}",
        sinks.len()
    );
    let w = spec.lookahead();
    let windows = spec.horizon.div_ceil(w);

    // Seed every host sequentially (host order ⇒ identical per-queue
    // insertion order at every shard count): host h dwells in cell h mod M,
    // then leaves. Decision 0 is the initial dwell draw.
    let mut queues: Vec<EventQueue<SEv>> = (0..shards)
        .map(|s| {
            let cells = (s + 1) * m / shards - s * m / shards;
            EventQueue::with_capacity((n * cells).div_ceil(m) + 16)
        })
        .collect();
    for h in 0..n {
        let cell = (h % m) as u32;
        let mut rng = decision_rng(spec.seed, h as u32, 0);
        let dwell = rng.exp_delay(spec.mean_dwell);
        let rec = HostRec {
            id: h as u32,
            home: cell,
            cell,
            ctr: 1,
            moves: 0,
        };
        queues[shard_of(cell, m, shards)].push(SimTime::from_ticks(dwell), SEv::Leave(rec));
    }

    let mailboxes: Vec<Mutex<Vec<Transfer>>> =
        (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(shards);
    let mailboxes = &mailboxes;
    let barrier = &barrier;

    let mut slots: Vec<Option<Box<dyn TraceSink>>> = if sinks.is_empty() {
        (0..shards).map(|_| None).collect()
    } else {
        sinks.into_iter().map(Some).collect()
    };

    let mut outs: Vec<ShardOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .drain(..)
            .zip(slots.drain(..))
            .enumerate()
            .map(|(shard, (queue, sink))| {
                scope.spawn(move || {
                    run_shard(
                        spec, shard, shards, w, windows, queue, mailboxes, barrier, sink,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Merge: ledgers are commutative sums; the digest hashes hosts in MhId
    // order and wires in (due, from, to) order, so neither depends on the
    // partition.
    let mut ledger = CostLedger::new(0);
    let mut events = 0;
    let mut hosts = Vec::with_capacity(n);
    let mut wires = Vec::new();
    let mut done_sinks = Vec::new();
    for out in &mut outs {
        ledger.merge(&out.ledger);
        events += out.events;
        hosts.append(&mut out.hosts);
        wires.append(&mut out.wires);
        if let Some(s) = out.sink.take() {
            done_sinks.push(s);
        }
    }
    hosts.sort_unstable();
    wires.sort_unstable();
    debug_assert_eq!(hosts.len(), n, "every host must appear exactly once");

    let mut hasher = CanonHasher::new();
    hasher.write_u64(hosts.len() as u64);
    for &(id, tag, due, cell, home, ctr, moves, prev) in &hosts {
        for v in [id as u64, tag as u64, due, cell as u64, home as u64] {
            hasher.write_u64(v);
        }
        hasher.write_u64(ctr as u64);
        hasher.write_u64(moves as u64);
        hasher.write_u64(prev as u64);
    }
    hasher.write_u64(wires.len() as u64);
    for &(due, from, to) in &wires {
        hasher.write_u64(due);
        hasher.write_u64(from as u64);
        hasher.write_u64(to as u64);
    }

    let entry = std::mem::size_of::<SEv>() + 2 * std::mem::size_of::<u64>();
    let report = ScaleReport {
        ledger,
        events,
        windows,
        digest: hasher.finish(),
        state_bytes: n as u64 * entry as u64,
        lookahead: w,
        shards,
    };
    (report, done_sinks)
}

/// One worker: processes its cells' events window by window, exchanging
/// cross-cell transfers at the double barrier.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    spec: &ScaleSpec,
    shard: usize,
    shards: usize,
    w: u64,
    windows: u64,
    mut queue: EventQueue<SEv>,
    mailboxes: &[Mutex<Vec<Transfer>>],
    barrier: &Barrier,
    mut sink: Option<Box<dyn TraceSink>>,
) -> ShardOut {
    let m = spec.num_mss;
    let mut ledger = CostLedger::new(0);
    let mut events = 0u64;
    let mut trace_seq = 0u64;
    let mut send_seq = 0u64;
    // Pooled drain scratch: swapped with the mailbox each window so the
    // steady state allocates nothing.
    let mut drained: Vec<Transfer> = Vec::new();

    macro_rules! emit {
        ($at:expr, $ev:expr) => {
            if let Some(s) = sink.as_deref_mut() {
                s.record($at, trace_seq, &$ev);
                trace_seq += 1;
            }
        };
    }
    macro_rules! send {
        ($dst_cell:expr, $arrival:expr, $src_cell:expr, $sev:expr) => {{
            let tr = Transfer {
                arrival: $arrival,
                src_cell: $src_cell,
                src_seq: send_seq,
                ev: $sev,
            };
            send_seq += 1;
            mailboxes[shard_of($dst_cell, m, shards)]
                .lock()
                .expect("mailbox poisoned")
                .push(tr);
        }};
    }

    for k in 0..windows {
        let end = ((k + 1) * w).min(spec.horizon);
        let limit = SimTime::from_ticks(end - 1);
        while let Some((t, ev)) = queue.pop_if_at_or_before(limit) {
            events += 1;
            match ev {
                SEv::Leave(rec) => {
                    emit!(
                        t,
                        TraceEvent::HandoffBegin {
                            mh: MhId(rec.id),
                            from: MssId(rec.cell),
                        }
                    );
                    let mut rng = decision_rng(spec.seed, rec.id, rec.ctr);
                    // The era is `rec.ctr` — bumped on every leave/join pair —
                    // so waypoint/heading derivations replay identically no
                    // matter which worker processes the decision.
                    let next = spec.pattern.next_cell(
                        &mut rng,
                        crate::mobility::MoveCtx {
                            mh: MhId(rec.id),
                            from: MssId(rec.cell),
                            m,
                            home: MssId(rec.home),
                            era: rec.ctr as u64,
                            seed: spec.seed,
                        },
                    );
                    // The gap clamp *is* the conservative-sync contract: a
                    // join sent in window k may not execute before window
                    // k+1, so no cross-cell delay may undercut W.
                    let gap = rng.exp_delay(spec.mean_gap).max(w);
                    let prev = rec.cell;
                    let moved = HostRec {
                        cell: next.0,
                        ctr: rec.ctr + 1,
                        ..rec
                    };
                    send!(next.0, t.ticks() + gap, prev, SEv::Join(moved, prev));
                }
                SEv::Join(mut rec, prev) => {
                    emit!(
                        t,
                        TraceEvent::HandoffEnd {
                            mh: MhId(rec.id),
                            to: MssId(rec.cell),
                            prev: Some(MssId(prev)),
                        }
                    );
                    ledger.moves += 1;
                    rec.moves += 1;
                    if prev != rec.cell {
                        // Handoff state transfer: the new MSS notifies the
                        // previous one over the wired plane; charged at
                        // delivery by the receiving worker.
                        ledger.handoffs += 1;
                        send!(prev, t.ticks() + w, rec.cell, SEv::Wired(rec.cell, prev));
                    }
                    let mut rng = decision_rng(spec.seed, rec.id, rec.ctr);
                    rec.ctr += 1;
                    let dwell = rng.exp_delay(spec.mean_dwell);
                    queue.push(t + dwell, SEv::Leave(rec));
                }
                SEv::Wired(from, to) => {
                    ledger.charge_fixed(&spec.cost);
                    emit!(
                        t,
                        TraceEvent::ShardRecv {
                            shard: shard as u32,
                            from: MssId(from),
                            to: MssId(to),
                        }
                    );
                }
            }
        }
        emit!(
            SimTime::from_ticks(end),
            TraceEvent::ShardSync {
                shard: shard as u32,
                window: k,
            }
        );

        // Barrier 1: every worker has finished window k's sends.
        barrier.wait();
        {
            let mut mb = mailboxes[shard].lock().expect("mailbox poisoned");
            std::mem::swap(&mut *mb, &mut drained);
        }
        drained.sort_unstable_by_key(|tr| (tr.arrival, tr.src_cell, tr.src_seq));
        for tr in drained.drain(..) {
            queue.push(SimTime::from_ticks(tr.arrival), tr.ev);
        }
        // Barrier 2: nobody re-enters a mailbox until every drain is done.
        barrier.wait();
    }

    // Collect the final state for the digest. Mailboxes are empty here
    // (the last window's sends were drained at its barrier), so the queue
    // holds every resident host and undelivered wire.
    let mut hosts = Vec::new();
    let mut wires = Vec::new();
    while let Some((t, ev)) = queue.pop() {
        match ev {
            SEv::Leave(r) => {
                hosts.push((r.id, 0, t.ticks(), r.cell, r.home, r.ctr, r.moves, u32::MAX))
            }
            SEv::Join(r, prev) => {
                hosts.push((r.id, 1, t.ticks(), r.cell, r.home, r.ctr, r.moves, prev))
            }
            SEv::Wired(from, to) => wires.push((t.ticks(), from, to)),
        }
    }
    if let Some(s) = sink.as_deref_mut() {
        s.finish(&ledger);
    }
    ShardOut {
        ledger,
        events,
        hosts,
        wires,
        sink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::RingSink;

    fn spec() -> ScaleSpec {
        ScaleSpec::new(16, 240)
            .with_seed(42)
            .with_horizon(1_500)
            .with_churn(120, 15)
    }

    #[test]
    fn shard_counts_agree_bit_for_bit() {
        let spec = spec();
        let base = run_scale(&spec, 1);
        assert!(base.ledger.moves > 0, "churn workload must move hosts");
        assert!(base.ledger.fixed_msgs > 0, "handoffs must cross the wire");
        for s in [2, 3, 4, 8, 16] {
            let r = run_scale(&spec, s);
            assert_eq!(r.shards, s);
            assert_eq!(r.digest, base.digest, "digest diverged at {s} shards");
            assert_eq!(r.ledger, base.ledger, "ledger diverged at {s} shards");
            assert_eq!(r.events, base.events, "event count diverged at {s} shards");
        }
    }

    #[test]
    fn reruns_are_identical() {
        let spec = spec();
        assert_eq!(run_scale(&spec, 4), run_scale(&spec, 4));
    }

    #[test]
    fn shard_request_is_clamped() {
        let spec = ScaleSpec::new(3, 30).with_seed(1);
        let r = run_scale(&spec, 64);
        assert_eq!(r.shards, 3);
        assert_eq!(r.digest, run_scale(&spec, 1).digest);
    }

    #[test]
    fn seed_and_spec_change_the_outcome() {
        let a = run_scale(&spec(), 2);
        let b = run_scale(&spec().with_seed(43), 2);
        let c = run_scale(&spec().with_churn(60, 15), 2);
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn ledger_charges_match_delivered_notifications() {
        // Every wired charge is a delivered handoff notification, so
        // fixed_msgs can never exceed handoffs, and with a horizon far past
        // the last gap most notifications are delivered.
        let r = run_scale(&spec(), 4);
        assert!(r.ledger.fixed_msgs <= r.ledger.handoffs);
        assert!(r.ledger.fixed_msgs + 64 >= r.ledger.handoffs);
        assert_eq!(r.ledger.wireless_msgs, 0);
    }

    #[test]
    fn traced_runs_expose_shard_events() {
        let spec = spec();
        let shards = 4;
        let sinks: Vec<Box<dyn TraceSink>> = (0..shards)
            .map(|_| Box::new(RingSink::new(1 << 20)) as Box<dyn TraceSink>)
            .collect();
        let (report, sinks) = run_scale_traced(&spec, shards, sinks);
        assert_eq!(sinks.len(), shards);
        let mut syncs = 0;
        let mut recvs = 0;
        let mut ends = 0;
        for s in &sinks {
            let ring = s.as_any().downcast_ref::<RingSink>().expect("ring sink");
            syncs += ring.count_kind("shard_sync");
            recvs += ring.count_kind("shard_recv");
            ends += ring.count_kind("handoff_end");
        }
        assert_eq!(syncs as u64, report.windows * shards as u64);
        assert_eq!(recvs as u64, report.ledger.fixed_msgs);
        assert_eq!(ends as u64, report.ledger.moves);
        // Tracing must not perturb the simulation.
        assert_eq!(report.digest, run_scale(&spec, 1).digest);
    }

    #[test]
    fn spec_fingerprint_ignores_nothing_it_should_hash() {
        let base = Fingerprint::of(&spec());
        assert_eq!(base, Fingerprint::of(&spec()));
        assert_ne!(base, Fingerprint::of(&spec().with_seed(43)));
        assert_ne!(base, Fingerprint::of(&spec().with_horizon(1_600)));
        assert_ne!(
            base,
            Fingerprint::of(&ScaleSpec {
                wired_latency: 6,
                ..spec()
            })
        );
    }

    #[test]
    fn predicted_moves_track_measured_moves() {
        let spec = ScaleSpec::new(32, 2_000)
            .with_seed(9)
            .with_horizon(3_000)
            .with_churn(300, 20);
        let r = run_scale(&spec, 4);
        let predicted = spec.predicted_moves();
        let measured = r.ledger.moves;
        let lo = predicted * 7 / 10;
        let hi = predicted * 13 / 10;
        assert!(
            (lo..=hi).contains(&measured),
            "measured {measured} outside 30% of predicted {predicted}"
        );
    }
}
