//! Million-host scale smoke check (`make scalecheck`).
//!
//! Runs E12's largest ladder point — one million mobile hosts under
//! mobility churn across 1024 cells — on the space-sharded kernel and
//! enforces the scale budget:
//!
//! * the run completes (every window advances to the horizon);
//! * peak RSS (`VmHWM`) stays under the 8 GiB ceiling;
//! * the churn actually churned (moves and wired deliveries are non-zero).
//!
//! Prints one summary line per run plus the throughput, and exits non-zero
//! on any violation. `MOBIDIST_SHARDS` (or `--shards N`) picks the worker
//! count; the result is bit-identical at every choice.

use mobidist_bench::exp_scale::{default_shards, peak_rss_bytes, scale_spec};
use mobidist_net::shard::run_scale;
use std::process::ExitCode;

/// 8 GiB peak-RSS ceiling for the million-host point.
const RSS_CEILING: u64 = 8 << 30;

fn main() -> ExitCode {
    let mut shards = default_shards();
    let mut hosts = 1_000_000usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--shards" || a == "-s" {
            shards = it.next().and_then(|v| v.parse().ok()).unwrap_or(shards);
        } else if let Some(v) = a.strip_prefix("--shards=") {
            shards = v.parse().unwrap_or(shards);
        } else if a == "--hosts" {
            hosts = it.next().and_then(|v| v.parse().ok()).unwrap_or(hosts);
        } else if let Some(v) = a.strip_prefix("--hosts=") {
            hosts = v.parse().unwrap_or(hosts);
        } else {
            eprintln!("usage: scalecheck [--shards N] [--hosts N]");
            return ExitCode::FAILURE;
        }
    }

    let spec = scale_spec(hosts, 1_024);
    let start = std::time::Instant::now();
    let r = run_scale(&spec, shards);
    let secs = start.elapsed().as_secs_f64();
    let rate = r.events as f64 / secs.max(1e-9);
    println!(
        "scalecheck: hosts={} shards={} windows={} skipped={} events={} moves={} wired={} \
         digest={} {:.2}s ({:.0} events/s)",
        hosts,
        r.shards,
        r.windows,
        r.skipped_windows,
        r.events,
        r.ledger.moves,
        r.ledger.fixed_msgs,
        &r.digest.to_hex()[..16],
        secs,
        rate,
    );

    let mut ok = true;
    if r.ledger.moves == 0 || r.ledger.fixed_msgs == 0 {
        eprintln!("scalecheck: FAIL — churn produced no moves or no wired traffic");
        ok = false;
    }
    match peak_rss_bytes() {
        Some(rss) => {
            println!(
                "scalecheck: peak RSS {:.2} GiB (ceiling {:.0} GiB)",
                rss as f64 / (1u64 << 30) as f64,
                RSS_CEILING as f64 / (1u64 << 30) as f64
            );
            if rss >= RSS_CEILING {
                eprintln!("scalecheck: FAIL — peak RSS {rss} B over the {RSS_CEILING} B ceiling");
                ok = false;
            }
        }
        None => println!("scalecheck: peak RSS unavailable (non-Linux); ceiling not enforced"),
    }
    if ok {
        println!("scalecheck: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
