//! **Algorithm L2** — Lamport's mutual exclusion shifted onto the static
//! network (Section 3.1.1, the paper's redesign).
//!
//! The `M` MSSs maintain the request queues and exchange the timestamped
//! `request`/`reply`/`release` messages *among themselves*; a mobile host
//! participates with exactly three wireless messages per execution:
//!
//! 1. `init(h)` to its local MSS, which becomes its proxy and runs Lamport's
//!    algorithm on its behalf (tagging messages with `h`);
//! 2. the `grant-request` delivered to wherever `h` has moved (one search);
//! 3. `release-resource` relayed via `h`'s *current* local MSS back to the
//!    proxy, which then broadcasts `release`.
//!
//! Total cost per execution: `3·C_wireless + C_fixed + C_search +
//! 3(M−1)·C_fixed` — constant in `N`.
//!
//! Disconnection handling follows the paper exactly: if `h` disconnects
//! before the grant arrives, the search fails back to the proxy, which
//! withdraws the request (broadcasting `release`); if `h` disconnects while
//! *holding* the critical section, L2 requires it to reconnect and send
//! `release-resource`, which this implementation does on the reconnect hook.

use crate::algorithm::{AlgoCtx, MutexAlgorithm};
use mobidist_clock::{LamportClock, Timestamp};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::Src;
use std::collections::{BTreeMap, BTreeSet};

/// A queue entry: a request timestamped at its proxy on behalf of an MH.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Timestamp assigned when the proxy received `init`.
    pub ts: Timestamp,
    /// The proxy MSS that owns the request.
    pub proxy: MssId,
    /// The mobile initiator.
    pub mh: MhId,
}

/// L2 protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Msg {
    /// MH→MSS (wireless): begin an execution on my behalf.
    Init,
    /// MSS→MSS: timestamped request tagged with the initiating MH.
    Request(Entry),
    /// MSS→MSS: acknowledgement carrying the replier's clock.
    Reply(Timestamp),
    /// MSS→MSS: the tagged request has been satisfied/withdrawn.
    Release(Timestamp, Entry),
    /// Proxy→MH (searched): you hold the critical section.
    GrantRequest {
        /// The proxy to which `release-resource` must return.
        proxy: MssId,
    },
    /// MH→MSS (wireless): I am done; relay to my proxy.
    ReleaseResource {
        /// The proxy that granted the request.
        proxy: MssId,
        /// The releasing MH.
        mh: MhId,
    },
    /// MSS→proxy (fixed): relayed `release-resource`.
    RelayRelease {
        /// The releasing MH.
        mh: MhId,
    },
}

/// Per-MSS Lamport state.
#[derive(Debug)]
struct Station {
    clock: LamportClock,
    queue: BTreeSet<Entry>,
    last_seen: BTreeMap<MssId, Timestamp>,
    /// Requests this MSS proxies, by MH, with grant status.
    owned: BTreeMap<MhId, (Entry, bool)>,
}

/// Lamport's algorithm at the MSS proxies. See the module docs.
#[derive(Debug)]
pub struct L2 {
    stations: BTreeMap<MssId, Station>,
    /// MHs that hold the CS but disconnected before releasing; they must
    /// reconnect to send `release-resource`.
    pending_release: BTreeMap<MhId, MssId>,
}

impl L2 {
    /// Creates an instance for `m` MSSs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "L2 needs at least one MSS");
        let stations = (0..m as u32)
            .map(|i| {
                (
                    MssId(i),
                    Station {
                        clock: LamportClock::new(i),
                        queue: BTreeSet::new(),
                        last_seen: BTreeMap::new(),
                        owned: BTreeMap::new(),
                    },
                )
            })
            .collect();
        L2 {
            stations,
            pending_release: BTreeMap::new(),
        }
    }

    /// Number of requests currently queued at `mss` (for tests).
    pub fn queue_len(&self, mss: MssId) -> usize {
        self.stations[&mss].queue.len()
    }

    fn note_seen(&mut self, me: MssId, from: MssId, ts: Timestamp) {
        let s = self.stations.get_mut(&me).expect("known MSS");
        let e = s.last_seen.entry(from).or_insert(ts);
        if ts > *e {
            *e = ts;
        }
    }

    /// Grant check for every entry proxied by `me` (Lamport's condition over
    /// the MSS set).
    fn try_grant(&mut self, ctx: &mut AlgoCtx<'_, '_, L2Msg, ()>, me: MssId) {
        let m = ctx.num_mss();
        let grants: Vec<(MhId, Entry)> = {
            let s = self.stations.get_mut(&me).expect("known MSS");
            let Some(head) = s.queue.iter().next().copied() else {
                return;
            };
            if head.proxy != me {
                return;
            }
            let Some((entry, granted)) = s.owned.get(&head.mh).copied() else {
                return;
            };
            if granted || entry != head {
                return;
            }
            let all_later = (0..m as u32)
                .map(MssId)
                .filter(|o| *o != me)
                .all(|o| s.last_seen.get(&o).is_some_and(|t| *t > entry.ts));
            if !all_later {
                return;
            }
            s.owned.insert(head.mh, (entry, true));
            vec![(head.mh, entry)]
        };
        for (mh, entry) in grants {
            // Locating the (possibly moved) initiator costs one search.
            ctx.search_send(me, mh, L2Msg::GrantRequest { proxy: me });
            let _ = entry;
        }
    }

    /// Removes an entry everywhere it is queued at `me`.
    fn drop_entry(&mut self, me: MssId, entry: Entry) {
        let s = self.stations.get_mut(&me).expect("known MSS");
        s.queue.remove(&entry);
        if entry.proxy == me {
            s.owned.remove(&entry.mh);
        }
    }

    /// Proxy-side release: withdraw the entry and broadcast `Release`.
    fn proxy_release(&mut self, ctx: &mut AlgoCtx<'_, '_, L2Msg, ()>, proxy: MssId, mh: MhId) {
        let Some((entry, _)) = self
            .stations
            .get_mut(&proxy)
            .expect("known MSS")
            .owned
            .get(&mh)
            .copied()
        else {
            return;
        };
        self.drop_entry(proxy, entry);
        let ts = self
            .stations
            .get_mut(&proxy)
            .expect("known MSS")
            .clock
            .tick();
        ctx.broadcast_fixed(proxy, L2Msg::Release(ts, entry));
        self.try_grant(ctx, proxy);
    }
}

impl MutexAlgorithm for L2 {
    type Msg = L2Msg;
    type Timer = ();

    fn name(&self) -> &'static str {
        "L2"
    }

    fn request(&mut self, ctx: &mut AlgoCtx<'_, '_, L2Msg, ()>, mh: MhId) {
        // The MH's entire contribution: one wireless init.
        let _ = ctx.send_wireless_up(mh, L2Msg::Init);
    }

    fn release(&mut self, ctx: &mut AlgoCtx<'_, '_, L2Msg, ()>, mh: MhId) {
        let proxy = self
            .stations
            .iter()
            .find_map(|(m, s)| s.owned.get(&mh).and_then(|(_, g)| g.then_some(*m)));
        let Some(proxy) = proxy else { return };
        match ctx.send_wireless_up(mh, L2Msg::ReleaseResource { proxy, mh }) {
            Ok(()) => {}
            Err(_) => {
                // Disconnected while holding: the paper requires the MH to
                // reconnect to send release-resource.
                self.pending_release.insert(mh, proxy);
            }
        }
    }

    fn on_mss_msg(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, L2Msg, ()>,
        at: MssId,
        src: Src,
        msg: L2Msg,
    ) {
        match msg {
            L2Msg::Init => {
                let mh = src.as_mh().expect("init arrives on the uplink");
                // Timestamp the request on behalf of the MH.
                let ts = self.stations.get_mut(&at).expect("known MSS").clock.tick();
                let entry = Entry { ts, proxy: at, mh };
                {
                    let s = self.stations.get_mut(&at).expect("known MSS");
                    s.queue.insert(entry);
                    s.owned.insert(mh, (entry, false));
                }
                ctx.broadcast_fixed(at, L2Msg::Request(entry));
                self.try_grant(ctx, at);
            }
            L2Msg::Request(entry) => {
                let from = src.as_mss().expect("requests travel MSS to MSS");
                self.note_seen(at, from, entry.ts);
                {
                    let s = self.stations.get_mut(&at).expect("known MSS");
                    s.clock.witness(entry.ts);
                    s.queue.insert(entry);
                }
                let reply_ts = self.stations.get_mut(&at).expect("known MSS").clock.tick();
                ctx.send_fixed(at, from, L2Msg::Reply(reply_ts));
            }
            L2Msg::Reply(ts) => {
                let from = src.as_mss().expect("replies travel MSS to MSS");
                self.note_seen(at, from, ts);
                self.stations
                    .get_mut(&at)
                    .expect("known MSS")
                    .clock
                    .witness(ts);
                self.try_grant(ctx, at);
            }
            L2Msg::Release(ts, entry) => {
                let from = src.as_mss().expect("releases travel MSS to MSS");
                self.note_seen(at, from, ts);
                self.stations
                    .get_mut(&at)
                    .expect("known MSS")
                    .clock
                    .witness(ts);
                self.drop_entry(at, entry);
                self.try_grant(ctx, at);
            }
            L2Msg::ReleaseResource { proxy, mh } => {
                // Arrived on the uplink at the MH's *current* MSS.
                if proxy == at {
                    self.proxy_release(ctx, proxy, mh);
                } else {
                    ctx.send_fixed(at, proxy, L2Msg::RelayRelease { mh });
                }
            }
            L2Msg::RelayRelease { mh } => {
                self.proxy_release(ctx, at, mh);
            }
            L2Msg::GrantRequest { .. } => {
                unreachable!("grants are delivered to MHs, not MSSs");
            }
        }
    }

    fn on_mh_msg(&mut self, ctx: &mut AlgoCtx<'_, '_, L2Msg, ()>, at: MhId, _src: Src, msg: L2Msg) {
        match msg {
            L2Msg::GrantRequest { proxy } => {
                let entry = self.stations[&proxy]
                    .owned
                    .get(&at)
                    .map(|(e, _)| *e)
                    .expect("grant implies an owned entry");
                let key = entry.ts.counter << 16 | u64::from(entry.ts.process & 0xFFFF);
                ctx.grant_with_key(at, key);
            }
            other => unreachable!("unexpected message at an MH: {other:?}"),
        }
    }

    fn on_search_failed(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, L2Msg, ()>,
        origin: MssId,
        target: MhId,
        msg: L2Msg,
    ) {
        if let L2Msg::GrantRequest { proxy } = msg {
            debug_assert_eq!(origin, proxy);
            // The initiator is unreachable: withdraw its request so the rest
            // of the system makes progress.
            self.proxy_release(ctx, proxy, target);
            ctx.abort(target);
        }
    }

    fn on_mh_reconnected(&mut self, ctx: &mut AlgoCtx<'_, '_, L2Msg, ()>, mh: MhId, _mss: MssId) {
        if let Some(proxy) = self.pending_release.remove(&mh) {
            let _ = ctx.send_wireless_up(mh, L2Msg::ReleaseResource { proxy, mh });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_order_by_timestamp_then_proxy() {
        let a = Entry {
            ts: Timestamp::new(1, 0),
            proxy: MssId(9),
            mh: MhId(0),
        };
        let b = Entry {
            ts: Timestamp::new(2, 0),
            proxy: MssId(0),
            mh: MhId(1),
        };
        let c = Entry {
            ts: Timestamp::new(2, 1),
            proxy: MssId(0),
            mh: MhId(2),
        };
        assert!(a < b, "smaller timestamp wins regardless of proxy");
        assert!(b < c, "process id breaks timestamp ties");
    }

    #[test]
    fn fresh_instance_has_empty_queues() {
        let l2 = L2::new(3);
        for i in 0..3u32 {
            assert_eq!(l2.queue_len(MssId(i)), 0);
        }
        assert_eq!(l2.name(), "L2");
    }

    #[test]
    #[should_panic(expected = "at least one MSS")]
    fn zero_stations_rejected() {
        let _ = L2::new(0);
    }
}
