//! Runtime invariant checking for mutual exclusion.
//!
//! The checker observes every critical-section entry and exit and verifies:
//!
//! * **Safety** — at most one mobile host is in the critical section at any
//!   simulated instant;
//! * **Ordering** — when the algorithm supplies total-order keys (Lamport
//!   timestamps), grants occur in nondecreasing key order, the fairness
//!   property Lamport's algorithm guarantees;
//! * **Liveness** (checked by the harness report) — every issued request is
//!   eventually granted or explicitly aborted.

use mobidist_net::ids::MhId;
use mobidist_net::time::SimTime;

/// One completed (or in-flight) critical-section episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// The MH that held the critical section.
    pub mh: MhId,
    /// When the workload issued the request.
    pub requested_at: SimTime,
    /// When the algorithm granted entry.
    pub granted_at: SimTime,
    /// When the MH released (None while still inside).
    pub released_at: Option<SimTime>,
    /// Ordering key supplied by the algorithm, if any.
    pub key: Option<u64>,
}

impl Episode {
    /// Request-to-grant latency in ticks.
    pub fn wait(&self) -> u64 {
        self.granted_at.saturating_since(self.requested_at)
    }
}

/// Observes entries/exits and accumulates invariant violations.
#[derive(Debug, Clone, Default)]
pub struct SafetyChecker {
    holder: Option<MhId>,
    last_key: Option<u64>,
    episodes: Vec<Episode>,
    /// Number of times a grant overlapped an existing holder.
    safety_violations: u64,
    /// Number of times a keyed grant regressed below an earlier key.
    order_violations: u64,
    /// Number of exits with no matching holder.
    unmatched_exits: u64,
}

impl SafetyChecker {
    /// Creates a checker.
    pub fn new() -> Self {
        SafetyChecker::default()
    }

    /// Records a critical-section entry.
    pub fn enter(&mut self, mh: MhId, requested_at: SimTime, now: SimTime, key: Option<u64>) {
        if self.holder.is_some() {
            self.safety_violations += 1;
        }
        if let (Some(k), Some(prev)) = (key, self.last_key) {
            if k < prev {
                self.order_violations += 1;
            }
        }
        if key.is_some() {
            self.last_key = key;
        }
        self.holder = Some(mh);
        self.episodes.push(Episode {
            mh,
            requested_at,
            granted_at: now,
            released_at: None,
            key,
        });
    }

    /// Records a critical-section exit.
    pub fn exit(&mut self, mh: MhId, now: SimTime) {
        if self.holder == Some(mh) {
            self.holder = None;
            if let Some(ep) = self
                .episodes
                .iter_mut()
                .rev()
                .find(|e| e.mh == mh && e.released_at.is_none())
            {
                ep.released_at = Some(now);
            }
        } else {
            self.unmatched_exits += 1;
        }
    }

    /// The MH currently inside the critical section, if any.
    pub fn holder(&self) -> Option<MhId> {
        self.holder
    }

    /// All recorded episodes, in grant order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Total mutual-exclusion violations observed.
    pub fn safety_violations(&self) -> u64 {
        self.safety_violations
    }

    /// Total ordering (fairness) violations observed.
    pub fn order_violations(&self) -> u64 {
        self.order_violations
    }

    /// Exits that did not match the current holder.
    pub fn unmatched_exits(&self) -> u64 {
        self.unmatched_exits
    }

    /// True when no invariant was ever violated.
    pub fn clean(&self) -> bool {
        self.safety_violations == 0 && self.order_violations == 0 && self.unmatched_exits == 0
    }

    /// Mean request-to-grant latency over completed episodes.
    pub fn mean_wait(&self) -> f64 {
        if self.episodes.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.episodes.iter().map(|e| e.wait()).sum();
        sum as f64 / self.episodes.len() as f64
    }

    /// The `p`-th percentile (`0.0..=1.0`) of request-to-grant latency,
    /// by the nearest-rank method. Returns 0 with no episodes.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn wait_percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.episodes.is_empty() {
            return 0;
        }
        let mut waits: Vec<u64> = self.episodes.iter().map(|e| e.wait()).collect();
        waits.sort_unstable();
        let rank = ((p * waits.len() as f64).ceil() as usize).clamp(1, waits.len());
        waits[rank - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn clean_serial_episodes() {
        let mut c = SafetyChecker::new();
        c.enter(MhId(0), t(0), t(5), Some(1));
        c.exit(MhId(0), t(10));
        c.enter(MhId(1), t(2), t(12), Some(2));
        c.exit(MhId(1), t(20));
        assert!(c.clean());
        assert_eq!(c.episodes().len(), 2);
        assert_eq!(c.episodes()[0].wait(), 5);
        assert_eq!(c.episodes()[1].released_at, Some(t(20)));
        assert!(c.holder().is_none());
        assert!((c.mean_wait() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn overlapping_grants_are_flagged() {
        let mut c = SafetyChecker::new();
        c.enter(MhId(0), t(0), t(1), None);
        c.enter(MhId(1), t(0), t(2), None);
        assert_eq!(c.safety_violations(), 1);
        assert!(!c.clean());
    }

    #[test]
    fn key_regression_is_flagged() {
        let mut c = SafetyChecker::new();
        c.enter(MhId(0), t(0), t(1), Some(5));
        c.exit(MhId(0), t(2));
        c.enter(MhId(1), t(0), t(3), Some(4));
        assert_eq!(c.order_violations(), 1);
    }

    #[test]
    fn unkeyed_grants_do_not_affect_ordering() {
        let mut c = SafetyChecker::new();
        c.enter(MhId(0), t(0), t(1), Some(5));
        c.exit(MhId(0), t(2));
        c.enter(MhId(1), t(0), t(3), None);
        c.exit(MhId(1), t(4));
        c.enter(MhId(2), t(0), t(5), Some(6));
        assert_eq!(c.order_violations(), 0);
        assert_eq!(c.safety_violations(), 0);
    }

    #[test]
    fn unmatched_exit_is_flagged() {
        let mut c = SafetyChecker::new();
        c.exit(MhId(3), t(1));
        assert_eq!(c.unmatched_exits(), 1);
        assert!(!c.clean());
    }

    #[test]
    fn mean_wait_of_empty_checker_is_zero() {
        assert_eq!(SafetyChecker::new().mean_wait(), 0.0);
        assert_eq!(SafetyChecker::new().wait_percentile(0.95), 0);
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let mut c = SafetyChecker::new();
        for (i, w) in [10u64, 20, 30, 40, 50].iter().enumerate() {
            c.enter(MhId(i as u32), t(0), t(*w), None);
            c.exit(MhId(i as u32), t(*w + 1));
        }
        assert_eq!(c.wait_percentile(0.5), 30);
        assert_eq!(c.wait_percentile(0.95), 50);
        assert_eq!(c.wait_percentile(0.0), 10);
        assert_eq!(c.wait_percentile(1.0), 50);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        let _ = SafetyChecker::new().wait_percentile(1.5);
    }
}
