//! Fast, deterministic hashing for kernel-internal maps.
//!
//! `std`'s default hasher (SipHash-1-3 with per-process random keys) is
//! DoS-resistant but costs ~2–3× more per lookup than the kernel needs for
//! its small fixed-width keys ([`ChainKey`](crate::channel::ChainKey),
//! `(MhId, MhId)` pairs). [`FxHasher`] is an in-repo implementation of the
//! multiply-rotate scheme used by rustc's `FxHash`: a few cycles per word,
//! **no random state** — so hash maps behave identically in every process,
//! which the determinism guarantees of the simulator require whenever a map
//! is iterated.
//!
//! Only use these maps for keyed lookup or with sorted iteration; anything
//! whose iteration order can influence event ordering must stay on
//! `BTreeMap`/`BTreeSet` (see DESIGN.md, "Performance architecture").

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over native words (the rustc `FxHash` scheme).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Zero-sized `BuildHasher` producing [`FxHasher`]s (no random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"chain"), hash_of(&"chain"));
        assert_eq!(hash_of(&(7u32, 9u32, 1u8)), hash_of(&(7u32, 9u32, 1u8)));
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(0u32, 1u32)), hash_of(&(1u32, 0u32)));
    }

    #[test]
    fn byte_stream_tail_handled() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Zero-padded tail must still distinguish lengths going through
        // the map API (Hash impls write length separately), but raw writes
        // of padded vs unpadded bytes may collide — only assert stability.
        let mut a2 = FxHasher::default();
        a2.write(&[1, 2, 3]);
        assert_eq!(a.finish(), a2.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert((i, i + 1), i as u64);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&(i, i + 1)), Some(&(i as u64)));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
