//! Shard-count equivalence for the space-sharded kernel.
//!
//! The contract under test: a sharded run is **byte-identical** to the
//! 1-shard run at every worker count — same ledger, same canonical
//! final-state digest, same event count — and the spec fingerprint does
//! not depend on the shard count (it is an execution knob, not part of
//! the simulated world).

use mobidist_net::config::Placement;
use mobidist_net::fingerprint::{Fingerprint, KERNEL_VERSION_SALT};
use mobidist_net::mobility::MovePattern;
use mobidist_net::obs::{RingSink, TraceEvent, TraceSink};
use mobidist_net::shard::{plan_partition, run_scale, run_scale_traced, ScaleSpec};

/// Specs spanning the shapes the equivalence must hold for: tiny cell
/// counts (shards clamp), uneven cell/shard divisions, heavy churn, and a
/// larger population in the E12 ladder's configuration.
fn specs() -> Vec<ScaleSpec> {
    vec![
        ScaleSpec::new(2, 30).with_seed(7),
        ScaleSpec::new(5, 100).with_seed(8).with_churn(60, 10),
        ScaleSpec::new(64, 1_000).with_seed(1202),
        ScaleSpec::new(128, 20_000).with_seed(1202),
    ]
}

#[test]
fn every_worker_count_reproduces_the_single_shard_run() {
    for spec in specs() {
        let base = run_scale(&spec, 1);
        assert!(base.ledger.moves > 0, "workload must churn: {spec:?}");
        for shards in [2, 3, 4, 8] {
            let r = run_scale(&spec, shards);
            assert_eq!(r.digest, base.digest, "digest diverged at {shards} shards");
            assert_eq!(r.ledger, base.ledger, "ledger diverged at {shards} shards");
            assert_eq!(
                r.events, base.events,
                "event count diverged at {shards} shards"
            );
            assert_eq!(r.windows, base.windows);
            assert_eq!(r.state_bytes, base.state_bytes);
        }
    }
}

#[test]
fn spec_fingerprint_is_shard_count_free() {
    // The fingerprint hashes the spec alone; runs at different worker
    // counts therefore share a cache/trace identity, which is sound only
    // because the test above holds.
    let spec = ScaleSpec::new(64, 1_000).with_seed(1202);
    let fp = Fingerprint::of(&spec);
    assert_eq!(fp, Fingerprint::of(&spec));
    let mut other = spec.clone();
    other.seed += 1;
    assert_ne!(fp, Fingerprint::of(&other), "seed must change the identity");
}

#[test]
fn kernel_salt_tracks_behaviour_changes() {
    // The sharded kernel (1 → 2), the workload hold-profile knob's new
    // canonical encoding (2 → 3), the mobility-zoo/fault-plane additions
    // (3 → 4), and the batched delivery engine with its canon-hashed
    // delivery mode (4 → 5) each changed what a fingerprint means, so the
    // version salt must sit at its post-delivery-engine value. Any future
    // behaviour-affecting change must move it again — update this pin when
    // it does.
    assert_eq!(KERNEL_VERSION_SALT, 5);
}

#[test]
fn traced_shard_events_reconcile_with_the_ledger() {
    let spec = ScaleSpec::new(8, 500).with_seed(42);
    let shards = 4;
    let sinks: Vec<Box<dyn TraceSink>> = (0..shards)
        .map(|_| Box::new(RingSink::new(1 << 20)) as Box<dyn TraceSink>)
        .collect();
    let (r, sinks) = run_scale_traced(&spec, shards, sinks);
    assert_eq!(
        r.digest,
        run_scale(&spec, 1).digest,
        "tracing must not perturb"
    );

    let mut syncs = 0;
    let mut covered = 0u64;
    let mut recvs = 0;
    let mut ends = 0;
    for sink in &sinks {
        let ring = sink.as_any().downcast_ref::<RingSink>().unwrap();
        syncs += ring.count_kind("shard_sync");
        recvs += ring.count_kind("shard_recv");
        ends += ring.count_kind("handoff_end");
        for (_, _, ev) in ring.iter() {
            if let TraceEvent::ShardSync { skipped, .. } = ev {
                covered += 1 + skipped;
            }
        }
    }
    // Fast-forward may skip empty windows, so syncs count only *processed*
    // windows; each sync's `skipped` field accounts for the jumped-over
    // remainder, and together they must tile the horizon exactly.
    assert_eq!(
        covered,
        r.windows * shards as u64,
        "processed + skipped windows must cover the horizon on every shard"
    );
    assert_eq!(
        syncs as u64,
        (r.windows - r.skipped_windows) * shards as u64,
        "one sync per processed window per shard"
    );
    assert_eq!(
        recvs as u64, r.ledger.fixed_msgs,
        "every wired charge is traced"
    );
    assert_eq!(ends as u64, r.ledger.moves, "every move is traced");
}

#[test]
fn skewed_occupancy_stays_balanced_and_bit_identical() {
    // Deliberately hostile partition inputs: all hosts start clustered in a
    // handful of cells and the mobility keeps them concentrated (platoons
    // converging on shared anchors, locality-biased wanderers hugging small
    // home spans). A static block partition would pile the hot cells onto
    // one worker; the host-weighted partition must spread them — and the
    // rebalanced ownership must not perturb a single bit of the result.
    let specs = [
        ScaleSpec::new(48, 6_000)
            .with_seed(4801)
            .with_horizon(3_000)
            .with_churn(150, 15)
            .with_pattern(MovePattern::GroupPlatoon {
                groups: 6,
                p_follow: 0.9,
            })
            .with_placement(Placement::Clustered { cells: 5 }),
        ScaleSpec::new(48, 6_000)
            .with_seed(4802)
            .with_horizon(3_000)
            .with_churn(150, 15)
            .with_pattern(MovePattern::Locality {
                p_local: 0.85,
                home_span: 4,
            })
            .with_placement(Placement::Clustered { cells: 6 }),
    ];
    for spec in specs {
        for shards in [2, 3, 4, 8] {
            let plan = plan_partition(&spec, shards);
            assert_eq!(plan.load.iter().sum::<u64>(), spec.num_mh as u64);
            let mean = spec.num_mh as u64 / shards as u64;
            for (s, &load) in plan.load.iter().enumerate() {
                assert!(
                    load <= 2 * mean,
                    "worker {s} owns {load} hosts at t=0, over 2x the mean \
                     {mean} at {shards} shards: {spec:?}"
                );
            }
        }
        let base = run_scale(&spec, 1);
        assert!(base.ledger.moves > 0, "workload must churn: {spec:?}");
        for shards in [2, 3, 4, 8] {
            let r = run_scale(&spec, shards);
            assert_eq!(r.digest, base.digest, "digest diverged at {shards} shards");
            assert_eq!(r.ledger, base.ledger, "ledger diverged at {shards} shards");
            assert_eq!(r.events, base.events, "events diverged at {shards} shards");
        }
    }
}
