//! Reuse semantics of the ledger and trace sinks across
//! `Simulation::reset` / `SimPool` recycling: a recycled simulation must
//! start with a zeroed ledger (so `CostLedger::delta` measures only the new
//! run) and a rewound trace sink (so no events leak between runs).

use mobidist_net::obs::RingSink;
use mobidist_net::prelude::*;

/// Each MH pings its MSS once at start; the MSS echoes back.
#[derive(Debug, Default)]
struct Ping;

impl Protocol for Ping {
    type Msg = u32;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32, ()>) {
        for mh in 0..ctx.config().num_mh as u32 {
            ctx.send_wireless_up(MhId(mh), mh).unwrap();
        }
    }
    fn on_mss_msg(&mut self, ctx: &mut Ctx<'_, u32, ()>, at: MssId, _src: Src, msg: u32) {
        ctx.send_wireless_down(at, MhId(msg), msg).unwrap();
    }
    fn on_mh_msg(&mut self, _: &mut Ctx<'_, u32, ()>, _: MhId, _: Src, _: u32) {}
}

fn cfg(seed: u64) -> NetworkConfig {
    NetworkConfig::new(2, 4).with_seed(seed)
}

#[test]
fn ledger_is_zero_after_reset_and_delta_measures_one_run() {
    let mut sim = Simulation::new(cfg(1), Ping);
    sim.run_to_quiescence(10_000);
    let first = sim.ledger().clone();
    assert!(first.wireless_msgs > 0, "workload produced no traffic");

    sim.reset(cfg(2), Ping);
    assert_eq!(
        *sim.ledger(),
        CostLedger::new(4),
        "reset must zero every ledger counter"
    );

    // With a zeroed starting point, delta against a snapshot taken right
    // after reset equals the full ledger of the new run.
    let baseline = sim.ledger().clone();
    sim.run_to_quiescence(10_000);
    assert_eq!(sim.ledger().delta(&baseline), *sim.ledger());
    assert_eq!(sim.ledger().wireless_msgs, first.wireless_msgs);
}

#[test]
fn pool_reuse_replays_identical_ledgers() {
    let mut pool: SimPool<Ping> = SimPool::new();
    let fresh = pool.run(cfg(7), Ping, |sim| {
        sim.run_to_quiescence(10_000);
        sim.ledger().clone()
    });
    // Same point again through the pool — served by the recycled simulation.
    let recycled = pool.run(cfg(7), Ping, |sim| {
        sim.run_to_quiescence(10_000);
        sim.ledger().clone()
    });
    assert_eq!(pool.idle(), 1);
    assert_eq!(
        fresh, recycled,
        "recycled simulation must replay the ledger"
    );
}

#[test]
fn trace_sink_is_rewound_on_reset() {
    let mut sim = Simulation::new(cfg(3), Ping);
    sim.kernel_mut()
        .set_trace_sink(Box::new(RingSink::new(1024)));
    sim.run_to_quiescence(10_000);

    let recorded = {
        let sink = sim.kernel().trace_sink().expect("sink installed");
        let ring = sink
            .as_any()
            .downcast_ref::<RingSink>()
            .expect("RingSink type");
        assert!(!ring.is_empty(), "traced run recorded no events");
        ring.len()
    };
    assert_eq!(recorded, 8 + 8, "4 up sends + 4 down sends, each delivered");

    // Reset rewinds the installed sink instead of leaking events into the
    // next run.
    sim.reset(cfg(4), Ping);
    let sink = sim.kernel_mut().take_trace_sink().expect("sink survives");
    let ring = sink.as_any().downcast_ref::<RingSink>().unwrap();
    assert!(ring.is_empty(), "reset must rewind the trace sink");
}
