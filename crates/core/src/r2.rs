//! **Algorithms R2, R2′ and the token-list variation** — the token ring
//! restructured onto the static network (Section 3.1.2).
//!
//! A single token circulates among the `M` MSSs arranged in a unidirectional
//! ring. Each MSS keeps a *request queue* fed by local MHs over the wireless
//! uplink. When the token arrives, pending requests move to a *grant queue*
//! and are served sequentially: the MSS searches for the requesting MH,
//! lends it the token (`C_search + C_wireless`), and waits for the token to
//! come back (`C_wireless + C_fixed`). When the grant queue empties, the
//! token moves to the next MSS (`C_fixed`).
//!
//! Serving `K` requests in one traversal costs
//! `K(3·C_wireless + C_fixed + C_search) + M·C_fixed` — proportional to the
//! work done, unlike R1's `N(2·C_wireless + C_search)` per traversal.
//!
//! Three admission guards realise the paper's variants:
//!
//! * [`RingGuard::Plain`] (**R2**) — every pending request is served;
//!   an MH that moves ahead of the token can be served up to `N·M` times in
//!   one traversal (throughput over fairness).
//! * [`RingGuard::Counter`] (**R2′**) — the token carries `token-val`,
//!   incremented per traversal; each MH submits its `access-count`, is served
//!   only if `access-count < token-val`, and sets `access-count = token-val`
//!   when it gets the token: at most one access per traversal — unless the
//!   MH lies about its count.
//! * [`RingGuard::TokenList`] — the token carries `⟨MSS, MH⟩` pairs of
//!   services performed this traversal; a request is admitted only if its MH
//!   is absent from the list. Immune to malicious under-reporting.

use crate::algorithm::{AlgoCtx, MutexAlgorithm};
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::Src;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Admission guard selecting the R2 variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingGuard {
    /// R2: serve every pending request.
    #[default]
    Plain,
    /// R2′: `access-count < token-val` admission.
    Counter,
    /// Token-list variation: one service per MH per traversal, tamper-proof.
    TokenList,
}

/// The circulating token's state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TokenState {
    /// Traversal counter (R2′).
    pub val: u64,
    /// `⟨MSS, MH⟩` services this traversal (token-list variant).
    pub list: Vec<(MssId, MhId)>,
}

/// R2-family protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum R2Msg {
    /// MH→MSS (wireless): request the token, reporting an access count.
    MhRequest {
        /// The MH's claimed access count (R2′ admission).
        access_count: u64,
    },
    /// MSS→MSS (fixed): the token moves to its ring successor.
    Token(TokenState),
    /// MSS→MH (searched): the token is lent to a requester.
    GrantToken {
        /// The MSS awaiting the token's return.
        granting: MssId,
        /// Token-val at grant time (the MH adopts it as its access count).
        token_val: u64,
    },
    /// MH→MSS (wireless): the token returns from the critical section.
    ReturnToken {
        /// The MSS the token must reach.
        granting: MssId,
    },
    /// MSS→MSS (fixed): relayed token return from a moved MH.
    ReturnRelay {
        /// The MH that finished.
        mh: MhId,
    },
}

/// Per-MSS queues.
#[derive(Debug, Default)]
struct Station {
    request_q: VecDeque<(MhId, u64)>,
    grant_q: VecDeque<(MhId, u64)>,
    has_token: bool,
    serving: Option<MhId>,
}

/// The token ring among the MSSs, in three variants. See the module docs.
#[derive(Debug)]
pub struct R2 {
    guard: RingGuard,
    m: usize,
    stations: Vec<Station>,
    token: TokenState,
    /// True access count per MH (what an honest MH reports).
    access_count: BTreeMap<MhId, u64>,
    /// MHs that always report an access count of 0 (malice injection).
    liars: BTreeSet<MhId>,
    /// Granting MSS for each MH currently holding the token.
    holding: BTreeMap<MhId, MssId>,
    /// MHs that disconnected while holding; they return the token on
    /// reconnection.
    pending_return: BTreeMap<MhId, MssId>,
    /// `(traversal, mh)` for every completed service.
    grant_log: Vec<(u64, MhId)>,
    /// `(serving MSS, mh)` for every completed service.
    service_log: Vec<(MssId, MhId)>,
    /// Section 2's handoff of algorithm-specific data structures: pending
    /// (unadmitted) requests travel with the MH to its new cell.
    request_handoff: bool,
    traversals: u64,
    token_passes: u64,
    minted: bool,
}

impl R2 {
    /// Creates a ring over `m` MSSs with the given admission guard.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize, guard: RingGuard) -> Self {
        assert!(m > 0, "R2 needs at least one MSS");
        R2 {
            guard,
            m,
            stations: (0..m).map(|_| Station::default()).collect(),
            token: TokenState {
                val: 1,
                list: Vec::new(),
            },
            access_count: BTreeMap::new(),
            liars: BTreeSet::new(),
            holding: BTreeMap::new(),
            pending_return: BTreeMap::new(),
            grant_log: Vec::new(),
            service_log: Vec::new(),
            request_handoff: false,
            traversals: 0,
            token_passes: 0,
            minted: false,
        }
    }

    /// Marks `mh` as malicious: it always claims an access count of 0.
    pub fn with_liar(mut self, mh: MhId) -> Self {
        self.liars.insert(mh);
        self
    }

    /// Enables the Section-2 handoff of algorithm state: when an MH with a
    /// pending (not yet admitted) request moves, the request is transferred
    /// to its new local MSS, so the token serves it where the MH actually
    /// is instead of searching from the old cell.
    pub fn with_request_handoff(mut self) -> Self {
        self.request_handoff = true;
        self
    }

    /// `(serving MSS, mh)` for every completed service, in order.
    pub fn service_log(&self) -> &[(MssId, MhId)] {
        &self.service_log
    }

    /// Completed traversals of the ring.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Token transfers between MSSs.
    pub fn token_passes(&self) -> u64 {
        self.token_passes
    }

    /// `(traversal, mh)` pairs for every completed service, in order.
    pub fn grant_log(&self) -> &[(u64, MhId)] {
        &self.grant_log
    }

    /// Maximum number of services a single MH received within one traversal.
    pub fn max_services_per_traversal(&self) -> u64 {
        let mut counts: BTreeMap<(u64, MhId), u64> = BTreeMap::new();
        for (t, mh) in &self.grant_log {
            *counts.entry((*t, *mh)).or_insert(0) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }

    fn successor(&self, of: MssId) -> MssId {
        MssId(((of.index() + 1) % self.m) as u32)
    }

    fn token_arrived(&mut self, ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>, at: MssId) {
        if at.index() == 0 && self.minted {
            // Completed one traversal of the ring.
            self.token.val += 1;
            self.traversals += 1;
        }
        self.minted = true;
        if self.guard == RingGuard::TokenList {
            self.token.list.retain(|(m, _)| *m != at);
        }
        // Move admissible requests to the grant queue.
        let admissible: Vec<(MhId, u64)> = {
            let st = &mut self.stations[at.index()];
            st.has_token = true;
            let pending: Vec<(MhId, u64)> = st.request_q.drain(..).collect();
            let (adm, keep): (Vec<_>, Vec<_>) =
                pending.into_iter().partition(|(mh, ac)| match self.guard {
                    RingGuard::Plain => true,
                    RingGuard::Counter => *ac < self.token.val,
                    RingGuard::TokenList => !self.token.list.iter().any(|(_, h)| h == mh),
                });
            st.request_q.extend(keep);
            adm
        };
        self.stations[at.index()].grant_q.extend(admissible);
        self.serve_next(ctx, at);
    }

    fn serve_next(&mut self, ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>, at: MssId) {
        let next_grant = self.stations[at.index()].grant_q.pop_front();
        match next_grant {
            Some((mh, _)) => {
                self.stations[at.index()].serving = Some(mh);
                // The MH may have moved since requesting: search for it.
                ctx.search_send(
                    at,
                    mh,
                    R2Msg::GrantToken {
                        granting: at,
                        token_val: self.token.val,
                    },
                );
            }
            None => {
                // Grant queue exhausted: pass the token along the ring.
                let st = &mut self.stations[at.index()];
                st.has_token = false;
                st.serving = None;
                let next = self.successor(at);
                self.token_passes += 1;
                ctx.send_fixed(at, next, R2Msg::Token(self.token.clone()));
            }
        }
    }

    fn token_returned(&mut self, ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>, at: MssId, mh: MhId) {
        debug_assert_eq!(self.stations[at.index()].serving, Some(mh));
        self.holding.remove(&mh);
        if self.guard == RingGuard::TokenList {
            self.token.list.push((at, mh));
        }
        self.grant_log.push((self.token.val, mh));
        self.service_log.push((at, mh));
        self.stations[at.index()].serving = None;
        self.serve_next(ctx, at);
    }

    /// Total number of tokens in the system — must always be exactly one
    /// (held by an MSS, lent to an MH, or in flight, never duplicated).
    pub fn stations_with_token(&self) -> usize {
        self.stations.iter().filter(|s| s.has_token).count()
    }
}

impl MutexAlgorithm for R2 {
    type Msg = R2Msg;
    type Timer = ();

    fn name(&self) -> &'static str {
        match self.guard {
            RingGuard::Plain => "R2",
            RingGuard::Counter => "R2'",
            RingGuard::TokenList => "R2-list",
        }
    }

    fn on_start(&mut self, ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>) {
        self.token_arrived(ctx, MssId(0));
    }

    fn request(&mut self, ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>, mh: MhId) {
        let true_count = self.access_count.get(&mh).copied().unwrap_or(0);
        let reported = if self.liars.contains(&mh) {
            0
        } else {
            true_count
        };
        let _ = ctx.send_wireless_up(
            mh,
            R2Msg::MhRequest {
                access_count: reported,
            },
        );
    }

    fn release(&mut self, ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>, mh: MhId) {
        let Some(granting) = self.holding.get(&mh).copied() else {
            return;
        };
        match ctx.send_wireless_up(mh, R2Msg::ReturnToken { granting }) {
            Ok(()) => {}
            Err(_) => {
                // Disconnected while holding the token: must reconnect to
                // return it (the ring stalls meanwhile — by design).
                self.pending_return.insert(mh, granting);
            }
        }
    }

    fn on_mss_msg(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>,
        at: MssId,
        src: Src,
        msg: R2Msg,
    ) {
        match msg {
            R2Msg::MhRequest { access_count } => {
                let mh = src.as_mh().expect("requests arrive on the uplink");
                self.stations[at.index()]
                    .request_q
                    .push_back((mh, access_count));
            }
            R2Msg::Token(state) => {
                self.token = state;
                self.token_arrived(ctx, at);
            }
            R2Msg::ReturnToken { granting } => {
                let mh = src.as_mh().expect("returns arrive on the uplink");
                if granting == at {
                    self.token_returned(ctx, at, mh);
                } else {
                    // The MH moved before returning: relay over the wire.
                    ctx.send_fixed(at, granting, R2Msg::ReturnRelay { mh });
                }
            }
            R2Msg::ReturnRelay { mh } => {
                self.token_returned(ctx, at, mh);
            }
            R2Msg::GrantToken { .. } => unreachable!("grants are delivered to MHs"),
        }
    }

    fn on_mh_msg(&mut self, ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>, at: MhId, _src: Src, msg: R2Msg) {
        match msg {
            R2Msg::GrantToken {
                granting,
                token_val,
            } => {
                // Adopt the token's traversal counter as the access count.
                self.access_count.insert(at, token_val);
                self.holding.insert(at, granting);
                ctx.grant(at);
            }
            other => unreachable!("unexpected message at an MH: {other:?}"),
        }
    }

    fn on_search_failed(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>,
        origin: MssId,
        target: MhId,
        msg: R2Msg,
    ) {
        if let R2Msg::GrantToken { granting, .. } = msg {
            debug_assert_eq!(origin, granting);
            // The requester disconnected: its "disconnected" flag came back
            // with the search; drop the entry and keep serving.
            debug_assert_eq!(self.stations[origin.index()].serving, Some(target));
            self.stations[origin.index()].serving = None;
            ctx.abort(target);
            self.serve_next(ctx, origin);
        }
    }

    fn on_mh_reconnected(&mut self, ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>, mh: MhId, _mss: MssId) {
        if let Some(granting) = self.pending_return.remove(&mh) {
            let _ = ctx.send_wireless_up(mh, R2Msg::ReturnToken { granting });
        }
    }

    fn on_mh_joined(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, R2Msg, ()>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        if !self.request_handoff {
            return;
        }
        let Some(p) = prev.filter(|p| *p != mss) else {
            return;
        };
        // Transfer any unadmitted pending request with the handoff.
        let moved: Vec<(MhId, u64)> = {
            let old = &mut self.stations[p.index()];
            let (mine, keep): (Vec<_>, Vec<_>) =
                old.request_q.drain(..).partition(|(h, _)| *h == mh);
            old.request_q.extend(keep);
            mine
        };
        if !moved.is_empty() {
            ctx.bump("r2_request_handoffs");
            self.stations[mss.index()].request_q.extend(moved);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_wraps() {
        let r = R2::new(3, RingGuard::Plain);
        assert_eq!(r.successor(MssId(0)), MssId(1));
        assert_eq!(r.successor(MssId(2)), MssId(0));
    }

    #[test]
    fn names_reflect_variants() {
        assert_eq!(R2::new(1, RingGuard::Plain).name(), "R2");
        assert_eq!(R2::new(1, RingGuard::Counter).name(), "R2'");
        assert_eq!(R2::new(1, RingGuard::TokenList).name(), "R2-list");
    }

    #[test]
    fn max_services_counts_per_traversal() {
        let mut r = R2::new(2, RingGuard::Plain);
        r.grant_log = vec![(1, MhId(0)), (1, MhId(0)), (1, MhId(1)), (2, MhId(0))];
        assert_eq!(r.max_services_per_traversal(), 2);
        r.grant_log.clear();
        assert_eq!(r.max_services_per_traversal(), 0);
    }

    #[test]
    fn liars_are_registered() {
        let r = R2::new(2, RingGuard::Counter).with_liar(MhId(3));
        assert!(r.liars.contains(&MhId(3)));
    }

    #[test]
    #[should_panic(expected = "at least one MSS")]
    fn zero_stations_rejected() {
        let _ = R2::new(0, RingGuard::Plain);
    }
}
