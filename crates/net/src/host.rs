//! Runtime state of hosts.
//!
//! Each MSS keeps the list of MHs local to its cell plus the "disconnected"
//! flags required by the model: when an MH disconnects, its last MSS marks it
//! so that a later search can be answered with the disconnected status.

use crate::ids::{MhId, MssId};
use std::collections::VecDeque;

/// An uplink message buffered while its sender is between cells.
#[derive(Debug, Clone)]
pub enum OutMsg<M> {
    /// A plain uplink payload for the (next) local MSS.
    Plain(M),
    /// An MH→MH payload that the local MSS must search-forward, carrying its
    /// logical-FIFO sequence number.
    ToMh {
        /// Final destination.
        dst: MhId,
        /// Per-pair sequence number assigned at send time.
        seq: u64,
        /// Payload.
        msg: M,
    },
}

/// Connectivity status of a mobile host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MhStatus {
    /// Attached to a cell and reachable.
    Connected,
    /// Has sent `leave(r)` and not yet joined a new cell.
    BetweenCells,
    /// Has sent `disconnect(r)`; may reconnect later.
    Disconnected,
}

/// Per-MH kernel state.
#[derive(Debug, Clone)]
pub struct MhState<M> {
    /// Current cell, when connected.
    pub cell: Option<MssId>,
    /// Connectivity status.
    pub status: MhStatus,
    /// Whether the MH is in doze mode (deliveries still succeed but count as
    /// interruptions).
    pub dozing: bool,
    /// Incremented on every leave/disconnect; wireless downlink deliveries
    /// carry the epoch they were sent under and are dropped when stale
    /// (prefix-delivery semantics).
    pub epoch: u64,
    /// The id of the cell the MH most recently left (supplied with `join()`
    /// / `reconnect()` when the configuration says so).
    pub prev_cell: Option<MssId>,
    /// Home base cell for locality-biased mobility.
    pub home: MssId,
    /// MSS holding this MH's "disconnected" flag, if disconnected.
    pub disconnected_at: Option<MssId>,
    /// Uplink messages issued while between cells, flushed on join.
    pub outbox: VecDeque<OutMsg<M>>,
    /// Messages received on the current cell's downlink (the `r` of
    /// `leave(r)`).
    pub down_received: u64,
    /// Messages sent on the current cell's downlink.
    pub down_sent: u64,
}

impl<M> MhState<M> {
    /// A freshly-connected MH in `cell` with the given home base.
    pub fn new(cell: MssId, home: MssId) -> Self {
        MhState {
            cell: Some(cell),
            status: MhStatus::Connected,
            dozing: false,
            epoch: 0,
            prev_cell: None,
            home,
            disconnected_at: None,
            outbox: VecDeque::new(),
            down_received: 0,
            down_sent: 0,
        }
    }

    /// True when attached to a cell.
    pub fn is_connected(&self) -> bool {
        self.status == MhStatus::Connected
    }

    /// Restores freshly-connected state in `cell` (as [`MhState::new`]),
    /// retaining the outbox allocation for reuse.
    pub fn reset(&mut self, cell: MssId, home: MssId) {
        self.cell = Some(cell);
        self.status = MhStatus::Connected;
        self.dozing = false;
        self.epoch = 0;
        self.prev_cell = None;
        self.home = home;
        self.disconnected_at = None;
        self.outbox.clear();
        self.down_received = 0;
        self.down_sent = 0;
    }
}

/// A set of MH ids, stored as a bitmap.
///
/// MH ids are small dense integers, so membership tests and the
/// every-broadcast iteration the kernel performs are word operations instead
/// of `BTreeSet` pointer chases. Iteration order is ascending id — the same
/// deterministic order the tree set gave, so event ordering is unaffected.
#[derive(Debug, Clone, Default)]
pub struct HostSet {
    words: Vec<u64>,
    len: usize,
}

impl HostSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `mh`; returns `true` when it was not already present.
    pub fn insert(&mut self, mh: MhId) -> bool {
        let (w, b) = (mh.index() / 64, mh.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1u64 << b) == 0;
        self.words[w] |= 1u64 << b;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `mh`; returns `true` when it was present.
    pub fn remove(&mut self, mh: &MhId) -> bool {
        let (w, b) = (mh.index() / 64, mh.index() % 64);
        match self.words.get_mut(w) {
            Some(word) if *word & (1u64 << b) != 0 => {
                *word &= !(1u64 << b);
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// True when `mh` is a member.
    pub fn contains(&self, mh: &MhId) -> bool {
        self.words
            .get(mh.index() / 64)
            .is_some_and(|w| w & (1u64 << (mh.index() % 64)) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no MH is a member.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all members, retaining the bitmap allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> HostSetIter<'_> {
        HostSetIter {
            words: &self.words,
            word_idx: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl<'a> IntoIterator for &'a HostSet {
    type Item = MhId;
    type IntoIter = HostSetIter<'a>;
    fn into_iter(self) -> HostSetIter<'a> {
        self.iter()
    }
}

/// Ascending-id iterator over a [`HostSet`].
#[derive(Debug)]
pub struct HostSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    bits: u64,
}

impl Iterator for HostSetIter<'_> {
    type Item = MhId;

    fn next(&mut self) -> Option<MhId> {
        while self.bits == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word_idx];
        }
        let b = self.bits.trailing_zeros();
        self.bits &= self.bits - 1;
        Some(MhId((self.word_idx * 64) as u32 + b))
    }
}

/// Per-MSS kernel state.
#[derive(Debug, Clone, Default)]
pub struct MssState {
    /// MHs that have identified themselves with this MSS (the paper's list
    /// of local MH ids).
    pub local: HostSet,
    /// MHs whose "disconnected" flag is set at this MSS.
    pub disconnected_here: HostSet,
}

impl MssState {
    /// True when `mh` is local to this cell.
    pub fn has_local(&self, mh: MhId) -> bool {
        self.local.contains(&mh)
    }

    /// Empties both sets, retaining allocations.
    pub fn clear(&mut self) {
        self.local.clear();
        self.disconnected_here.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_mh_is_connected() {
        let h: MhState<()> = MhState::new(MssId(2), MssId(2));
        assert!(h.is_connected());
        assert_eq!(h.cell, Some(MssId(2)));
        assert_eq!(h.epoch, 0);
        assert!(h.outbox.is_empty());
    }

    #[test]
    fn status_transitions_affect_is_connected() {
        let mut h: MhState<()> = MhState::new(MssId(0), MssId(0));
        h.status = MhStatus::BetweenCells;
        assert!(!h.is_connected());
        h.status = MhStatus::Disconnected;
        assert!(!h.is_connected());
    }

    #[test]
    fn reset_matches_new() {
        let mut h: MhState<u32> = MhState::new(MssId(0), MssId(0));
        h.status = MhStatus::BetweenCells;
        h.dozing = true;
        h.epoch = 9;
        h.outbox.push_back(OutMsg::Plain(1));
        h.down_received = 3;
        h.reset(MssId(2), MssId(2));
        assert!(h.is_connected());
        assert_eq!(h.cell, Some(MssId(2)));
        assert_eq!(h.epoch, 0);
        assert!(!h.dozing);
        assert!(h.outbox.is_empty());
        assert_eq!(h.down_received, 0);
    }

    #[test]
    fn host_set_basics() {
        let mut s = HostSet::new();
        assert!(s.is_empty());
        assert!(s.insert(MhId(3)));
        assert!(s.insert(MhId(130)));
        assert!(s.insert(MhId(0)));
        assert!(!s.insert(MhId(3)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(&MhId(130)));
        assert!(!s.contains(&MhId(131)));
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![MhId(0), MhId(3), MhId(130)]
        );
        assert!(s.remove(&MhId(3)));
        assert!(!s.remove(&MhId(3)));
        assert!(!s.remove(&MhId(999)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![MhId(0), MhId(130)]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().next(), None);
    }

    #[test]
    fn mss_local_list() {
        let mut m = MssState::default();
        assert!(!m.has_local(MhId(1)));
        m.local.insert(MhId(1));
        assert!(m.has_local(MhId(1)));
        m.local.remove(&MhId(1));
        m.disconnected_here.insert(MhId(1));
        assert!(!m.has_local(MhId(1)));
        assert!(m.disconnected_here.contains(&MhId(1)));
    }
}
