//! Cache soundness: experiment tables must be byte-identical whether a run
//! is computed cold, replayed from the in-process cache tier, or replayed
//! from the on-disk store — at any worker count — and a corrupted cache
//! file must fall back to recomputation, never panic and never change a
//! table.
//!
//! `MOBIDIST_CACHE` (and `MOBIDIST_JOBS`) are process-global, so this
//! binary holds exactly one `#[test]`: a second test in the same process
//! could observe the other's environment mid-run.

use mobidist_bench::{exp_fault, exp_group, exp_mutex, exp_serve};
use mobidist_runcache::{store, CACHE_ENV};
use std::fs;
use std::path::{Path, PathBuf};

/// Renders the six pinned quick tables (E1, E2, E5, E11, E13, E14) to one
/// string. E14 pins the fault plane through the cache: a replayed faulty
/// run must reproduce the recorded fault counters bit-for-bit.
fn tables() -> String {
    format!(
        "{}{}{}{}{}{}",
        exp_mutex::e1_lamport(true),
        exp_mutex::e2_ring(true),
        exp_group::e5_group_strategies(true),
        exp_group::e11_exactly_once(true),
        exp_serve::e13_serving(true),
        exp_fault::e14_fault(true),
    )
}

/// Every record file in the sharded cache directory.
fn record_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for shard in fs::read_dir(dir).expect("read cache dir") {
        let shard = shard.expect("shard entry").path();
        if !shard.is_dir() {
            continue;
        }
        for f in fs::read_dir(&shard).expect("read shard") {
            let f = f.expect("record entry").path();
            if f.extension().is_some_and(|e| e == "mdrc") {
                out.push(f);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn tables_are_byte_identical_across_cache_tiers_and_survive_corruption() {
    let dir = std::env::temp_dir().join(format!("mobidist-cache-check-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create cache dir");
    let cache = store::global();

    // Reference: cache disabled entirely.
    std::env::remove_var(CACHE_ENV);
    let reference = tables();

    // Cold with the cache enabled: every run misses, simulates, stores.
    std::env::set_var(CACHE_ENV, &dir);
    cache.clear_memory();
    let cold = tables();
    assert_eq!(cold, reference, "cold cached run changed a table");
    let s = cache.stats();
    assert!(s.stores > 0, "cold pass stored nothing: {s:?}");
    assert_eq!(s.hits(), 0, "cold pass cannot hit: {s:?}");

    // Warm, in-process tier: every run replays from the memory map.
    let warm_mem = tables();
    assert_eq!(warm_mem, reference, "memory-tier replay changed a table");
    let s = cache.stats();
    assert!(s.mem_hits > 0, "warm pass never hit memory: {s:?}");

    // Warm, disk tier: drop the memory map so every hit decodes a record.
    cache.clear_memory();
    let warm_disk = tables();
    assert_eq!(warm_disk, reference, "disk-tier replay changed a table");
    let s = cache.stats();
    assert!(s.disk_hits > 0, "warm pass never hit disk: {s:?}");

    // Warm replay under parallel fan-out: workers share the same cache.
    std::env::set_var("MOBIDIST_JOBS", "3");
    cache.clear_memory();
    let warm_par = tables();
    std::env::remove_var("MOBIDIST_JOBS");
    assert_eq!(warm_par, reference, "parallel replay changed a table");

    // Corruption: truncate one record, garble another, replace a third
    // with the wrong magic. All must read as misses and recompute.
    let files = record_files(&dir);
    assert!(
        files.len() >= 3,
        "expected >= 3 records, got {}",
        files.len()
    );
    let bytes = fs::read(&files[0]).expect("read record");
    fs::write(&files[0], &bytes[..bytes.len() / 2]).expect("truncate record");
    let mut garbled = fs::read(&files[1]).expect("read record");
    let mid = garbled.len() / 2;
    garbled[mid] ^= 0xff;
    fs::write(&files[1], &garbled).expect("garble record");
    fs::write(&files[2], b"not a cache record at all").expect("replace record");
    let corrupt_before = cache.stats().corrupt;
    cache.clear_memory();
    let after_corruption = tables();
    assert_eq!(after_corruption, reference, "corruption changed a table");
    let s = cache.stats();
    assert!(
        s.corrupt >= corrupt_before + 3,
        "corrupted records not detected: {s:?}"
    );

    // The recompute overwrote the bad records: one more pass is all hits.
    cache.clear_memory();
    let healed = tables();
    assert_eq!(healed, reference, "healed cache changed a table");

    std::env::remove_var(CACHE_ENV);
    let _ = fs::remove_dir_all(&dir);
}
