//! Micro-benchmarks: simulator kernel throughput and end-to-end algorithm
//! executions. These measure *implementation* speed (how fast the
//! reproduction runs), complementing the e*-benches which measure *model*
//! costs (what the paper predicts).
//!
//! Hand-rolled harness (no external crates): each benchmark runs a short
//! warm-up, then enough timed iterations to fill a fixed measurement window,
//! and reports the median per-iteration wall time. Run with
//! `cargo bench --bench micro`.

use mobidist_core::prelude::*;
use mobidist_group::prelude::*;
use mobidist_net::channel::ChainKey;
use mobidist_net::event::{EventHeap, EventQueue};
use mobidist_net::hash::FxHasher;
use mobidist_net::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` repeatedly and prints the median per-iteration wall time.
///
/// Warm-up: 3 untimed calls. Measurement: at least 10 samples, continuing
/// until ~200 ms of total measured time so fast closures get many samples.
fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let budget = Duration::from_millis(200);
    let mut samples: Vec<Duration> = Vec::new();
    let started = Instant::now();
    while samples.len() < 10 || started.elapsed() < budget {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
        if samples.len() >= 100_000 {
            break;
        }
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let iters = samples.len();
    println!("{name:<44} {median:>12.2?}  ({iters} iters)");
}

/// A protocol that keeps `depth` fixed-network messages bouncing between
/// MSS pairs forever — pure kernel overhead.
#[derive(Debug)]
struct Bouncer {
    depth: usize,
}

impl Protocol for Bouncer {
    type Msg = u64;
    type Timer = ();
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64, ()>) {
        let m = ctx.num_mss() as u32;
        for i in 0..self.depth {
            let from = MssId(i as u32 % m);
            let to = MssId((i as u32 + 1) % m);
            ctx.send_fixed(from, to, i as u64);
        }
    }
    fn on_mss_msg(&mut self, ctx: &mut Ctx<'_, u64, ()>, at: MssId, _: Src, msg: u64) {
        let m = ctx.num_mss() as u32;
        ctx.send_fixed(at, MssId((at.0 + 1) % m), msg + 1);
    }
    fn on_mh_msg(&mut self, _: &mut Ctx<'_, u64, ()>, _: MhId, _: Src, _: u64) {}
}

fn kernel_throughput() {
    for depth in [16usize, 256] {
        bench(&format!("kernel/fixed_msgs_10k_events/{depth}"), || {
            let cfg = NetworkConfig::new(8, 8).with_seed(1);
            let mut sim = Simulation::new(cfg, Bouncer { depth });
            for _ in 0..10_000 {
                if !sim.step() {
                    break;
                }
            }
            black_box(sim.ledger().fixed_msgs);
        });
    }
}

fn mutex_executions() {
    bench("mutex/l2_16mh_1req_each", || {
        let cfg = NetworkConfig::new(4, 16).with_seed(2);
        let wl = WorkloadConfig::all_mhs(16, 1);
        let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(4), wl));
        sim.run_until(SimTime::from_ticks(50_000_000));
        let r = sim.protocol().report();
        assert_eq!(r.completed, 16);
        black_box(r.completed);
    });
    bench("mutex/r2_prime_16mh_1req_each", || {
        let cfg = NetworkConfig::new(4, 16).with_seed(2);
        let wl = WorkloadConfig::all_mhs(16, 1);
        let algo = R2::new(4, RingGuard::Counter);
        let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
        sim.run_until(SimTime::from_ticks(100_000));
        black_box(sim.protocol().report().completed);
    });
}

fn group_messaging() {
    bench("group/location_view_20msgs_mobile", || {
        let members: Vec<MhId> = (0..8u32).map(MhId).collect();
        let cfg = NetworkConfig::new(8, 8)
            .with_seed(3)
            .with_mobility(MobilityConfig::moving(500));
        let wl = GroupWorkload::new(members.clone(), 20, 100);
        let mut sim = Simulation::new(
            cfg,
            GroupHarness::new(LocationView::new(members, MssId(0)), wl),
        );
        sim.run_until(SimTime::from_ticks(500_000));
        black_box(sim.protocol().report().delivered);
    });
}

/// EventQueue steady-state churn: keep `pending` events queued, then
/// push+pop one event per step for `pending` steps. Exercises the 4-ary
/// sift paths at realistic depths.
fn event_queue_churn() {
    for pending in [10_000usize, 100_000] {
        bench(&format!("event_queue/push_pop_steady/{pending}"), || {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(pending + 1);
            // Cheap deterministic time scatter (xorshift64).
            let mut x = 0x243F_6A88_85A3_08D3u64;
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 1_000_000
            };
            for i in 0..pending {
                q.push(SimTime::from_ticks(next()), i as u64);
            }
            for i in 0..pending {
                let (t, _) = q.pop().expect("queue non-empty");
                q.push(SimTime::from_ticks(t.ticks() + next() % 1000), i as u64);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    }
}

/// The two scheduler implementations behind one face, so each distribution
/// below runs the identical driver against both.
trait Sched {
    fn push(&mut self, t: u64, v: u64);
    fn pop(&mut self) -> Option<(u64, u64)>;
}

impl Sched for EventQueue<u64> {
    fn push(&mut self, t: u64, v: u64) {
        EventQueue::push(self, SimTime::from_ticks(t), v);
    }
    fn pop(&mut self) -> Option<(u64, u64)> {
        EventQueue::pop(self).map(|(t, v)| (t.ticks(), v))
    }
}

impl Sched for EventHeap<u64> {
    fn push(&mut self, t: u64, v: u64) {
        EventHeap::push(self, SimTime::from_ticks(t), v);
    }
    fn pop(&mut self) -> Option<(u64, u64)> {
        EventHeap::pop(self).map(|(t, v)| (t.ticks(), v))
    }
}

/// Steady-state churn under a delay distribution: fill to `pending`, then
/// push+pop `pending` more times, then drain. `delay(rng, now)` yields the
/// next event time, always `>= now` (the kernel's contract).
fn churn<Q: Sched>(q: &mut Q, pending: usize, mut delay: impl FnMut(&mut u64, u64) -> u64) {
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for i in 0..pending {
        let t = delay(&mut x, 0);
        q.push(t, i as u64);
    }
    for i in 0..pending {
        let (now, _) = q.pop().expect("queue non-empty");
        let t2 = delay(&mut x, now);
        q.push(t2, i as u64);
    }
    while let Some(e) = q.pop() {
        black_box(e);
    }
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Timing wheel vs the reference 4-ary heap on the three delay shapes that
/// stress different scheduler paths: uniform near-future (hot level-0 slots),
/// bimodal near/far (cascades + overflow drains), and same-tick bursts
/// (FIFO ties — the heap sifts every duplicate, the wheel appends).
fn wheel_vs_heap() {
    type Dist = fn(&mut u64, u64) -> u64;
    let uniform: Dist = |x, now| now + xorshift(x) % 1_000;
    let bimodal: Dist = |x, now| {
        if xorshift(x).is_multiple_of(4) {
            now + (1 << 25) + xorshift(x) % (1 << 20) // beyond the wheel horizon
        } else {
            now + xorshift(x) % 256
        }
    };
    let burst: Dist = |x, now| now + (xorshift(x) % 4) * 64; // few distinct ticks
    let dists: [(&str, Dist); 3] = [
        ("uniform", uniform),
        ("bimodal_near_far", bimodal),
        ("same_tick_burst", burst),
    ];
    let pending = 10_000usize;
    for (dname, delay) in dists {
        bench(&format!("sched/wheel/{dname}/{pending}"), || {
            let mut q: EventQueue<u64> = EventQueue::new();
            churn(&mut q, pending, delay);
        });
        bench(&format!("sched/heap4/{dname}/{pending}"), || {
            let mut q: EventHeap<u64> = EventHeap::new();
            churn(&mut q, pending, delay);
        });
    }
}

/// Hashes the same batch of `ChainKey`s with the in-repo FxHasher and the
/// standard library SipHash — the lookup-path cost the channel maps pay.
fn chain_key_hashing() {
    let keys: Vec<ChainKey> = (0..64u32)
        .flat_map(|i| {
            [
                ChainKey::Fixed(MssId(i % 8), MssId((i + 1) % 8)),
                ChainKey::Down(MssId(i % 8), MhId(i)),
                ChainKey::Up(MhId(i), MssId(i % 8)),
            ]
        })
        .collect();
    bench("hash/chain_key_fx_192keys_x100", || {
        let mut acc = 0u64;
        for _ in 0..100 {
            for k in &keys {
                let mut h = FxHasher::default();
                k.hash(&mut h);
                acc ^= h.finish();
            }
        }
        black_box(acc);
    });
    bench("hash/chain_key_siphash_192keys_x100", || {
        let mut acc = 0u64;
        for _ in 0..100 {
            for k in &keys {
                let mut h = DefaultHasher::new();
                k.hash(&mut h);
                acc ^= h.finish();
            }
        }
        black_box(acc);
    });
}

fn main() {
    println!("{:<44} {:>12}  samples", "benchmark", "median");
    kernel_throughput();
    mutex_executions();
    group_messaging();
    event_queue_churn();
    wheel_vs_heap();
    chain_key_hashing();
}
