//! Runs of the exactly-once extension (reference [1] of the paper):
//! sequenced delivery with handoff-carried cursors must never miss or
//! duplicate a message, whatever the churn — the property the Section-4
//! strategies explicitly do not provide.

use mobidist_group::prelude::*;
use mobidist_net::prelude::*;

fn members(n: usize) -> Vec<MhId> {
    (0..n as u32).map(MhId).collect()
}

fn run_eo(cfg: NetworkConfig, wl: GroupWorkload, horizon: u64) -> (GroupReport, u64, u64) {
    let g = wl.members.clone();
    let mut sim = Simulation::new(cfg, GroupHarness::new(ExactlyOnce::new(g, MssId(0)), wl));
    sim.run_until(SimTime::from_ticks(horizon));
    let r = sim.protocol().report();
    let retx = sim.protocol().strategy().retransmissions();
    (r, retx, sim.ledger().total_cost())
}

#[test]
fn static_delivery_is_exact() {
    let g = members(6);
    let cfg = NetworkConfig::new(4, 6).with_seed(1);
    let (r, retx, _) = run_eo(cfg, GroupWorkload::new(g, 10, 50), 1_000_000);
    assert_eq!(r.sent, 10);
    assert_eq!(r.missed, 0);
    assert_eq!(r.duplicates, 0);
    assert_eq!(r.delivered, r.expected);
    assert_eq!(retx, 0, "nobody moved, nothing to retransmit");
}

#[test]
fn churn_causes_retransmission_not_loss() {
    let g = members(8);
    let cfg = NetworkConfig::new(6, 8)
        .with_seed(2)
        .with_mobility(MobilityConfig {
            enabled: true,
            mean_dwell: 120,
            mean_gap: 30,
            ..MobilityConfig::default()
        });
    let wl = GroupWorkload::new(g, 30, 60);
    // Horizon long enough for every member to land in a cell after the last
    // message (catch-up happens on join).
    let (r, retx, _) = run_eo(cfg, wl, 100_000);
    assert_eq!(r.sent, 30);
    assert_eq!(r.missed, 0, "exactly-once must never miss: {r:?}");
    assert_eq!(r.duplicates, 0, "…nor duplicate: {r:?}");
    assert!(
        retx > 0,
        "with this much churn, catch-up must have happened"
    );
}

#[test]
fn members_between_cells_at_send_time_still_get_the_message() {
    let g = members(4);
    let cfg = NetworkConfig::new(3, 4).with_seed(3);
    let wl = GroupWorkload::new(g.clone(), 1, 5);
    let mut sim = Simulation::new(cfg, GroupHarness::new(ExactlyOnce::new(g, MssId(0)), wl));
    // Put mh3 between cells with a long gap, then let the message go out.
    sim.with_ctx(|ctx, _| ctx.initiate_move(MhId(3), Some(MssId(2))));
    sim.run_until(SimTime::from_ticks(100_000));
    let r = sim.protocol().report();
    assert_eq!(r.sent, 1);
    assert_eq!(r.missed, 0);
    // mh3 was not an *expected* recipient (it was mid-move at send time)
    // but exactly-once delivers to it anyway once it lands.
    let got_bonus = r.unexpected >= 1 || r.expected == 3;
    assert!(got_bonus, "{r:?}");
}

#[test]
fn disconnected_member_catches_up_on_reconnect() {
    let g = members(4);
    let cfg = NetworkConfig::new(3, 4).with_seed(4);
    let wl = GroupWorkload::new(g.clone(), 6, 40);
    let mut sim = Simulation::new(cfg, GroupHarness::new(ExactlyOnce::new(g, MssId(0)), wl));
    sim.with_ctx(|ctx, _| ctx.initiate_disconnect(MhId(2)));
    sim.run_until(SimTime::from_ticks(5_000));
    // All six messages went out while mh2 was dark.
    sim.with_ctx(|ctx, _| ctx.initiate_reconnect(MhId(2), Some(MssId(1)), 10));
    sim.run_until(SimTime::from_ticks(200_000));
    let r = sim.protocol().report();
    assert_eq!(r.sent, 6);
    assert_eq!(r.missed, 0);
    assert_eq!(r.duplicates, 0);
    // mh2 received the full backlog even though it was never expected.
    assert!(r.unexpected >= 5, "{r:?}");
}

#[test]
fn exactly_once_never_loses_where_location_view_does() {
    // High churn: LV drops copies to mid-move members; EO delivers all.
    let g = members(8);
    let mk = || {
        NetworkConfig::new(8, 8)
            .with_seed(5)
            .with_mobility(MobilityConfig {
                enabled: true,
                mean_dwell: 100,
                mean_gap: 40,
                ..MobilityConfig::default()
            })
    };
    let wl = GroupWorkload::new(g.clone(), 25, 50);
    let (eo, _, eo_cost) = run_eo(mk(), wl.clone(), 100_000);
    let mut lv_sim = Simulation::new(mk(), GroupHarness::new(LocationView::new(g, MssId(0)), wl));
    lv_sim.run_until(SimTime::from_ticks(100_000));
    let lv = lv_sim.protocol().report();
    let lv_cost = lv_sim.ledger().total_cost();

    assert_eq!(eo.missed, 0, "{eo:?}");
    assert!(
        lv.missed > 0,
        "under this churn the location view should drop copies: {lv:?}"
    );
    // A finding beyond the paper: EO pays per MESSAGE (an (M−1)-broadcast)
    // while LV pays per significant MOVE — so under move-dominated load the
    // reliable strategy is also the cheaper one.
    assert!(
        eo_cost < lv_cost,
        "move-dominated regime: EO {eo_cost} beats LV {lv_cost}"
    );
}

#[test]
fn exactly_once_pays_more_static_bandwidth_when_messages_dominate() {
    // Message-dominated regime with a localised group: LV's fan-out touches
    // |LV| cells, EO's sequencer broadcast touches all M.
    let g = members(8);
    let mk = || {
        NetworkConfig::new(12, 8)
            .with_seed(7)
            .with_placement(Placement::Clustered { cells: 2 })
    };
    let wl = GroupWorkload::new(g.clone(), 30, 50);
    let (eo, _, eo_cost) = run_eo(mk(), wl.clone(), 1_000_000);
    let mut lv_sim = Simulation::new(mk(), GroupHarness::new(LocationView::new(g, MssId(0)), wl));
    lv_sim.run_until(SimTime::from_ticks(1_000_000));
    let lv = lv_sim.protocol().report();
    let lv_cost = lv_sim.ledger().total_cost();

    assert_eq!(eo.missed, 0);
    assert_eq!(lv.missed, 0, "no churn, no losses");
    assert!(
        eo_cost > lv_cost,
        "message-dominated regime: reliability costs bandwidth: {eo_cost} vs {lv_cost}"
    );
}

#[test]
fn deterministic_replay() {
    let g = members(6);
    let go = || {
        let cfg = NetworkConfig::new(4, 6)
            .with_seed(6)
            .with_mobility(MobilityConfig::moving(200));
        run_eo(cfg, GroupWorkload::new(g.clone(), 12, 80), 200_000)
    };
    assert_eq!(go(), go());
}

#[test]
fn exactly_once_gives_one_global_total_order() {
    // Two senders interleave messages under churn and high latency
    // variance; every member must still deliver in the sequencer's order.
    let g = members(6);
    let mut cfg = NetworkConfig::new(5, 6)
        .with_seed(30)
        .with_mobility(MobilityConfig::moving(300));
    cfg.latency.fixed = LatencyModel::Uniform { lo: 1, hi: 40 };
    cfg.latency.wireless = LatencyModel::Uniform { lo: 1, hi: 12 };
    let wl = GroupWorkload::new(g.clone(), 20, 15); // rapid-fire messages
    let mut sim = Simulation::new(cfg, GroupHarness::new(ExactlyOnce::new(g, MssId(0)), wl));
    sim.run_until(SimTime::from_ticks(300_000));
    let r = sim.protocol().report();
    assert_eq!(r.missed, 0, "{r:?}");
    assert!(
        sim.protocol().total_order_consistent(),
        "sequencer order must be global: {:?}",
        sim.protocol().delivery_sequences()
    );
}

#[test]
fn unordered_strategies_can_violate_total_order() {
    // The same rapid-fire scenario under pure search: per-copy searches
    // with variable latency let two members see two messages in opposite
    // orders on at least one seed.
    let g = members(6);
    let mut violated = false;
    for seed in 30..40u64 {
        let mut cfg = NetworkConfig::new(5, 6).with_seed(seed);
        cfg.latency.search = LatencyModel::Uniform { lo: 1, hi: 60 };
        cfg.latency.wireless = LatencyModel::Uniform { lo: 1, hi: 12 };
        let wl = GroupWorkload::new(g.clone(), 20, 5);
        let mut sim = Simulation::new(cfg, GroupHarness::new(PureSearch::new(g.clone()), wl));
        sim.run_until(SimTime::from_ticks(300_000));
        if !sim.protocol().total_order_consistent() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "pure search provides no ordering; some seed must show a violation"
    );
}
