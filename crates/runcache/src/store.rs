//! The two-tier content-addressed run store.
//!
//! **Memory tier** — an `FxHash` map from [`Fingerprint`] to the encoded
//! record, shared by every thread of the process (sweep workers consult it
//! from inside `map_indexed_with`). Bounded by [`MEM_CAP_BYTES`] with FIFO
//! eviction so unbounded sweeps cannot exhaust memory.
//!
//! **Disk tier** — one flat binary file per fingerprint under the
//! configured directory, named by the fingerprint's hex form (sharded by
//! its first two digits to keep directories small):
//!
//! ```text
//! <dir>/ab/cdef0123…89.mdrc
//! ```
//!
//! Record layout: `"MDRC"` magic, format version (`u64` LE), payload
//! length (`u64` LE), payload bytes, and a 64-bit payload checksum. Writes
//! go to a temp file then `rename`, so concurrent writers (several sweep
//! workers storing the same point, or two CLI processes sharing a cache
//! directory) can only ever produce complete records. Reads validate
//! everything — magic, version, length, checksum — and **any** failure is
//! a miss plus a `corrupt` count, never a panic: a damaged cache can cost
//! recomputation but can never poison results.

use crate::codec::Reader;
use mobidist_net::fingerprint::{CanonHasher, Fingerprint};
use mobidist_net::hash::FxHashMap;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// On-disk record format version. Bumped whenever any
/// [`Codec`](crate::codec::Codec) impl changes shape; records with another
/// version are treated as absent (not corrupt — they are simply for a
/// different reader).
pub const FORMAT_VERSION: u64 = 1;

/// Memory-tier capacity in payload bytes (records beyond it evict the
/// oldest entries first).
pub const MEM_CAP_BYTES: usize = 64 << 20;

const MAGIC: &[u8; 4] = b"MDRC";
const EXT: &str = "mdrc";

fn checksum(payload: &[u8]) -> u64 {
    let mut h = CanonHasher::new();
    h.write_bytes(payload);
    h.finish().hi
}

/// Monotonic counters describing cache behaviour; snapshot via
/// [`RunCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by the in-process map.
    pub mem_hits: u64,
    /// Lookups satisfied by reading a disk record.
    pub disk_hits: u64,
    /// Lookups that found nothing valid in either tier.
    pub misses: u64,
    /// Records stored (one per computed run while the cache is active).
    pub stores: u64,
    /// Memory-tier records evicted to stay under [`MEM_CAP_BYTES`].
    pub evictions: u64,
    /// Disk records rejected by validation (bad magic/length/checksum or
    /// undecodable payload).
    pub corrupt: u64,
}

impl CacheStats {
    /// Total lookups satisfied from either tier.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

#[derive(Debug, Default)]
struct MemTier {
    map: FxHashMap<Fingerprint, Arc<Vec<u8>>>,
    order: VecDeque<Fingerprint>,
    bytes: usize,
}

/// The two-tier content-addressed store; usually accessed through
/// [`global`].
#[derive(Debug, Default)]
pub struct RunCache {
    mem: Mutex<MemTier>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
}

/// The process-wide cache instance shared by all sweep workers and CLIs.
pub fn global() -> &'static RunCache {
    static GLOBAL: OnceLock<RunCache> = OnceLock::new();
    GLOBAL.get_or_init(RunCache::default)
}

impl RunCache {
    /// An empty cache (tests; production code uses [`global`]).
    pub fn new() -> Self {
        RunCache::default()
    }

    /// Looks `fp` up in the memory tier, then (when `dir` is given) on
    /// disk. A disk hit is promoted into the memory tier. Returns the
    /// encoded payload, or `None` — which is counted as a miss.
    pub fn get(&self, dir: Option<&Path>, fp: Fingerprint) -> Option<Arc<Vec<u8>>> {
        if let Some(hit) = self.mem.lock().expect("cache lock").map.get(&fp).cloned() {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        if let Some(payload) = dir.and_then(|d| self.read_record(d, fp)) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            let payload = Arc::new(payload);
            self.insert_mem(fp, payload.clone());
            return Some(payload);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `payload` under `fp` in the memory tier and (when `dir` is
    /// given) on disk. Disk failures are silently ignored — the cache is
    /// best-effort by design.
    pub fn put(&self, dir: Option<&Path>, fp: Fingerprint, payload: Vec<u8>) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        let payload = Arc::new(payload);
        self.insert_mem(fp, payload.clone());
        if let Some(dir) = dir {
            let _ = self.write_record(dir, fp, &payload);
        }
    }

    /// Drops every memory-tier record (counters keep accumulating). Used
    /// by tests and `perfreport` to force the disk tier to be exercised.
    pub fn clear_memory(&self) {
        let mut mem = self.mem.lock().expect("cache lock");
        mem.map.clear();
        mem.order.clear();
        mem.bytes = 0;
    }

    /// Snapshot of the monotonic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    fn insert_mem(&self, fp: Fingerprint, payload: Arc<Vec<u8>>) {
        let mut mem = self.mem.lock().expect("cache lock");
        if let Some(old) = mem.map.insert(fp, payload.clone()) {
            // Replacement: same fingerprint, adjust bytes only.
            mem.bytes = mem.bytes - old.len() + payload.len();
            return;
        }
        mem.bytes += payload.len();
        mem.order.push_back(fp);
        while mem.bytes > MEM_CAP_BYTES {
            let Some(oldest) = mem.order.pop_front() else {
                break;
            };
            if let Some(evicted) = mem.map.remove(&oldest) {
                mem.bytes -= evicted.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Path of the record for `fp` under `dir`.
    pub fn record_path(dir: &Path, fp: Fingerprint) -> PathBuf {
        let hex = fp.to_hex();
        dir.join(&hex[..2]).join(format!("{}.{EXT}", &hex[2..]))
    }

    fn read_record(&self, dir: &Path, fp: Fingerprint) -> Option<Vec<u8>> {
        let bytes = match std::fs::read(Self::record_path(dir, fp)) {
            Ok(b) => b,
            Err(_) => return None, // absent (or unreadable): plain miss
        };
        let mut r = Reader::new(&bytes);
        let valid = (|| {
            if r.bytes(4)? != MAGIC {
                return None;
            }
            if r.u64()? != FORMAT_VERSION {
                // A different format version is absence, not corruption.
                return Some(None);
            }
            let len = usize::try_from(r.u64()?).ok()?;
            let payload = r.bytes(len)?.to_vec();
            let sum = r.u64()?;
            if !r.is_empty() || sum != checksum(&payload) {
                return None;
            }
            Some(Some(payload))
        })();
        match valid {
            Some(payload) => payload,
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn write_record(&self, dir: &Path, fp: Fingerprint, payload: &[u8]) -> std::io::Result<()> {
        let path = Self::record_path(dir, fp);
        let parent = path.parent().expect("record path has a shard directory");
        std::fs::create_dir_all(parent)?;
        let mut record = Vec::with_capacity(payload.len() + 28);
        record.extend_from_slice(MAGIC);
        record.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(payload);
        record.extend_from_slice(&checksum(payload).to_le_bytes());
        // Temp-then-rename: readers can never observe a partial record.
        let tmp = parent.join(format!(".{}.{}.tmp", std::process::id(), fp.to_hex()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&record)?;
        }
        let renamed = std::fs::rename(&tmp, &path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mobidist-runcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::of(&("store-test", n))
    }

    #[test]
    fn memory_tier_round_trip_and_counters() {
        let c = RunCache::new();
        assert!(c.get(None, fp(1)).is_none());
        c.put(None, fp(1), vec![1, 2, 3]);
        assert_eq!(c.get(None, fp(1)).as_deref(), Some(&vec![1, 2, 3]));
        let s = c.stats();
        assert_eq!((s.mem_hits, s.disk_hits, s.misses, s.stores), (1, 0, 1, 1));
    }

    #[test]
    fn disk_tier_survives_memory_clear_and_promotes() {
        let dir = temp_dir("disk");
        let c = RunCache::new();
        c.put(Some(&dir), fp(2), vec![9; 100]);
        c.clear_memory();
        assert_eq!(c.get(Some(&dir), fp(2)).as_deref(), Some(&vec![9; 100]));
        assert_eq!(c.stats().disk_hits, 1);
        // Promoted: second lookup is a memory hit.
        assert_eq!(c.get(Some(&dir), fp(2)).as_deref(), Some(&vec![9; 100]));
        assert_eq!(c.stats().mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_records_are_misses_never_panics() {
        let dir = temp_dir("corrupt");
        let c = RunCache::new();
        c.put(Some(&dir), fp(3), vec![5; 64]);
        let path = RunCache::record_path(&dir, fp(3));

        // Truncated record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        c.clear_memory();
        assert!(c.get(Some(&dir), fp(3)).is_none());

        // Garbled payload byte (checksum mismatch).
        let mut garbled = full.clone();
        garbled[24] ^= 0xff;
        std::fs::write(&path, &garbled).unwrap();
        assert!(c.get(Some(&dir), fp(3)).is_none());

        // Wrong magic.
        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(c.get(Some(&dir), fp(3)).is_none());

        // Empty file.
        std::fs::write(&path, b"").unwrap();
        assert!(c.get(Some(&dir), fp(3)).is_none());

        assert_eq!(c.stats().corrupt, 4);
        assert_eq!(c.stats().misses, 4);

        // A valid record written over the damage is served again.
        c.put(Some(&dir), fp(3), vec![5; 64]);
        c.clear_memory();
        assert_eq!(c.get(Some(&dir), fp(3)).as_deref(), Some(&vec![5; 64]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_format_version_is_absence_not_corruption() {
        let dir = temp_dir("version");
        let c = RunCache::new();
        c.put(Some(&dir), fp(4), vec![1]);
        let path = RunCache::record_path(&dir, fp(4));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..12].copy_from_slice(&99u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        c.clear_memory();
        assert!(c.get(Some(&dir), fp(4)).is_none());
        assert_eq!(c.stats().corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fifo_eviction_respects_the_byte_cap() {
        let c = RunCache::new();
        let big = MEM_CAP_BYTES / 2 + 1;
        c.put(None, fp(10), vec![0; big]);
        c.put(None, fp(11), vec![0; big]);
        c.put(None, fp(12), vec![0; big]); // evicts fp(10) then fp(11)
        assert!(c.get(None, fp(10)).is_none());
        assert!(c.get(None, fp(12)).is_some());
        assert_eq!(c.stats().evictions, 2);
    }
}
