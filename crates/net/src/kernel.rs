//! The simulation kernel: message plane, mobility orchestration, cost
//! accounting.
//!
//! The kernel realises Section 2 of the paper:
//!
//! * a wired plane of `M` MSSs with reliable, FIFO, arbitrary-latency
//!   channels;
//! * per-cell wireless FIFO channels with *prefix delivery* — when an MH
//!   leaves, messages still in flight on its downlink are lost;
//! * `join`/`leave`/`disconnect`/`reconnect` choreography, with the previous
//!   MSS id supplied on join (handoff support);
//! * a search service that locates an MH and forwards a message, re-searching
//!   as the MH moves, and reporting disconnection back to the origin;
//! * a [`CostLedger`] charging every operation per the paper's cost model.
//!
//! Mobility-signalling messages (`leave`, `join`, `disconnect`, `reconnect`,
//! handoff queries) are charged to dedicated `control_*` custom counters
//! rather than to the main message counters, so experiments measure exactly
//! what the paper's formulas measure: the messages of the *algorithm* under
//! study.

use crate::channel::{ChainKey, FifoChains, ReorderBuffers};
use crate::config::{DeliveryMode, NetworkConfig, Placement};
use crate::error::NetError;
use crate::event::EventQueue;
use crate::host::{MhStatus, MssState, OutMsg};
use crate::ids::{MhId, MssId};
use crate::ledger::CostLedger;
use crate::obs::{TraceEvent, TraceSink};
use crate::proto::{ProtoEvent, Src};
use crate::rng::SimRng;
use crate::search::SearchPolicy;
use crate::soa::MhSoa;
use crate::time::SimTime;
use crate::trace::Trace;
use std::collections::VecDeque;
use std::fmt::Debug;

/// How a wireless downlink delivery is routed, which determines what happens
/// if the MH has left the cell by delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DownMode {
    /// Plain local send: loss is surfaced to the protocol.
    Local,
    /// Search-routed from `origin`: the kernel re-searches on loss (the
    /// model's eventual-delivery guarantee).
    Searched { origin: MssId },
    /// MH→MH transport: search-routed plus end-to-end FIFO resequencing.
    FromMh { origin: MssId, src: MhId, seq: u64 },
}

impl DownMode {
    fn src_for(&self, serving: MssId) -> Src {
        match *self {
            DownMode::Local => Src::Mss(serving),
            DownMode::Searched { origin } => Src::Mss(origin),
            DownMode::FromMh { src, .. } => Src::Mh(src),
        }
    }
}

/// Internal timed events.
#[derive(Debug)]
enum Ev<M, T> {
    FixedDeliver {
        from: MssId,
        to: MssId,
        msg: M,
    },
    UpDeliver {
        mh: MhId,
        mss: MssId,
        msg: M,
    },
    /// An uplinked MH→MH message reached the serving MSS, which now
    /// search-forwards it to the destination MH.
    RelayMhMh {
        at: MssId,
        src: MhId,
        dst: MhId,
        seq: u64,
        msg: M,
    },
    DownDeliver {
        mss: MssId,
        mh: MhId,
        epoch: u64,
        mode: DownMode,
        msg: M,
    },
    /// A fused fixed-network fan-out: one shared payload delivered to a run
    /// of destinations whose deliveries share this arrival tick (batched
    /// delivery mode only). The destinations were scheduled by consecutive
    /// pushes, so delivering them in `dsts` order at this event's position
    /// reproduces the per-destination pop order exactly.
    FixedFanout {
        from: MssId,
        dsts: Vec<MssId>,
        msg: M,
    },
    /// A fused wireless cell-broadcast fan-out sharing one payload across a
    /// same-arrival-tick run of recipients (batched delivery mode only).
    /// Each recipient keeps its own captured epoch for the freshness check.
    DownFanout {
        mss: MssId,
        recipients: Vec<(MhId, u64)>,
        msg: M,
    },
    /// A search-forwarded message arrived at the MSS believed to serve the
    /// target.
    SearchArrive {
        target: MhId,
        at: MssId,
        mode: DownMode,
        msg: M,
    },
    /// Notification headed back to the origin MSS that the search target is
    /// disconnected.
    SearchFail {
        origin: MssId,
        target: MhId,
        msg: M,
    },
    AutoLeave {
        mh: MhId,
    },
    DoJoin {
        mh: MhId,
        mss: MssId,
    },
    AutoDisconnect {
        mh: MhId,
    },
    DoReconnect {
        mh: MhId,
        mss: MssId,
    },
    Timer {
        t: T,
    },
    /// A scheduled fault fires (index into `cfg.fault.events`).
    Fault {
        idx: usize,
    },
    /// A crashed MSS comes back up (fault plane).
    MssRecover {
        mss: MssId,
    },
    /// The active wired partition heals (fault plane).
    PartitionHeal,
}

/// Simulation kernel state. Owned by [`Simulation`](crate::sim::Simulation);
/// protocols access it through [`Ctx`](crate::proto::Ctx).
#[derive(Debug)]
pub struct Kernel<M, T> {
    cfg: NetworkConfig,
    now: SimTime,
    queue: EventQueue<Ev<M, T>>,
    rng: SimRng,
    proto_rng: SimRng,
    msss: Vec<MssState>,
    /// Per-MH state as structure-of-arrays columns (see [`crate::soa`]):
    /// ~3× fewer bytes per host than the old `Vec<MhState>` and cache-linear
    /// scans of the hot columns at large populations.
    mhs: MhSoa<M>,
    fifo: FifoChains,
    reorder: ReorderBuffers<M>,
    ledger: CostLedger,
    pending: VecDeque<ProtoEvent<M, T>>,
    trace: Trace,
    /// Structured event sink; `None` (the default) costs one branch per
    /// emission site and never constructs the event.
    sink: Option<Box<dyn TraceSink>>,
    /// Per-run emission counter: `(now, trace_seq)` is strictly increasing,
    /// giving trace consumers a total order. Reset to zero with the kernel.
    trace_seq: u64,
    /// Reusable buffer for cell-broadcast recipient lists, so the hot path
    /// never allocates per call.
    scratch_locals: Vec<MhId>,
    /// Per-MSS crashed flag (fault plane). All-false on fault-free runs.
    down: Vec<bool>,
    /// Active wired-plane partition: cells `< cut` vs cells `≥ cut`.
    partition_cut: Option<u32>,
    /// Wired messages deferred by the fault plane (endpoint down, or the
    /// pair straddles an active partition), in arrival order. Flushed —
    /// still in order, without re-charging — when the blocking condition
    /// clears. Always empty on fault-free runs.
    blocked: Vec<(MssId, MssId, M)>,
    /// Logical events processed since reset. Batch and fan-out members are
    /// counted individually, so both delivery modes report identical totals
    /// for the same run (pinned by the delivery_equivalence suites).
    events_processed: u64,
    /// Recycled backing store for the single in-flight coalesced MSS batch
    /// (the driver drains every batch before the next advance, so one slot
    /// suffices; it round-trips through `ProtoEvent::MssBatch` and
    /// [`recycle_batch`](Self::recycle_batch)).
    batch_slot: Vec<(Src, M)>,
    /// Freelist backing `Ev::FixedFanout` destination lists.
    mss_pool: Vec<Vec<MssId>>,
    /// Freelist backing `Ev::DownFanout` recipient lists.
    down_pool: Vec<Vec<(MhId, u64)>>,
}

impl<M: Debug + Clone + 'static, T: Debug + 'static> Kernel<M, T> {
    /// Builds a kernel: places MHs into cells and primes the autonomous
    /// mobility/disconnection processes.
    pub fn new(cfg: NetworkConfig) -> Self {
        let mut k = Kernel {
            cfg: cfg.clone(),
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::seed_from(cfg.seed),
            proto_rng: SimRng::seed_from(cfg.seed),
            msss: Vec::new(),
            mhs: MhSoa::new(),
            fifo: FifoChains::new(cfg.num_mss, cfg.num_mh),
            reorder: ReorderBuffers::default(),
            ledger: CostLedger::new(cfg.num_mh),
            pending: VecDeque::new(),
            trace: Trace::default(),
            sink: None,
            trace_seq: 0,
            scratch_locals: Vec::new(),
            down: Vec::new(),
            partition_cut: None,
            blocked: Vec::new(),
            events_processed: 0,
            batch_slot: Vec::new(),
            mss_pool: Vec::new(),
            down_pool: Vec::new(),
        };
        k.reset(cfg);
        k
    }

    /// Rewinds the kernel to the fresh-`new(cfg)` state while retaining
    /// every allocation (event-wheel slots, FIFO chain arrays, reorder maps,
    /// per-MH outboxes, ledger vectors, trace ring, scratch buffers).
    ///
    /// Observable behaviour is bit-identical to a freshly built kernel: the
    /// RNG streams are reseeded and forked in the same order, MH placement
    /// draws the same values, and the event queue's insertion-sequence
    /// counter restarts at zero, so a reused kernel replays the exact event
    /// order of a fresh one. `tests/determinism` and the bench crate's
    /// sim-reuse test pin this.
    pub(crate) fn reset(&mut self, cfg: NetworkConfig) {
        // Same RNG derivation order as the original construction path:
        // seed, fork the protocol stream, fork the placement stream, then
        // draw mobility/disconnect delays from the root stream.
        self.rng = SimRng::seed_from(cfg.seed);
        self.proto_rng = self.rng.fork(0xA11C);
        let mut place_rng = self.rng.fork(0xB0B1);
        let m = cfg.num_mss;
        let n = cfg.num_mh;
        self.now = SimTime::ZERO;
        self.queue.clear();
        self.msss.truncate(m);
        for s in &mut self.msss {
            s.clear();
        }
        self.msss.resize_with(m, MssState::default);
        self.mhs.reset_to(n);
        for i in 0..n {
            let cell = match cfg.placement {
                Placement::RoundRobin => MssId((i % m) as u32),
                Placement::Random => MssId(place_rng.below(m as u64) as u32),
                Placement::Clustered { cells } => MssId((i % cells.clamp(1, m)) as u32),
            };
            self.mhs.place(i, cell, cell);
            self.msss[cell.index()].local.insert(MhId(i as u32));
        }
        self.fifo.reset_topology(m, n);
        self.reorder.clear();
        self.ledger.reset(n);
        self.pending.clear();
        self.trace.reset();
        self.trace_seq = 0;
        if let Some(s) = self.sink.as_deref_mut() {
            s.rewind();
        }
        self.cfg = cfg;
        if self.cfg.mobility.enabled {
            for i in 0..n {
                let d = self.rng.exp_delay(self.cfg.mobility.mean_dwell);
                self.queue
                    .push(self.now + d, Ev::AutoLeave { mh: MhId(i as u32) });
            }
        }
        if self.cfg.disconnect.enabled {
            for i in 0..n {
                let d = self.rng.exp_delay(self.cfg.disconnect.mean_uptime);
                self.queue
                    .push(self.now + d, Ev::AutoDisconnect { mh: MhId(i as u32) });
            }
        }
        // Fault plane: scheduling consumes NO rng draws, so a fault-free
        // config replays bit-identically to one built before the fault plane
        // existed. Events sharing a tick fire in schedule order (insertion
        // sequence breaks the tie).
        self.down.clear();
        self.down.resize(m, false);
        self.partition_cut = None;
        self.blocked.clear();
        self.events_processed = 0;
        self.batch_slot.clear();
        for (idx, fe) in self.cfg.fault.events.iter().enumerate() {
            self.queue.push(self.now + fe.at.max(1), Ev::Fault { idx });
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration this kernel runs.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Read access to the cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Mutable access to the cost ledger (custom counters).
    pub fn ledger_mut(&mut self) -> &mut CostLedger {
        &mut self.ledger
    }

    /// The protocol-visible random stream.
    pub fn proto_rng(&mut self) -> &mut SimRng {
        &mut self.proto_rng
    }

    /// The execution trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (to enable/disable it).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Installs a structured trace sink; it observes every subsequent typed
    /// emission. Replaces any previously installed sink.
    ///
    /// Sinks only observe: installing one never changes simulation results
    /// (no RNG draws, no scheduling — pinned byte-for-byte by the bench
    /// crate's trace tests).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the installed trace sink, if any, without
    /// notifying it (see [`finish_trace`](Self::finish_trace) for the
    /// end-of-run path).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// True when a structured trace sink is installed.
    pub fn has_trace_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Borrows the installed trace sink for inspection (downcast through
    /// [`TraceSink::as_any`] to reach a concrete sink's accessors).
    pub fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.sink.as_deref()
    }

    /// Ends the traced run: calls [`TraceSink::finish`] with the final
    /// ledger (the JSONL sink writes its `run_end` summary line here) and
    /// detaches the sink.
    pub fn finish_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut s = self.sink.take()?;
        s.finish(&self.ledger);
        Some(s)
    }

    /// Typed-emission hook: one branch when disabled, and the closure — so
    /// the event is never even constructed — runs only with a sink
    /// installed.
    #[inline]
    pub(crate) fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let Some(s) = self.sink.as_deref_mut() {
            let ev = f();
            s.record(self.now, self.trace_seq, &ev);
            self.trace_seq += 1;
        }
    }

    /// Peak occupancy of the MH→MH resequencing buffers — the FIFO burden L1
    /// places on the network layer.
    pub fn reorder_peak(&self) -> usize {
        self.reorder.peak_held()
    }

    /// True when `mh` is local to `mss`.
    pub fn is_local(&self, mss: MssId, mh: MhId) -> bool {
        self.msss[mss.index()].has_local(mh)
    }

    /// MHs currently local to `mss`, in ascending id order.
    ///
    /// Borrows the cell's membership bitset directly — no allocation per
    /// call; `.collect()` when a `Vec` is genuinely needed.
    pub fn local_mhs(&self, mss: MssId) -> impl Iterator<Item = MhId> + '_ {
        self.msss[mss.index()].local.iter()
    }

    /// Connectivity status of `mh`.
    pub fn mh_status(&self, mh: MhId) -> MhStatus {
        self.mhs.status(mh)
    }

    /// True when the disconnected flag for `mh` is set at `mss`.
    pub fn mh_disconnected_here(&self, mss: MssId, mh: MhId) -> bool {
        self.msss[mss.index()].disconnected_here.contains(&mh)
    }

    /// Oracle view of the current cell of `mh`.
    pub fn current_cell(&self, mh: MhId) -> Option<MssId> {
        self.mhs.cell(mh)
    }

    /// Sets doze mode for `mh`.
    pub fn set_doze(&mut self, mh: MhId, dozing: bool) {
        self.mhs.set_dozing(mh, dozing);
    }

    /// True when no timed or pending protocol events remain.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && self.pending.is_empty()
    }

    /// Time of the next timed event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    pub(crate) fn take_pending(&mut self) -> Option<ProtoEvent<M, T>> {
        self.pending.pop_front()
    }

    /// Logical events processed since construction/reset. Coalesced batch
    /// members and fused fan-out recipients count individually, so both
    /// delivery modes report the same total for the same run — and the
    /// total equals the per-`advance` step count of the historical
    /// one-event-per-message kernel.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Returns an emptied [`ProtoEvent::MssBatch`] vector to the kernel so
    /// the next coalesced batch reuses its capacity.
    pub(crate) fn recycle_batch(&mut self, mut msgs: Vec<(Src, M)>) {
        msgs.clear();
        self.batch_slot = msgs;
    }

    pub(crate) fn advance(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "event time regressed");
        self.now = t;
        self.dispatch(ev);
        true
    }

    /// Like [`advance`](Self::advance), but only consumes an event due at or
    /// before `limit`. Fuses the peek/pop pair the run loops would otherwise
    /// perform — one heap-root access per event instead of two.
    pub(crate) fn advance_up_to(&mut self, limit: SimTime) -> bool {
        let Some((t, ev)) = self.queue.pop_if_at_or_before(limit) else {
            return false;
        };
        debug_assert!(t >= self.now, "event time regressed");
        self.now = t;
        self.dispatch(ev);
        true
    }

    /// Routes a popped event: in batched mode, a unicast delivery to a fixed
    /// host opens a coalescing run over the current tick; everything else
    /// (and everything in unbatched mode) processes one event at a time.
    #[inline]
    fn dispatch(&mut self, ev: Ev<M, T>) {
        if self.cfg.delivery == DeliveryMode::Batched {
            let at = match &ev {
                Ev::FixedDeliver { to, .. } => Some(*to),
                Ev::UpDeliver { mss, .. } => Some(*mss),
                _ => None,
            };
            if let Some(at) = at {
                self.coalesce_at(at, ev);
                return;
            }
        }
        self.process(ev);
    }

    /// Coalesces the maximal run of consecutive same-tick unicast deliveries
    /// to fixed host `at` — starting with the already-popped `first` — into
    /// one batch, dispatched through a single `MssBatch` protocol event.
    ///
    /// Determinism: the run is contiguous in `(time, seq)` pop order (the
    /// O(1) [`EventQueue::pop_same_tick_if`] only claims the true next
    /// event), processing a member reads only fault-plane state that no
    /// protocol callback can mutate, and every kernel push is at least one
    /// tick ahead of `now` — so nothing a deferred callback does can
    /// reorder, admit into, or evict from the run. The batch's callbacks
    /// then run in exactly the order the per-event path would have produced
    /// (see DESIGN.md §7 for the full argument).
    fn coalesce_at(&mut self, at: MssId, first: Ev<M, T>) {
        // Singleton fast path: no same-tick follower to this destination,
        // so no run can form — dispatch through the plain per-event path
        // without touching the batch buffer. Unicast-heavy workloads (ring
        // topologies, search traffic) take this branch almost always, and
        // it is exactly the unbatched path, so it costs them one O(1) slot
        // peek over unbatched mode.
        if !self.queue.next_same_tick_matches(|e| {
            matches!(e, Ev::FixedDeliver { to, .. } if *to == at)
                || matches!(e, Ev::UpDeliver { mss, .. } if *mss == at)
        }) {
            self.process(first);
            return;
        }
        let mut batch = std::mem::take(&mut self.batch_slot);
        debug_assert!(batch.is_empty());
        self.append_mss_delivery(at, first, &mut batch);
        while let Some((_, ev)) = self.queue.pop_same_tick_if(|e| {
            matches!(e, Ev::FixedDeliver { to, .. } if *to == at)
                || matches!(e, Ev::UpDeliver { mss, .. } if *mss == at)
        }) {
            self.append_mss_delivery(at, ev, &mut batch);
        }
        match batch.len() {
            // Every member was deferred by the fault plane: no callback.
            0 => {}
            // Singletons dispatch as a plain message — batches are always
            // two or more, so `on_mss_batch` overrides only see real runs.
            1 => {
                let (src, msg) = batch.pop().expect("len checked");
                self.pending.push_back(ProtoEvent::MssMsg { at, src, msg });
            }
            len => {
                let len = len as u32;
                self.emit(|| TraceEvent::DeliverBatch { at, len });
                self.pending
                    .push_back(ProtoEvent::MssBatch { at, msgs: batch });
                // The driver recycles the vector after dispatch.
                return;
            }
        }
        self.batch_slot = batch;
    }

    /// Processes one coalesced-run member: fault-plane deferral and receive
    /// tracing exactly as the per-event path, with the delivery itself
    /// appended to `batch` instead of `pending`.
    fn append_mss_delivery(&mut self, at: MssId, ev: Ev<M, T>, batch: &mut Vec<(Src, M)>) {
        self.events_processed += 1;
        match ev {
            Ev::FixedDeliver { from, to, msg } => {
                debug_assert_eq!(to, at);
                if self.wired_blocked(from, to)
                    || (!self.blocked.is_empty()
                        && self.blocked.iter().any(|(f, t, _)| *f == from && *t == to))
                {
                    self.blocked.push((from, to, msg));
                    return;
                }
                if from != to {
                    self.emit(|| TraceEvent::FixedRecv { at: to, from });
                }
                batch.push((Src::Mss(from), msg));
            }
            Ev::UpDeliver { mh, mss, msg } => {
                debug_assert_eq!(mss, at);
                self.emit(|| TraceEvent::UpRecv { mss, mh });
                batch.push((Src::Mh(mh), msg));
            }
            _ => unreachable!("only unicast MSS deliveries are coalesced"),
        }
    }

    // ----- send operations -------------------------------------------------

    /// Point-to-point fixed-network send. Self-sends are free and take one
    /// tick — they are not messages in the model.
    pub fn send_fixed(&mut self, from: MssId, to: MssId, msg: M) {
        if from == to {
            self.queue
                .push(self.now + 1, Ev::FixedDeliver { from, to, msg });
            return;
        }
        self.ledger.charge_fixed(&self.cfg.cost);
        self.emit(|| TraceEvent::FixedSend { from, to });
        let lat = self.cfg.latency.fixed.sample(&mut self.rng);
        let at = self
            .fifo
            .schedule(ChainKey::Fixed(from, to), self.now + lat);
        self.queue.push(at, Ev::FixedDeliver { from, to, msg });
    }

    /// Sends `msg` to every other MSS over the fixed network (cost
    /// `(M − 1)·C_fixed`). Charges, trace emissions, latency draws and FIFO
    /// clamping are per destination, identical to a loop of
    /// [`send_fixed`](Self::send_fixed); in batched delivery mode one
    /// payload is stored per same-arrival-tick run of destinations and the
    /// ledger charge is fused across the fan-out.
    pub fn broadcast_fixed(&mut self, from: MssId, msg: M) {
        let m = self.cfg.num_mss as u32;
        if m <= 1 {
            return;
        }
        if self.cfg.delivery == DeliveryMode::Unbatched {
            let mut msg = Some(msg);
            for i in 0..m {
                let to = MssId(i);
                if to == from {
                    continue;
                }
                let last = if from == MssId(m - 1) { m - 2 } else { m - 1 };
                let payload = if i == last {
                    msg.take().expect("payload present until last")
                } else {
                    msg.as_ref().expect("payload present until last").clone()
                };
                self.send_fixed(from, to, payload);
            }
            return;
        }
        // Batched: one fused charge, then group consecutive destinations
        // whose FIFO-clamped arrivals share a tick into shared-payload
        // fan-out events. With the default constant latency and un-clamped
        // chains this is a single event for the whole fan-out.
        self.ledger.charge_fixed_n(&self.cfg.cost, (m - 1) as u64);
        let mut group = self.mss_pool.pop().unwrap_or_default();
        debug_assert!(group.is_empty());
        let mut group_at = SimTime::ZERO;
        let mut msg = Some(msg);
        for i in 0..m {
            let to = MssId(i);
            if to == from {
                continue;
            }
            self.emit(|| TraceEvent::FixedSend { from, to });
            let lat = self.cfg.latency.fixed.sample(&mut self.rng);
            let at = self
                .fifo
                .schedule(ChainKey::Fixed(from, to), self.now + lat);
            if !group.is_empty() && at != group_at {
                let payload = msg.as_ref().expect("payload present until last").clone();
                let flushed =
                    std::mem::replace(&mut group, self.mss_pool.pop().unwrap_or_default());
                self.push_fixed_group(from, flushed, group_at, payload);
            }
            group_at = at;
            group.push(to);
        }
        let payload = msg.take().expect("payload present until last");
        self.push_fixed_group(from, group, group_at, payload);
    }

    /// Enqueues one arrival-tick group of a fixed broadcast: singletons as a
    /// plain delivery (recycling the list), larger groups as a fused
    /// fan-out.
    fn push_fixed_group(&mut self, from: MssId, mut dsts: Vec<MssId>, at: SimTime, msg: M) {
        debug_assert!(!dsts.is_empty());
        if dsts.len() == 1 {
            let to = dsts[0];
            dsts.clear();
            self.mss_pool.push(dsts);
            self.queue.push(at, Ev::FixedDeliver { from, to, msg });
        } else {
            self.queue.push(at, Ev::FixedFanout { from, dsts, msg });
        }
    }

    /// Wireless downlink send to a local MH.
    ///
    /// # Errors
    ///
    /// [`NetError::NotLocal`] when `mh` is not currently local to `mss`.
    pub fn send_wireless_down(&mut self, mss: MssId, mh: MhId, msg: M) -> Result<(), NetError> {
        if !self.is_local(mss, mh) {
            return Err(NetError::NotLocal { mss, mh });
        }
        let epoch = self.mhs.epoch(mh);
        self.schedule_down(mss, mh, epoch, DownMode::Local, msg);
        Ok(())
    }

    /// Broadcasts over the cell's wireless channel: **one** transmission
    /// (one `C_wireless` charge) reaches every MH currently local to `mss`;
    /// each listener still pays its own reception energy. One payload is
    /// stored per same-arrival-tick run of recipients and cloned only at
    /// delivery. Returns the number of recipients.
    pub fn broadcast_cell(&mut self, mss: MssId, msg: M) -> usize {
        // Reuse the kernel-owned scratch buffer: BTreeSet iteration is
        // sorted (deterministic) and the Vec's capacity survives the call.
        let mut locals = std::mem::take(&mut self.scratch_locals);
        locals.clear();
        locals.extend(self.msss[mss.index()].local.iter());
        if locals.is_empty() {
            self.scratch_locals = locals;
            return 0;
        }
        // One channel use regardless of listener count.
        self.ledger.wireless_msgs += 1;
        self.ledger.wireless_cost += self.cfg.cost.c_wireless;
        let listeners = locals.len() as u32;
        self.emit(|| TraceEvent::CellBroadcast { mss, listeners });
        let lat = self.cfg.latency.wireless.sample(&mut self.rng);
        let n = locals.len();
        let mut msg = Some(msg);
        if self.cfg.delivery == DeliveryMode::Unbatched {
            for (i, mh) in locals.iter().enumerate() {
                let epoch = self.mhs.epoch(*mh);
                self.mhs.incr_down_sent(*mh);
                let at = self.fifo.schedule(ChainKey::Down(mss, *mh), self.now + lat);
                let payload = if i == n - 1 {
                    msg.take().expect("payload present until last")
                } else {
                    msg.as_ref().expect("payload present until last").clone()
                };
                self.queue.push(
                    at,
                    Ev::DownDeliver {
                        mss,
                        mh: *mh,
                        epoch,
                        mode: DownMode::Local,
                        msg: payload,
                    },
                );
            }
        } else {
            // Batched: group consecutive recipients whose FIFO-clamped
            // arrivals share a tick into shared-payload fan-out events —
            // one wheel entry and one payload for the whole cell with the
            // default constant latency.
            let mut group = self.down_pool.pop().unwrap_or_default();
            debug_assert!(group.is_empty());
            let mut group_at = SimTime::ZERO;
            for mh in &locals {
                let epoch = self.mhs.epoch(*mh);
                self.mhs.incr_down_sent(*mh);
                let at = self.fifo.schedule(ChainKey::Down(mss, *mh), self.now + lat);
                if !group.is_empty() && at != group_at {
                    let payload = msg.as_ref().expect("payload present until last").clone();
                    let flushed =
                        std::mem::replace(&mut group, self.down_pool.pop().unwrap_or_default());
                    self.push_down_group(mss, flushed, group_at, payload);
                }
                group_at = at;
                group.push((*mh, epoch));
            }
            let payload = msg.take().expect("payload present until last");
            self.push_down_group(mss, group, group_at, payload);
        }
        self.scratch_locals = locals;
        n
    }

    /// Enqueues one arrival-tick group of a cell broadcast: singletons as a
    /// plain downlink delivery (recycling the list), larger groups as a
    /// fused fan-out.
    fn push_down_group(
        &mut self,
        mss: MssId,
        mut recipients: Vec<(MhId, u64)>,
        at: SimTime,
        msg: M,
    ) {
        debug_assert!(!recipients.is_empty());
        if recipients.len() == 1 {
            let (mh, epoch) = recipients[0];
            recipients.clear();
            self.down_pool.push(recipients);
            self.queue.push(
                at,
                Ev::DownDeliver {
                    mss,
                    mh,
                    epoch,
                    mode: DownMode::Local,
                    msg,
                },
            );
        } else {
            self.queue.push(
                at,
                Ev::DownFanout {
                    mss,
                    recipients,
                    msg,
                },
            );
        }
    }

    /// Wireless uplink send from an MH to its current local MSS; buffered
    /// while between cells and flushed on the next join.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when `mh` has disconnected.
    pub fn send_wireless_up(&mut self, mh: MhId, msg: M) -> Result<(), NetError> {
        match self.mhs.status(mh) {
            MhStatus::Disconnected => Err(NetError::Disconnected { mh }),
            MhStatus::BetweenCells => {
                self.mhs.push_outbox(mh, OutMsg::Plain(msg));
                Ok(())
            }
            MhStatus::Connected => {
                let mss = self.mhs.cell(mh).expect("connected MH has a cell");
                self.push_uplink(mh, mss, OutMsg::Plain(msg));
                Ok(())
            }
        }
    }

    /// Locate-and-forward from `origin` to `mh` (the model's search).
    pub fn search_send(&mut self, origin: MssId, mh: MhId, msg: M) {
        self.begin_search(mh, DownMode::Searched { origin }, msg, false);
    }

    /// MH→MH transport with logical FIFO per ordered sender/receiver pair.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the *sender* has disconnected.
    pub fn mh_send_to_mh(&mut self, src: MhId, dst: MhId, msg: M) -> Result<(), NetError> {
        if self.mhs.status(src) == MhStatus::Disconnected {
            return Err(NetError::Disconnected { mh: src });
        }
        let seq = self.reorder.next_seq(src, dst);
        match self.mhs.status(src) {
            MhStatus::Connected => {
                let mss = self.mhs.cell(src).expect("connected MH has a cell");
                self.push_uplink(src, mss, OutMsg::ToMh { dst, seq, msg });
            }
            MhStatus::BetweenCells => {
                self.mhs.push_outbox(src, OutMsg::ToMh { dst, seq, msg });
            }
            MhStatus::Disconnected => unreachable!("checked above"),
        }
        Ok(())
    }

    /// Schedules a protocol timer (minimum delay of one tick).
    pub fn set_timer(&mut self, delay: u64, t: T) {
        self.queue.push(self.now + delay.max(1), Ev::Timer { t });
    }

    // ----- mobility control --------------------------------------------------

    /// Forces `mh` to leave now and join `dest` (or a pattern-chosen cell)
    /// after the configured gap. No-op when not connected.
    pub fn initiate_move(&mut self, mh: MhId, dest: Option<MssId>) {
        if self.mhs.status(mh) == MhStatus::Connected {
            self.do_leave(mh, dest);
        }
    }

    /// Forces `mh` to disconnect now. No-op when not connected.
    pub fn initiate_disconnect(&mut self, mh: MhId) {
        if self.mhs.status(mh) == MhStatus::Connected {
            self.do_disconnect(mh, false);
        }
    }

    /// Forces a disconnected `mh` to reconnect at `at` (or its previous
    /// cell) after `delay` ticks. No-op when not disconnected.
    pub fn initiate_reconnect(&mut self, mh: MhId, at: Option<MssId>, delay: u64) {
        if self.mhs.status(mh) != MhStatus::Disconnected {
            return;
        }
        let dest = at.or(self.mhs.disconnected_at(mh)).unwrap_or(MssId(0));
        self.queue
            .push(self.now + delay.max(1), Ev::DoReconnect { mh, mss: dest });
    }

    // ----- internals ----------------------------------------------------------

    /// Charges and schedules one uplink transmission (plain or MH→MH relay).
    fn push_uplink(&mut self, mh: MhId, mss: MssId, out: OutMsg<M>) {
        let energy = self.cfg.energy.tx;
        self.ledger.charge_wireless_tx(&self.cfg.cost, mh, energy);
        self.emit(|| TraceEvent::UpSend { mh, mss });
        let lat = self.cfg.latency.wireless.sample(&mut self.rng);
        let at = self.fifo.schedule(ChainKey::Up(mh, mss), self.now + lat);
        match out {
            OutMsg::Plain(msg) => self.queue.push(at, Ev::UpDeliver { mh, mss, msg }),
            OutMsg::ToMh { dst, seq, msg } => self.queue.push(
                at,
                Ev::RelayMhMh {
                    at: mss,
                    src: mh,
                    dst,
                    seq,
                    msg,
                },
            ),
        }
    }

    /// Charges and schedules a downlink delivery from `mss` to `mh`.
    fn schedule_down(&mut self, mss: MssId, mh: MhId, epoch: u64, mode: DownMode, msg: M) {
        self.ledger.wireless_msgs += 1;
        self.ledger.wireless_cost += self.cfg.cost.c_wireless;
        self.emit(|| TraceEvent::DownSend { mss, mh });
        self.mhs.incr_down_sent(mh);
        let lat = self.cfg.latency.wireless.sample(&mut self.rng);
        let at = self.fifo.schedule(ChainKey::Down(mss, mh), self.now + lat);
        self.queue.push(
            at,
            Ev::DownDeliver {
                mss,
                mh,
                epoch,
                mode,
                msg,
            },
        );
    }

    /// Charges one search and routes `msg` toward the target's current cell.
    fn begin_search(&mut self, target: MhId, mode: DownMode, msg: M, re: bool) {
        let lat = match self.cfg.search {
            SearchPolicy::Oracle => {
                self.ledger.charge_search_abstract(&self.cfg.cost, re);
                self.cfg.latency.search.sample(&mut self.rng)
            }
            SearchPolicy::Flood => {
                let msgs = SearchPolicy::flood_message_count(self.cfg.num_mss);
                self.ledger.charge_search_flood(&self.cfg.cost, msgs, re);
                let f = &self.cfg.latency.fixed;
                f.sample(&mut self.rng) + f.sample(&mut self.rng) + f.sample(&mut self.rng)
            }
            SearchPolicy::HomeAgent => {
                // Origin asks the home agent, which tunnels to the current
                // cell (the registration performed at join keeps it exact).
                let msgs = SearchPolicy::home_agent_message_count();
                self.ledger.charge_search_flood(&self.cfg.cost, msgs, re);
                let f = &self.cfg.latency.fixed;
                f.sample(&mut self.rng) + f.sample(&mut self.rng)
            }
        };
        self.emit(|| TraceEvent::Search { target, re });
        match self.mhs.status(target) {
            MhStatus::Disconnected => {
                // The MSS where the MH disconnected answers with its status.
                let back = self.cfg.latency.fixed.sample(&mut self.rng);
                self.search_failed(target, mode, msg, lat + back);
            }
            MhStatus::Connected | MhStatus::BetweenCells => {
                // Forward to the current cell, or toward the last known cell
                // when mid-move; arrival there triggers a counted re-search.
                let at = self
                    .mhs
                    .cell(target)
                    .or(self.mhs.prev_cell(target))
                    .expect("an MH always has a current or previous cell");
                self.queue.push(
                    self.now + lat,
                    Ev::SearchArrive {
                        target,
                        at,
                        mode,
                        msg,
                    },
                );
            }
        }
    }

    /// Common handling for a search terminating at a disconnected target:
    /// notify the origin, and for MH→MH transport cancel the burnt sequence
    /// number so later messages on the pair are not held back forever.
    fn search_failed(&mut self, target: MhId, mode: DownMode, msg: M, delay: u64) {
        let origin = match mode {
            DownMode::Searched { origin } | DownMode::FromMh { origin, .. } => origin,
            DownMode::Local => unreachable!("plain sends are never searched"),
        };
        self.ledger.search_failures += 1;
        self.ledger.charge_fixed(&self.cfg.cost);
        self.emit(|| TraceEvent::SearchFail { origin, target });
        if let DownMode::FromMh { src, seq, .. } = mode {
            for m in self.reorder.cancel(src, target, seq) {
                self.pending.push_back(ProtoEvent::MhMsg {
                    at: target,
                    src: Src::Mh(src),
                    msg: m,
                });
            }
        }
        self.queue.push(
            self.now + delay,
            Ev::SearchFail {
                origin,
                target,
                msg,
            },
        );
    }

    fn deliver_down(&mut self, mss: MssId, mh: MhId, epoch: u64, mode: DownMode, msg: M) {
        let fresh = self.mhs.status(mh) == MhStatus::Connected
            && self.mhs.cell(mh) == Some(mss)
            && self.mhs.epoch(mh) == epoch;
        if fresh {
            self.mhs.incr_down_received(mh);
            self.emit(|| TraceEvent::DownRecv { mh, mss });
            if self.mhs.dozing(mh) {
                self.ledger.doze_interruptions += 1;
                self.emit(|| TraceEvent::DozeInterrupt { mh });
            }
            let energy = self.cfg.energy.rx;
            self.ledger.mh_rx[mh.index()] += 1;
            self.ledger.mh_energy[mh.index()] += energy;
            match mode {
                DownMode::Local | DownMode::Searched { .. } => {
                    self.pending.push_back(ProtoEvent::MhMsg {
                        at: mh,
                        src: mode.src_for(mss),
                        msg,
                    });
                }
                DownMode::FromMh { src, seq, .. } => {
                    for m in self.reorder.accept(src, mh, seq, msg) {
                        self.pending.push_back(ProtoEvent::MhMsg {
                            at: mh,
                            src: Src::Mh(src),
                            msg: m,
                        });
                    }
                }
            }
        } else {
            // Prefix-delivery semantics: the MH left (or disconnected) first.
            self.ledger.wireless_losses += 1;
            self.emit(|| TraceEvent::DownLost { mss, mh });
            match mode {
                DownMode::Local => {
                    self.pending
                        .push_back(ProtoEvent::WirelessLost { mss, mh, msg });
                }
                DownMode::Searched { .. } | DownMode::FromMh { .. } => {
                    self.begin_search(mh, mode, msg, true);
                }
            }
        }
    }

    fn process(&mut self, ev: Ev<M, T>) {
        self.events_processed += match &ev {
            // Fused fan-outs carry one logical message per receiver.
            Ev::FixedFanout { dsts, .. } => dsts.len() as u64,
            Ev::DownFanout { recipients, .. } => recipients.len() as u64,
            _ => 1,
        };
        match ev {
            Ev::FixedDeliver { from, to, msg } => {
                // Fault plane: defer delivery while either endpoint is down
                // or the pair straddles an active partition — or while older
                // messages of the same pair are already deferred (FIFO).
                if self.wired_blocked(from, to)
                    || (!self.blocked.is_empty()
                        && self.blocked.iter().any(|(f, t, _)| *f == from && *t == to))
                {
                    self.blocked.push((from, to, msg));
                    return;
                }
                if from != to {
                    // Self-sends are not messages in the model; only real
                    // fixed-network deliveries appear in the trace.
                    self.emit(|| TraceEvent::FixedRecv { at: to, from });
                }
                self.pending.push_back(ProtoEvent::MssMsg {
                    at: to,
                    src: Src::Mss(from),
                    msg,
                });
            }
            Ev::UpDeliver { mh, mss, msg } => {
                self.emit(|| TraceEvent::UpRecv { mss, mh });
                self.pending.push_back(ProtoEvent::MssMsg {
                    at: mss,
                    src: Src::Mh(mh),
                    msg,
                });
            }
            Ev::RelayMhMh {
                at,
                src,
                dst,
                seq,
                msg,
            } => {
                self.emit(|| TraceEvent::UpRecv { mss: at, mh: src });
                self.begin_search(
                    dst,
                    DownMode::FromMh {
                        origin: at,
                        src,
                        seq,
                    },
                    msg,
                    false,
                );
            }
            Ev::DownDeliver {
                mss,
                mh,
                epoch,
                mode,
                msg,
            } => self.deliver_down(mss, mh, epoch, mode, msg),
            Ev::FixedFanout {
                from,
                mut dsts,
                msg,
            } => {
                // Per-destination delivery in push order — exactly the order
                // the per-event path pops, since the fan-out's members were
                // scheduled by consecutive pushes at one tick. The shared
                // payload clones per destination; the last takes it.
                let last = dsts.len() - 1;
                let mut msg = Some(msg);
                for (i, to) in dsts.drain(..).enumerate() {
                    let payload = if i == last {
                        msg.take().expect("payload present until last")
                    } else {
                        msg.as_ref().expect("payload present until last").clone()
                    };
                    if self.wired_blocked(from, to)
                        || (!self.blocked.is_empty()
                            && self.blocked.iter().any(|(f, t, _)| *f == from && *t == to))
                    {
                        self.blocked.push((from, to, payload));
                        continue;
                    }
                    // Broadcasts never self-send, so every member is a real
                    // fixed-network delivery.
                    self.emit(|| TraceEvent::FixedRecv { at: to, from });
                    self.pending.push_back(ProtoEvent::MssMsg {
                        at: to,
                        src: Src::Mss(from),
                        msg: payload,
                    });
                }
                self.mss_pool.push(dsts);
            }
            Ev::DownFanout {
                mss,
                mut recipients,
                msg,
            } => {
                let last = recipients.len() - 1;
                let mut msg = Some(msg);
                for (i, (mh, epoch)) in recipients.drain(..).enumerate() {
                    let payload = if i == last {
                        msg.take().expect("payload present until last")
                    } else {
                        msg.as_ref().expect("payload present until last").clone()
                    };
                    self.deliver_down(mss, mh, epoch, DownMode::Local, payload);
                }
                self.down_pool.push(recipients);
            }
            Ev::SearchArrive {
                target,
                at,
                mode,
                msg,
            } => {
                if self.msss[at.index()].has_local(target) {
                    let epoch = self.mhs.epoch(target);
                    self.schedule_down(at, target, epoch, mode, msg);
                } else if self.msss[at.index()].disconnected_here.contains(&target) {
                    let back = self.cfg.latency.fixed.sample(&mut self.rng);
                    self.search_failed(target, mode, msg, back);
                } else {
                    // The MH moved on: re-search from here.
                    self.begin_search(target, mode, msg, true);
                }
            }
            Ev::SearchFail {
                origin,
                target,
                msg,
            } => {
                self.pending.push_back(ProtoEvent::SearchFailed {
                    origin,
                    target,
                    msg,
                });
            }
            Ev::AutoLeave { mh } => {
                // Leave only if still connected; moving/disconnected MHs get
                // a fresh dwell scheduled when they next join/reconnect.
                if self.mhs.status(mh) == MhStatus::Connected {
                    self.do_leave(mh, None);
                }
            }
            Ev::DoJoin { mh, mss } => self.do_join(mh, mss),
            Ev::AutoDisconnect { mh } => {
                if self.mhs.status(mh) == MhStatus::Connected {
                    self.do_disconnect(mh, true);
                } else {
                    let d = self.rng.exp_delay(self.cfg.disconnect.mean_uptime);
                    self.queue.push(self.now + d, Ev::AutoDisconnect { mh });
                }
            }
            Ev::DoReconnect { mh, mss } => self.do_reconnect(mh, mss),
            Ev::Timer { t } => self.pending.push_back(ProtoEvent::Timer(t)),
            Ev::Fault { idx } => self.apply_fault(idx),
            Ev::MssRecover { mss } => self.apply_recover(mss),
            Ev::PartitionHeal => self.apply_heal(),
        }
    }

    // ----- fault plane --------------------------------------------------------

    /// True when the fault plane currently has `mss` crashed.
    pub fn mss_down(&self, mss: MssId) -> bool {
        self.down.get(mss.index()).copied().unwrap_or(false)
    }

    /// True when wired traffic between `from` and `to` is currently
    /// deferred: either endpoint is crashed, or the pair straddles the
    /// active partition.
    fn wired_blocked(&self, from: MssId, to: MssId) -> bool {
        if self.mss_down(from) || self.mss_down(to) {
            return true;
        }
        match self.partition_cut {
            Some(cut) => (from.0 < cut) != (to.0 < cut),
            None => false,
        }
    }

    /// `want`, unless it is crashed — then the next live cell in ascending
    /// ring order (joins are redirected there; `want` itself if every cell
    /// is down).
    fn live_cell(&self, want: MssId) -> MssId {
        if !self.mss_down(want) {
            return want;
        }
        let m = self.cfg.num_mss as u32;
        (1..m)
            .map(|k| MssId((want.0 + k) % m))
            .find(|c| !self.mss_down(*c))
            .unwrap_or(want)
    }

    fn apply_fault(&mut self, idx: usize) {
        let fe = self.cfg.fault.events[idx];
        match fe.kind {
            crate::fault::FaultKind::MssCrash { mss, down_for } => {
                let mss = MssId(mss % self.cfg.num_mss as u32);
                if self.mss_down(mss) {
                    return; // already down: overlapping crash is a no-op
                }
                self.down[mss.index()] = true;
                self.ledger.bump("fault_crashes");
                self.emit(|| TraceEvent::FaultCrash { mss });
                self.trace.record(self.now, || format!("{mss} crashes"));
                self.pending.push_back(ProtoEvent::MssCrashed { mss });
                // Resident MHs evacuate through the ordinary leave/join
                // choreography (destinations from the run's MovePattern,
                // redirected if they land on a down cell at join time).
                // Snapshotted through the kernel's scratch buffer — `do_leave`
                // mutates the membership set but never touches the scratch.
                let mut locals = std::mem::take(&mut self.scratch_locals);
                locals.clear();
                locals.extend(self.msss[mss.index()].local.iter());
                for mh in locals.drain(..) {
                    self.do_leave(mh, None);
                }
                self.scratch_locals = locals;
                self.queue
                    .push(self.now + down_for.max(1), Ev::MssRecover { mss });
            }
            crate::fault::FaultKind::Partition { cut, heal_after } => {
                if self.partition_cut.is_some() || self.cfg.num_mss < 2 {
                    return; // one partition at a time; 1-cell planes can't split
                }
                let cut = cut.clamp(1, self.cfg.num_mss as u32 - 1);
                self.partition_cut = Some(cut);
                self.ledger.bump("fault_partitions");
                self.emit(|| TraceEvent::FaultPartition { cut, healed: false });
                self.trace
                    .record(self.now, || format!("wired partition at cut {cut}"));
                self.queue
                    .push(self.now + heal_after.max(1), Ev::PartitionHeal);
            }
            crate::fault::FaultKind::HandoffStorm { count } => {
                let mut moved = 0u32;
                for i in 0..self.cfg.num_mh {
                    if moved >= count {
                        break;
                    }
                    let mh = MhId(i as u32);
                    if self.mhs.status(mh) == MhStatus::Connected {
                        self.do_leave(mh, None);
                        moved += 1;
                    }
                }
                self.ledger.bump("fault_storms");
                self.emit(|| TraceEvent::FaultStorm { moved });
                self.trace
                    .record(self.now, || format!("handoff storm moved {moved} MHs"));
            }
        }
    }

    fn apply_recover(&mut self, mss: MssId) {
        self.down[mss.index()] = false;
        self.ledger.bump("fault_recovers");
        self.emit(|| TraceEvent::FaultRecover { mss });
        self.trace.record(self.now, || format!("{mss} recovers"));
        self.pending.push_back(ProtoEvent::MssRecovered { mss });
        self.flush_unblocked();
    }

    fn apply_heal(&mut self) {
        if let Some(cut) = self.partition_cut.take() {
            self.ledger.bump("fault_heals");
            self.emit(|| TraceEvent::FaultPartition { cut, healed: true });
            self.trace
                .record(self.now, || format!("partition at cut {cut} heals"));
            self.flush_unblocked();
        }
    }

    /// Re-delivers deferred wired messages whose blocking condition has
    /// cleared, preserving arrival order (and never re-charging — the send
    /// was billed when it happened).
    fn flush_unblocked(&mut self) {
        if self.blocked.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.blocked);
        for (from, to, msg) in pending {
            if self.wired_blocked(from, to) {
                self.blocked.push((from, to, msg));
            } else {
                self.queue
                    .push(self.now + 1, Ev::FixedDeliver { from, to, msg });
            }
        }
    }

    fn do_leave(&mut self, mh: MhId, dest: Option<MssId>) {
        let mss = self.mhs.cell(mh).expect("connected MH has a cell");
        self.mhs.set_status(mh, MhStatus::BetweenCells);
        self.mhs.set_prev_cell(mh, Some(mss));
        self.mhs.set_cell(mh, None);
        self.mhs.bump_epoch(mh);
        self.mhs.reset_down_counts(mh);
        self.msss[mss.index()].local.remove(&mh);
        self.fifo.reset(ChainKey::Down(mss, mh));
        self.fifo.reset(ChainKey::Up(mh, mss));
        self.ledger.bump("control_wireless"); // leave(r)
        self.emit(|| TraceEvent::HandoffBegin { mh, from: mss });
        self.trace.record(self.now, || format!("{mh} leaves {mss}"));
        self.pending.push_back(ProtoEvent::Left { mh, mss });
        let gap = self.rng.exp_delay(self.cfg.mobility.mean_gap.max(1));
        let dest = dest.unwrap_or_else(|| {
            let ctx = crate::mobility::MoveCtx {
                mh,
                from: mss,
                m: self.cfg.num_mss,
                home: self.mhs.home(mh),
                era: self.mhs.epoch(mh),
                seed: self.cfg.seed,
            };
            self.cfg.mobility.pattern.next_cell(&mut self.rng, ctx)
        });
        self.queue
            .push(self.now + gap, Ev::DoJoin { mh, mss: dest });
    }

    fn do_join(&mut self, mh: MhId, mss: MssId) {
        // Fault plane: a join aimed at a crashed cell lands at the next
        // live one instead (no MSS to run the join choreography).
        let mss = self.live_cell(mss);
        let prev = self.mhs.prev_cell(mh);
        self.mhs.set_cell(mh, Some(mss));
        self.mhs.set_status(mh, MhStatus::Connected);
        self.mhs.reset_down_counts(mh);
        self.msss[mss.index()].local.insert(mh);
        self.ledger.moves += 1;
        self.ledger.bump("control_wireless"); // join(mh-id)
        if self.cfg.search == SearchPolicy::HomeAgent && self.mhs.home(mh) != mss {
            // The new cell registers the MH's location with its home agent.
            self.ledger.bump("ha_registrations");
            self.ledger.bump("control_fixed");
        }
        let supplied = if self.cfg.supply_prev_on_join {
            prev
        } else {
            None
        };
        if let Some(p) = supplied {
            if p != mss {
                self.ledger.handoffs += 1;
                self.ledger.bump("control_fixed"); // handoff state request
            }
        }
        self.emit(|| TraceEvent::HandoffEnd {
            mh,
            to: mss,
            prev: supplied,
        });
        self.trace
            .record(self.now, || format!("{mh} joins {mss} (prev {prev:?})"));
        self.pending.push_back(ProtoEvent::Joined {
            mh,
            mss,
            prev: supplied,
        });
        self.flush_outbox(mh, mss);
        if self.cfg.mobility.enabled {
            let d = self.rng.exp_delay(self.cfg.mobility.mean_dwell);
            self.queue.push(self.now + d, Ev::AutoLeave { mh });
        }
    }

    fn do_disconnect(&mut self, mh: MhId, schedule_auto_reconnect: bool) {
        let mss = self.mhs.cell(mh).expect("connected MH has a cell");
        self.mhs.set_status(mh, MhStatus::Disconnected);
        self.mhs.set_prev_cell(mh, Some(mss));
        self.mhs.set_cell(mh, None);
        self.mhs.bump_epoch(mh);
        self.mhs.set_disconnected_at(mh, Some(mss));
        self.msss[mss.index()].local.remove(&mh);
        self.msss[mss.index()].disconnected_here.insert(mh);
        self.fifo.reset(ChainKey::Down(mss, mh));
        self.fifo.reset(ChainKey::Up(mh, mss));
        self.ledger.disconnects += 1;
        self.ledger.bump("control_wireless"); // disconnect(r)
        self.emit(|| TraceEvent::Disconnect { mh, mss });
        self.trace
            .record(self.now, || format!("{mh} disconnects at {mss}"));
        self.pending.push_back(ProtoEvent::Disconnected { mh, mss });
        if schedule_auto_reconnect {
            let down = self.rng.exp_delay(self.cfg.disconnect.mean_downtime.max(1));
            let ctx = crate::mobility::MoveCtx {
                mh,
                from: mss,
                m: self.cfg.num_mss,
                home: self.mhs.home(mh),
                era: self.mhs.epoch(mh),
                seed: self.cfg.seed,
            };
            let dest = self.cfg.mobility.pattern.next_cell(&mut self.rng, ctx);
            self.queue
                .push(self.now + down, Ev::DoReconnect { mh, mss: dest });
        }
    }

    fn do_reconnect(&mut self, mh: MhId, mss: MssId) {
        if self.mhs.status(mh) != MhStatus::Disconnected {
            return;
        }
        let mss = self.live_cell(mss);
        let old = self.mhs.disconnected_at(mh);
        if let Some(o) = old {
            self.msss[o.index()].disconnected_here.remove(&mh);
        }
        let supplies_prev = self.rng.chance(self.cfg.disconnect.p_supply_prev);
        if supplies_prev {
            self.ledger.bump("control_fixed"); // handoff with the previous MSS
        } else {
            // The new MSS queries every fixed host for the previous location.
            self.ledger
                .bump_by("control_fixed", (self.cfg.num_mss as u64).saturating_sub(1));
        }
        self.mhs.set_status(mh, MhStatus::Connected);
        self.mhs.set_cell(mh, Some(mss));
        self.mhs.set_disconnected_at(mh, None);
        self.mhs.set_prev_cell(mh, old);
        self.mhs.reset_down_counts(mh);
        self.msss[mss.index()].local.insert(mh);
        self.ledger.reconnects += 1;
        self.ledger.bump("control_wireless"); // reconnect(mh, prev)
        if self.cfg.search == SearchPolicy::HomeAgent && self.mhs.home(mh) != mss {
            self.ledger.bump("ha_registrations");
            self.ledger.bump("control_fixed");
        }
        self.emit(|| TraceEvent::Reconnect {
            mh,
            mss,
            prev: if supplies_prev { old } else { None },
        });
        self.trace.record(self.now, || {
            format!("{mh} reconnects at {mss} (was {old:?})")
        });
        self.pending.push_back(ProtoEvent::Reconnected {
            mh,
            mss,
            prev: if supplies_prev { old } else { None },
        });
        self.flush_outbox(mh, mss);
        if self.cfg.mobility.enabled {
            let d = self.rng.exp_delay(self.cfg.mobility.mean_dwell);
            self.queue.push(self.now + d, Ev::AutoLeave { mh });
        }
        if self.cfg.disconnect.enabled {
            let d = self.rng.exp_delay(self.cfg.disconnect.mean_uptime);
            self.queue.push(self.now + d, Ev::AutoDisconnect { mh });
        }
    }

    fn flush_outbox(&mut self, mh: MhId, mss: MssId) {
        // The outbox side table only holds entries for hosts that actually
        // buffered, so the common join flushes nothing and touches no map.
        for out in self.mhs.take_outbox(mh) {
            self.push_uplink(mh, mss, out);
        }
    }
}
