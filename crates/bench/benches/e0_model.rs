//! Regenerates E0: system-model message costs (Section 2 / Fig. 1).
fn main() {
    println!("{}", mobidist_bench::exp_model::run());
}
