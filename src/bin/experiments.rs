//! Command-line runner for the paper's experiment suite.
//!
//! ```text
//! cargo run --release --bin experiments -- all
//! cargo run --release --bin experiments -- e1 e5 --quick
//! cargo run --release --bin experiments -- e2 --jobs 4
//! cargo run --release --bin experiments -- --list
//! ```
//!
//! Equivalent to running the `harness = false` bench targets, but from one
//! binary with experiment selection.
//!
//! `--jobs N` sets the worker count for sweep fan-out (`--jobs 1` forces the
//! sequential path; default is the machine's available parallelism). Tables
//! are byte-identical at every worker count.
//!
//! `--shards N` sets the worker count for the space-sharded kernel (E12).
//! Sharded runs are bit-identical at every shard count — CI enforces it —
//! so this knob trades wall-clock only.
//!
//! `--trace <path>` records every simulation run as structured JSONL trace
//! events (schema in OBSERVABILITY.md). Each sweep worker writes its own
//! part file; the parts are merged into `<path>` by run id when the runner
//! exits. Tracing never changes the tables — sinks only observe. Inspect
//! the output with `cargo run --release --bin tracereport -- <path>`.
//!
//! `--cache <dir>` enables the content-addressed run cache (see DESIGN.md):
//! every deterministic simulation run is keyed by a fingerprint of its full
//! configuration and the result is memoized in memory and under `<dir>`, so
//! a repeated invocation replays from disk instead of re-simulating. Tables
//! are byte-identical either way. A `cache: ...` summary line is printed to
//! stderr at exit.

use mobidist_bench::{
    exp_fault, exp_group, exp_model, exp_mutex, exp_proxy, exp_scale, exp_serve, Table,
};
use std::process::ExitCode;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("e0", "system-model message costs (Section 2)"),
    ("e1", "L1 vs L2 cost per execution (3.1.1)"),
    ("e2", "R1 vs R2 cost per traversal (3.1.2)"),
    ("e3", "wireless ops / battery per execution"),
    ("e4", "L1/L2 factor vs C_search/C_fixed"),
    ("e5", "group-message cost vs MOB/MSG (Section 4)"),
    ("e6", "location-view size vs locality (4.3)"),
    ("e7", "progress under disconnection"),
    ("e8", "doze interruptions, R1 vs R2'"),
    ("e9", "fairness guards and the malicious MH"),
    ("e10", "proxy policies vs move rate (Section 5)"),
    ("e11", "exactly-once extension under churn (ref [1])"),
    ("e12", "space-sharded scale curve (million-host churn)"),
    ("e13", "heavy-traffic serving: throughput/latency/fairness"),
    (
        "e14",
        "robustness: mobility zoo x fault injection under load",
    ),
];

fn run_one(name: &str, quick: bool) -> Option<Table> {
    Some(match name {
        "e0" => exp_model::run(),
        "e1" => exp_mutex::e1_lamport(quick),
        "e2" => exp_mutex::e2_ring(quick),
        "e3" => exp_mutex::e3_energy(quick),
        "e4" => exp_mutex::e4_search_ratio(quick),
        "e5" => exp_group::e5_group_strategies(quick),
        "e6" => exp_group::e6_locality(quick),
        "e7" => exp_mutex::e7_disconnection(quick),
        "e8" => exp_mutex::e8_doze(quick),
        "e9" => exp_mutex::e9_fairness(quick),
        "e10" => exp_proxy::e10_proxy(quick),
        "e11" => exp_group::e11_exactly_once(quick),
        "e12" => exp_scale::e12_scale_curve(quick),
        "e13" => exp_serve::e13_serving(quick),
        "e14" => exp_fault::e14_fault(quick),
        _ => return None,
    })
}

fn print_list() {
    println!("available experiments:");
    for (id, what) in EXPERIMENTS {
        println!("  {id:<5} {what}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let csv = args.iter().any(|a| a == "--csv");
    let mut jobs_value: Option<String> = None;
    let mut trace_value: Option<String> = None;
    let mut cache_value: Option<String> = None;
    let mut shards_value: Option<String> = None;
    let mut selected: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" || a == "-j" {
            match it.next() {
                Some(v) => jobs_value = Some(v.clone()),
                None => {
                    eprintln!("--jobs requires a worker count");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs_value = Some(v.to_string());
        } else if a == "--trace" || a == "-t" {
            match it.next() {
                Some(v) => trace_value = Some(v.clone()),
                None => {
                    eprintln!("--trace requires an output path");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(v) = a.strip_prefix("--trace=") {
            trace_value = Some(v.to_string());
        } else if a == "--cache" {
            match it.next() {
                Some(v) => cache_value = Some(v.clone()),
                None => {
                    eprintln!("--cache requires a directory");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(v) = a.strip_prefix("--cache=") {
            cache_value = Some(v.to_string());
        } else if a == "--shards" || a == "-s" {
            match it.next() {
                Some(v) => shards_value = Some(v.clone()),
                None => {
                    eprintln!("--shards requires a worker count");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(v) = a.strip_prefix("--shards=") {
            shards_value = Some(v.to_string());
        } else if !a.starts_with('-') {
            selected.push(a.as_str());
        }
    }
    if let Some(v) = jobs_value {
        if v.parse::<usize>().map(|n| n >= 1) != Ok(true) {
            eprintln!("--jobs expects a positive integer, got '{v}'");
            return ExitCode::FAILURE;
        }
        // The sweep layer reads MOBIDIST_JOBS; see mobidist_bench::parallel.
        std::env::set_var("MOBIDIST_JOBS", v);
    }
    if let Some(v) = shards_value {
        if v.parse::<usize>().map(|n| n >= 1) != Ok(true) {
            eprintln!("--shards expects a positive integer, got '{v}'");
            return ExitCode::FAILURE;
        }
        // The sharded kernel reads MOBIDIST_SHARDS; see mobidist_bench::exp_scale.
        std::env::set_var(exp_scale::SHARDS_ENV, v);
    }
    if trace_value.is_none() {
        // A caller-exported MOBIDIST_TRACE behaves exactly like --trace,
        // including the worker-part merge after the runs finish.
        trace_value = std::env::var(mobidist_bench::obs::TRACE_ENV)
            .ok()
            .filter(|v| !v.is_empty());
    }
    if let Some(path) = &trace_value {
        if path.is_empty() {
            eprintln!("--trace expects a non-empty path");
            return ExitCode::FAILURE;
        }
        // The sweep layer reads MOBIDIST_TRACE; see mobidist_bench::obs.
        std::env::set_var(mobidist_bench::obs::TRACE_ENV, path);
    }
    if let Some(dir) = &cache_value {
        if dir.is_empty() {
            eprintln!("--cache expects a non-empty directory");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("--cache: cannot create '{dir}': {e}");
            return ExitCode::FAILURE;
        }
        // The run layer reads MOBIDIST_CACHE; see mobidist_runcache.
        std::env::set_var(mobidist_runcache::CACHE_ENV, dir);
    }

    if list {
        print_list();
        return ExitCode::SUCCESS;
    }
    if selected.is_empty() {
        eprintln!(
            "usage: experiments [--quick] [--csv] [--jobs N] [--shards N] [--trace PATH] \
             [--cache DIR] <e0..e14 | all>..."
        );
        print_list();
        return ExitCode::FAILURE;
    }

    let names: Vec<&str> = if selected.contains(&"all") {
        EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        selected
    };

    for name in names {
        match run_one(name, quick) {
            Some(t) => {
                if csv {
                    println!("# {name}");
                    print!("{}", t.to_csv());
                } else {
                    println!("{t}");
                }
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                print_list();
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &trace_value {
        match mobidist_bench::obs::merge_worker_files(std::path::Path::new(path)) {
            Ok(runs) => eprintln!("trace: {runs} runs written to {path}"),
            Err(e) => {
                eprintln!("trace merge failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cache_value.is_some() || std::env::var_os(mobidist_runcache::CACHE_ENV).is_some() {
        let s = mobidist_runcache::store::global().stats();
        eprintln!(
            "cache: hits={} (mem={} disk={}) misses={} stored={} evicted={} corrupt={}",
            s.hits(),
            s.mem_hits,
            s.disk_hits,
            s.misses,
            s.stores,
            s.evictions,
            s.corrupt
        );
    }
    ExitCode::SUCCESS
}
