//! Deterministic randomness for the simulator.
//!
//! All stochastic choices (latencies, dwell times, destination cells,
//! disconnection times, workload think times) flow through one seeded
//! [`SimRng`], so a run is fully determined by its
//! [`NetworkConfig::seed`](crate::config::NetworkConfig).
//!
//! The generator is an in-repo xoshiro256** seeded via SplitMix64 — no
//! external crates, no global state, identical output on every platform.
//! Cross-platform bit-reproducibility is a hard requirement: experiment
//! tables are compared byte-for-byte between sequential and parallel runs.

/// Seeded random source used by the kernel and by workloads.
///
/// # Examples
///
/// ```
/// use mobidist_net::rng::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.below(100), b.below(100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an rng from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent stream for a sub-component, so adding draws in
    /// one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let s = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Uniform draw in `0..n`, via Lemire's unbiased multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone: accept unless low falls below the threshold.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            // Still consume one draw so the stream advances uniformly.
            let _ = self.next_u64();
            return false;
        }
        self.unit_f64() < p
    }

    /// Geometric approximation of an exponential delay with the given mean,
    /// always at least 1 tick. A mean of 0 yields a constant 1.
    pub fn exp_delay(&mut self, mean: u64) -> u64 {
        if mean == 0 {
            return 1;
        }
        let mut u = self.unit_f64();
        if u <= 0.0 {
            u = f64::MIN_POSITIVE;
        }
        let d = -((1.0 - u).ln()) * mean as f64;
        (d.round() as u64).clamp(1, mean.saturating_mul(64).max(1))
    }

    /// Chooses a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64)
            .filter(|_| a.below(1_000_000) == b.below(1_000_000))
            .count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn ranges_respected() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..200 {
            let v = r.between(5, 9);
            assert!((5..=9).contains(&v));
            assert!(r.below(3) < 3);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::seed_from(99);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.below(10) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(b), "bucket {i} count {b} out of range");
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_delay_positive_and_mean_ish() {
        let mut r = SimRng::seed_from(11);
        let n = 4000u64;
        let sum: u64 = (0..n).map(|_| r.exp_delay(50)).sum();
        let mean = sum as f64 / n as f64;
        assert!(mean > 35.0 && mean < 65.0, "mean {mean} too far from 50");
        assert_eq!(r.exp_delay(0), 1);
    }

    #[test]
    fn fork_is_independent() {
        let mut root = SimRng::seed_from(3);
        let mut f1 = root.fork(1);
        let before: Vec<u64> = (0..8).map(|_| f1.below(100)).collect();
        // Re-derive from an identically-seeded root: same stream.
        let mut root2 = SimRng::seed_from(3);
        let mut f2 = root2.fork(1);
        let after: Vec<u64> = (0..8).map(|_| f2.below(100)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = SimRng::seed_from(13);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
