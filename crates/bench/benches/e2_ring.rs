//! Regenerates E2: R1 vs R2 cost per traversal (Section 3.1.2).
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_mutex::e2_ring(quick));
}
