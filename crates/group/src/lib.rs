//! # mobidist-group — location management for groups of mobile hosts
//!
//! Section 4 of *"Structuring Distributed Algorithms for Mobile Hosts"*
//! (ICDCS 1994) introduces **group location** — the set of current
//! locations of a process group's mobile members — and compares three
//! strategies for maintaining it:
//!
//! | Strategy | State kept | Group-message cost | Move cost |
//! |----------|-----------|--------------------|-----------|
//! | [`PureSearch`](pure_search::PureSearch) | membership only | `(G−1)(2C_w+C_s)` | 0 |
//! | [`AlwaysInform`](always_inform::AlwaysInform) | per-MH directory `LD(G)` at every member | `(G−1)(2C_w+C_f)` | one directory broadcast per move |
//! | [`LocationView`](location_view::LocationView) | `LV(G)` (occupied cells) at the MSSs + coordinator | `C_w + (LV−1)C_f + G·C_w` | `≤ (LV+3)C_f`, **only for significant moves** |
//!
//! All three implement [`LocationStrategy`](strategy::LocationStrategy) and
//! run under the shared [`GroupHarness`](strategy::GroupHarness), which
//! drives a message workload against the kernel's mobility process and
//! audits delivery and cost.
//!
//! ## Example
//!
//! ```
//! use mobidist_group::prelude::*;
//! use mobidist_net::prelude::*;
//!
//! let members: Vec<MhId> = (0..6u32).map(MhId).collect();
//! let cfg = NetworkConfig::new(4, 6).with_seed(3);
//! let wl = GroupWorkload::new(members.clone(), 10, 100);
//! let mut sim = Simulation::new(cfg, GroupHarness::new(PureSearch::new(members), wl));
//! sim.run_until(SimTime::from_ticks(1_000_000));
//! let r = sim.protocol().report();
//! assert_eq!(r.sent, 10);
//! assert_eq!(r.missed, 0);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod always_inform;
pub mod exactly_once;
pub mod location_view;
pub mod pure_search;
pub mod strategy;

/// Convenient glob import.
pub mod prelude {
    pub use crate::always_inform::{AiMsg, AiPayload, AlwaysInform, StalePolicy};
    pub use crate::exactly_once::{EoMsg, ExactlyOnce};
    pub use crate::location_view::{LocationView, LvMsg};
    pub use crate::pure_search::{PsMsg, PureSearch};
    pub use crate::strategy::{
        sequences_consistent, Delivery, GroupCtx, GroupHarness, GroupReport, GroupTimer,
        GroupWorkload, LocationStrategy,
    };
}
