//! # mobidist-runcache — content-addressed memoization of simulation runs
//!
//! Every run in this workspace is a pure function of its canonical
//! descriptor (configuration + workload + algorithm tag + seed), so its
//! observable outcome — report, ledger, derived counters — can be stored
//! once and replayed forever. This crate provides that store:
//!
//! * a [`codec`] module with a tiny hand-rolled binary serialization layer
//!   (no external deps, matching the workspace's JSONL-sink precedent);
//! * a [`store`] module with the two-tier [`RunCache`](store::RunCache):
//!   an in-process `FxHash` map for hits within one invocation (repeated
//!   sweep points, resampled seeds) and an on-disk content-addressed store
//!   shared by `experiments`, `perfreport` and `tracereport` across
//!   sessions.
//!
//! The cache is **inactive unless [`CACHE_ENV`] (`MOBIDIST_CACHE`) names a
//! directory** — set by the CLIs' `--cache DIR` flag. When inactive every
//! entry point is a cheap no-op and runs execute exactly as before; results
//! served from a warm cache are byte-identical to cold runs by
//! construction (the fingerprint covers everything a run's outcome depends
//! on, and [`KERNEL_VERSION_SALT`](mobidist_net::fingerprint::KERNEL_VERSION_SALT)
//! invalidates everything on behaviour changes).
//!
//! ## Example
//!
//! ```
//! use mobidist_net::fingerprint::Fingerprint;
//! use mobidist_runcache::codec::{Codec, Reader};
//! use mobidist_runcache::store::RunCache;
//!
//! let dir = std::env::temp_dir().join(format!("runcache-doc-{}", std::process::id()));
//! let cache = RunCache::new();
//! let fp = Fingerprint::of(&("demo", 1u64));
//!
//! assert!(cache.get(Some(&dir), fp).is_none()); // cold
//! let mut bytes = Vec::new();
//! 42u64.encode(&mut bytes);
//! cache.put(Some(&dir), fp, bytes);
//!
//! let hit = cache.get(Some(&dir), fp).expect("warm");
//! assert_eq!(u64::decode(&mut Reader::new(&hit)), Some(42));
//! assert_eq!(cache.stats().hits(), 1);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod reports;
pub mod store;

/// Environment variable naming the on-disk cache directory; when unset the
/// run cache (both tiers) is inactive.
pub const CACHE_ENV: &str = "MOBIDIST_CACHE";

/// The directory configured via [`CACHE_ENV`], if any.
///
/// Read lazily on every call rather than latched at startup: the CLIs set
/// the variable while parsing arguments, and tests toggle it.
pub fn cache_dir() -> Option<std::path::PathBuf> {
    std::env::var_os(CACHE_ENV)
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}
