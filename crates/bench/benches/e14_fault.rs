//! Regenerates E14: the mobility-zoo × fault-injection robustness grid.
fn main() {
    let quick = std::env::var_os("MOBIDIST_QUICK").is_some();
    println!("{}", mobidist_bench::exp_fault::e14_fault(quick));
}
