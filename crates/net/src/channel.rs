//! FIFO channel machinery.
//!
//! The system model requires: reliable FIFO delivery between any two MSSs
//! (with arbitrary latency), FIFO delivery on each wireless channel between
//! an MSS and a local MH, and — for algorithms like L1 that run directly on
//! MHs — a *logical* FIFO channel between any pair of MHs regardless of
//! location. The first two are enforced by [`FifoChains`]: a delivery may
//! never be scheduled before the previous delivery on the same directed
//! channel. The third is enforced end-to-end by [`ReorderBuffers`], which
//! releases MH→MH messages to the destination in send order even when
//! re-searches make them arrive out of order. The paper calls this an
//! "additional burden on the underlying network protocols" of L1; the buffer
//! occupancy counter quantifies it.

use crate::hash::FxHashMap;
use crate::ids::{MhId, MssId};
use crate::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// A directed channel on which FIFO order must hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainKey {
    /// Wired channel between two MSSs (directed).
    Fixed(MssId, MssId),
    /// Wireless downlink from an MSS to a local MH.
    Down(MssId, MhId),
    /// Wireless uplink from an MH to its local MSS.
    Up(MhId, MssId),
}

/// Tracks the last scheduled delivery per directed channel and clamps new
/// deliveries to preserve FIFO order.
///
/// Storage is three flat arrays indexed by topology, not a hash map — the
/// schedule/reset pair sits on the per-message hot path:
///
/// * `Fixed(a, b)` → `fixed[a * num_mss + b]` (every directed MSS pair);
/// * `Down(_, mh)` → `down[mh]` and `Up(mh, _)` → `up[mh]`: at any instant
///   an MH has at most one live wireless channel in each direction (to its
///   serving cell), and the kernel resets both chains whenever the MH leaves
///   or disconnects, so one slot per MH per direction is exact.
///
/// `SimTime::ZERO` is the "no history" sentinel; it never clamps, because no
/// delivery can be scheduled before the epoch.
///
/// # Examples
///
/// ```
/// use mobidist_net::channel::{ChainKey, FifoChains};
/// use mobidist_net::ids::MssId;
/// use mobidist_net::time::SimTime;
///
/// let mut f = FifoChains::new(2, 2);
/// let k = ChainKey::Fixed(MssId(0), MssId(1));
/// let t1 = f.schedule(k, SimTime::from_ticks(10));
/// let t2 = f.schedule(k, SimTime::from_ticks(5)); // would overtake: clamped
/// assert!(t2 >= t1);
/// ```
#[derive(Debug, Clone)]
pub struct FifoChains {
    num_mss: usize,
    fixed: Vec<SimTime>,
    down: Vec<SimTime>,
    up: Vec<SimTime>,
    /// Channels currently holding a (nonzero) recorded delivery time.
    recorded: usize,
}

impl FifoChains {
    /// Creates chains for a topology of `num_mss` stations and `num_mh`
    /// hosts, all without history.
    pub fn new(num_mss: usize, num_mh: usize) -> Self {
        let mut f = FifoChains {
            num_mss: 0,
            fixed: Vec::new(),
            down: Vec::new(),
            up: Vec::new(),
            recorded: 0,
        };
        f.reset_topology(num_mss, num_mh);
        f
    }

    /// Clears all history and re-sizes for a (possibly different) topology,
    /// retaining the allocations when they already fit.
    pub fn reset_topology(&mut self, num_mss: usize, num_mh: usize) {
        self.num_mss = num_mss;
        self.fixed.clear();
        self.fixed.resize(num_mss * num_mss, SimTime::ZERO);
        self.down.clear();
        self.down.resize(num_mh, SimTime::ZERO);
        self.up.clear();
        self.up.resize(num_mh, SimTime::ZERO);
        self.recorded = 0;
    }

    #[inline]
    fn slot_mut(&mut self, key: ChainKey) -> &mut SimTime {
        match key {
            ChainKey::Fixed(a, b) => &mut self.fixed[a.index() * self.num_mss + b.index()],
            ChainKey::Down(_, mh) => &mut self.down[mh.index()],
            ChainKey::Up(mh, _) => &mut self.up[mh.index()],
        }
    }

    /// Returns the actual delivery time for a message that would naively
    /// arrive at `earliest`, clamping so it cannot overtake the previous
    /// message on the same channel, and records it.
    pub fn schedule(&mut self, key: ChainKey, earliest: SimTime) -> SimTime {
        let slot = self.slot_mut(key);
        let prev = *slot;
        let t = if prev > earliest { prev } else { earliest };
        *slot = t;
        if prev == SimTime::ZERO && t > SimTime::ZERO {
            self.recorded += 1;
        }
        t
    }

    /// Forgets a channel's history (used when an MH leaves a cell: the
    /// wireless channel to the old cell ceases to exist).
    pub fn reset(&mut self, key: ChainKey) {
        let slot = self.slot_mut(key);
        if *slot > SimTime::ZERO {
            *slot = SimTime::ZERO;
            self.recorded -= 1;
        }
    }

    /// Number of channels with recorded history.
    pub fn len(&self) -> usize {
        self.recorded
    }

    /// True when no channel has history.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }
}

/// Per-(source MH, destination MH) sequencing state.
#[derive(Debug, Clone)]
struct PairState<M> {
    next_expected: u64,
    held: BTreeMap<u64, M>,
    /// Sequence numbers the transport aborted (e.g. the destination was
    /// disconnected); skipped rather than waited for.
    cancelled: BTreeSet<u64>,
}

impl<M> Default for PairState<M> {
    fn default() -> Self {
        PairState {
            next_expected: 0,
            held: BTreeMap::new(),
            cancelled: BTreeSet::new(),
        }
    }
}

impl<M> PairState<M> {
    /// Releases every in-order message, skipping cancelled slots. Returns
    /// `(released, held_delta)` where `held_delta` is how many held entries
    /// were drained.
    fn drain(&mut self) -> (Vec<M>, usize) {
        let mut out = Vec::new();
        let mut drained = 0;
        loop {
            if let Some(m) = self.held.remove(&self.next_expected) {
                self.next_expected += 1;
                drained += 1;
                out.push(m);
            } else if self.cancelled.remove(&self.next_expected) {
                self.next_expected += 1;
            } else {
                break;
            }
        }
        (out, drained)
    }
}

/// End-to-end reorder buffers realising logical FIFO channels between MH
/// pairs.
///
/// The sender side assigns a per-pair sequence number with [`next_seq`]; the
/// receiver side passes arrivals to [`accept`], which returns the messages
/// now deliverable, in order.
///
/// [`next_seq`]: ReorderBuffers::next_seq
/// [`accept`]: ReorderBuffers::accept
///
/// # Examples
///
/// ```
/// use mobidist_net::channel::ReorderBuffers;
/// use mobidist_net::ids::MhId;
///
/// let mut b: ReorderBuffers<&'static str> = ReorderBuffers::default();
/// let (a, z) = (MhId(0), MhId(1));
/// let s0 = b.next_seq(a, z);
/// let s1 = b.next_seq(a, z);
/// assert_eq!(b.accept(a, z, s1, "second"), Vec::<&str>::new()); // held back
/// assert_eq!(b.accept(a, z, s0, "first"), vec!["first", "second"]);
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffers<M> {
    // Keyed lookups only — never iterated (see FifoChains::last).
    tx_seq: FxHashMap<(MhId, MhId), u64>,
    rx: FxHashMap<(MhId, MhId), PairState<M>>,
    /// Peak number of simultaneously-held (out-of-order) messages.
    peak_held: usize,
    currently_held: usize,
}

impl<M> Default for ReorderBuffers<M> {
    fn default() -> Self {
        ReorderBuffers {
            tx_seq: FxHashMap::default(),
            rx: FxHashMap::default(),
            peak_held: 0,
            currently_held: 0,
        }
    }
}

impl<M> ReorderBuffers<M> {
    /// Allocates the next sequence number for the `src → dst` pair.
    pub fn next_seq(&mut self, src: MhId, dst: MhId) -> u64 {
        let c = self.tx_seq.entry((src, dst)).or_insert(0);
        let s = *c;
        *c += 1;
        s
    }

    /// Accepts an arrival and returns every message now deliverable in send
    /// order (empty if `seq` is ahead of the next expected message).
    ///
    /// Duplicate or already-delivered sequence numbers are ignored.
    pub fn accept(&mut self, src: MhId, dst: MhId, seq: u64, msg: M) -> Vec<M> {
        let st = self.rx.entry((src, dst)).or_default();
        if seq < st.next_expected || st.held.contains_key(&seq) {
            return Vec::new(); // duplicate
        }
        st.held.insert(seq, msg);
        self.currently_held += 1;
        self.peak_held = self.peak_held.max(self.currently_held);
        let (out, drained) = st.drain();
        self.currently_held -= drained;
        out
    }

    /// Marks `seq` as aborted by the transport (its message will never
    /// arrive) and returns any successors that become deliverable.
    pub fn cancel(&mut self, src: MhId, dst: MhId, seq: u64) -> Vec<M> {
        let st = self.rx.entry((src, dst)).or_default();
        if seq < st.next_expected {
            return Vec::new(); // already delivered or skipped
        }
        st.cancelled.insert(seq);
        let (out, drained) = st.drain();
        self.currently_held -= drained;
        out
    }

    /// Messages currently held back waiting for a predecessor.
    pub fn held(&self) -> usize {
        self.currently_held
    }

    /// Peak of [`held`](ReorderBuffers::held) over the run — the buffering
    /// burden L1 places on the network layer.
    pub fn peak_held(&self) -> usize {
        self.peak_held
    }

    /// Forgets all sequencing state and statistics, retaining the map
    /// allocations for reuse.
    pub fn clear(&mut self) {
        self.tx_seq.clear();
        self.rx.clear();
        self.peak_held = 0;
        self.currently_held = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_chain_clamps_overtaking() {
        let mut f = FifoChains::new(2, 2);
        let k = ChainKey::Fixed(MssId(0), MssId(1));
        assert_eq!(f.schedule(k, SimTime::from_ticks(10)).ticks(), 10);
        assert_eq!(f.schedule(k, SimTime::from_ticks(4)).ticks(), 10);
        assert_eq!(f.schedule(k, SimTime::from_ticks(12)).ticks(), 12);
    }

    #[test]
    fn distinct_chains_do_not_interact() {
        let mut f = FifoChains::new(2, 2);
        let ab = ChainKey::Fixed(MssId(0), MssId(1));
        let ba = ChainKey::Fixed(MssId(1), MssId(0));
        f.schedule(ab, SimTime::from_ticks(100));
        assert_eq!(f.schedule(ba, SimTime::from_ticks(3)).ticks(), 3);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn reset_forgets_history() {
        let mut f = FifoChains::new(2, 2);
        let k = ChainKey::Down(MssId(0), MhId(1));
        f.schedule(k, SimTime::from_ticks(50));
        f.reset(k);
        assert_eq!(f.schedule(k, SimTime::from_ticks(2)).ticks(), 2);
    }

    #[test]
    fn reset_topology_clears_history() {
        let mut f = FifoChains::new(2, 2);
        f.schedule(ChainKey::Up(MhId(1), MssId(0)), SimTime::from_ticks(9));
        f.schedule(ChainKey::Fixed(MssId(1), MssId(0)), SimTime::from_ticks(9));
        assert_eq!(f.len(), 2);
        f.reset_topology(4, 8);
        assert!(f.is_empty());
        // Larger topology is addressable after the reset.
        assert_eq!(
            f.schedule(ChainKey::Fixed(MssId(3), MssId(2)), SimTime::from_ticks(1))
                .ticks(),
            1
        );
        assert_eq!(
            f.schedule(ChainKey::Down(MssId(0), MhId(7)), SimTime::from_ticks(1))
                .ticks(),
            1
        );
    }

    #[test]
    fn reorder_clear_forgets_everything() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(0), MhId(1));
        let s0 = b.next_seq(a, z);
        let s1 = b.next_seq(a, z);
        assert!(b.accept(a, z, s1, 1).is_empty());
        b.clear();
        assert_eq!(b.held(), 0);
        assert_eq!(b.peak_held(), 0);
        // Sequence numbers restart, as on a fresh buffer.
        assert_eq!(b.next_seq(a, z), 0);
        assert_eq!(b.accept(a, z, s0, 0), vec![0]);
    }

    #[test]
    fn reorder_in_order_passthrough() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(0), MhId(1));
        for i in 0..5u64 {
            let s = b.next_seq(a, z);
            assert_eq!(s, i);
            assert_eq!(b.accept(a, z, s, i as u32), vec![i as u32]);
        }
        assert_eq!(b.held(), 0);
        assert_eq!(b.peak_held(), 1);
    }

    #[test]
    fn reorder_releases_in_send_order() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(2), MhId(3));
        let s: Vec<u64> = (0..4).map(|_| b.next_seq(a, z)).collect();
        assert!(b.accept(a, z, s[2], 2).is_empty());
        assert!(b.accept(a, z, s[1], 1).is_empty());
        assert_eq!(b.held(), 2);
        assert_eq!(b.accept(a, z, s[0], 0), vec![0, 1, 2]);
        assert_eq!(b.accept(a, z, s[3], 3), vec![3]);
        assert_eq!(b.held(), 0);
        assert!(b.peak_held() >= 2);
    }

    #[test]
    fn reorder_ignores_duplicates() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(0), MhId(1));
        let s0 = b.next_seq(a, z);
        assert_eq!(b.accept(a, z, s0, 7), vec![7]);
        assert!(b.accept(a, z, s0, 7).is_empty());
    }

    #[test]
    fn pairs_are_independent_and_directed() {
        let mut b: ReorderBuffers<u32> = ReorderBuffers::default();
        let (a, z) = (MhId(0), MhId(1));
        let s_az = b.next_seq(a, z);
        let s_za = b.next_seq(z, a);
        assert_eq!(s_az, 0);
        assert_eq!(s_za, 0);
        assert_eq!(b.accept(z, a, s_za, 9), vec![9]);
        assert_eq!(b.accept(a, z, s_az, 8), vec![8]);
    }
}
