//! Structure-of-arrays storage for per-MH kernel state.
//!
//! The kernel used to keep one [`MhState`](crate::host::MhState) struct per
//! host (~88 bytes each, an `Option<MssId>` and a `VecDeque` header apiece).
//! At paper scale that is irrelevant; at the million-host populations the
//! scale experiments drive, the array-of-structs layout wastes most of every
//! cache line on fields the hot path never touches.
//!
//! [`MhSoa`] stores each field as its own dense column:
//!
//! * cell ids pack into `u32` with [`u32::MAX`] as the `None` sentinel
//!   (cell counts are bounded far below 2^32);
//! * per-dwell counters (`epoch`, `down_received`, `down_sent`) narrow to
//!   `u32` — they reset every join and can never approach the limit;
//! * the outbox — non-empty only while a host is between cells *and* has
//!   buffered uplink traffic — moves to a sparse side table instead of
//!   spending a 32-byte `VecDeque` header on every host.
//!
//! Net effect: ~30 bytes/host of dense columns plus a near-empty map,
//! roughly a 3× shrink, and status/cell/epoch scans now touch contiguous
//! memory. The layout change is invisible to behaviour: every accessor
//! reproduces the exact semantics of the struct field it replaced, and the
//! determinism suites pin byte-identical traces and ledgers across the
//! refactor.

use crate::hash::FxHashMap;
use crate::host::{MhStatus, OutMsg};
use crate::ids::{MhId, MssId};
use std::collections::VecDeque;

/// Packed representation of `Option<MssId>`: cell ids are dense and small,
/// so the all-ones pattern is free to mean "no cell".
const NONE: u32 = u32::MAX;

#[inline]
fn pack(c: Option<MssId>) -> u32 {
    c.map_or(NONE, |m| m.0)
}

#[inline]
fn unpack(v: u32) -> Option<MssId> {
    (v != NONE).then_some(MssId(v))
}

/// Structure-of-arrays per-MH kernel state (see the module docs).
#[derive(Debug)]
pub(crate) struct MhSoa<M> {
    cell: Vec<u32>,
    prev_cell: Vec<u32>,
    disconnected_at: Vec<u32>,
    home: Vec<u32>,
    epoch: Vec<u32>,
    down_received: Vec<u32>,
    down_sent: Vec<u32>,
    status: Vec<MhStatus>,
    dozing: Vec<bool>,
    /// Sparse outbox side table keyed by MH id. Only hosts that sent while
    /// between cells have an entry, and entries are removed when flushed, so
    /// the map stays tiny regardless of population size. Accessed strictly
    /// by key (never iterated), so the deterministic-but-unordered
    /// [`FxHashMap`] is sound here and cheaper than a `BTreeMap` walk on
    /// the per-uplink hot path.
    outbox: FxHashMap<u32, VecDeque<OutMsg<M>>>,
}

impl<M> MhSoa<M> {
    /// Empty storage; size it with [`reset_to`](Self::reset_to).
    pub fn new() -> Self {
        MhSoa {
            cell: Vec::new(),
            prev_cell: Vec::new(),
            disconnected_at: Vec::new(),
            home: Vec::new(),
            epoch: Vec::new(),
            down_received: Vec::new(),
            down_sent: Vec::new(),
            status: Vec::new(),
            dozing: Vec::new(),
            outbox: FxHashMap::default(),
        }
    }

    /// Resizes every column to `n` hosts and drops all buffered outboxes,
    /// retaining column allocations for reuse. Callers must
    /// [`place`](Self::place) each host afterwards.
    pub fn reset_to(&mut self, n: usize) {
        let MhSoa {
            cell,
            prev_cell,
            disconnected_at,
            home,
            epoch,
            down_received,
            down_sent,
            status,
            dozing,
            outbox,
        } = self;
        for col in [
            cell,
            prev_cell,
            disconnected_at,
            home,
            epoch,
            down_received,
            down_sent,
        ] {
            col.clear();
            col.resize(n, 0);
        }
        status.clear();
        status.resize(n, MhStatus::Connected);
        dozing.clear();
        dozing.resize(n, false);
        outbox.clear();
    }

    /// Initialises host `i` as freshly connected in `cell` with the given
    /// home base (the column analogue of `MhState::new`).
    pub fn place(&mut self, i: usize, cell: MssId, home: MssId) {
        self.cell[i] = cell.0;
        self.prev_cell[i] = NONE;
        self.disconnected_at[i] = NONE;
        self.home[i] = home.0;
        self.epoch[i] = 0;
        self.down_received[i] = 0;
        self.down_sent[i] = 0;
        self.status[i] = MhStatus::Connected;
        self.dozing[i] = false;
    }

    #[inline]
    pub fn status(&self, mh: MhId) -> MhStatus {
        self.status[mh.index()]
    }

    #[inline]
    pub fn set_status(&mut self, mh: MhId, s: MhStatus) {
        self.status[mh.index()] = s;
    }

    #[inline]
    pub fn cell(&self, mh: MhId) -> Option<MssId> {
        unpack(self.cell[mh.index()])
    }

    #[inline]
    pub fn set_cell(&mut self, mh: MhId, c: Option<MssId>) {
        self.cell[mh.index()] = pack(c);
    }

    #[inline]
    pub fn prev_cell(&self, mh: MhId) -> Option<MssId> {
        unpack(self.prev_cell[mh.index()])
    }

    #[inline]
    pub fn set_prev_cell(&mut self, mh: MhId, c: Option<MssId>) {
        self.prev_cell[mh.index()] = pack(c);
    }

    #[inline]
    pub fn disconnected_at(&self, mh: MhId) -> Option<MssId> {
        unpack(self.disconnected_at[mh.index()])
    }

    #[inline]
    pub fn set_disconnected_at(&mut self, mh: MhId, c: Option<MssId>) {
        self.disconnected_at[mh.index()] = pack(c);
    }

    #[inline]
    pub fn home(&self, mh: MhId) -> MssId {
        MssId(self.home[mh.index()])
    }

    #[inline]
    pub fn epoch(&self, mh: MhId) -> u64 {
        u64::from(self.epoch[mh.index()])
    }

    #[inline]
    pub fn bump_epoch(&mut self, mh: MhId) {
        self.epoch[mh.index()] += 1;
    }

    #[inline]
    pub fn dozing(&self, mh: MhId) -> bool {
        self.dozing[mh.index()]
    }

    #[inline]
    pub fn set_dozing(&mut self, mh: MhId, d: bool) {
        self.dozing[mh.index()] = d;
    }

    #[inline]
    pub fn incr_down_received(&mut self, mh: MhId) {
        self.down_received[mh.index()] += 1;
    }

    #[inline]
    pub fn incr_down_sent(&mut self, mh: MhId) {
        self.down_sent[mh.index()] += 1;
    }

    /// Zeroes the per-dwell downlink counters (on every leave/join, matching
    /// the `r` of `leave(r)` restarting per cell).
    #[inline]
    pub fn reset_down_counts(&mut self, mh: MhId) {
        self.down_received[mh.index()] = 0;
        self.down_sent[mh.index()] = 0;
    }

    /// Buffers an uplink message while `mh` is between cells.
    pub fn push_outbox(&mut self, mh: MhId, out: OutMsg<M>) {
        self.outbox.entry(mh.0).or_default().push_back(out);
    }

    /// Removes and returns the buffered outbox of `mh` (empty for the
    /// overwhelmingly common case of a host that never buffered).
    pub fn take_outbox(&mut self, mh: MhId) -> VecDeque<OutMsg<M>> {
        self.outbox.remove(&mh.0).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_matches_fresh_host() {
        let mut s: MhSoa<u32> = MhSoa::new();
        s.reset_to(3);
        s.place(1, MssId(2), MssId(2));
        let mh = MhId(1);
        assert_eq!(s.status(mh), MhStatus::Connected);
        assert_eq!(s.cell(mh), Some(MssId(2)));
        assert_eq!(s.prev_cell(mh), None);
        assert_eq!(s.disconnected_at(mh), None);
        assert_eq!(s.home(mh), MssId(2));
        assert_eq!(s.epoch(mh), 0);
        assert!(!s.dozing(mh));
        assert!(s.take_outbox(mh).is_empty());
    }

    #[test]
    fn option_columns_round_trip() {
        let mut s: MhSoa<()> = MhSoa::new();
        s.reset_to(1);
        s.place(0, MssId(0), MssId(0));
        let mh = MhId(0);
        s.set_cell(mh, None);
        s.set_prev_cell(mh, Some(MssId(7)));
        s.set_disconnected_at(mh, Some(MssId(3)));
        assert_eq!(s.cell(mh), None);
        assert_eq!(s.prev_cell(mh), Some(MssId(7)));
        assert_eq!(s.disconnected_at(mh), Some(MssId(3)));
        s.set_disconnected_at(mh, None);
        assert_eq!(s.disconnected_at(mh), None);
    }

    #[test]
    fn outbox_is_sparse_and_fifo() {
        let mut s: MhSoa<u32> = MhSoa::new();
        s.reset_to(2);
        s.place(0, MssId(0), MssId(0));
        s.place(1, MssId(0), MssId(0));
        s.push_outbox(MhId(1), OutMsg::Plain(10));
        s.push_outbox(MhId(1), OutMsg::Plain(11));
        let got: Vec<u32> = s
            .take_outbox(MhId(1))
            .into_iter()
            .map(|o| match o {
                OutMsg::Plain(v) => v,
                OutMsg::ToMh { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![10, 11]);
        assert!(s.take_outbox(MhId(1)).is_empty());
        assert!(s.take_outbox(MhId(0)).is_empty());
    }

    #[test]
    fn reset_clears_outboxes_and_resizes() {
        let mut s: MhSoa<u32> = MhSoa::new();
        s.reset_to(4);
        s.place(3, MssId(1), MssId(1));
        s.push_outbox(MhId(3), OutMsg::Plain(1));
        s.bump_epoch(MhId(3));
        s.reset_to(2);
        s.place(0, MssId(0), MssId(0));
        s.place(1, MssId(0), MssId(0));
        assert!(s.take_outbox(MhId(3)).is_empty());
        assert_eq!(s.epoch(MhId(1)), 0);
    }
}
