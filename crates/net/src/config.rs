//! Simulation configuration.

use crate::cost::{CostModel, EnergyModel};
use crate::fault::FaultConfig;
use crate::latency::LatencyModel;
use crate::mobility::{DisconnectConfig, MobilityConfig};
use crate::search::SearchPolicy;

/// Per-channel-class latency distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Wired MSS↔MSS latency.
    pub fixed: LatencyModel,
    /// Wireless MH↔MSS latency.
    pub wireless: LatencyModel,
    /// Latency of an oracle search (locate + forward to the current MSS).
    pub search: LatencyModel,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            fixed: LatencyModel::Fixed(5),
            wireless: LatencyModel::Fixed(2),
            search: LatencyModel::Fixed(12),
        }
    }
}

/// How the kernel dispatches deliveries that share a `(tick, destination)`.
///
/// Both modes produce byte-identical experiment tables and cost ledgers for
/// every workload in this repository, and both modes' traces pass
/// `tracereport --check` reconciliation with identical per-kind event counts
/// — the `delivery_equivalence` suites and the `ci/check.sh`
/// delivery-soundness gate diff them end to end. (Within one tick the trace
/// *interleaving* may differ: batched mode emits a run's receive records
/// before the fused callback fires; see DESIGN.md §7.) `Batched` is the
/// default; `Unbatched` is the historical one-event-per-message path, kept
/// as the reference the gates compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Coalesce same-tick runs to one fixed host into a single batch
    /// callback, and fuse broadcast fan-outs into one shared-payload wheel
    /// event per arrival tick.
    #[default]
    Batched,
    /// One wheel event and one protocol callback per message.
    Unbatched,
}

/// Environment variable selecting the process-default [`DeliveryMode`]
/// (`batched` or `unbatched`). The CI delivery-soundness gate runs the
/// experiment pipeline once per mode and `cmp`s the outputs.
pub const DELIVERY_ENV: &str = "MOBIDIST_DELIVERY";

/// Process-default delivery mode, read from [`DELIVERY_ENV`] at every
/// config construction (like the sharded kernel's worker knob, so tests can
/// flip it in-process). Each built config carries its mode and the mode is
/// part of the canonical fingerprint, so mid-process flips can never alias
/// run-cache keys.
pub(crate) fn delivery_default() -> DeliveryMode {
    match std::env::var(DELIVERY_ENV) {
        Ok(v) if v == "unbatched" => DeliveryMode::Unbatched,
        Ok(v) if v == "batched" => DeliveryMode::Batched,
        Ok(v) => panic!("{DELIVERY_ENV} must be 'batched' or 'unbatched', got '{v}'"),
        Err(_) => DeliveryMode::Batched,
    }
}

/// How MHs are placed into cells at simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// MH `i` starts in cell `i mod M`.
    #[default]
    RoundRobin,
    /// Uniformly random initial cell.
    Random,
    /// All MHs packed into the first `cells` cells (localised groups).
    Clustered {
        /// Number of initial cells used.
        cells: usize,
    },
}

/// Complete description of a two-tier network instance.
///
/// The paper's population assumption is `N ≫ M`: many mobile hosts, fewer
/// but more powerful fixed hosts.
///
/// # Examples
///
/// ```
/// use mobidist_net::config::NetworkConfig;
/// let cfg = NetworkConfig::new(8, 64).with_seed(7);
/// assert_eq!(cfg.num_mss, 8);
/// assert_eq!(cfg.num_mh, 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Number of mobile support stations, `M`.
    pub num_mss: usize,
    /// Number of mobile hosts, `N`.
    pub num_mh: usize,
    /// The paper's message-cost parameters.
    pub cost: CostModel,
    /// Battery-energy parameters at MHs.
    pub energy: EnergyModel,
    /// Latency distributions per channel class.
    pub latency: LatencyConfig,
    /// How MHs are located (`C_search` abstraction or flooding).
    pub search: SearchPolicy,
    /// Autonomous mobility process.
    pub mobility: MobilityConfig,
    /// Autonomous disconnection process.
    pub disconnect: DisconnectConfig,
    /// Scheduled fault injection (MSS crashes, wired partitions, handoff
    /// storms). Default: no faults.
    pub fault: FaultConfig,
    /// Initial placement of MHs into cells.
    pub placement: Placement,
    /// Delivery dispatch strategy (batched vs one-callback-per-message).
    /// Defaults to [`DeliveryMode::Batched`] unless `MOBIDIST_DELIVERY=unbatched`.
    pub delivery: DeliveryMode,
    /// Whether a `join()` carries the id of the previous MSS (required by the
    /// location-view protocol of Section 4; part of the handoff).
    pub supply_prev_on_join: bool,
    /// Root seed; fully determines the run.
    pub seed: u64,
}

impl NetworkConfig {
    /// A configuration with `m` MSSs and `n` MHs and defaults elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n == 0`.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0, "at least one MSS is required");
        assert!(n > 0, "at least one MH is required");
        NetworkConfig {
            num_mss: m,
            num_mh: n,
            cost: CostModel::default(),
            energy: EnergyModel::default(),
            latency: LatencyConfig::default(),
            search: SearchPolicy::default(),
            mobility: MobilityConfig::default(),
            disconnect: DisconnectConfig::default(),
            fault: FaultConfig::default(),
            placement: Placement::default(),
            delivery: delivery_default(),
            supply_prev_on_join: true,
            seed: 0,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the search policy.
    pub fn with_search(mut self, search: SearchPolicy) -> Self {
        self.search = search;
        self
    }

    /// Replaces the mobility process.
    pub fn with_mobility(mut self, mobility: MobilityConfig) -> Self {
        self.mobility = mobility;
        self
    }

    /// Replaces the disconnection process.
    pub fn with_disconnect(mut self, disconnect: DisconnectConfig) -> Self {
        self.disconnect = disconnect;
        self
    }

    /// Replaces the fault-injection schedule.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Replaces the initial placement.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Replaces the latency configuration.
    pub fn with_latency(mut self, latency: LatencyConfig) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the delivery mode.
    pub fn with_delivery(mut self, delivery: DeliveryMode) -> Self {
        self.delivery = delivery;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = NetworkConfig::new(4, 10)
            .with_seed(9)
            .with_search(SearchPolicy::Flood)
            .with_placement(Placement::Clustered { cells: 2 });
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.search, SearchPolicy::Flood);
        assert_eq!(cfg.placement, Placement::Clustered { cells: 2 });
        assert!(cfg.supply_prev_on_join);
    }

    #[test]
    #[should_panic(expected = "at least one MSS")]
    fn rejects_zero_mss() {
        let _ = NetworkConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one MH")]
    fn rejects_zero_mh() {
        let _ = NetworkConfig::new(1, 0);
    }

    #[test]
    fn defaults_are_static_network() {
        let cfg = NetworkConfig::new(2, 2);
        assert!(!cfg.mobility.enabled);
        assert!(!cfg.disconnect.enabled);
        assert!(cfg.fault.is_empty());
        assert_eq!(cfg.placement, Placement::RoundRobin);
    }
}
