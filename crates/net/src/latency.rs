//! Message latency distributions.
//!
//! The paper's static network delivers with "arbitrary message latency";
//! experiments choose a distribution per channel class. FIFO order is
//! enforced by the kernel regardless of sampled latencies (see
//! [`FifoChains`](crate::channel::FifoChains)).

use crate::rng::SimRng;

/// A latency distribution, sampled per message, in ticks.
///
/// # Examples
///
/// ```
/// use mobidist_net::latency::LatencyModel;
/// use mobidist_net::rng::SimRng;
/// let mut rng = SimRng::seed_from(1);
/// assert_eq!(LatencyModel::Fixed(4).sample(&mut rng), 4);
/// let v = LatencyModel::Uniform { lo: 2, hi: 6 }.sample(&mut rng);
/// assert!((2..=6).contains(&v));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Constant latency.
    Fixed(u64),
    /// Uniform latency in `lo..=hi`.
    Uniform {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
    /// Exponential-like latency with the given mean (minimum 1 tick).
    Exp {
        /// Mean latency in ticks.
        mean: u64,
    },
}

impl LatencyModel {
    /// Draws one latency in ticks (always at least 1).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match *self {
            LatencyModel::Fixed(v) => v.max(1),
            LatencyModel::Uniform { lo, hi } => rng.between(lo.max(1), hi.max(lo).max(1)),
            LatencyModel::Exp { mean } => rng.exp_delay(mean),
        }
    }

    /// A deterministic upper bound where one exists (used by flood-search
    /// timeout reasoning).
    pub fn upper_bound(&self) -> Option<u64> {
        match *self {
            LatencyModel::Fixed(v) => Some(v.max(1)),
            LatencyModel::Uniform { hi, .. } => Some(hi.max(1)),
            LatencyModel::Exp { .. } => None,
        }
    }

    /// The smallest latency [`sample`](Self::sample) can ever return — the
    /// conservative lookahead of the channel class. Every model delivers in
    /// at least one tick, so this is always ≥ 1; a sharded simulation may
    /// safely process a whole window of this width before exchanging
    /// cross-shard traffic.
    pub fn lower_bound(&self) -> u64 {
        match *self {
            LatencyModel::Fixed(v) => v.max(1),
            LatencyModel::Uniform { lo, .. } => lo.max(1),
            LatencyModel::Exp { .. } => 1,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Fixed(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant_and_nonzero() {
        let mut rng = SimRng::seed_from(2);
        assert_eq!(LatencyModel::Fixed(0).sample(&mut rng), 1);
        for _ in 0..10 {
            assert_eq!(LatencyModel::Fixed(9).sample(&mut rng), 9);
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SimRng::seed_from(3);
        let m = LatencyModel::Uniform { lo: 3, hi: 11 };
        for _ in 0..100 {
            let v = m.sample(&mut rng);
            assert!((3..=11).contains(&v));
        }
    }

    #[test]
    fn exp_is_positive() {
        let mut rng = SimRng::seed_from(4);
        let m = LatencyModel::Exp { mean: 6 };
        for _ in 0..100 {
            assert!(m.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn upper_bounds() {
        assert_eq!(LatencyModel::Fixed(5).upper_bound(), Some(5));
        assert_eq!(
            LatencyModel::Uniform { lo: 1, hi: 8 }.upper_bound(),
            Some(8)
        );
        assert_eq!(LatencyModel::Exp { mean: 5 }.upper_bound(), None);
    }

    #[test]
    fn lower_bounds() {
        assert_eq!(LatencyModel::Fixed(5).lower_bound(), 5);
        assert_eq!(LatencyModel::Fixed(0).lower_bound(), 1);
        assert_eq!(LatencyModel::Uniform { lo: 3, hi: 8 }.lower_bound(), 3);
        assert_eq!(LatencyModel::Uniform { lo: 0, hi: 8 }.lower_bound(), 1);
        assert_eq!(LatencyModel::Exp { mean: 5 }.lower_bound(), 1);
    }

    #[test]
    fn samples_respect_lower_bound() {
        let mut rng = SimRng::seed_from(8);
        for m in [
            LatencyModel::Fixed(4),
            LatencyModel::Uniform { lo: 2, hi: 9 },
            LatencyModel::Exp { mean: 3 },
        ] {
            let lb = m.lower_bound();
            for _ in 0..200 {
                assert!(m.sample(&mut rng) >= lb);
            }
        }
    }
}
