//! Static algorithms used to demonstrate the proxy framework.
//!
//! These are deliberately classical programs written for *fixed* hosts —
//! none of them knows mobility exists. Lifted by
//! [`ProxyRuntime`](crate::framework::ProxyRuntime), they serve mobile
//! clients unchanged.

use crate::framework::{ProcId, StaticAlgorithm, StaticCtx};
use std::collections::BTreeMap;

/// Echo service: every input is answered with `input + 1` by the client's
/// own proxy. No inter-process traffic — isolates the pure mobility
/// overhead of the runtime.
#[derive(Debug, Default)]
pub struct EchoService {
    handled: u64,
}

impl EchoService {
    /// Creates the service.
    pub fn new() -> Self {
        EchoService::default()
    }

    /// Inputs handled so far.
    pub fn handled(&self) -> u64 {
        self.handled
    }
}

impl StaticAlgorithm for EchoService {
    type Msg = ();

    fn name(&self) -> &'static str {
        "echo"
    }

    fn on_input(&mut self, ctx: &mut StaticCtx<()>, proc: ProcId, input: u64) {
        self.handled += 1;
        ctx.output(proc, input + 1);
    }

    fn on_msg(&mut self, _: &mut StaticCtx<()>, _: ProcId, _: ProcId, _msg: ()) {
        unreachable!("the echo service sends no inter-process messages");
    }
}

/// Messages of the [`CentralCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterMsg {
    /// Ask the counter process to add `1` and report the new value.
    Add {
        /// Who asked (so the reply can find its way back).
        client: ProcId,
    },
    /// The new counter value for `client`.
    Value {
        /// The requester.
        client: ProcId,
        /// The counter after the increment.
        value: u64,
    },
}

/// A shared counter owned by process 0: every input is an increment routed
/// to the owner, whose reply is delivered to the requesting client. A
/// minimal client-server workload exercising inter-proxy traffic.
#[derive(Debug, Default)]
pub struct CentralCounter {
    value: u64,
}

impl CentralCounter {
    /// Creates the counter at zero.
    pub fn new() -> Self {
        CentralCounter::default()
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl StaticAlgorithm for CentralCounter {
    type Msg = CounterMsg;

    fn name(&self) -> &'static str {
        "central-counter"
    }

    fn on_input(&mut self, ctx: &mut StaticCtx<CounterMsg>, proc: ProcId, _input: u64) {
        let owner = ProcId(0);
        if proc == owner {
            self.value += 1;
            ctx.output(proc, self.value);
        } else {
            ctx.send(proc, owner, CounterMsg::Add { client: proc });
        }
    }

    fn on_msg(
        &mut self,
        ctx: &mut StaticCtx<CounterMsg>,
        at: ProcId,
        _from: ProcId,
        msg: CounterMsg,
    ) {
        match msg {
            CounterMsg::Add { client } => {
                debug_assert_eq!(at, ProcId(0));
                self.value += 1;
                ctx.send(
                    at,
                    client,
                    CounterMsg::Value {
                        client,
                        value: self.value,
                    },
                );
            }
            CounterMsg::Value { client, value } => {
                ctx.output(client, value);
            }
        }
    }
}

/// Publish–subscribe fan-out: every input is published to *every* client in
/// one step. No inter-process traffic — all n outputs of a publication are
/// emitted together, which is the ideal case for the runtime's combining
/// delivery (one cell broadcast covers every subscriber in a cell).
#[derive(Debug, Default)]
pub struct Fanout {
    published: u64,
}

impl Fanout {
    /// Creates the service.
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Publications handled so far.
    pub fn published(&self) -> u64 {
        self.published
    }
}

impl StaticAlgorithm for Fanout {
    type Msg = ();

    fn name(&self) -> &'static str {
        "fanout"
    }

    fn on_input(&mut self, ctx: &mut StaticCtx<()>, _proc: ProcId, input: u64) {
        self.published += 1;
        for p in 0..ctx.num_procs() as u32 {
            ctx.output(ProcId(p), input);
        }
    }

    fn on_msg(&mut self, _: &mut StaticCtx<()>, _: ProcId, _: ProcId, _msg: ()) {
        unreachable!("the fan-out service sends no inter-process messages");
    }
}

/// Messages of the [`Barrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierMsg {
    /// A process reached the barrier.
    Arrived {
        /// The arriving process.
        who: ProcId,
    },
    /// Everyone arrived; round `round` is released.
    Release {
        /// The completed round.
        round: u64,
    },
}

/// A barrier coordinated by process 0: each client input is an "arrival";
/// when all processes have arrived, everyone's client is notified with the
/// round number. Arrivals are counted, so a fast client may bank arrivals
/// for future rounds. All-to-one plus one-to-all inter-proxy traffic.
#[derive(Debug, Default)]
pub struct Barrier {
    arrivals: BTreeMap<ProcId, u64>,
    round: u64,
}

impl Barrier {
    /// Creates the barrier at round zero.
    pub fn new() -> Self {
        Barrier::default()
    }

    /// Completed rounds.
    pub fn rounds(&self) -> u64 {
        self.round
    }
}

impl StaticAlgorithm for Barrier {
    type Msg = BarrierMsg;

    fn name(&self) -> &'static str {
        "barrier"
    }

    fn on_input(&mut self, ctx: &mut StaticCtx<BarrierMsg>, proc: ProcId, _input: u64) {
        if proc == ProcId(0) {
            self.note_arrival(ctx, proc);
        } else {
            ctx.send(proc, ProcId(0), BarrierMsg::Arrived { who: proc });
        }
    }

    fn on_msg(
        &mut self,
        ctx: &mut StaticCtx<BarrierMsg>,
        at: ProcId,
        _from: ProcId,
        msg: BarrierMsg,
    ) {
        match msg {
            BarrierMsg::Arrived { who } => {
                debug_assert_eq!(at, ProcId(0));
                self.note_arrival(ctx, who);
            }
            BarrierMsg::Release { round } => {
                ctx.output(at, round);
            }
        }
    }
}

impl Barrier {
    fn note_arrival(&mut self, ctx: &mut StaticCtx<BarrierMsg>, who: ProcId) {
        *self.arrivals.entry(who).or_insert(0) += 1;
        while self.arrivals.len() == ctx.num_procs() && self.arrivals.values().all(|c| *c > 0) {
            for c in self.arrivals.values_mut() {
                *c -= 1;
            }
            self.arrivals.retain(|_, c| *c > 0);
            self.round += 1;
            let round = self.round;
            ctx.output(ProcId(0), round);
            for p in 1..ctx.num_procs() as u32 {
                ctx.send(ProcId(0), ProcId(p), BarrierMsg::Release { round });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_answers_with_increment() {
        let mut e = EchoService::new();
        let mut ctx = StaticCtx::new(3);
        e.on_input(&mut ctx, ProcId(1), 41);
        assert_eq!(e.handled(), 1);
    }

    #[test]
    fn counter_increments_for_remote_clients() {
        let mut c = CentralCounter::new();
        let mut ctx = StaticCtx::new(3);
        // Remote client routes through the owner.
        c.on_input(&mut ctx, ProcId(2), 0);
        assert_eq!(c.value(), 0, "not incremented until the owner hears");
        c.on_msg(
            &mut ctx,
            ProcId(0),
            ProcId(2),
            CounterMsg::Add { client: ProcId(2) },
        );
        assert_eq!(c.value(), 1);
        // Local client is immediate.
        c.on_input(&mut ctx, ProcId(0), 0);
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn barrier_releases_once_everyone_arrives() {
        let mut b = Barrier::new();
        let mut ctx = StaticCtx::new(3);
        b.on_input(&mut ctx, ProcId(0), 0);
        b.on_msg(
            &mut ctx,
            ProcId(0),
            ProcId(1),
            BarrierMsg::Arrived { who: ProcId(1) },
        );
        assert_eq!(b.rounds(), 0);
        b.on_msg(
            &mut ctx,
            ProcId(0),
            ProcId(2),
            BarrierMsg::Arrived { who: ProcId(2) },
        );
        assert_eq!(b.rounds(), 1);
    }
}
