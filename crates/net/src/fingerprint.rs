//! Canonical run fingerprints for content-addressed memoization.
//!
//! Every simulation run in this workspace is a pure function of its
//! canonical descriptor — the [`NetworkConfig`], the workload, the
//! algorithm tag and any tuning knobs — so a *stable 128-bit fingerprint*
//! of that descriptor identifies the run's entire observable outcome
//! (report, ledger, derived statistics). The `runcache` crate keys its
//! content-addressed store on these fingerprints.
//!
//! # Canonical hashing
//!
//! [`CanonHash`] is deliberately separate from `std::hash::Hash`:
//!
//! * the digest must be **stable across processes, platforms and
//!   compilations** — `std`'s `Hash` makes no such promise (layout changes,
//!   `SipHash` keys, prefix-freedom details are all unspecified);
//! * every value is reduced to an explicit little-endian word stream with
//!   length prefixes for variable-width data and discriminant tags for
//!   enums, so the encoding is prefix-free by construction;
//! * `f64` fields hash their IEEE-754 bit pattern ([`f64::to_bits`]),
//!   making `-0.0` ≠ `0.0` — fine for a cache key (a false mismatch only
//!   costs a recompute, never a wrong hit).
//!
//! The 128-bit width comes from two independently-seeded multiply-rotate
//! lanes (the same scheme as [`FxHasher`](crate::hash::FxHasher)). Each
//! lane alone is a weak 64-bit mixer; together they make accidental
//! collisions across the few thousand descriptors a sweep produces
//! astronomically unlikely, while staying allocation-free and dependency-
//! free.
//!
//! # Version salt
//!
//! [`KERNEL_VERSION_SALT`] folds the simulator's *behaviour version* into
//! every fingerprint. Any change that can alter the event stream or the
//! ledger of some run — RNG draw order, event scheduling, cost charging,
//! protocol logic — **must bump the salt**, which atomically invalidates
//! every previously cached result (old records are simply never looked up
//! again; they are content-addressed, not versioned in place). Changes
//! that cannot affect results (docs, new accessors, faster containers with
//! identical iteration order) must leave it alone so caches survive.
//!
//! # Examples
//!
//! ```
//! use mobidist_net::fingerprint::{CanonHash, Fingerprint};
//! use mobidist_net::config::NetworkConfig;
//!
//! let a = Fingerprint::of(&("l1", NetworkConfig::new(4, 8).with_seed(7), 50u64));
//! let b = Fingerprint::of(&("l1", NetworkConfig::new(4, 8).with_seed(7), 50u64));
//! let c = Fingerprint::of(&("l1", NetworkConfig::new(4, 8).with_seed(8), 50u64));
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! assert_eq!(a.to_hex().len(), 32);
//! assert_eq!(Fingerprint::from_hex(&a.to_hex()), Some(a));
//! ```

use crate::config::{DeliveryMode, LatencyConfig, NetworkConfig, Placement};
use crate::cost::{CostModel, EnergyModel};
use crate::ids::{GroupId, MhId, MssId};
use crate::latency::LatencyModel;
use crate::mobility::{DisconnectConfig, MobilityConfig, MovePattern};
use crate::search::SearchPolicy;

/// Behaviour version of the simulation kernel, folded into every
/// [`Fingerprint`].
///
/// Bump this on **any behaviour-affecting change** — anything that could
/// alter the event stream, the ledger, or a report of at least one run:
/// RNG sequencing, event scheduling, charging rules, protocol or harness
/// logic, default parameters. Doc, API-surface and pure-performance
/// changes with bit-identical results keep the salt. The policy is
/// documented in DESIGN.md ("Run cache").
pub const KERNEL_VERSION_SALT: u64 = 5;

const LANE0_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const LANE1_SEED: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

/// A stable 128-bit content fingerprint of a canonical run descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// High 64 bits (lane 0).
    pub hi: u64,
    /// Low 64 bits (lane 1).
    pub lo: u64,
}

impl Fingerprint {
    /// Fingerprints `value`, folding in [`KERNEL_VERSION_SALT`].
    pub fn of(value: &impl CanonHash) -> Self {
        let mut h = CanonHasher::new();
        h.write_u64(KERNEL_VERSION_SALT);
        value.canon_hash(&mut h);
        h.finish()
    }

    /// Lower-case 32-character hex form (`hi` then `lo`), used as the
    /// on-disk record name by the run cache.
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`to_hex`](Self::to_hex) form back; `None` unless the
    /// input is exactly 32 lower-case hex digits.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32
            || !s
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        Some(Fingerprint {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }
}

/// Two-lane multiply-rotate hasher producing a [`Fingerprint`].
///
/// Not a `std::hash::Hasher`: values feed it through [`CanonHash`], which
/// fixes the encoding instead of inheriting `Hash`'s unspecified one.
#[derive(Debug, Clone, Copy)]
pub struct CanonHasher {
    lane0: u64,
    lane1: u64,
}

impl CanonHasher {
    /// A fresh hasher (no salt mixed in; [`Fingerprint::of`] adds it).
    pub fn new() -> Self {
        CanonHasher { lane0: 0, lane1: 0 }
    }

    /// Feeds one 64-bit word to both lanes.
    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        self.lane0 = (self.lane0.rotate_left(5) ^ word).wrapping_mul(LANE0_SEED);
        self.lane1 = (self.lane1.rotate_left(23) ^ word).wrapping_mul(LANE1_SEED);
    }

    /// Feeds raw bytes: a length prefix, then zero-padded LE words, so the
    /// stream stays prefix-free.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    /// Final 128-bit digest.
    pub fn finish(&self) -> Fingerprint {
        // One extra round per lane so short inputs still avalanche.
        let mut h = *self;
        h.write_u64(0x6d6f_6269_6469_7374); // "mobidist"
        Fingerprint {
            hi: h.lane0,
            lo: h.lane1,
        }
    }
}

impl Default for CanonHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable, explicit reduction of a value to the canonical word stream.
///
/// Implementations must be **total and unambiguous**: two values hash to
/// the same stream iff a simulation could not tell them apart. Enum
/// variants write a discriminant tag before their payload; collections
/// write a length prefix first.
pub trait CanonHash {
    /// Feeds this value's canonical encoding to `h`.
    fn canon_hash(&self, h: &mut CanonHasher);
}

impl CanonHash for u64 {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(*self);
    }
}

impl CanonHash for u32 {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(*self as u64);
    }
}

impl CanonHash for usize {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(*self as u64);
    }
}

impl CanonHash for bool {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(*self as u64);
    }
}

impl CanonHash for f64 {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(self.to_bits());
    }
}

impl CanonHash for str {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_bytes(self.as_bytes());
    }
}

impl CanonHash for String {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_bytes(self.as_bytes());
    }
}

impl<T: CanonHash> CanonHash for [T] {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.canon_hash(h);
        }
    }
}

impl<T: CanonHash> CanonHash for Vec<T> {
    fn canon_hash(&self, h: &mut CanonHasher) {
        self.as_slice().canon_hash(h);
    }
}

impl<T: CanonHash> CanonHash for Option<T> {
    fn canon_hash(&self, h: &mut CanonHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.canon_hash(h);
            }
        }
    }
}

impl<T: CanonHash + ?Sized> CanonHash for &T {
    fn canon_hash(&self, h: &mut CanonHasher) {
        (*self).canon_hash(h);
    }
}

macro_rules! canon_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: CanonHash),+> CanonHash for ($($name,)+) {
            fn canon_hash(&self, h: &mut CanonHasher) {
                $(self.$idx.canon_hash(h);)+
            }
        }
    };
}

canon_tuple!(A: 0);
canon_tuple!(A: 0, B: 1);
canon_tuple!(A: 0, B: 1, C: 2);
canon_tuple!(A: 0, B: 1, C: 2, D: 3);
canon_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
canon_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl CanonHash for MhId {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(self.0 as u64);
    }
}

impl CanonHash for MssId {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(self.0 as u64);
    }
}

impl CanonHash for GroupId {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(self.0 as u64);
    }
}

impl CanonHash for CostModel {
    fn canon_hash(&self, h: &mut CanonHasher) {
        let CostModel {
            c_fixed,
            c_wireless,
            c_search,
        } = *self;
        h.write_u64(c_fixed);
        h.write_u64(c_wireless);
        h.write_u64(c_search);
    }
}

impl CanonHash for EnergyModel {
    fn canon_hash(&self, h: &mut CanonHasher) {
        let EnergyModel { tx, rx } = *self;
        h.write_u64(tx);
        h.write_u64(rx);
    }
}

impl CanonHash for LatencyModel {
    fn canon_hash(&self, h: &mut CanonHasher) {
        match *self {
            LatencyModel::Fixed(v) => {
                h.write_u64(0);
                h.write_u64(v);
            }
            LatencyModel::Uniform { lo, hi } => {
                h.write_u64(1);
                h.write_u64(lo);
                h.write_u64(hi);
            }
            LatencyModel::Exp { mean } => {
                h.write_u64(2);
                h.write_u64(mean);
            }
        }
    }
}

impl CanonHash for LatencyConfig {
    fn canon_hash(&self, h: &mut CanonHasher) {
        let LatencyConfig {
            fixed,
            wireless,
            search,
        } = *self;
        fixed.canon_hash(h);
        wireless.canon_hash(h);
        search.canon_hash(h);
    }
}

impl CanonHash for SearchPolicy {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(match self {
            SearchPolicy::Oracle => 0,
            SearchPolicy::Flood => 1,
            SearchPolicy::HomeAgent => 2,
        });
    }
}

impl CanonHash for MovePattern {
    fn canon_hash(&self, h: &mut CanonHasher) {
        match *self {
            MovePattern::UniformRandom => h.write_u64(0),
            MovePattern::Locality { p_local, home_span } => {
                h.write_u64(1);
                p_local.canon_hash(h);
                h.write_u64(home_span as u64);
            }
            MovePattern::RandomWaypoint { leg } => {
                h.write_u64(2);
                h.write_u64(leg as u64);
            }
            MovePattern::GaussMarkov { memory } => {
                h.write_u64(3);
                memory.canon_hash(h);
            }
            MovePattern::GroupPlatoon { groups, p_follow } => {
                h.write_u64(4);
                h.write_u64(groups as u64);
                p_follow.canon_hash(h);
            }
        }
    }
}

impl CanonHash for MobilityConfig {
    fn canon_hash(&self, h: &mut CanonHasher) {
        let MobilityConfig {
            enabled,
            mean_dwell,
            mean_gap,
            pattern,
        } = *self;
        enabled.canon_hash(h);
        h.write_u64(mean_dwell);
        h.write_u64(mean_gap);
        pattern.canon_hash(h);
    }
}

impl CanonHash for DisconnectConfig {
    fn canon_hash(&self, h: &mut CanonHasher) {
        let DisconnectConfig {
            enabled,
            mean_uptime,
            mean_downtime,
            p_supply_prev,
        } = *self;
        enabled.canon_hash(h);
        h.write_u64(mean_uptime);
        h.write_u64(mean_downtime);
        p_supply_prev.canon_hash(h);
    }
}

impl CanonHash for Placement {
    fn canon_hash(&self, h: &mut CanonHasher) {
        match *self {
            Placement::RoundRobin => h.write_u64(0),
            Placement::Random => h.write_u64(1),
            Placement::Clustered { cells } => {
                h.write_u64(2);
                h.write_u64(cells as u64);
            }
        }
    }
}

impl CanonHash for DeliveryMode {
    fn canon_hash(&self, h: &mut CanonHasher) {
        // Both modes are proven byte-identical by the delivery_equivalence
        // suites, but they are hashed apart anyway: the CI soundness gate
        // re-runs the experiment pipeline per mode and `cmp`s the outputs —
        // a shared fingerprint would let the second run replay the first
        // run's cache records and prove nothing.
        h.write_u64(match self {
            DeliveryMode::Batched => 0,
            DeliveryMode::Unbatched => 1,
        });
    }
}

impl CanonHash for NetworkConfig {
    fn canon_hash(&self, h: &mut CanonHasher) {
        // Destructured so adding a config field without extending the
        // fingerprint is a compile error (a silently un-hashed field would
        // make the cache return results for the wrong configuration).
        let NetworkConfig {
            num_mss,
            num_mh,
            cost,
            energy,
            latency,
            search,
            mobility,
            disconnect,
            fault,
            placement,
            delivery,
            supply_prev_on_join,
            seed,
        } = self;
        h.write_u64(*num_mss as u64);
        h.write_u64(*num_mh as u64);
        cost.canon_hash(h);
        energy.canon_hash(h);
        latency.canon_hash(h);
        search.canon_hash(h);
        mobility.canon_hash(h);
        disconnect.canon_hash(h);
        fault.canon_hash(h);
        placement.canon_hash(h);
        delivery.canon_hash(h);
        supply_prev_on_join.canon_hash(h);
        h.write_u64(*seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: &impl CanonHash) -> Fingerprint {
        Fingerprint::of(v)
    }

    #[test]
    fn identical_configs_agree() {
        let a = NetworkConfig::new(8, 32).with_seed(9);
        let b = NetworkConfig::new(8, 32).with_seed(9);
        assert_eq!(fp(&a), fp(&b));
    }

    #[test]
    fn every_config_knob_changes_the_fingerprint() {
        let base = NetworkConfig::new(8, 32).with_seed(9);
        let variants = vec![
            NetworkConfig::new(9, 32).with_seed(9),
            NetworkConfig::new(8, 33).with_seed(9),
            base.clone().with_seed(10),
            base.clone().with_cost(CostModel::new(1, 10, 6)),
            base.clone().with_search(SearchPolicy::Flood),
            base.clone().with_search(SearchPolicy::HomeAgent),
            base.clone().with_mobility(MobilityConfig::moving(100)),
            base.clone().with_mobility(
                MobilityConfig::moving(100).with_pattern(MovePattern::RandomWaypoint { leg: 4 }),
            ),
            base.clone().with_mobility(
                MobilityConfig::moving(100).with_pattern(MovePattern::GaussMarkov { memory: 0.8 }),
            ),
            base.clone()
                .with_mobility(MobilityConfig::moving(100).with_pattern(
                    MovePattern::GroupPlatoon {
                        groups: 4,
                        p_follow: 0.9,
                    },
                )),
            base.clone()
                .with_fault(crate::fault::FaultConfig::none().with_event(
                    50,
                    crate::fault::FaultKind::MssCrash {
                        mss: 0,
                        down_for: 10,
                    },
                )),
            base.clone()
                .with_fault(crate::fault::FaultConfig::none().with_event(
                    50,
                    crate::fault::FaultKind::Partition {
                        cut: 4,
                        heal_after: 10,
                    },
                )),
            base.clone().with_fault(
                crate::fault::FaultConfig::none()
                    .with_event(50, crate::fault::FaultKind::HandoffStorm { count: 8 }),
            ),
            base.clone().with_disconnect(DisconnectConfig {
                enabled: true,
                ..DisconnectConfig::default()
            }),
            base.clone()
                .with_placement(Placement::Clustered { cells: 2 }),
            base.clone().with_placement(Placement::Random),
            base.clone().with_latency(LatencyConfig {
                fixed: LatencyModel::Exp { mean: 5 },
                ..LatencyConfig::default()
            }),
            base.clone().with_delivery(match base.delivery {
                DeliveryMode::Batched => DeliveryMode::Unbatched,
                DeliveryMode::Unbatched => DeliveryMode::Batched,
            }),
        ];
        let mut seen = vec![fp(&base)];
        for v in &variants {
            let f = fp(v);
            assert!(!seen.contains(&f), "collision for {v:?}");
            seen.push(f);
        }
    }

    #[test]
    fn labels_and_params_separate_runs() {
        let cfg = NetworkConfig::new(4, 8);
        let a = fp(&("l1", cfg.clone(), 1u64));
        let b = fp(&("l2", cfg.clone(), 1u64));
        let c = fp(&("l1", cfg, 2u64));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prefix_freedom_of_variable_width_data() {
        // ("ab", "c") must not collide with ("a", "bc").
        let a = fp(&("ab", "c"));
        let b = fp(&("a", "bc"));
        assert_ne!(a, b);
        // Vec length prefixes: [1, 2] + [] vs [1] + [2].
        let c = fp(&(vec![1u64, 2], Vec::<u64>::new()));
        let d = fp(&(vec![1u64], vec![2u64]));
        assert_ne!(c, d);
    }

    #[test]
    fn hex_round_trip() {
        let f = fp(&NetworkConfig::new(3, 5));
        assert_eq!(Fingerprint::from_hex(&f.to_hex()), Some(f));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&"A".repeat(32)), None); // upper-case rejected
    }

    #[test]
    fn option_none_differs_from_some_zero() {
        assert_ne!(fp(&Option::<u64>::None), fp(&Some(0u64)));
    }
}
