//! Experiment E10: the proxy framework's mobility price (Section 5).

use crate::table::{f2, Table};
use mobidist_net::ledger::CostLedger;
use mobidist_net::prelude::*;
use mobidist_proxy::prelude::*;

/// **E10** — fixed proxies vs local proxies as the move rate grows:
/// location-update traffic vs handoff traffic, plus end-to-end service.
pub fn e10_proxy(quick: bool) -> Table {
    let m = 8;
    let n = if quick { 6 } else { 12 };
    let mut t = Table::new(
        format!("E10 — proxy policies vs move rate (M = {m}, N = {n} clients)"),
        &[
            "mean dwell",
            "policy",
            "moves",
            "loc updates",
            "handoffs",
            "stale outputs",
            "served",
            "cost/interaction",
        ],
    );
    let dwells: &[u64] = if quick {
        &[2_000, 300]
    } else {
        &[4_000, 1_000, 400, 150]
    };
    for &dwell in dwells {
        for policy in [
            ProxyPolicy::Fixed,
            ProxyPolicy::LocalMss,
            ProxyPolicy::Adaptive { radius: 2 },
        ] {
            let cfg = NetworkConfig::new(m, n)
                .with_seed(70)
                .with_mobility(MobilityConfig::moving(dwell));
            let wl = ProxyWorkload {
                inputs_per_client: if quick { 3 } else { 6 },
                mean_interval: 400,
            };
            let horizon: u64 = if quick { 200_000 } else { 500_000 };
            // Discriminant + radius pin the policy in the fingerprint.
            let (policy_tag, radius): (u64, u64) = match policy {
                ProxyPolicy::Fixed => (0, 0),
                ProxyPolicy::LocalMss => (1, 0),
                ProxyPolicy::Adaptive { radius } => (2, radius as u64),
            };
            // Cache the ledger plus the report counters the table reads.
            let (ledger, (loc_updates, handoffs, stale, served, inputs)) = crate::cache::cached(
                "e10_proxy",
                &cfg,
                &(
                    policy_tag,
                    radius,
                    wl.inputs_per_client,
                    wl.mean_interval,
                    horizon,
                ),
                |out: &(CostLedger, (u64, u64, u64, u64, u64))| &out.0,
                || {
                    let clients: Vec<MhId> = (0..n as u32).map(MhId).collect();
                    let mut sim = Simulation::new(
                        cfg.clone(),
                        ProxyRuntime::new(CentralCounter::new(), clients, policy, wl),
                    );
                    sim.run_until(SimTime::from_ticks(horizon));
                    let r = sim.protocol().report();
                    (
                        sim.ledger().clone(),
                        (
                            r.loc_updates,
                            r.handoffs,
                            r.stale_outputs,
                            r.outputs_delivered,
                            r.inputs_sent,
                        ),
                    )
                },
            );
            let cost = ledger.total_cost() as f64 / served.max(1) as f64;
            t.push(vec![
                dwell.to_string(),
                format!("{policy:?}"),
                ledger.moves.to_string(),
                loc_updates.to_string(),
                handoffs.to_string(),
                stale.to_string(),
                format!("{}/{}", served, inputs),
                f2(cost),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_policies_pay_different_currencies() {
        let t = e10_proxy(true);
        for row in &t.rows {
            let updates: u64 = row[3].parse().unwrap();
            let handoffs: u64 = row[4].parse().unwrap();
            match row[1].as_str() {
                // Fixed pays updates only; LocalMss handoffs only; the
                // adaptive policy splits moves between the two currencies.
                "Fixed" => assert_eq!(handoffs, 0, "{row:?}"),
                "LocalMss" => assert_eq!(updates, 0, "{row:?}"),
                _ => assert!(updates + handoffs > 0, "{row:?}"),
            }
        }
        // Faster movement ⇒ more updates for Fixed (rows come in threes).
        let slow: u64 = t.rows[0][3].parse().unwrap();
        let fast: u64 = t.rows[3][3].parse().unwrap();
        assert!(fast > slow, "{fast} vs {slow}");
        // The adaptive policy migrates strictly less often than LocalMss.
        let local_h: u64 = t.rows[4][4].parse().unwrap();
        let adaptive_h: u64 = t.rows[5][4].parse().unwrap();
        assert!(adaptive_h < local_h, "{adaptive_h} vs {local_h}");
    }
}
