//! Larger-population runs: the paper's regime is `N ≫ M` — many mobile
//! hosts, few support stations. These tests exercise that regime and pin
//! down the scaling behaviour the redesigns were built for.

use mobidist::prelude::*;

#[test]
fn l2_serves_two_hundred_mobile_hosts() {
    // N = 200 ≫ M = 8, everyone requests once, with mobility.
    let (m, n) = (8, 200);
    let cfg = NetworkConfig::new(m, n)
        .with_seed(1)
        .with_mobility(MobilityConfig::moving(2_000));
    let wl = WorkloadConfig::all_mhs(n, 1).with_think(2_000).with_hold(3);
    let mut sim = Simulation::new(cfg, MutexHarness::new(L2::new(m), wl));
    sim.run_until(SimTime::from_ticks(100_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.order_violations, 0);
    assert_eq!(r.completed, 200, "{r:?}");
    // Wireless load stays at exactly 3 messages per execution even at this
    // scale — the redesign's defining property.
    assert_eq!(sim.ledger().wireless_msgs, 3 * 200);
}

#[test]
fn r2_counter_serves_a_crowd_fairly() {
    let (m, n) = (6, 120);
    let cfg = NetworkConfig::new(m, n).with_seed(2);
    let wl = WorkloadConfig::all_mhs(n, 1).with_think(100).with_hold(2);
    let mut sim = Simulation::new(cfg, MutexHarness::new(R2::new(m, RingGuard::Counter), wl));
    sim.run_until(SimTime::from_ticks(1_500_000));
    let r = sim.protocol().report();
    assert_eq!(r.safety_violations, 0);
    assert_eq!(r.completed, 120, "{r:?}");
    assert_eq!(sim.protocol().algorithm().max_services_per_traversal(), 1);
}

#[test]
fn l1_at_scale_shows_its_quadratic_message_bill() {
    // Even a modest N makes the baseline's cost explode: N executions each
    // cost 3(N−1) MH→MH messages ⇒ ~3N² messages total.
    let (m, n) = (4, 60);
    let cfg = NetworkConfig::new(m, n).with_seed(3);
    let wl = WorkloadConfig::all_mhs(n, 1).with_think(3_000).with_hold(2);
    let algo = L1::new(wl.requesters.clone());
    let mut sim = Simulation::new(cfg, MutexHarness::new(algo, wl));
    sim.run_until(SimTime::from_ticks(100_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.completed, 60, "{r:?}");
    let expected_msgs = 3 * (n as u64 - 1) * n as u64; // 10 620
    assert_eq!(sim.ledger().wireless_msgs, 2 * expected_msgs);
    assert_eq!(
        sim.ledger().searches,
        expected_msgs,
        "every single message needed a search"
    );
}

#[test]
fn location_view_scales_with_cells_not_members() {
    // 60 members packed into 4 of 20 cells: the static fan-out per message
    // must track |LV| = 4, not |G| = 60.
    let (m, g) = (20, 60);
    let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
    let cfg = NetworkConfig::new(m, g)
        .with_seed(4)
        .with_placement(Placement::Clustered { cells: 4 });
    let wl = GroupWorkload::new(members.clone(), 10, 50);
    let mut sim = Simulation::new(
        cfg,
        GroupHarness::new(LocationView::new(members, MssId(0)), wl),
    );
    sim.run_until(SimTime::from_ticks(1_000_000));
    let r = sim.protocol().report();
    assert_eq!(r.missed, 0);
    // 10 messages × (|LV|−1) = 30 fixed messages; nothing proportional to |G|.
    assert_eq!(sim.ledger().fixed_msgs, 10 * 3);
    // Wireless: 1 uplink + 59 downlinks per message.
    assert_eq!(sim.ledger().wireless_msgs, 10 * 60);
}

#[test]
fn exactly_once_handles_a_large_roaming_group() {
    let (m, g) = (10, 80);
    let members: Vec<MhId> = (0..g as u32).map(MhId).collect();
    let cfg = NetworkConfig::new(m, g)
        .with_seed(5)
        .with_mobility(MobilityConfig::moving(500));
    let wl = GroupWorkload::new(members.clone(), 15, 100);
    let mut sim = Simulation::new(
        cfg,
        GroupHarness::new(ExactlyOnce::new(members, MssId(0)), wl),
    );
    sim.run_until(SimTime::from_ticks(200_000));
    let r = sim.protocol().report();
    assert_eq!(r.sent, 15);
    assert_eq!(r.missed, 0, "{r:?}");
    assert_eq!(r.duplicates, 0, "{r:?}");
}
