//! Closed-form costs of the mutual-exclusion algorithms (Section 3).

use crate::Params;

/// **L1** total cost of one execution with `n` mobile participants:
/// `3(N−1)(2·C_wireless + C_search)` — request, reply and release each
/// travel MH→MH to every other participant.
///
/// # Examples
///
/// ```
/// use mobidist_cost::{l1_execution_cost, Params};
/// let p = Params::default();
/// assert_eq!(l1_execution_cost(10, p), 3 * 9 * (2 * 10 + 5));
/// ```
pub fn l1_execution_cost(n: u64, p: Params) -> u64 {
    3 * n.saturating_sub(1) * p.mh_to_mh()
}

/// **L1** total wireless operations (≈ energy) per execution: `6(N−1)` —
/// each of the `3(N−1)` messages is transmitted by one MH and received by
/// another.
pub fn l1_energy_total(n: u64) -> u64 {
    6 * n.saturating_sub(1)
}

/// **L1** wireless operations at the initiator per execution: `3(N−1)` —
/// it transmits `N−1` requests and `N−1` releases and receives `N−1`
/// replies.
pub fn l1_energy_initiator(n: u64) -> u64 {
    3 * n.saturating_sub(1)
}

/// **L2** total cost of one execution with `m` MSSs:
/// `3·C_wireless + C_fixed + C_search + 3(M−1)·C_fixed` — init uplink,
/// searched grant, release (uplink + possible relay), and the Lamport
/// request/reply/release round among the MSSs.
///
/// # Examples
///
/// ```
/// use mobidist_cost::{l2_execution_cost, Params};
/// let p = Params::default();
/// assert_eq!(l2_execution_cost(8, p), 3 * 10 + 1 + 5 + 3 * 7 * 1);
/// ```
pub fn l2_execution_cost(m: u64, p: Params) -> u64 {
    3 * p.c_wireless + p.c_fixed + p.c_search + 3 * m.saturating_sub(1) * p.c_fixed
}

/// **L2** wireless messages touching the MH per execution: exactly 3
/// (init, grant-request, release-resource) — constant, the heart of the
/// paper's energy argument.
pub fn l2_wireless_msgs() -> u64 {
    3
}

/// **L2C** total cost of one combined batch of `k` operations at an
/// `m`-MSS combiner: `K·C_wireless + C_wireless + 3(M−1)·C_fixed` — one
/// init uplink per member, one result broadcast for the whole cell, and a
/// single Lamport request/reply/release exchange amortized over the batch.
/// (Members that move away before delivery add `C_search` each; the steady
/// state has none.)
///
/// # Examples
///
/// ```
/// use mobidist_cost::{l2c_batch_cost, Params};
/// let p = Params::default();
/// assert_eq!(l2c_batch_cost(4, 8, p), 4 * 10 + 10 + 3 * 7 * 1);
/// ```
pub fn l2c_batch_cost(k: u64, m: u64, p: Params) -> u64 {
    k * p.c_wireless + p.c_wireless + 3 * m.saturating_sub(1) * p.c_fixed
}

/// **L2C** wireless messages per execution at batch size `k`:
/// `(K + 1)/K` — each member transmits one init and the single result
/// broadcast is shared. Approaches 1 as contention (and therefore batch
/// size) grows; compare [`l2_wireless_msgs`]'s constant 3.
///
/// # Examples
///
/// ```
/// use mobidist_cost::l2c_wireless_per_entry;
/// assert_eq!(l2c_wireless_per_entry(1), 2.0);
/// assert!(l2c_wireless_per_entry(10) < 1.2);
/// ```
pub fn l2c_wireless_per_entry(k: u64) -> f64 {
    (k as f64 + 1.0) / k.max(1) as f64
}

/// **R1** cost of one full token traversal of a ring of `n` MHs:
/// `N(2·C_wireless + C_search)` — independent of how many requests were
/// served.
///
/// # Examples
///
/// ```
/// use mobidist_cost::{r1_traversal_cost, Params};
/// assert_eq!(r1_traversal_cost(8, Params::default()), 8 * 25);
/// ```
pub fn r1_traversal_cost(n: u64, p: Params) -> u64 {
    n * p.mh_to_mh()
}

/// **R1** wireless operations per traversal: `2N` — every MH receives and
/// re-transmits the token, wanted or not.
pub fn r1_energy_per_traversal(n: u64) -> u64 {
    2 * n
}

/// **R2/R2′** cost of serving `k` requests in one traversal of a ring of
/// `m` MSSs: `K(3·C_wireless + C_fixed + C_search) + M·C_fixed`.
///
/// # Examples
///
/// ```
/// use mobidist_cost::{r2_cost, Params};
/// let p = Params::default();
/// assert_eq!(r2_cost(3, 4, p), 3 * (30 + 1 + 5) + 4);
/// ```
pub fn r2_cost(k: u64, m: u64, p: Params) -> u64 {
    k * (3 * p.c_wireless + p.c_fixed + p.c_search) + m * p.c_fixed
}

/// **R2** upper bound on requests served in one traversal: `N·M` (an MH can
/// move ahead of the token and be served again at each MSS). For **R2′**
/// the bound is `N`.
pub fn r2_max_requests_per_traversal(n: u64, m: u64, fair: bool) -> u64 {
    if fair {
        n
    } else {
        n * m
    }
}

/// **R2** wireless operations per served request at the requesting MH: 3
/// (transmit the request, receive the token, return it).
pub fn r2_wireless_ops_per_request() -> u64 {
    3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::default()
    }

    #[test]
    fn l1_grows_linearly() {
        assert_eq!(l1_execution_cost(2, p()), 3 * 25);
        assert_eq!(
            l1_execution_cost(20, p()) - l1_execution_cost(19, p()),
            3 * 25
        );
        assert_eq!(l1_execution_cost(1, p()), 0, "a lone participant is free");
    }

    #[test]
    fn l2_is_constant_in_n_by_construction() {
        // No n parameter exists — the type signature is the proof; check m
        // scaling instead.
        assert_eq!(
            l2_execution_cost(9, p()) - l2_execution_cost(8, p()),
            3 * p().c_fixed
        );
    }

    #[test]
    fn l2_beats_l1_for_all_realistic_sizes() {
        // With N ≈ M (the paper's most conservative comparison) L2 already
        // wins; with N ≫ M it wins by a factor.
        for m in 2..64u64 {
            let n = m;
            assert!(
                l2_execution_cost(m, p()) < l1_execution_cost(n, p()),
                "m={m}"
            );
        }
        let factor = l1_execution_cost(100, p()) as f64 / l2_execution_cost(10, p()) as f64;
        assert!(factor > 50.0, "factor = {factor}");
    }

    #[test]
    fn l2c_amortizes_the_lamport_exchange() {
        let m = 8u64;
        // A singleton batch is already cheaper than an L2 execution (no
        // searched grant, no release uplink).
        assert!(l2c_batch_cost(1, m, p()) < l2_execution_cost(m, p()));
        // Per-entry cost strictly decreases with batch size.
        let per = |k: u64| l2c_batch_cost(k, m, p()) as f64 / k as f64;
        assert!(per(2) < per(1));
        assert!(per(16) < per(2));
        // In the limit only the per-member uplink remains.
        assert!(per(10_000) < p().c_wireless as f64 + 0.1);
    }

    #[test]
    fn l2c_wireless_per_entry_approaches_one() {
        assert_eq!(l2c_wireless_per_entry(1), 2.0);
        assert_eq!(l2c_wireless_per_entry(3), 4.0 / 3.0);
        assert!(l2c_wireless_per_entry(100) < 1.02);
        assert!(l2c_wireless_per_entry(100) > 1.0);
        // k = 0 is degenerate but must not divide by zero.
        assert_eq!(l2c_wireless_per_entry(0), 1.0);
    }

    #[test]
    fn r1_cost_is_independent_of_k_r2_is_proportional() {
        let t = r1_traversal_cost(16, p());
        assert_eq!(t, 16 * 25);
        assert!(r2_cost(0, 8, p()) < t, "an idle R2 traversal is cheap");
        let per_request = r2_cost(5, 8, p()) - r2_cost(4, 8, p());
        assert_eq!(per_request, 3 * 10 + 1 + 5);
    }

    #[test]
    fn r2_crossover_against_r1() {
        // R2 costs more than an R1 traversal only once K is large.
        let m = 8u64;
        let n = 32u64;
        let t1 = r1_traversal_cost(n, p());
        let mut k = 0;
        while r2_cost(k, m, p()) <= t1 {
            k += 1;
        }
        // The paper's point: for realistic K (≤ N), R2 stays at or below the
        // cost R1 pays unconditionally.
        assert!(k > 20, "crossover K = {k}");
    }

    #[test]
    fn fairness_bounds() {
        assert_eq!(r2_max_requests_per_traversal(10, 4, false), 40);
        assert_eq!(r2_max_requests_per_traversal(10, 4, true), 10);
    }

    #[test]
    fn energy_formulas() {
        assert_eq!(l1_energy_total(10), 54);
        assert_eq!(l1_energy_initiator(10), 27);
        assert_eq!(r1_energy_per_traversal(10), 20);
        assert_eq!(l2_wireless_msgs(), 3);
        assert_eq!(r2_wireless_ops_per_request(), 3);
    }
}
