//! Deterministic fault injection.
//!
//! The paper's system model assumes MSSs and the wired network are reliable;
//! real deployments are not, and MSS-structured algorithms are only worth
//! their handoff complexity if they degrade gracefully when the fixed tier
//! misbehaves. [`FaultConfig`] schedules *seeded, reproducible* adversities
//! against a run — the schedule is part of the canonical run descriptor
//! (canon-hashed into the fingerprint), so faulted runs cache and replay
//! bit-identically like any other.
//!
//! # Fault model (summary — SCENARIOS.md is the full reference)
//!
//! * **MSS crash** ([`FaultKind::MssCrash`]) is *fail-stop with stable
//!   state*: a crashed MSS stops sending and receiving on both planes, its
//!   local MHs evacuate to other cells through the ordinary leave/join
//!   choreography, and on recovery the MSS resumes with its protocol state
//!   intact (the paper's MSSs have stable storage). Wired messages addressed
//!   to a down MSS are *deferred*, not lost — the wired plane stays reliable
//!   FIFO.
//! * **Partition** ([`FaultKind::Partition`]) splits the wired plane into
//!   two halves (cells `< cut` vs `≥ cut`); cross-half wired messages are
//!   buffered and delivered in order when the partition heals. Wireless
//!   traffic and searches are unaffected (the search service is modelled as
//!   an out-of-band location infrastructure).
//! * **Handoff storm** ([`FaultKind::HandoffStorm`]) forces the first
//!   `count` connected MHs to leave their cells simultaneously — the mass
//!   re-registration burst a stadium or a train produces.
//!
//! Faults fire at their scheduled tick via ordinary kernel events and
//! consume **no extra rng draws at schedule time**, so a config with
//! `FaultConfig::default()` (no events) is bit-identical to one built
//! before the fault plane existed.

use crate::fingerprint::{CanonHash, CanonHasher};

/// One scheduled adversity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulation tick at which the fault fires.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// The kinds of adversity the kernel can inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop crash of one MSS, recovering with state intact after
    /// `down_for` ticks. While down, the MSS neither sends nor receives on
    /// either plane; wired messages to it are deferred until recovery, its
    /// resident MHs evacuate to other cells, and joins are redirected to
    /// the next live cell.
    MssCrash {
        /// The station that crashes (cell index, `0..M`).
        mss: u32,
        /// Down-time in ticks before recovery (minimum 1 enforced by the
        /// kernel).
        down_for: u64,
    },
    /// Wired-plane partition separating cells `0..cut` from cells
    /// `cut..M`, healing after `heal_after` ticks. Cross-half wired
    /// messages buffer in FIFO order and flush at heal time; wireless and
    /// search traffic are unaffected.
    Partition {
        /// Cut point: cells with index `< cut` form one half (clamped to
        /// `1..M` by the kernel so both halves are non-empty).
        cut: u32,
        /// Partition duration in ticks before healing (minimum 1).
        heal_after: u64,
    },
    /// Mass handoff storm: the first `count` connected MHs (in id order)
    /// all leave their cells at the fault tick, destinations drawn from
    /// the run's [`MovePattern`](crate::mobility::MovePattern) as usual.
    HandoffStorm {
        /// Number of hosts forced to move (clamped to the connected
        /// population).
        count: u32,
    },
}

/// A deterministic schedule of adversities, part of
/// [`NetworkConfig`](crate::config::NetworkConfig).
///
/// The default schedule is empty — a fault-free run. Events may share a
/// tick; they fire in schedule order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// The scheduled events, fired in `(at, schedule index)` order.
    pub events: Vec<FaultEvent>,
}

impl FaultConfig {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Appends an event, builder-style.
    pub fn with_event(mut self, at: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl CanonHash for FaultKind {
    fn canon_hash(&self, h: &mut CanonHasher) {
        match *self {
            FaultKind::MssCrash { mss, down_for } => {
                h.write_u64(0);
                h.write_u64(mss as u64);
                h.write_u64(down_for);
            }
            FaultKind::Partition { cut, heal_after } => {
                h.write_u64(1);
                h.write_u64(cut as u64);
                h.write_u64(heal_after);
            }
            FaultKind::HandoffStorm { count } => {
                h.write_u64(2);
                h.write_u64(count as u64);
            }
        }
    }
}

impl CanonHash for FaultEvent {
    fn canon_hash(&self, h: &mut CanonHasher) {
        h.write_u64(self.at);
        self.kind.canon_hash(h);
    }
}

impl CanonHash for FaultConfig {
    fn canon_hash(&self, h: &mut CanonHasher) {
        self.events.canon_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;

    #[test]
    fn default_is_empty() {
        assert!(FaultConfig::default().is_empty());
        assert!(FaultConfig::none().is_empty());
    }

    #[test]
    fn builder_appends_in_order() {
        let f = FaultConfig::none()
            .with_event(
                10,
                FaultKind::MssCrash {
                    mss: 1,
                    down_for: 5,
                },
            )
            .with_event(20, FaultKind::HandoffStorm { count: 3 });
        assert_eq!(f.events.len(), 2);
        assert_eq!(f.events[0].at, 10);
        assert_eq!(f.events[1].at, 20);
    }

    #[test]
    fn canon_hash_separates_schedules() {
        let empty = Fingerprint::of(&FaultConfig::none());
        let crash = Fingerprint::of(&FaultConfig::none().with_event(
            10,
            FaultKind::MssCrash {
                mss: 1,
                down_for: 5,
            },
        ));
        let crash_later = Fingerprint::of(&FaultConfig::none().with_event(
            11,
            FaultKind::MssCrash {
                mss: 1,
                down_for: 5,
            },
        ));
        let part = Fingerprint::of(&FaultConfig::none().with_event(
            10,
            FaultKind::Partition {
                cut: 1,
                heal_after: 5,
            },
        ));
        let storm = Fingerprint::of(
            &FaultConfig::none().with_event(10, FaultKind::HandoffStorm { count: 1 }),
        );
        let all = [empty, crash, crash_later, part, storm];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
