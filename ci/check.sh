#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests.
#
# Run from the repository root:
#   ./ci/check.sh            # full gate
#   ./ci/check.sh --fast     # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> doc-consistency gate"
# Every experiment the bench crate defines must be documented: a row in
# README.md's experiment table and a section in EXPERIMENTS.md. Ids are
# recovered from the `fn eN_*` entry points in crates/bench/src/exp_*.rs
# (plus e0, whose entry point is exp_model::run).
exp_ids="e0 $(grep -rho 'fn e[0-9]\+_' crates/bench/src/exp_*.rs | grep -o '[0-9]\+' | sort -un | sed 's/^/e/')"
for id in $exp_ids; do
  grep -q "| \`$id\` |" README.md || {
    echo "doc gate: $id has no row in README.md's experiment table" >&2; exit 1; }
  grep -qi "^## $id\b" EXPERIMENTS.md || {
    echo "doc gate: $id has no section in EXPERIMENTS.md" >&2; exit 1; }
done
# Every TraceEvent wire name must be documented in OBSERVABILITY.md's
# schema reference. Names are recovered from TraceEvent::name()'s arms.
ev_names=$(sed -n '/pub fn name/,/^    }/p' crates/net/src/obs.rs | grep -o '=> "[a-z_0-9]*"' | grep -o '"[a-z_0-9]*"' | tr -d '"')
[[ -n "$ev_names" ]] || { echo "doc gate: failed to extract TraceEvent names" >&2; exit 1; }
for ev in $ev_names; do
  grep -q "\`$ev\`" OBSERVABILITY.md || {
    echo "doc gate: TraceEvent \"$ev\" is not documented in OBSERVABILITY.md" >&2; exit 1; }
done
# Every mobility pattern and fault kind must be documented in SCENARIOS.md.
for variant in $(grep -o 'MovePattern::[A-Za-z]*' crates/net/src/mobility.rs | sort -u | cut -d: -f3) \
               $(grep -o 'FaultKind::[A-Za-z]*' crates/net/src/fault.rs | sort -u | cut -d: -f3); do
  grep -q "$variant" SCENARIOS.md || {
    echo "doc gate: $variant is not documented in SCENARIOS.md" >&2; exit 1; }
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --workspace --release
fi

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test"
cargo test --workspace -q

if [[ $fast -eq 0 ]]; then
  # Scheduler-equivalence and determinism gates in release mode: the timing
  # wheel must replay the reference heap's order, and sweeps must render
  # byte-identical tables at any worker count — with optimizations on, since
  # that's how experiment tables are produced.
  echo "==> release determinism gates"
  cargo test --release -q -p mobidist-net --test wheel_equivalence
  cargo test --release -q -p mobidist-bench --test determinism
  cargo test --release -q -p mobidist-bench --test sim_reuse
  cargo test --release -q -p mobidist-bench --test trace_check
  cargo test --release -q -p mobidist-bench --test cache_check

  # Cache-soundness gate: run the cacheable sweep set (e0..e11, e13, e14) twice
  # against one cache directory. The second pass must replay from disk —
  # byte-identical tables, a nonzero hit count, and at least a 5x
  # wall-time win. E12 is excluded on purpose: it bypasses the run cache
  # by design (see exp_scale), so it would recompute in both passes and
  # dilute the timing check; the shard gate below covers it instead.
  echo "==> run-cache soundness gate"
  cargo build --release --bin experiments
  cached_exps="e0 e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e13 e14"
  cachedir="$(mktemp -d)"
  trap 'rm -rf "$cachedir"' EXIT
  t0=$(date +%s%N)
  ./target/release/experiments $cached_exps --cache "$cachedir/store" \
    > "$cachedir/cold.txt" 2> "$cachedir/cold.err"
  t1=$(date +%s%N)
  ./target/release/experiments $cached_exps --cache "$cachedir/store" \
    > "$cachedir/warm.txt" 2> "$cachedir/warm.err"
  t2=$(date +%s%N)
  cmp "$cachedir/cold.txt" "$cachedir/warm.txt" || {
    echo "cache gate: warm tables differ from cold tables" >&2; exit 1; }
  grep -q 'hits=0 ' "$cachedir/cold.err" || {
    echo "cache gate: cold pass unexpectedly hit the cache" >&2
    cat "$cachedir/cold.err" >&2; exit 1; }
  grep -q 'cache: hits=' "$cachedir/warm.err" && \
    ! grep -q 'hits=0 ' "$cachedir/warm.err" || {
    echo "cache gate: warm pass reported zero cache hits" >&2
    cat "$cachedir/warm.err" >&2; exit 1; }
  cold_ms=$(( (t1 - t0) / 1000000 ))
  warm_ms=$(( (t2 - t1) / 1000000 ))
  echo "    cold ${cold_ms} ms, warm ${warm_ms} ms"
  if (( warm_ms * 5 > cold_ms )); then
    echo "cache gate: warm pass (${warm_ms} ms) not 5x faster than cold (${cold_ms} ms)" >&2
    exit 1
  fi

  # Shard-soundness gate: the space-sharded kernel must produce
  # byte-identical results at every worker count. Three legs:
  #   1. E12's quick table, 1 shard vs 4 shards, cmp'd byte-for-byte
  #      (E12 bypasses the run cache, so both legs genuinely recompute);
  #   2. the release-mode equivalence suite (ledgers, digests, traces);
  #   3. the million-host smoke with its 8 GiB peak-RSS ceiling.
  echo "==> shard-soundness gate"
  ./target/release/experiments e12 --quick --shards 1 > "$cachedir/shard1.txt"
  ./target/release/experiments e12 --quick --shards 4 > "$cachedir/shard4.txt"
  cmp "$cachedir/shard1.txt" "$cachedir/shard4.txt" || {
    echo "shard gate: 4-shard table differs from the 1-shard run" >&2; exit 1; }
  # E14 runs on the classic kernel, so the shard knob must be inert for it
  # even with the fault plane and the mobility zoo in play (its runs are
  # cache-bypassing here: no --cache directory is passed).
  ./target/release/experiments e14 --quick --shards 1 > "$cachedir/e14shard1.txt"
  ./target/release/experiments e14 --quick --shards 4 > "$cachedir/e14shard4.txt"
  cmp "$cachedir/e14shard1.txt" "$cachedir/e14shard4.txt" || {
    echo "shard gate: E14 table changed under --shards 4" >&2; exit 1; }
  cargo test --release -q -p mobidist-net --test shard_equivalence
  cargo test --release -q -p mobidist-bench --test shard_equivalence
  cargo build --release --bin scalecheck
  ./target/release/scalecheck --shards 4

  # Delivery-soundness gate: the batched delivery engine must be invisible
  # in every output. Three legs:
  #   1. the quick experiment tables, batched (the default) vs
  #      MOBIDIST_DELIVERY=unbatched, cmp'd byte-for-byte — same seeds,
  #      same tables, only the callback grouping differs;
  #   2. the release-mode equivalence suites (tables, ledgers, digests,
  #      traces, every shard count) plus the counting-allocator suite that
  #      pins zero steady-state allocations per delivery;
  #   3. tracereport --check on a batched traced run, so the trace/ledger
  #      reconciliation identities hold with coalescing on.
  echo "==> delivery-soundness gate"
  delivery_exps="e1 e2 e12 e13"
  ./target/release/experiments $delivery_exps --quick > "$cachedir/del_batched.txt"
  MOBIDIST_DELIVERY=unbatched ./target/release/experiments $delivery_exps --quick \
    > "$cachedir/del_unbatched.txt"
  cmp "$cachedir/del_batched.txt" "$cachedir/del_unbatched.txt" || {
    echo "delivery gate: unbatched tables differ from batched tables" >&2; exit 1; }
  cargo test --release -q -p mobidist-bench --test delivery_equivalence
  cargo test --release -q -p mobidist-net --test delivery_alloc
  cargo build --release --bin tracereport
  ./target/release/experiments e2 e13 --quick --trace "$cachedir/del_trace.jsonl" \
    > /dev/null
  ./target/release/tracereport --check "$cachedir/del_trace.jsonl"

  # Throughput-sanity leg: on a multi-core machine the 8-shard quick E12
  # must not be slower than the 1-shard run by more than 2x — a sync layer
  # whose overhead swamps the parallelism would pass every bit-identity
  # leg above while silently defeating the point of sharding. A 1-CPU
  # runner time-slices the workers, so there the leg is skipped.
  cpus=$(nproc 2>/dev/null || echo 1)
  if (( cpus > 1 )); then
    echo "==> shard throughput-sanity gate"
    t0=$(date +%s%N)
    ./target/release/experiments e12 --quick --shards 1 > /dev/null
    t1=$(date +%s%N)
    ./target/release/experiments e12 --quick --shards 8 > /dev/null
    t2=$(date +%s%N)
    one_ms=$(( (t1 - t0) / 1000000 ))
    eight_ms=$(( (t2 - t1) / 1000000 ))
    echo "    1-shard ${one_ms} ms, 8-shard ${eight_ms} ms"
    if (( eight_ms > one_ms * 2 )); then
      echo "shard gate: 8-shard quick E12 (${eight_ms} ms) more than 2x slower than 1-shard (${one_ms} ms)" >&2
      exit 1
    fi
  else
    echo "==> shard throughput-sanity gate skipped: cpus == 1 (fan-out cannot beat a single CPU)"
  fi
fi

echo "==> OK"
