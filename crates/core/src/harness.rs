//! The shared workload driver and invariant harness.
//!
//! [`MutexHarness`] wraps any [`MutexAlgorithm`] in a closed-loop workload:
//! each participating MH thinks, requests the critical section, holds it,
//! releases, and repeats — with optional doze mode while idle. The harness
//! records every episode in a [`SafetyChecker`] and produces a
//! [`MutexReport`] for experiments.

use crate::algorithm::{AlgoCtx, Effect, HarnessTimer, MutexAlgorithm};
use crate::checker::SafetyChecker;
use mobidist_net::host::MhStatus;
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::obs::TraceEvent;
use mobidist_net::proto::{Ctx, Protocol, Src};
use mobidist_net::time::SimTime;
use std::collections::BTreeMap;

/// Closed-loop workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// The MHs that issue critical-section requests.
    pub requesters: Vec<MhId>,
    /// Requests each requester issues before stopping.
    pub requests_per_mh: usize,
    /// Mean think time between a release and the next request.
    pub mean_think: u64,
    /// Mean critical-section hold time.
    pub mean_hold: u64,
    /// Per-requester mean hold times for mixed-CS-length (fairness)
    /// workloads: requester `i` uses `hold_profile[i % len]`. Empty means
    /// every requester uses `mean_hold`.
    pub hold_profile: Vec<u64>,
    /// Whether idle MHs (and non-requesters) enter doze mode.
    pub doze_when_idle: bool,
}

impl mobidist_net::fingerprint::CanonHash for WorkloadConfig {
    fn canon_hash(&self, h: &mut mobidist_net::fingerprint::CanonHasher) {
        // Destructured so a new workload knob cannot silently escape the
        // run-cache fingerprint.
        let WorkloadConfig {
            requesters,
            requests_per_mh,
            mean_think,
            mean_hold,
            hold_profile,
            doze_when_idle,
        } = self;
        requesters.canon_hash(h);
        requests_per_mh.canon_hash(h);
        mean_think.canon_hash(h);
        mean_hold.canon_hash(h);
        hold_profile.canon_hash(h);
        doze_when_idle.canon_hash(h);
    }
}

impl WorkloadConfig {
    /// Every one of `n` MHs issues `requests_per_mh` requests.
    pub fn all_mhs(n: usize, requests_per_mh: usize) -> Self {
        WorkloadConfig {
            requesters: (0..n as u32).map(MhId).collect(),
            requests_per_mh,
            mean_think: 50,
            mean_hold: 10,
            hold_profile: Vec::new(),
            doze_when_idle: false,
        }
    }

    /// Only the given MHs request; the rest stay passive.
    pub fn only(requesters: Vec<MhId>, requests_per_mh: usize) -> Self {
        WorkloadConfig {
            requesters,
            requests_per_mh,
            mean_think: 50,
            mean_hold: 10,
            hold_profile: Vec::new(),
            doze_when_idle: false,
        }
    }

    /// Sets think time.
    pub fn with_think(mut self, mean_think: u64) -> Self {
        self.mean_think = mean_think;
        self
    }

    /// Sets hold time.
    pub fn with_hold(mut self, mean_hold: u64) -> Self {
        self.mean_hold = mean_hold;
        self
    }

    /// Sets a mixed-CS-length profile: requester `i` holds for a mean of
    /// `profile[i % profile.len()]` ticks (empty restores the uniform
    /// `mean_hold`).
    pub fn with_hold_profile(mut self, profile: Vec<u64>) -> Self {
        self.hold_profile = profile;
        self
    }

    /// Enables doze mode while idle.
    pub fn with_doze(mut self) -> Self {
        self.doze_when_idle = true;
        self
    }

    /// Mean hold time of requester index `i` under the profile.
    pub fn hold_mean_of(&self, i: usize) -> u64 {
        if self.hold_profile.is_empty() {
            self.mean_hold
        } else {
            self.hold_profile[i % self.hold_profile.len()]
        }
    }
}

/// Per-requester workload state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqState {
    /// Waiting for the think timer; `left` requests remain.
    Idle { left: usize },
    /// Request issued at `since`, awaiting grant; `left` counts this one.
    Waiting { since: SimTime, left: usize },
    /// Inside the critical section.
    InCs { left: usize },
    /// All requests done (or aborted out).
    Done,
}

/// Final liveness/throughput summary of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct MutexReport {
    /// Requests handed to the algorithm.
    pub issued: u64,
    /// Requests granted and released.
    pub completed: u64,
    /// Requests explicitly aborted by the algorithm.
    pub aborted: u64,
    /// Requests still outstanding when the run ended (stalls).
    pub outstanding: u64,
    /// Mutual-exclusion violations (must be 0).
    pub safety_violations: u64,
    /// Ordering-key violations (must be 0).
    pub order_violations: u64,
    /// Mean request→grant latency in ticks.
    pub mean_wait: f64,
    /// 95th-percentile request→grant latency in ticks.
    pub p95_wait: u64,
}

impl MutexReport {
    /// True when every issued request completed or aborted and no invariant
    /// broke.
    pub fn is_clean_and_live(&self) -> bool {
        self.safety_violations == 0 && self.order_violations == 0 && self.outstanding == 0
    }
}

/// Workload + invariant harness around a [`MutexAlgorithm`].
#[derive(Debug)]
pub struct MutexHarness<A: MutexAlgorithm> {
    algo: A,
    wl: WorkloadConfig,
    /// Per-MH mean hold overrides from the workload's `hold_profile`
    /// (empty for uniform workloads).
    hold_of: BTreeMap<MhId, u64>,
    states: BTreeMap<MhId, ReqState>,
    checker: SafetyChecker,
    effects: Vec<Effect>,
    issued: u64,
    completed: u64,
    aborted: u64,
}

impl<A: MutexAlgorithm> MutexHarness<A> {
    /// Wraps `algo` under the workload `wl`.
    pub fn new(algo: A, wl: WorkloadConfig) -> Self {
        let states = wl
            .requesters
            .iter()
            .map(|mh| {
                (
                    *mh,
                    if wl.requests_per_mh > 0 {
                        ReqState::Idle {
                            left: wl.requests_per_mh,
                        }
                    } else {
                        ReqState::Done
                    },
                )
            })
            .collect();
        let hold_of = if wl.hold_profile.is_empty() {
            BTreeMap::new()
        } else {
            wl.requesters
                .iter()
                .enumerate()
                .map(|(i, mh)| (*mh, wl.hold_mean_of(i)))
                .collect()
        };
        MutexHarness {
            algo,
            wl,
            hold_of,
            states,
            checker: SafetyChecker::new(),
            effects: Vec::new(),
            issued: 0,
            completed: 0,
            aborted: 0,
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Mutable access to the wrapped algorithm.
    pub fn algorithm_mut(&mut self) -> &mut A {
        &mut self.algo
    }

    /// The invariant checker.
    pub fn checker(&self) -> &SafetyChecker {
        &self.checker
    }

    /// Builds the final report.
    pub fn report(&self) -> MutexReport {
        let outstanding = self
            .states
            .values()
            .filter(|s| matches!(s, ReqState::Waiting { .. } | ReqState::InCs { .. }))
            .count() as u64;
        MutexReport {
            issued: self.issued,
            completed: self.completed,
            aborted: self.aborted,
            outstanding,
            safety_violations: self.checker.safety_violations(),
            order_violations: self.checker.order_violations(),
            mean_wait: self.checker.mean_wait(),
            p95_wait: self.checker.wait_percentile(0.95),
        }
    }

    fn schedule_think(ctx: &mut Ctx<'_, A::Msg, HarnessTimer<A::Timer>>, mean: u64, mh: MhId) {
        let d = ctx.rng().exp_delay(mean.max(1));
        ctx.set_timer(d, HarnessTimer::Think(mh));
    }

    fn apply_effects(&mut self, ctx: &mut Ctx<'_, A::Msg, HarnessTimer<A::Timer>>) {
        let effects = std::mem::take(&mut self.effects);
        for e in effects {
            match e {
                Effect::Granted { mh, key } => {
                    let Some(st) = self.states.get_mut(&mh) else {
                        continue;
                    };
                    let ReqState::Waiting { since, left } = *st else {
                        // Spurious or duplicate grant: flag as a safety
                        // problem by counting it as an unmatched entry.
                        self.checker.enter(mh, ctx.now(), ctx.now(), key);
                        self.checker.exit(mh, ctx.now());
                        continue;
                    };
                    *st = ReqState::InCs { left };
                    self.checker.enter(mh, since, ctx.now(), key);
                    ctx.emit(TraceEvent::CsEnter { mh });
                    let mean = self.hold_of.get(&mh).copied().unwrap_or(self.wl.mean_hold);
                    let d = ctx.rng().exp_delay(mean.max(1));
                    ctx.set_timer(d, HarnessTimer::Hold(mh));
                }
                Effect::Aborted { mh } => {
                    if let Some(st) = self.states.get_mut(&mh) {
                        if let ReqState::Waiting { left, .. } = *st {
                            self.aborted += 1;
                            let left = left.saturating_sub(1);
                            *st = if left == 0 {
                                ReqState::Done
                            } else {
                                ReqState::Idle { left }
                            };
                            if left > 0 {
                                Self::schedule_think(ctx, self.wl.mean_think, mh);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Runs an algorithm callback and applies resulting effects.
    fn with_algo(
        &mut self,
        ctx: &mut Ctx<'_, A::Msg, HarnessTimer<A::Timer>>,
        f: impl FnOnce(&mut A, &mut AlgoCtx<'_, '_, A::Msg, A::Timer>),
    ) {
        {
            let mut actx = AlgoCtx::new(ctx, &mut self.effects);
            f(&mut self.algo, &mut actx);
        }
        self.apply_effects(ctx);
    }
}

impl<A: MutexAlgorithm> Protocol for MutexHarness<A> {
    type Msg = A::Msg;
    type Timer = HarnessTimer<A::Timer>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>) {
        self.with_algo(ctx, |a, actx| a.on_start(actx));
        // Doze every passive MH from the outset; requesters doze between
        // episodes.
        if self.wl.doze_when_idle {
            let all: Vec<MhId> = ctx.mh_ids().collect();
            for mh in all {
                ctx.set_doze(mh, true);
            }
        }
        let mean = self.wl.mean_think;
        for mh in self.wl.requesters.clone() {
            if self.wl.requests_per_mh > 0 {
                Self::schedule_think(ctx, mean, mh);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, timer: Self::Timer) {
        match timer {
            HarnessTimer::Algo(t) => self.with_algo(ctx, |a, actx| a.on_timer(actx, t)),
            HarnessTimer::Think(mh) => {
                let Some(st) = self.states.get_mut(&mh) else {
                    return;
                };
                let ReqState::Idle { left } = *st else {
                    return;
                };
                if ctx.mh_status(mh) != MhStatus::Connected {
                    // Can't transmit a request right now; try again shortly.
                    Self::schedule_think(ctx, self.wl.mean_think, mh);
                    return;
                }
                *st = ReqState::Waiting {
                    since: ctx.now(),
                    left,
                };
                self.issued += 1;
                ctx.emit(TraceEvent::CsRequest { mh });
                if self.wl.doze_when_idle {
                    ctx.set_doze(mh, false);
                }
                self.with_algo(ctx, |a, actx| a.request(actx, mh));
            }
            HarnessTimer::Hold(mh) => {
                let Some(st) = self.states.get_mut(&mh) else {
                    return;
                };
                let ReqState::InCs { left } = *st else {
                    return;
                };
                self.checker.exit(mh, ctx.now());
                self.completed += 1;
                ctx.emit(TraceEvent::CsExit { mh });
                let left = left.saturating_sub(1);
                *st = if left == 0 {
                    ReqState::Done
                } else {
                    ReqState::Idle { left }
                };
                self.with_algo(ctx, |a, actx| a.release(actx, mh));
                if left > 0 {
                    Self::schedule_think(ctx, self.wl.mean_think, mh);
                } else if self.wl.doze_when_idle {
                    ctx.set_doze(mh, true);
                }
            }
        }
    }

    fn on_mss_msg(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MssId,
        src: Src,
        msg: Self::Msg,
    ) {
        self.with_algo(ctx, |a, actx| a.on_mss_msg(actx, at, src, msg));
    }

    fn on_mh_msg(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        at: MhId,
        src: Src,
        msg: Self::Msg,
    ) {
        self.with_algo(ctx, |a, actx| a.on_mh_msg(actx, at, src, msg));
    }

    fn on_mh_joined(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        self.with_algo(ctx, |a, actx| a.on_mh_joined(actx, mh, mss, prev));
    }

    fn on_mh_disconnected(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
    ) {
        self.with_algo(ctx, |a, actx| a.on_mh_disconnected(actx, mh, mss));
    }

    fn on_mh_reconnected(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        _prev: Option<MssId>,
    ) {
        self.with_algo(ctx, |a, actx| a.on_mh_reconnected(actx, mh, mss));
    }

    fn on_search_failed(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        origin: MssId,
        target: MhId,
        msg: Self::Msg,
    ) {
        self.with_algo(ctx, |a, actx| a.on_search_failed(actx, origin, target, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders() {
        let wl = WorkloadConfig::all_mhs(4, 2)
            .with_think(9)
            .with_hold(3)
            .with_doze();
        assert_eq!(wl.requesters.len(), 4);
        assert_eq!((wl.requests_per_mh, wl.mean_think, wl.mean_hold), (2, 9, 3));
        assert!(wl.doze_when_idle);
        let only = WorkloadConfig::only(vec![MhId(7)], 1);
        assert_eq!(only.requesters, vec![MhId(7)]);
    }

    #[test]
    fn report_cleanliness() {
        let clean = MutexReport {
            issued: 3,
            completed: 2,
            aborted: 1,
            outstanding: 0,
            safety_violations: 0,
            order_violations: 0,
            mean_wait: 1.0,
            p95_wait: 2,
        };
        assert!(clean.is_clean_and_live());
        let stalled = MutexReport {
            outstanding: 1,
            ..clean.clone()
        };
        assert!(!stalled.is_clean_and_live());
        let unsafe_run = MutexReport {
            safety_violations: 1,
            ..clean
        };
        assert!(!unsafe_run.is_clean_and_live());
    }
}
