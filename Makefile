# Convenience targets; see ci/check.sh for the full gate.

.PHONY: build test check bench perf quick tracecheck cachecheck scalecheck shardbench deliverybench

build:
	cargo build --workspace --release

test:
	cargo test --workspace -q

check:
	./ci/check.sh

# All experiment tables + micro-benchmarks.
bench:
	cargo bench --workspace

# Kernel wall-time/events-per-second report -> BENCH_kernel.json.
perf:
	cargo run --release --bin perfreport

# Re-time only the sharded legs (E12 scale curve + shard throughput
# matrix) and splice them into the existing BENCH_kernel.json, leaving
# the other sections' numbers untouched.
shardbench:
	cargo run --release --bin perfreport -- --shard-only

# Re-time only the delivery comparison (kernel rows batched vs unbatched)
# and splice it into the existing BENCH_kernel.json.
deliverybench:
	cargo run --release --bin perfreport -- --delivery-only

# Fast small-scale experiment tables.
quick:
	cargo run --release --bin experiments -- all --quick

# Capture quick E2 + E12 + E13 + E14 traces, validate the schema, and diff
# the trace-derived message counts against the cost ledger — including the
# combining identity on E13's L2C cells and the sharded-kernel sync/recv
# identities on E12's part files (see OBSERVABILITY.md).
tracecheck:
	cargo build --release --bin experiments --bin tracereport
	./target/release/experiments e2 e12 e13 e14 --quick --trace target/tracecheck.jsonl > /dev/null
	./target/release/tracereport --check target/tracecheck.jsonl

# Run the full sweep set twice against one cache directory and diff the
# tables byte-for-byte: the warm pass must replay from the run cache
# (see DESIGN.md). The CI gate in ci/check.sh also enforces the speedup.
cachecheck:
	cargo build --release --bin experiments
	rm -rf target/cachecheck && mkdir -p target/cachecheck
	./target/release/experiments all --cache target/cachecheck/store > target/cachecheck/cold.txt
	./target/release/experiments all --cache target/cachecheck/store > target/cachecheck/warm.txt
	cmp target/cachecheck/cold.txt target/cachecheck/warm.txt

# Million-host smoke on the space-sharded kernel: the E12 top-of-ladder
# point must complete under the 8 GiB peak-RSS ceiling with real churn
# (see DESIGN.md section 6). MOBIDIST_SHARDS / --shards picks the worker
# count; the result is bit-identical at every choice.
scalecheck:
	cargo run --release --bin scalecheck
