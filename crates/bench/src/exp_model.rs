//! **E0 — system-model validation** (Section 2, Fig. 1).
//!
//! Exercises each primitive message path of the model once and compares the
//! charged cost against the paper's cost table:
//!
//! * MSS→MSS: `C_fixed`
//! * MH→local MSS (and back): `C_wireless`
//! * MSS→non-local MH: `C_search + C_wireless`
//! * MH→MH: `2·C_wireless + C_search`

use crate::table::Table;
use mobidist_net::prelude::*;

/// Null protocol that accepts every delivery.
#[derive(Debug, Default)]
struct Sink;

impl Protocol for Sink {
    type Msg = u8;
    type Timer = ();
    fn on_mss_msg(&mut self, _: &mut Ctx<'_, u8, ()>, _: MssId, _: Src, _: u8) {}
    fn on_mh_msg(&mut self, _: &mut Ctx<'_, u8, ()>, _: MhId, _: Src, _: u8) {}
}

fn measure(f: impl FnOnce(&mut Ctx<'_, u8, ()>)) -> u64 {
    let cfg = NetworkConfig::new(8, 16).with_seed(7);
    let mut sim = Simulation::new(cfg, Sink);
    sim.with_ctx(|ctx, _| f(ctx));
    sim.run_to_quiescence(1_000_000);
    sim.ledger().total_cost()
}

/// Runs the model-validation experiment.
pub fn run() -> Table {
    let c = CostModel::default();
    let mut t = Table::new(
        "E0 — system-model message costs (Section 2)",
        &["operation", "paper", "measured"],
    );
    let cases: Vec<(&str, u64, u64)> = vec![
        (
            "MSS -> MSS (C_fixed)",
            c.c_fixed,
            measure(|ctx| ctx.send_fixed(MssId(0), MssId(5), 0)),
        ),
        (
            "MH -> local MSS (C_wireless)",
            c.c_wireless,
            measure(|ctx| ctx.send_wireless_up(MhId(3), 0).unwrap()),
        ),
        (
            "MSS -> local MH (C_wireless)",
            c.c_wireless,
            measure(|ctx| ctx.send_wireless_down(MssId(3), MhId(3), 0).unwrap()),
        ),
        (
            "MSS -> non-local MH (C_search + C_wireless)",
            c.mss_to_remote_mh(),
            measure(|ctx| ctx.search_send(MssId(0), MhId(3), 0)),
        ),
        (
            "MH -> MH (2 C_wireless + C_search)",
            c.mh_to_mh(),
            measure(|ctx| ctx.mh_send_to_mh(MhId(0), MhId(5), 0).unwrap()),
        ),
    ];
    for (name, paper, measured) in cases {
        t.push(vec![name.into(), paper.to_string(), measured.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_primitive_matches_the_paper_exactly() {
        let t = run();
        for row in &t.rows {
            assert_eq!(row[1], row[2], "{} diverged from the model", row[0]);
        }
        assert_eq!(t.rows.len(), 5);
    }
}
