//! The interface between mutual-exclusion algorithms and the shared
//! workload/invariant harness.
//!
//! Every algorithm in the suite — the paper's redesigns (L2, R2, R2′,
//! token-list) and the baselines it argues against (L1, R1) — implements
//! [`MutexAlgorithm`] and is driven by the same
//! [`MutexHarness`](crate::harness::MutexHarness), so cost comparisons are
//! apples-to-apples: identical workload, identical mobility, identical
//! invariant checks.

use mobidist_net::config::NetworkConfig;
use mobidist_net::cost::CostModel;
use mobidist_net::error::NetError;
use mobidist_net::host::MhStatus;
use mobidist_net::ids::{MhId, MssId};
use mobidist_net::proto::{Ctx, Src};
use mobidist_net::rng::SimRng;
use mobidist_net::time::SimTime;
use std::fmt::Debug;

/// Timer payload of the harness: workload ticks plus algorithm timers.
#[derive(Debug, Clone)]
pub enum HarnessTimer<T> {
    /// The algorithm's own timer.
    Algo(T),
    /// Workload: `mh` finished thinking and now wants the critical section.
    Think(MhId),
    /// Workload: `mh` finished its critical-section work and releases.
    Hold(MhId),
}

/// Side effects an algorithm reports to the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// `mh` has entered the critical section. `key` is an optional total
    /// -order tag (Lamport timestamp) the checker verifies is nondecreasing.
    Granted {
        /// The MH now in the critical section.
        mh: MhId,
        /// Optional ordering key for fairness checking.
        key: Option<u64>,
    },
    /// `mh`'s outstanding request was abandoned (e.g. it disconnected before
    /// the grant could be delivered).
    Aborted {
        /// The MH whose request was dropped.
        mh: MhId,
    },
}

/// Context handed to algorithm callbacks: the network operations of the
/// system model plus the effect channel back to the harness.
///
/// Algorithm timers are transparently wrapped in
/// [`HarnessTimer::Algo`], so algorithms never see workload timers.
#[derive(Debug)]
pub struct AlgoCtx<'a, 'k, M, T> {
    net: &'a mut Ctx<'k, M, HarnessTimer<T>>,
    effects: &'a mut Vec<Effect>,
}

impl<'a, 'k, M: Debug + Clone + 'static, T: Debug + 'static> AlgoCtx<'a, 'k, M, T> {
    /// Creates a context (used by the harness).
    pub(crate) fn new(
        net: &'a mut Ctx<'k, M, HarnessTimer<T>>,
        effects: &'a mut Vec<Effect>,
    ) -> Self {
        AlgoCtx { net, effects }
    }

    /// Reports that `mh` entered the critical section.
    pub fn grant(&mut self, mh: MhId) {
        self.effects.push(Effect::Granted { mh, key: None });
    }

    /// Reports a grant with a total-order key (e.g. a Lamport timestamp) for
    /// the fairness checker.
    pub fn grant_with_key(&mut self, mh: MhId, key: u64) {
        self.effects.push(Effect::Granted { mh, key: Some(key) });
    }

    /// Reports that `mh`'s request was abandoned.
    pub fn abort(&mut self, mh: MhId) {
        self.effects.push(Effect::Aborted { mh });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        self.net.config()
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> CostModel {
        self.net.cost_model()
    }

    /// Number of MSSs.
    pub fn num_mss(&self) -> usize {
        self.net.num_mss()
    }

    /// Number of MHs.
    pub fn num_mh(&self) -> usize {
        self.net.num_mh()
    }

    /// All MSS ids.
    pub fn mss_ids(&self) -> impl Iterator<Item = MssId> {
        self.net.mss_ids()
    }

    /// All MH ids.
    pub fn mh_ids(&self) -> impl Iterator<Item = MhId> {
        self.net.mh_ids()
    }

    /// Point-to-point fixed-network send (`C_fixed`).
    pub fn send_fixed(&mut self, from: MssId, to: MssId, msg: M) {
        self.net.send_fixed(from, to, msg);
    }

    /// Sends a copy of a message to every other MSS (`(M−1)·C_fixed`).
    /// The kernel clones the payload per receiver (or shares one copy on
    /// the batched fan-out path).
    pub fn broadcast_fixed(&mut self, from: MssId, msg: M) {
        self.net.broadcast_fixed(from, msg);
    }

    /// Wireless downlink to a local MH (`C_wireless`).
    ///
    /// # Errors
    ///
    /// [`NetError::NotLocal`] when the MH is not local to `mss`.
    pub fn send_wireless_down(&mut self, mss: MssId, mh: MhId, msg: M) -> Result<(), NetError> {
        self.net.send_wireless_down(mss, mh, msg)
    }

    /// Wireless uplink to the current local MSS (`C_wireless`).
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the MH has disconnected.
    pub fn send_wireless_up(&mut self, mh: MhId, msg: M) -> Result<(), NetError> {
        self.net.send_wireless_up(mh, msg)
    }

    /// Locate-and-forward to an MH (`C_search + C_wireless`).
    pub fn search_send(&mut self, origin: MssId, mh: MhId, msg: M) {
        self.net.search_send(origin, mh, msg);
    }

    /// Cell-wide wireless broadcast from `mss` to every local MH — one
    /// `C_wireless` charge regardless of listeners (the lever combining
    /// algorithms amortize batched replies over). Returns the listener
    /// count; an empty cell sends (and charges) nothing.
    pub fn broadcast_cell(&mut self, mss: MssId, msg: M) -> usize {
        self.net.broadcast_cell(mss, msg)
    }

    /// Emits an algorithm-level trace event (no-op without a sink).
    pub fn emit(&mut self, ev: mobidist_net::obs::TraceEvent) {
        self.net.emit(ev);
    }

    /// MH→MH transport (`2·C_wireless + C_search`), logically FIFO.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the sender has disconnected.
    pub fn mh_send_to_mh(&mut self, src: MhId, dst: MhId, msg: M) -> Result<(), NetError> {
        self.net.mh_send_to_mh(src, dst, msg)
    }

    /// Schedules an algorithm timer.
    pub fn set_timer(&mut self, delay: u64, t: T) {
        self.net.set_timer(delay, HarnessTimer::Algo(t));
    }

    /// Connectivity status of an MH.
    pub fn mh_status(&self, mh: MhId) -> MhStatus {
        self.net.mh_status(mh)
    }

    /// True when `mh` is local to `mss`.
    pub fn is_local(&self, mss: MssId, mh: MhId) -> bool {
        self.net.is_local(mss, mh)
    }

    /// Increments a named ledger counter.
    pub fn bump(&mut self, name: &str) {
        self.net.bump(name);
    }

    /// Protocol random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.net.rng()
    }
}

/// A distributed mutual-exclusion algorithm for the two-tier model.
///
/// The harness calls [`request`](MutexAlgorithm::request) when a mobile host
/// wants the critical section and [`release`](MutexAlgorithm::release) when
/// it is done; the algorithm reports entry via [`AlgoCtx::grant`].
pub trait MutexAlgorithm: Sized + 'static {
    /// Message payload exchanged by the algorithm. `Clone` lets the kernel's
    /// broadcast fan-outs share one payload per arrival tick.
    type Msg: Debug + Clone + 'static;
    /// Algorithm-internal timer payload.
    type Timer: Debug + 'static;

    /// Short display name ("L1", "L2", …).
    fn name(&self) -> &'static str;

    /// One-time initialisation (e.g. minting the ring token).
    fn on_start(&mut self, ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>) {
        let _ = ctx;
    }

    /// `mh` wants to enter the critical section. Only called while `mh` is
    /// connected and has no outstanding request.
    fn request(&mut self, ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>, mh: MhId);

    /// `mh` finished its critical-section work (it was previously granted).
    fn release(&mut self, ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>, mh: MhId);

    /// A message arrived at a fixed host.
    fn on_mss_msg(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>,
        at: MssId,
        src: Src,
        msg: Self::Msg,
    );

    /// A message arrived at a mobile host.
    fn on_mh_msg(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>,
        at: MhId,
        src: Src,
        msg: Self::Msg,
    );

    /// An algorithm timer fired.
    fn on_timer(&mut self, ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>, timer: Self::Timer) {
        let _ = (ctx, timer);
    }

    /// A search-routed message bounced off a disconnected MH.
    fn on_search_failed(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>,
        origin: MssId,
        target: MhId,
        msg: Self::Msg,
    ) {
        let _ = (ctx, origin, target, msg);
    }

    /// Mobility hook: `mh` joined `mss`.
    fn on_mh_joined(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
        prev: Option<MssId>,
    ) {
        let _ = (ctx, mh, mss, prev);
    }

    /// Mobility hook: `mh` disconnected at `mss`.
    fn on_mh_disconnected(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
    ) {
        let _ = (ctx, mh, mss);
    }

    /// Mobility hook: `mh` reconnected at `mss`.
    fn on_mh_reconnected(
        &mut self,
        ctx: &mut AlgoCtx<'_, '_, Self::Msg, Self::Timer>,
        mh: MhId,
        mss: MssId,
    ) {
        let _ = (ctx, mh, mss);
    }
}
