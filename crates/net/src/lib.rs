//! # mobidist-net — the two-tier mobile-host network substrate
//!
//! A deterministic discrete-event simulator of the operational system model
//! of *Badrinath, Acharya & Imieliński, "Structuring Distributed Algorithms
//! for Mobile Hosts" (ICDCS 1994)*:
//!
//! * `M` fixed hosts (**mobile support stations**, MSSs) joined by a wired
//!   network with reliable, FIFO, arbitrary-latency channels;
//! * `N ≫ M` **mobile hosts** (MHs), each local to at most one cell, talking
//!   to the local MSS over a FIFO wireless channel with *prefix delivery* —
//!   a departing MH receives only a prefix of what was sent;
//! * `join`/`leave`/`disconnect`/`reconnect` choreography with handoff
//!   (the previous MSS id travels with the join);
//! * a **search** service that locates an MH and forwards a message to its
//!   current cell, with eventual delivery however often the target moves;
//! * the paper's **cost model** (`C_fixed`, `C_wireless`, `C_search`) and
//!   battery-energy accounting, charged automatically on every operation.
//!
//! Algorithms implement [`proto::Protocol`] and run under [`sim::Simulation`].
//!
//! ## Example
//!
//! ```
//! use mobidist_net::prelude::*;
//!
//! // An MSS greets every MH that joins a cell.
//! struct Greeter { greetings: u32 }
//!
//! impl Protocol for Greeter {
//!     type Msg = String;
//!     type Timer = ();
//!     fn on_mss_msg(&mut self, _: &mut Ctx<'_, String, ()>, _: MssId, _: Src, _: String) {}
//!     fn on_mh_msg(&mut self, _: &mut Ctx<'_, String, ()>, _: MhId, _: Src, _: String) {
//!         self.greetings += 1;
//!     }
//!     fn on_mh_joined(&mut self, ctx: &mut Ctx<'_, String, ()>,
//!                     mh: MhId, mss: MssId, _prev: Option<MssId>) {
//!         ctx.send_wireless_down(mss, mh, format!("welcome to {mss}")).unwrap();
//!     }
//! }
//!
//! let cfg = NetworkConfig::new(4, 8).with_seed(1);
//! let mut sim = Simulation::new(cfg, Greeter { greetings: 0 });
//! sim.with_ctx(|ctx, _| ctx.initiate_move(MhId(0), Some(MssId(2))));
//! sim.run_to_quiescence(100_000);
//! assert_eq!(sim.protocol().greetings, 1);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod config;
pub mod cost;
pub mod error;
pub mod event;
pub mod fault;
pub mod fingerprint;
pub mod hash;
pub mod host;
pub mod ids;
pub mod kernel;
pub mod lanes;
pub mod latency;
pub mod ledger;
pub mod metrics;
pub mod mobility;
pub mod obs;
pub mod proto;
pub mod rng;
pub mod search;
pub mod shard;
pub mod sim;
mod soa;
pub mod time;
pub mod trace;

/// Convenient glob import for protocol authors.
pub mod prelude {
    pub use crate::config::{DeliveryMode, LatencyConfig, NetworkConfig, Placement};
    pub use crate::cost::{CostModel, EnergyModel};
    pub use crate::error::NetError;
    pub use crate::fault::{FaultConfig, FaultEvent, FaultKind};
    pub use crate::host::MhStatus;
    pub use crate::ids::{Endpoint, GroupId, MhId, MssId};
    pub use crate::latency::LatencyModel;
    pub use crate::ledger::CostLedger;
    pub use crate::metrics::{Histogram, Metrics, MetricsSink};
    pub use crate::mobility::{DisconnectConfig, MobilityConfig, MoveCtx, MovePattern};
    pub use crate::obs::{JsonlSink, RingSink, TraceEvent, TraceSink};
    pub use crate::proto::{Ctx, MsgBatch, Protocol, Src};
    pub use crate::rng::SimRng;
    pub use crate::search::SearchPolicy;
    pub use crate::shard::{
        run_scale, run_scale_traced, run_scale_with_mode, ScaleReport, ScaleSpec,
    };
    pub use crate::sim::{SimPool, Simulation};
    pub use crate::time::SimTime;
}
